//! Property-based tests for the linear-algebra substrate.

use chemcost_linalg::{cholesky::SpdSolver, gemm, vecops, Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: a rows×cols matrix with bounded entries.
fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: an SPD matrix built as B Bᵀ + (n+1)·I.
fn spd_matrix(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..max_n).prop_flat_map(|n| {
        proptest::collection::vec(-3.0f64..3.0, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data);
            let mut a = b.matmul(&b.transpose());
            a.add_diagonal(n as f64 + 1.0);
            a
        })
    })
}

proptest! {
    #[test]
    fn transpose_involution(m in matrix(1..12, 1..12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_neutral(m in matrix(1..10, 1..10)) {
        let i = Matrix::identity(m.ncols());
        prop_assert!(m.matmul(&i).max_abs_diff(&m) < 1e-10);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in (matrix(1..8, 1..8), matrix(1..8, 1..8))) {
        // (A B)ᵀ = Bᵀ Aᵀ when shapes are compatible; force compatibility.
        let b = Matrix::from_fn(a.ncols(), b.ncols(), |i, j| b[(i % b.nrows(), j)]);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn parallel_gemm_matches_sequential((a, b) in (matrix(20..60, 20..60), matrix(20..60, 20..60))) {
        let b = Matrix::from_fn(a.ncols(), b.ncols(), |i, j| b[(i % b.nrows(), j)]);
        let seq = gemm::matmul(&a, &b);
        let par = gemm::matmul_parallel(&a, &b);
        prop_assert!(seq.max_abs_diff(&par) < 1e-9);
    }

    #[test]
    fn gram_is_symmetric_psd_diag(m in matrix(2..20, 2..8)) {
        let g = gemm::gram(&m);
        for i in 0..g.nrows() {
            prop_assert!(g[(i, i)] >= -1e-12, "diagonal of Gram must be non-negative");
            for j in 0..g.ncols() {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_reconstructs(a in spd_matrix(12)) {
        let c = Cholesky::factor(&a).unwrap();
        let recon = c.l().matmul(&c.l().transpose());
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(recon.max_abs_diff(&a) / scale < 1e-9);
    }

    #[test]
    fn cholesky_solve_residual(a in spd_matrix(10), seed in 0u64..1000) {
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i as u64 + seed) as f64 * 0.37).sin()).collect();
        let x = Cholesky::factor(&a).unwrap().solve(&b);
        let r = a.matvec(&x);
        let err = r.iter().zip(&b).map(|(u, v)| (u - v).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-6 * a.frobenius_norm().max(1.0), "residual {err}");
    }

    #[test]
    fn spd_solver_never_fails_on_spd(a in spd_matrix(10)) {
        prop_assert!(SpdSolver::factor(&a).is_ok());
    }

    #[test]
    fn argsort_is_permutation_and_sorted(v in proptest::collection::vec(-100.0f64..100.0, 0..50)) {
        let idx = vecops::argsort(&v);
        let mut seen = vec![false; v.len()];
        for &i in &idx { seen[i] = true; }
        prop_assert!(seen.iter().all(|&s| s));
        for w in idx.windows(2) {
            prop_assert!(v[w[0]] <= v[w[1]]);
        }
    }

    #[test]
    fn argmin_is_minimal(v in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let i = vecops::argmin(&v).unwrap();
        for &x in &v {
            prop_assert!(v[i] <= x);
        }
    }

    #[test]
    fn dot_cauchy_schwarz(
        a in proptest::collection::vec(-10.0f64..10.0, 1..30),
        b in proptest::collection::vec(-10.0f64..10.0, 1..30),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let d = vecops::dot(a, b).abs();
        prop_assert!(d <= vecops::norm2(a) * vecops::norm2(b) + 1e-9);
    }

    #[test]
    fn variance_shift_invariant(v in proptest::collection::vec(-50.0f64..50.0, 2..40), shift in -100.0f64..100.0) {
        let shifted: Vec<f64> = v.iter().map(|x| x + shift).collect();
        let dv = (vecops::variance(&v) - vecops::variance(&shifted)).abs();
        prop_assert!(dv < 1e-7 * (1.0 + vecops::variance(&v)), "variance changed by {dv}");
    }

    #[test]
    fn select_rows_preserves_content(m in matrix(1..15, 1..6), pick in proptest::collection::vec(0usize..14, 0..10)) {
        let pick: Vec<usize> = pick.into_iter().filter(|&i| i < m.nrows()).collect();
        let s = m.select_rows(&pick);
        prop_assert_eq!(s.nrows(), pick.len());
        for (k, &i) in pick.iter().enumerate() {
            prop_assert_eq!(s.row(k), m.row(i));
        }
    }
}
