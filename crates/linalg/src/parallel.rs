//! Scoped-thread parallel utilities shared across the workspace.
//!
//! Built on `std::thread::scope` (no lifetime gymnastics, no detached
//! threads) with two flavours of scheduling:
//!
//! * **static** partitioning ([`par_for_range`], [`par_chunks_mut`]) for
//!   uniform work such as GEMM row blocks, and
//! * **dynamic** self-scheduling ([`par_map_indexed`]) where an atomic
//!   cursor hands out indices one at a time — the right choice for
//!   irregular tasks like fitting trees of varying depth or simulating
//!   CCSD configurations whose cost spans orders of magnitude.
//!
//! Thread count defaults to `std::thread::available_parallelism()` and can
//! be capped per call, which the benchmark ablations use to measure scaling.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run `f(start, end)` over a static partition of `0..n` across up to
/// `threads` workers. `f` must be safe to call concurrently on disjoint
/// ranges.
pub fn par_for_range<F>(n: usize, threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n == 0 {
        f(0, n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                break;
            }
            let f = &f;
            s.spawn(move || f(start, end));
        }
    });
}

/// Split `data` into contiguous chunks whose lengths are multiples of
/// `stride` (except possibly the last) and process them in parallel.
/// The callback receives the chunk's starting offset within `data`.
pub fn par_chunks_mut<T, F>(data: &mut [T], stride: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let stride = stride.max(1);
    let units = data.len().div_ceil(stride);
    let threads = default_threads().min(units.max(1));
    if threads <= 1 {
        f(0, data);
        return;
    }
    let units_per = units.div_ceil(threads);
    let chunk_len = units_per * stride;
    std::thread::scope(|s| {
        let mut rest = data;
        let mut offset = 0;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let f = &f;
            let off = offset;
            s.spawn(move || f(off, head));
            offset += take;
            rest = tail;
        }
    });
}

/// Dynamically scheduled parallel map over `0..n`, preserving order.
///
/// Each worker pulls the next index from an atomic cursor, so uneven task
/// costs balance automatically. Results are stitched back in index order.
pub fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let sink: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let cursor = &cursor;
            let sink = &sink;
            let f = &f;
            s.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                if !local.is_empty() {
                    sink.lock().append(&mut local);
                }
            });
        }
    });
    let mut pairs = sink.into_inner();
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Convenience: dynamic parallel map with the default thread count.
pub fn par_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    par_map_indexed(n, default_threads(), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_for_range_covers_everything_once() {
        let n = 1003;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_for_range(n, 7, |s, e| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_range_zero_items() {
        par_for_range(0, 4, |s, e| assert_eq!((s, e), (0, 0)));
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_single_thread_matches() {
        let a = par_map_indexed(37, 1, |i| i + 1);
        let b = par_map_indexed(37, 6, |i| i + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn par_map_uneven_work_balances() {
        // Tasks with wildly different costs must still produce ordered output.
        let out = par_map_indexed(50, 4, |i| {
            let mut acc = 0u64;
            for k in 0..((i % 7) * 10_000) as u64 {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjoint() {
        let mut data = vec![0.0; 128];
        par_chunks_mut(&mut data, 8, |off, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (off + k) as f64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn par_chunks_chunk_lengths_are_stride_multiples() {
        let mut data = vec![0.0; 70];
        par_chunks_mut(&mut data, 7, |off, chunk| {
            assert_eq!(off % 7, 0);
            // All chunks here are multiples of the stride (70 = 10 rows of 7).
            assert_eq!(chunk.len() % 7, 0);
        });
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
