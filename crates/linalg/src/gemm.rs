//! Cache-blocked matrix multiplication, sequential and parallel.
//!
//! The kernel is a classic i-k-j loop order over `BLOCK`-sized tiles: the
//! innermost loop walks contiguous rows of both the output and the right
//! operand, which vectorizes well and avoids the column-strided access of
//! the naive i-j-k order. The parallel variant partitions output rows across
//! worker threads with [`crate::parallel::par_for_range`]; the writes are
//! disjoint by construction so no synchronization is needed beyond the
//! scoped join.

use crate::matrix::Matrix;
use crate::parallel;

/// Tile edge for the blocked kernel. 64 doubles per row-block keeps three
/// tiles (A, B, C) comfortably inside a typical 32 KiB L1.
const BLOCK: usize = 64;

/// Sequential blocked product `a * b`.
///
/// # Panics
/// Panics if `a.ncols() != b.nrows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.ncols(), b.nrows(), "gemm dimension mismatch");
    let mut c = Matrix::zeros(a.nrows(), b.ncols());
    gemm_rows(a, b, &mut c, 0, a.nrows());
    c
}

/// Parallel blocked product `a * b`, splitting output rows across threads.
///
/// Falls back to the sequential kernel for small outputs where the spawn
/// cost dominates.
///
/// # Panics
/// Panics if `a.ncols() != b.nrows()`.
pub fn matmul_parallel(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.ncols(), b.nrows(), "gemm dimension mismatch");
    let (m, n) = (a.nrows(), b.ncols());
    // Under ~1 Mflop the sequential kernel wins.
    if m * n * a.ncols() < 500_000 {
        return matmul(a, b);
    }
    let mut c = Matrix::zeros(m, n);
    let cols = c.ncols();
    let data = c.as_mut_slice();
    parallel::par_chunks_mut(data, cols.max(1), |row_start, chunk| {
        // Each chunk is a whole number of output rows.
        let r0 = row_start / cols;
        let r1 = r0 + chunk.len() / cols;
        let mut local = Matrix::from_vec(r1 - r0, cols, chunk.to_vec());
        gemm_rows_offset(a, b, &mut local, r0);
        chunk.copy_from_slice(local.as_slice());
    });
    c
}

/// Multiply rows `[row0, row1)` of `a` into the same rows of `c`.
fn gemm_rows(a: &Matrix, b: &Matrix, c: &mut Matrix, row0: usize, row1: usize) {
    let k_dim = a.ncols();
    let n = b.ncols();
    for ib in (row0..row1).step_by(BLOCK) {
        let ie = (ib + BLOCK).min(row1);
        for kb in (0..k_dim).step_by(BLOCK) {
            let ke = (kb + BLOCK).min(k_dim);
            for jb in (0..n).step_by(BLOCK) {
                let je = (jb + BLOCK).min(n);
                for i in ib..ie {
                    for k in kb..ke {
                        let aik = a[(i, k)];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b.row(k)[jb..je];
                        let crow = &mut c.row_mut(i)[jb..je];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Like [`gemm_rows`] but `local` holds rows starting at `a`-row `offset`.
fn gemm_rows_offset(a: &Matrix, b: &Matrix, local: &mut Matrix, offset: usize) {
    let k_dim = a.ncols();
    let n = b.ncols();
    let rows = local.nrows();
    for li in 0..rows {
        let i = offset + li;
        for kb in (0..k_dim).step_by(BLOCK) {
            let ke = (kb + BLOCK).min(k_dim);
            for k in kb..ke {
                let aik = a[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                let crow = local.row_mut(li);
                for j in 0..n {
                    crow[j] += aik * brow[j];
                }
            }
        }
    }
}

/// `aᵀ * a`, exploiting symmetry of the result (only the upper triangle is
/// computed, then mirrored). This is the hot kernel of every normal-equation
/// solve in `chemcost-ml`.
pub fn gram(a: &Matrix) -> Matrix {
    let n = a.ncols();
    let m = a.nrows();
    let mut g = Matrix::zeros(n, n);
    for r in 0..m {
        let row = a.row(r);
        for i in 0..n {
            let ri = row[i];
            if ri == 0.0 {
                continue;
            }
            let grow = g.row_mut(i);
            for (j, &rj) in row.iter().enumerate().skip(i) {
                grow[j] += ri * rj;
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            g[(i, j)] = g[(j, i)];
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut s = 0.0;
                for k in 0..a.ncols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn blocked_matches_naive_small() {
        let a = Matrix::from_fn(7, 5, |i, j| (i as f64) - 0.5 * j as f64);
        let b = Matrix::from_fn(5, 9, |i, j| (j as f64) * 0.25 + i as f64);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-12);
    }

    #[test]
    fn blocked_matches_naive_rectangular() {
        let a = Matrix::from_fn(130, 70, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(70, 90, |i, j| ((i * 13 + j * 29) % 11) as f64 - 5.0);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-9);
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = Matrix::from_fn(150, 120, |i, j| ((i + 2 * j) % 17) as f64 * 0.3 - 1.0);
        let b = Matrix::from_fn(120, 140, |i, j| ((3 * i + j) % 19) as f64 * 0.2 - 1.5);
        let seq = matmul(&a, &b);
        let par = matmul_parallel(&a, &b);
        assert!(seq.max_abs_diff(&par) < 1e-9);
    }

    #[test]
    fn parallel_small_falls_back() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let b = Matrix::identity(3);
        assert_eq!(matmul_parallel(&a, &b), a);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(20, 20, |i, j| (i * j) as f64 * 0.1);
        assert!(matmul(&a, &Matrix::identity(20)).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Matrix::from_fn(40, 7, |i, j| ((i * 5 + j * 3) % 23) as f64 * 0.1 - 1.0);
        let expect = a.transpose().matmul(&a);
        assert!(gram(&a).max_abs_diff(&expect) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_checks_dims() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }
}
