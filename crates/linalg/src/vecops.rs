//! Small vector helpers used throughout the workspace.

/// Dot product.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population variance; 0.0 for slices shorter than 2.
pub fn variance(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

/// Population standard deviation.
pub fn std_dev(v: &[f64]) -> f64 {
    variance(v).sqrt()
}

/// Euclidean norm.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Squared Euclidean distance between two points.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// `y ← y + alpha * x`.
///
/// # Panics
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Indices that would sort `v` ascending (NaNs sort last).
pub fn argsort(v: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap_or(std::cmp::Ordering::Equal));
    idx
}

/// Index of the minimum value (first on ties); `None` for empty input.
pub fn argmin(v: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in v.iter().enumerate() {
        match best {
            Some((_, b)) if x >= b => {}
            _ if x.is_nan() => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum value (first on ties); `None` for empty input.
pub fn argmax(v: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in v.iter().enumerate() {
        match best {
            Some((_, b)) if x <= b => {}
            _ if x.is_nan() => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Linearly spaced values from `start` to `end` inclusive.
pub fn linspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    match n {
        0 => vec![],
        1 => vec![start],
        _ => {
            let step = (end - start) / (n - 1) as f64;
            (0..n).map(|i| start + step * i as f64).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn mean_and_variance() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variance_degenerate() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn sq_dist_symmetric() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert_eq!(sq_dist(&a, &b), 25.0);
        assert_eq!(sq_dist(&b, &a), 25.0);
        assert_eq!(sq_dist(&a, &a), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn argsort_orders() {
        assert_eq!(argsort(&[3.0, 1.0, 2.0]), vec![1, 2, 0]);
    }

    #[test]
    fn argmin_argmax() {
        let v = [3.0, -1.0, 7.0, -1.0];
        assert_eq!(argmin(&v), Some(1));
        assert_eq!(argmax(&v), Some(2));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn argmin_skips_nan() {
        assert_eq!(argmin(&[f64::NAN, 2.0, 1.0]), Some(2));
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(2.0, 9.0, 1), vec![2.0]);
        assert!(linspace(0.0, 1.0, 0).is_empty());
    }
}
