//! Dense row-major matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// Rows are contiguous in memory, so iterating a row is cache-friendly and
/// a `&[f64]` view of any row is free ([`Matrix::row`]).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(r);
        }
        Self { rows: nrows, cols: ncols, data }
    }

    /// Build from an owned row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a new `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the raw row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.ncols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            *o = acc;
        }
        out
    }

    /// Matrix–matrix product using the blocked sequential kernel.
    ///
    /// For large products where parallelism pays off, see
    /// [`crate::gemm::matmul_parallel`].
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        crate::gemm::matmul(self, other)
    }

    /// Append a row. The matrix must be empty or have matching width.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "push_row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// A new matrix containing the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        out.cols = self.cols;
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
        out.rows = indices.len();
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }

    /// Add `value` to every diagonal element (in place). Useful for ridge
    /// regularization and Cholesky jitter.
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for j in 0..cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_rows_matches_index() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_simple() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        let m = Matrix::zeros(2, 3);
        let _ = m.matvec(&[1.0, 2.0]);
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    fn select_rows_orders() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f64);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.row(0), &[3.0, 3.0]);
        assert_eq!(s.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn add_diagonal_only_touches_diag() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diagonal(2.5);
        assert_eq!(m[(1, 1)], 2.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_zero_for_self() {
        let m = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        assert_eq!(m.max_abs_diff(&m), 0.0);
    }
}
