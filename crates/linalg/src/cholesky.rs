//! Cholesky factorization and symmetric-positive-definite solves.
//!
//! Every normal-equation, kernel-ridge and Gaussian-process fit in
//! `chemcost-ml` bottoms out here. The factorization is the standard
//! right-looking LLᵀ; [`SpdSolver`] wraps it with escalating diagonal
//! jitter so nearly-singular Gram/kernel matrices (common with duplicated
//! training rows) still factor instead of erroring out.

use crate::matrix::Matrix;

/// Error returned when a matrix cannot be factored as LLᵀ.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Pivot index where the factorization broke down.
    pub pivot: usize,
    /// The offending pivot value (≤ 0 or non-finite).
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} has value {:e}",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility.
    pub fn factor(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.nrows(), a.ncols(), "Cholesky needs a square matrix");
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal pivot.
            let mut d = a[(j, j)];
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(NotPositiveDefinite { pivot: j, value: d });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the pivot.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                // Dot of rows i and j of L up to column j; both are
                // contiguous prefixes thanks to row-major storage.
                let (ri, rj) = (l.row(i), l.row(j));
                for k in 0..j {
                    s -= ri[k] * rj[k];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via the two triangular solves.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factor dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut y = self.forward_sub(b);
        self.back_sub_in_place(&mut y);
        y
    }

    /// Solve `A X = B` column-by-column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.l.nrows();
        assert_eq!(b.nrows(), n, "solve_matrix dimension mismatch");
        let mut x = Matrix::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let col = b.col(j);
            let sol = self.solve(&col);
            for i in 0..n {
                x[(i, j)] = sol[i];
            }
        }
        x
    }

    /// Forward substitution `L y = b`.
    pub fn forward_sub(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.nrows();
        assert_eq!(b.len(), n, "forward_sub dimension mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let row = self.l.row(i);
            let mut s = b[i];
            for k in 0..i {
                s -= row[k] * y[k];
            }
            y[i] = s / row[i];
        }
        y
    }

    /// Back substitution `Lᵀ x = y`, overwriting `y` with `x`.
    pub fn back_sub_in_place(&self, y: &mut [f64]) {
        let n = self.l.nrows();
        assert_eq!(y.len(), n, "back_sub dimension mismatch");
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, yk) in y.iter().enumerate().take(n).skip(i + 1) {
                s -= self.l[(k, i)] * yk;
            }
            y[i] = s / self.l[(i, i)];
        }
    }

    /// log(det A) = 2 Σ log Lᵢᵢ — used by Gaussian-process marginal
    /// likelihood and Bayesian-ridge evidence.
    pub fn log_det(&self) -> f64 {
        let n = self.l.nrows();
        (0..n).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// SPD solver with escalating diagonal jitter.
///
/// Tries a plain factorization first; on breakdown adds `jitter · mean(diag)`
/// with jitter escalating `1e-10 → 1e-4`, which matches what practical GP
/// libraries do. Gives up (returns the underlying error) only if even the
/// largest jitter fails.
#[derive(Debug, Clone)]
pub struct SpdSolver {
    chol: Cholesky,
    /// Jitter that was actually added to the diagonal (0.0 if none).
    pub jitter_used: f64,
}

impl SpdSolver {
    /// Factor `a`, adding diagonal jitter if necessary.
    pub fn factor(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        if let Ok(chol) = Cholesky::factor(a) {
            return Ok(Self { chol, jitter_used: 0.0 });
        }
        let n = a.nrows();
        let mean_diag = (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n.max(1) as f64;
        let scale = if mean_diag > 0.0 { mean_diag } else { 1.0 };
        let mut last_err = NotPositiveDefinite { pivot: 0, value: f64::NAN };
        let mut jitter = 1e-10;
        while jitter <= 1e-4 {
            let mut aj = a.clone();
            aj.add_diagonal(jitter * scale);
            match Cholesky::factor(&aj) {
                Ok(chol) => return Ok(Self { chol, jitter_used: jitter * scale }),
                Err(e) => last_err = e,
            }
            jitter *= 100.0;
        }
        Err(last_err)
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.chol.solve(b)
    }

    /// Access the underlying factorization.
    pub fn cholesky(&self) -> &Cholesky {
        &self.chol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        // A = B Bᵀ + n·I is SPD for any B.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut a = b.matmul(&b.transpose());
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(12, 3);
        let c = Cholesky::factor(&a).unwrap();
        let recon = c.l().matmul(&c.l().transpose());
        assert!(recon.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn factor_known_2x2() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 5.0]]);
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.l()[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((c.l()[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((c.l()[(1, 1)] - 2.0).abs() < 1e-12);
        assert_eq!(c.l()[(0, 1)], 0.0);
    }

    #[test]
    fn solve_residual_small() {
        let a = spd(20, 7);
        let c = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let x = c.solve(&b);
        let r = a.matvec(&x);
        let err: f64 = r.iter().zip(&b).map(|(u, v)| (u - v).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "residual too large: {err}");
    }

    #[test]
    fn solve_matrix_matches_columns() {
        let a = spd(8, 11);
        let c = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_fn(8, 3, |i, j| (i + j) as f64);
        let x = c.solve_matrix(&b);
        for j in 0..3 {
            let xc = c.solve(&b.col(j));
            for i in 0..8 {
                assert!((x[(i, j)] - xc[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let e = Cholesky::factor(&a).unwrap_err();
        assert_eq!(e.pivot, 1);
        assert!(e.value <= 0.0);
    }

    #[test]
    fn log_det_matches_known() {
        // diag(4, 9) has det 36.
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn spd_solver_recovers_with_jitter() {
        // Rank-deficient Gram matrix (duplicate rows) — needs jitter.
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0], &[3.0, 1.0]]);
        let g = x.transpose().matmul(&x);
        // g is SPD here; make it singular instead by zero column.
        let sing = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        assert!(Cholesky::factor(&sing).is_err());
        let s = SpdSolver::factor(&sing).unwrap();
        assert!(s.jitter_used > 0.0);
        let _ = SpdSolver::factor(&g).unwrap();
    }

    #[test]
    fn spd_solver_no_jitter_when_healthy() {
        let a = spd(6, 5);
        let s = SpdSolver::factor(&a).unwrap();
        assert_eq!(s.jitter_used, 0.0);
    }
}
