//! Dense linear-algebra substrate for the `chemcost` workspace.
//!
//! The machine-learning layer (`chemcost-ml`) needs a small but reliable set
//! of kernels: a dense row-major matrix type, matrix-vector and
//! matrix-matrix products (cache-blocked and optionally parallel), Cholesky
//! factorization with triangular solves for symmetric positive-definite
//! systems, and a handful of vector helpers. This crate provides exactly
//! that, plus the scoped-thread `parallel` utilities shared by the rest of
//! the workspace.
//!
//! Everything is `f64`; the problem sizes in this domain (a few thousand
//! samples, tens of features) never justify mixed precision.
//!
//! # Example
//!
//! ```
//! use chemcost_linalg::{Matrix, cholesky::SpdSolver};
//!
//! // Solve the normal equations (XᵀX) w = Xᵀy for a tiny least-squares fit.
//! let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
//! let y = [1.0, 3.0, 5.0];
//! let xtx = x.transpose().matmul(&x);
//! let xty = x.transpose().matvec(&y);
//! let w = SpdSolver::factor(&xtx).unwrap().solve(&xty);
//! assert!((w[0] - 1.0).abs() < 1e-10 && (w[1] - 2.0).abs() < 1e-10);
//! ```

pub mod cholesky;
pub mod gemm;
pub mod matrix;
pub mod parallel;
pub mod vecops;

pub use cholesky::{Cholesky, SpdSolver};
pub use matrix::Matrix;
