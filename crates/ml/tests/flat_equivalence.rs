//! Equivalence battery for flat (struct-of-arrays, iterative, parallel)
//! inference, in two tiers:
//!
//! * **Exact tier** — `predict_batch_exact` / `predict_row_exact` must
//!   match the recursive per-tree path **bit-for-bit**: every assertion
//!   is `==` on raw `f64`s, never a tolerance. This is PR 2's original
//!   contract, now carried by the exact path.
//! * **Tolerance tier** — the default quantized (`f32`) path must stay
//!   within [`QUANT_REL_TOL`] of the recursive model on `f32`-representable
//!   inputs (which the advisor's integer candidate grids always are):
//!   thresholds quantize toward −∞ so routing is preserved exactly, and
//!   the only error is one `f64 → f32` rounding per leaf value. Covered on
//!   proptest-generated models and on the 750-tree paper-config ensemble.

use chemcost_linalg::Matrix;
use chemcost_ml::flat::{FlatForest, FlatGbt, QUANT_REL_TOL};
use chemcost_ml::forest::RandomForest;
use chemcost_ml::gradient_boosting::{GbLoss, GradientBoosting};
use chemcost_ml::tree::MaxFeatures;
use chemcost_ml::Regressor;
use proptest::prelude::*;

/// Deterministic pseudo-random training corpus with a nonlinear target.
/// Feature values are snapped through `f32` so they are exactly
/// representable on the quantized path (routing then matches the
/// recursive model leaf-for-leaf; see the module docs in
/// `chemcost_ml::flat`).
fn corpus(n: usize, d: usize, salt: u64) -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(n, d, |i, j| {
        let h = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(j as u64)
            .wrapping_mul(1442695040888963407)
            .wrapping_add(salt);
        (((h >> 33) % 10_000) as f64 / 100.0) as f32 as f64
    });
    let y = (0..n)
        .map(|i| {
            let r = x.row(i);
            (r[0] * 0.11).sin() * 40.0 + r[1 % d] * 0.5 - (r[d - 1] * 0.07).cos() * 9.0
        })
        .collect();
    (x, y)
}

/// Fresh query rows the models never saw during fitting.
fn queries(n: usize, d: usize) -> Matrix {
    corpus(n, d, 0xBEEF).0
}

/// Tolerance-tier assertion: quantized vs exact within `QUANT_REL_TOL`.
fn assert_close(quantized: &[f64], exact: &[f64], what: &str) {
    assert_eq!(quantized.len(), exact.len(), "{what}: length mismatch");
    for (i, (q, e)) in quantized.iter().zip(exact).enumerate() {
        assert!(
            (q - e).abs() <= QUANT_REL_TOL * (1.0 + e.abs()),
            "{what} row {i}: quantized {q} vs exact {e} outside QUANT_REL_TOL"
        );
    }
}

#[test]
fn forest_exact_equivalence_across_hyperparameters() {
    let (x, y) = corpus(200, 4, 1);
    let q = queries(300, 4);
    for (n_estimators, max_depth, bootstrap, max_features) in [
        (1, 3, true, MaxFeatures::All),
        (25, 6, true, MaxFeatures::Sqrt),
        (40, usize::MAX, true, MaxFeatures::Count(2)),
        (10, 8, false, MaxFeatures::All),
    ] {
        let mut rf = RandomForest::new(n_estimators, max_depth);
        rf.bootstrap = bootstrap;
        rf.max_features = max_features;
        rf.seed = 99;
        rf.fit(&x, &y).unwrap();
        let flat = FlatForest::compile(&rf);
        assert_eq!(
            flat.predict_batch_exact(&q),
            rf.predict(&q),
            "config {n_estimators}/{max_depth}"
        );
        assert_eq!(flat.predict_batch_exact(&x), rf.predict(&x));
        // Tolerance tier on the same configurations.
        assert_close(&flat.predict_batch(&q), &rf.predict(&q), "forest quantized");
    }
}

#[test]
fn gbt_equivalence_across_losses_and_controls() {
    let (x, y) = corpus(180, 3, 2);
    let q = queries(250, 3);
    let configs: Vec<GradientBoosting> = vec![
        GradientBoosting::new(60, 3, 0.1),
        GradientBoosting::new(10, 1, 1.0),
        {
            let mut gb = GradientBoosting::new(50, 4, 0.2);
            gb.loss = GbLoss::AbsoluteError;
            gb
        },
        {
            let mut gb = GradientBoosting::new(50, 4, 0.2);
            gb.loss = GbLoss::Huber { alpha: 0.9 };
            gb
        },
        {
            let mut gb = GradientBoosting::new(80, 3, 0.3);
            gb.subsample = 0.6;
            gb.seed = 5;
            gb
        },
        {
            let mut gb = GradientBoosting::new(400, 3, 0.3);
            gb.n_iter_no_change = Some(5);
            gb.seed = 8;
            gb
        },
    ];
    for mut gb in configs {
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        assert_eq!(flat.predict_batch_exact(&q), gb.predict(&q), "loss {:?}", gb.loss);
        assert_eq!(flat.predict_batch_exact(&x), gb.predict(&x));
        assert_close(&flat.predict_batch(&q), &gb.predict(&q), "gbt quantized");
        // Single-row paths agree with their batch counterparts and with
        // predict_one.
        for i in (0..q.nrows()).step_by(37) {
            assert_eq!(flat.predict_row_exact(q.row(i)), gb.predict_one(q.row(i)));
            assert_eq!(flat.predict_row(q.row(i)), flat.predict_batch(&q)[i]);
        }
    }
}

#[test]
fn equivalence_on_advisor_style_sweep_inputs() {
    // The advisor's candidate matrices hold integer-valued (o, v, nodes,
    // tile) columns of very different magnitudes — exactly the inputs the
    // serving hot path sees. Integers are f32-representable, so the
    // quantized path routes identically to the recursive model here.
    let (x, y) = corpus(220, 4, 3);
    // Rescale features into (o, v, nodes, tile)-like ranges.
    let x = Matrix::from_fn(x.nrows(), 4, |i, j| match j {
        0 => (40.0 + x[(i, 0)] * 3.0).round(),
        1 => (260.0 + x[(i, 1)] * 13.0).round(),
        2 => (5.0 + x[(i, 2)] * 9.0).round(),
        _ => (40.0 + x[(i, 3)]).round(),
    });
    let mut gb = GradientBoosting::new(120, 6, 0.1);
    gb.seed = 42;
    gb.fit(&x, &y).unwrap();
    let mut rf = RandomForest::new(40, 10);
    rf.seed = 42;
    rf.fit(&x, &y).unwrap();

    // A dense (nodes, tile) grid at fixed (o, v) — the sweep shape.
    let nodes_grid: Vec<f64> = vec![5.0, 10.0, 20.0, 35.0, 50.0, 80.0, 120.0, 200.0, 400.0, 900.0];
    let tiles_grid: Vec<f64> = (4..=18).map(|k| (k * 10) as f64).collect();
    let mut sweep = Matrix::zeros(0, 4);
    for &n in &nodes_grid {
        for &t in &tiles_grid {
            sweep.push_row(&[116.0, 840.0, n, t]);
        }
    }
    let flat_gb = FlatGbt::compile(&gb);
    let flat_rf = FlatForest::compile(&rf);
    assert_eq!(flat_gb.predict_batch_exact(&sweep), gb.predict(&sweep));
    assert_eq!(flat_rf.predict_batch_exact(&sweep), rf.predict(&sweep));
    assert_close(&flat_gb.predict_batch(&sweep), &gb.predict(&sweep), "gbt sweep");
    assert_close(&flat_rf.predict_batch(&sweep), &rf.predict(&sweep), "rf sweep");
}

#[test]
fn paper_config_model_within_tolerance() {
    // The deployed shape: the 750-estimator paper-config ensemble. The
    // quantized serving path must stay inside QUANT_REL_TOL of the
    // recursive model across a full advisor-style sweep, and the exact
    // path must stay bit-for-bit.
    let (x, y) = corpus(400, 4, 7);
    let x = Matrix::from_fn(x.nrows(), 4, |i, j| match j {
        0 => (40.0 + x[(i, 0)] * 3.0).round(),
        1 => (260.0 + x[(i, 1)] * 13.0).round(),
        2 => (5.0 + x[(i, 2)] * 9.0).round(),
        _ => (40.0 + x[(i, 3)]).round(),
    });
    let mut gb = GradientBoosting::paper_config();
    gb.seed = 42;
    gb.fit(&x, &y).unwrap();
    let flat = FlatGbt::compile(&gb);
    assert_eq!(flat.n_trees(), gb.n_stages());

    let mut sweep = Matrix::zeros(0, 4);
    for nodes in [5.0, 10.0, 20.0, 50.0, 120.0, 400.0, 900.0] {
        for k in 4..=18 {
            sweep.push_row(&[116.0, 840.0, nodes, (k * 10) as f64]);
        }
    }
    let exact = gb.predict(&sweep);
    assert_eq!(flat.predict_batch_exact(&sweep), exact);
    assert_close(&flat.predict_batch(&sweep), &exact, "paper-config quantized");
    // Row path and batch path are bit-identical within the quantized tier.
    let batch = flat.predict_batch(&sweep);
    for (i, &b) in batch.iter().enumerate() {
        assert_eq!(flat.predict_row(sweep.row(i)), b);
    }
}

#[test]
fn compiled_model_survives_persistence_round_trip() {
    // serve loads models from disk via export/from_export; the flat
    // compilation of a round-tripped model must equal the original's.
    let (x, y) = corpus(100, 4, 4);
    let mut gb = GradientBoosting::new(30, 5, 0.1);
    gb.fit(&x, &y).unwrap();
    let (init, lr, d, trees) = gb.export();
    let restored = GradientBoosting::from_export(init, lr, d, &trees);
    let q = queries(120, 4);
    assert_eq!(FlatGbt::compile(&restored).predict_batch_exact(&q), gb.predict(&q));
    // The quantized layouts of original and round-tripped models must
    // agree bit-for-bit too (same nodes in, same quantization out).
    assert_eq!(
        FlatGbt::compile(&restored).predict_batch(&q),
        FlatGbt::compile(&gb).predict_batch(&q)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized shapes and hyper-parameters: exact flat == recursive,
    /// always; quantized flat within QUANT_REL_TOL, always.
    #[test]
    fn prop_flat_matches_recursive(
        n in 20usize..120,
        d in 1usize..6,
        n_estimators in 1usize..30,
        max_depth in 1usize..8,
        seed in 0u64..1000,
    ) {
        let (x, y) = corpus(n, d, seed);
        let q = queries(150, d);

        let mut rf = RandomForest::new(n_estimators, max_depth);
        rf.seed = seed;
        rf.max_features = MaxFeatures::Sqrt;
        rf.fit(&x, &y).unwrap();
        let flat_rf = FlatForest::compile(&rf);
        prop_assert_eq!(flat_rf.predict_batch_exact(&q), rf.predict(&q));
        for (i, (qv, e)) in flat_rf.predict_batch(&q).iter().zip(rf.predict(&q)).enumerate() {
            prop_assert!(
                (qv - e).abs() <= QUANT_REL_TOL * (1.0 + e.abs()),
                "rf row {} quantized {} vs exact {}", i, qv, e
            );
        }

        let mut gb = GradientBoosting::new(n_estimators, max_depth, 0.15);
        gb.seed = seed;
        gb.fit(&x, &y).unwrap();
        let flat_gb = FlatGbt::compile(&gb);
        prop_assert_eq!(flat_gb.predict_batch_exact(&q), gb.predict(&q));
        for (i, (qv, e)) in flat_gb.predict_batch(&q).iter().zip(gb.predict(&q)).enumerate() {
            prop_assert!(
                (qv - e).abs() <= QUANT_REL_TOL * (1.0 + e.abs()),
                "gbt row {} quantized {} vs exact {}", i, qv, e
            );
        }
    }
}
