//! Equivalence battery: flat (struct-of-arrays, iterative, parallel)
//! inference must match the recursive per-tree path **bit-for-bit** —
//! every assertion here is `==` on raw `f64`s, never a tolerance.

use chemcost_linalg::Matrix;
use chemcost_ml::flat::{FlatForest, FlatGbt};
use chemcost_ml::forest::RandomForest;
use chemcost_ml::gradient_boosting::{GbLoss, GradientBoosting};
use chemcost_ml::tree::MaxFeatures;
use chemcost_ml::Regressor;
use proptest::prelude::*;

/// Deterministic pseudo-random training corpus with a nonlinear target.
fn corpus(n: usize, d: usize, salt: u64) -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(n, d, |i, j| {
        let h = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(j as u64)
            .wrapping_mul(1442695040888963407)
            .wrapping_add(salt);
        ((h >> 33) % 10_000) as f64 / 100.0
    });
    let y = (0..n)
        .map(|i| {
            let r = x.row(i);
            (r[0] * 0.11).sin() * 40.0 + r[1 % d] * 0.5 - (r[d - 1] * 0.07).cos() * 9.0
        })
        .collect();
    (x, y)
}

/// Fresh query rows the models never saw during fitting.
fn queries(n: usize, d: usize) -> Matrix {
    corpus(n, d, 0xBEEF).0
}

#[test]
fn forest_equivalence_across_hyperparameters() {
    let (x, y) = corpus(200, 4, 1);
    let q = queries(300, 4);
    for (n_estimators, max_depth, bootstrap, max_features) in [
        (1, 3, true, MaxFeatures::All),
        (25, 6, true, MaxFeatures::Sqrt),
        (40, usize::MAX, true, MaxFeatures::Count(2)),
        (10, 8, false, MaxFeatures::All),
    ] {
        let mut rf = RandomForest::new(n_estimators, max_depth);
        rf.bootstrap = bootstrap;
        rf.max_features = max_features;
        rf.seed = 99;
        rf.fit(&x, &y).unwrap();
        let flat = FlatForest::compile(&rf);
        assert_eq!(flat.predict_batch(&q), rf.predict(&q), "config {n_estimators}/{max_depth}");
        assert_eq!(flat.predict_batch(&x), rf.predict(&x));
    }
}

#[test]
fn gbt_equivalence_across_losses_and_controls() {
    let (x, y) = corpus(180, 3, 2);
    let q = queries(250, 3);
    let configs: Vec<GradientBoosting> = vec![
        GradientBoosting::new(60, 3, 0.1),
        GradientBoosting::new(10, 1, 1.0),
        {
            let mut gb = GradientBoosting::new(50, 4, 0.2);
            gb.loss = GbLoss::AbsoluteError;
            gb
        },
        {
            let mut gb = GradientBoosting::new(50, 4, 0.2);
            gb.loss = GbLoss::Huber { alpha: 0.9 };
            gb
        },
        {
            let mut gb = GradientBoosting::new(80, 3, 0.3);
            gb.subsample = 0.6;
            gb.seed = 5;
            gb
        },
        {
            let mut gb = GradientBoosting::new(400, 3, 0.3);
            gb.n_iter_no_change = Some(5);
            gb.seed = 8;
            gb
        },
    ];
    for mut gb in configs {
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        assert_eq!(flat.predict_batch(&q), gb.predict(&q), "loss {:?}", gb.loss);
        assert_eq!(flat.predict_batch(&x), gb.predict(&x));
        // Single-row path agrees with the batch path and with predict_one.
        for i in (0..q.nrows()).step_by(37) {
            assert_eq!(flat.predict_row(q.row(i)), gb.predict_one(q.row(i)));
        }
    }
}

#[test]
fn equivalence_on_advisor_style_sweep_inputs() {
    // The advisor's candidate matrices hold integer-valued (o, v, nodes,
    // tile) columns of very different magnitudes — exactly the inputs the
    // serving hot path sees.
    let (x, y) = corpus(220, 4, 3);
    // Rescale features into (o, v, nodes, tile)-like ranges.
    let x = Matrix::from_fn(x.nrows(), 4, |i, j| match j {
        0 => (40.0 + x[(i, 0)] * 3.0).round(),
        1 => (260.0 + x[(i, 1)] * 13.0).round(),
        2 => (5.0 + x[(i, 2)] * 9.0).round(),
        _ => (40.0 + x[(i, 3)]).round(),
    });
    let mut gb = GradientBoosting::new(120, 6, 0.1);
    gb.seed = 42;
    gb.fit(&x, &y).unwrap();
    let mut rf = RandomForest::new(40, 10);
    rf.seed = 42;
    rf.fit(&x, &y).unwrap();

    // A dense (nodes, tile) grid at fixed (o, v) — the sweep shape.
    let nodes_grid: Vec<f64> = vec![5.0, 10.0, 20.0, 35.0, 50.0, 80.0, 120.0, 200.0, 400.0, 900.0];
    let tiles_grid: Vec<f64> = (4..=18).map(|k| (k * 10) as f64).collect();
    let mut sweep = Matrix::zeros(0, 4);
    for &n in &nodes_grid {
        for &t in &tiles_grid {
            sweep.push_row(&[116.0, 840.0, n, t]);
        }
    }
    let flat_gb = FlatGbt::compile(&gb);
    let flat_rf = FlatForest::compile(&rf);
    assert_eq!(flat_gb.predict_batch(&sweep), gb.predict(&sweep));
    assert_eq!(flat_rf.predict_batch(&sweep), rf.predict(&sweep));
}

#[test]
fn compiled_model_survives_persistence_round_trip() {
    // serve loads models from disk via export/from_export; the flat
    // compilation of a round-tripped model must equal the original's.
    let (x, y) = corpus(100, 4, 4);
    let mut gb = GradientBoosting::new(30, 5, 0.1);
    gb.fit(&x, &y).unwrap();
    let (init, lr, d, trees) = gb.export();
    let restored = GradientBoosting::from_export(init, lr, d, &trees);
    let q = queries(120, 4);
    assert_eq!(FlatGbt::compile(&restored).predict_batch(&q), gb.predict(&q));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized shapes and hyper-parameters: flat == recursive, always.
    #[test]
    fn prop_flat_matches_recursive(
        n in 20usize..120,
        d in 1usize..6,
        n_estimators in 1usize..30,
        max_depth in 1usize..8,
        seed in 0u64..1000,
    ) {
        let (x, y) = corpus(n, d, seed);
        let q = queries(150, d);

        let mut rf = RandomForest::new(n_estimators, max_depth);
        rf.seed = seed;
        rf.max_features = MaxFeatures::Sqrt;
        rf.fit(&x, &y).unwrap();
        prop_assert_eq!(FlatForest::compile(&rf).predict_batch(&q), rf.predict(&q));

        let mut gb = GradientBoosting::new(n_estimators, max_depth, 0.15);
        gb.seed = seed;
        gb.fit(&x, &y).unwrap();
        prop_assert_eq!(FlatGbt::compile(&gb).predict_batch(&q), gb.predict(&q));
    }
}
