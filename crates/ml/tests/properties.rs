//! Property-based tests for the ML layer: metric identities, scaler
//! round-trips, model sanity on arbitrary data, and decoder robustness.

use chemcost_linalg::Matrix;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::metrics::{mae, mape, mse, r2_score};
use chemcost_ml::persist::{decode_gb, encode_gb};
use chemcost_ml::preprocessing::{StandardScaler, TargetScaler};
use chemcost_ml::tree::DecisionTree;
use chemcost_ml::Regressor;
use proptest::prelude::*;

fn targets(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, len)
}

proptest! {
    #[test]
    fn r2_of_perfect_predictions_is_one(y in targets(2..40)) {
        prop_assume!(chemcost_linalg::vecops::variance(&y) > 1e-9);
        prop_assert!((r2_score(&y, &y) - 1.0).abs() < 1e-12);
        prop_assert_eq!(mae(&y, &y), 0.0);
        prop_assert_eq!(mape(&y, &y), 0.0);
    }

    #[test]
    fn r2_never_exceeds_one(y in targets(2..40), p in targets(2..40)) {
        let n = y.len().min(p.len());
        prop_assume!(chemcost_linalg::vecops::variance(&y[..n]) > 1e-9);
        prop_assert!(r2_score(&y[..n], &p[..n]) <= 1.0 + 1e-12);
    }

    #[test]
    fn mae_bounded_by_rmse(y in targets(2..40), p in targets(2..40)) {
        // Jensen: MAE ≤ RMSE always.
        let n = y.len().min(p.len());
        let (y, p) = (&y[..n], &p[..n]);
        prop_assert!(mae(y, p) <= mse(y, p).sqrt() + 1e-9);
    }

    #[test]
    fn mae_scale_equivariant(y in targets(2..30), p in targets(2..30), c in 0.1f64..100.0) {
        let n = y.len().min(p.len());
        let ys: Vec<f64> = y[..n].iter().map(|v| v * c).collect();
        let ps: Vec<f64> = p[..n].iter().map(|v| v * c).collect();
        let lhs = mae(&ys, &ps);
        let rhs = c * mae(&y[..n], &p[..n]);
        prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.max(1.0));
    }

    #[test]
    fn mape_scale_invariant(y in proptest::collection::vec(1.0f64..1e3, 2..30), c in 0.1f64..100.0) {
        let p: Vec<f64> = y.iter().map(|v| v * 1.1).collect();
        let ys: Vec<f64> = y.iter().map(|v| v * c).collect();
        let ps: Vec<f64> = p.iter().map(|v| v * c).collect();
        prop_assert!((mape(&ys, &ps) - mape(&y, &p)).abs() < 1e-9);
    }

    #[test]
    fn scaler_round_trip(rows in 2usize..20, cols in 1usize..6, seed in 0u64..1000) {
        let x = Matrix::from_fn(rows, cols, |i, j| {
            (((i as u64 + 1) * (j as u64 + 3) * (seed + 7)) % 997) as f64 * 0.37 - 100.0
        });
        let s = StandardScaler::fit(&x);
        let back = s.inverse_transform(&s.transform(&x));
        prop_assert!(back.max_abs_diff(&x) < 1e-8);
    }

    #[test]
    fn target_scaler_round_trip(y in targets(2..40)) {
        let s = TargetScaler::fit(&y);
        for (&orig, &scaled) in y.iter().zip(&s.transform(&y)) {
            prop_assert!((s.inverse(scaled) - orig).abs() < 1e-8 * orig.abs().max(1.0));
        }
    }

    #[test]
    fn tree_predictions_stay_in_target_range(
        rows in 5usize..60,
        seed in 0u64..500,
        depth in 1usize..8,
    ) {
        let x = Matrix::from_fn(rows, 2, |i, j| {
            (((i as u64 + 2) * (j as u64 + 5) * (seed + 3)) % 101) as f64
        });
        let y: Vec<f64> = (0..rows)
            .map(|i| ((i as u64 * (seed + 11)) % 211) as f64 - 100.0)
            .collect();
        let mut t = DecisionTree::new(depth);
        t.fit(&x, &y).unwrap();
        let (lo, hi) = y.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        // Probe points beyond the training range too: trees cannot
        // extrapolate outside the observed targets.
        let probe = Matrix::from_fn(20, 2, |i, j| (i as f64 - 10.0) * 40.0 + j as f64);
        for p in t.predict(&probe) {
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn gb_training_error_never_worse_than_mean_baseline(
        rows in 10usize..60,
        seed in 0u64..300,
    ) {
        let x = Matrix::from_fn(rows, 2, |i, j| {
            (((i as u64 + 1) * (j as u64 + 2) * (seed + 13)) % 89) as f64
        });
        let y: Vec<f64> = (0..rows)
            .map(|i| ((i as u64 * (seed + 29)) % 173) as f64 * 0.5)
            .collect();
        let mut gb = GradientBoosting::new(30, 3, 0.2);
        gb.fit(&x, &y).unwrap();
        let pred = gb.predict(&x);
        let mean = chemcost_linalg::vecops::mean(&y);
        let baseline: Vec<f64> = vec![mean; rows];
        prop_assert!(mse(&y, &pred) <= mse(&y, &baseline) + 1e-9);
    }

    #[test]
    fn gb_codec_round_trip_is_lossless(rows in 10usize..40, seed in 0u64..200) {
        let x = Matrix::from_fn(rows, 2, |i, j| (((i + 1) * (j + 3)) as u64 * (seed + 5) % 71) as f64);
        let y: Vec<f64> = (0..rows).map(|i| (i as u64 * (seed + 17) % 131) as f64).collect();
        let mut gb = GradientBoosting::new(15, 3, 0.1);
        gb.fit(&x, &y).unwrap();
        let decoded = decode_gb(&encode_gb(&gb)).unwrap();
        prop_assert_eq!(gb.predict(&x), decoded.predict(&x));
    }

    #[test]
    fn gb_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary bytes must return an error (or, astronomically
        // unlikely, a valid model) — never panic.
        let _ = decode_gb(&bytes);
    }

    #[test]
    fn gb_decoder_never_panics_on_corrupted_valid_model(
        flip_at in 0usize..2000,
        new_byte in any::<u8>(),
    ) {
        let x = Matrix::from_fn(20, 2, |i, j| ((i + 1) * (j + 2)) as f64);
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut gb = GradientBoosting::new(8, 3, 0.2);
        gb.fit(&x, &y).unwrap();
        let mut bytes = encode_gb(&gb).to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] = new_byte;
        // Must not panic; may error or decode (single-byte flips in leaf
        // values still form valid models).
        if let Ok(model) = decode_gb(&bytes) {
            let _ = model.predict(&x);
        }
    }
}
