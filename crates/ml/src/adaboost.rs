//! AdaBoost.R2 regression (paper §3.1, "AB"), after Drucker (1997) /
//! Freund & Schapire.
//!
//! Each stage fits a base tree on a weighted bootstrap of the training set,
//! computes a per-sample loss relative to the worst error, re-weights the
//! samples, and the final prediction is the **weighted median** of the
//! stage predictions — the detail that distinguishes AdaBoost.R2 from
//! averaging ensembles.

use crate::rand_util::weighted_bootstrap_indices;
use crate::traits::{validate_fit_inputs, FitError, Regressor};
use crate::tree::DecisionTree;
use chemcost_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Loss shape applied to normalized per-sample errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaLoss {
    /// `|e| / max|e|`.
    Linear,
    /// `(|e| / max|e|)²`.
    Square,
    /// `1 − exp(−|e| / max|e|)`.
    Exponential,
}

/// AdaBoost.R2 regressor over CART base learners.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    /// Number of boosting stages (upper bound; boosting stops early when a
    /// stage's weighted loss reaches 0.5).
    pub n_estimators: usize,
    /// Depth cap of the base trees.
    pub max_depth: usize,
    /// Loss shape.
    pub loss: AdaLoss,
    /// Learning rate shrinking the weight updates.
    pub learning_rate: f64,
    /// Seed for the weighted bootstraps.
    pub seed: u64,
    estimators: Vec<DecisionTree>,
    /// ln(1/β) weights per estimator.
    log_betas: Vec<f64>,
}

impl AdaBoost {
    /// AdaBoost.R2 with linear loss.
    pub fn new(n_estimators: usize, max_depth: usize) -> Self {
        Self {
            n_estimators,
            max_depth,
            loss: AdaLoss::Linear,
            learning_rate: 1.0,
            seed: 0,
            estimators: Vec::new(),
            log_betas: Vec::new(),
        }
    }

    /// Number of stages actually fitted.
    pub fn n_stages(&self) -> usize {
        self.estimators.len()
    }

    /// Weighted median of stage predictions for one row.
    fn weighted_median_predict(&self, row: &[f64]) -> f64 {
        let preds: Vec<f64> = self.estimators.iter().map(|t| t.predict_one(row)).collect();
        let mut order: Vec<usize> = (0..preds.len()).collect();
        order
            .sort_by(|&a, &b| preds[a].partial_cmp(&preds[b]).unwrap_or(std::cmp::Ordering::Equal));
        let total: f64 = self.log_betas.iter().sum();
        let mut acc = 0.0;
        for &i in &order {
            acc += self.log_betas[i];
            if acc >= 0.5 * total {
                return preds[i];
            }
        }
        *preds.last().expect("at least one estimator")
    }
}

impl Regressor for AdaBoost {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        if self.n_estimators == 0 {
            return Err(FitError::InvalidHyperParameter("n_estimators must be >= 1".into()));
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err(FitError::InvalidHyperParameter("learning_rate must be > 0".into()));
        }
        let n = x.nrows();
        let mut weights = vec![1.0 / n as f64; n];
        self.estimators.clear();
        self.log_betas.clear();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.n_estimators {
            // Weighted bootstrap replicate.
            let idx = weighted_bootstrap_indices(&mut rng, &weights);
            let xb = x.select_rows(&idx);
            let yb: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
            let mut tree = DecisionTree::new(self.max_depth);
            tree.seed = rng.gen();
            tree.fit(&xb, &yb).expect("validated inputs");
            // Losses on the *original* training set.
            let preds = tree.predict(x);
            let abs_err: Vec<f64> = preds.iter().zip(y).map(|(p, t)| (p - t).abs()).collect();
            let max_err = abs_err.iter().cloned().fold(0.0, f64::max);
            if max_err <= 1e-300 {
                // Perfect stage: give it dominant weight and stop.
                self.estimators.push(tree);
                self.log_betas.push(1e6);
                break;
            }
            let losses: Vec<f64> = abs_err
                .iter()
                .map(|e| {
                    let r = e / max_err;
                    match self.loss {
                        AdaLoss::Linear => r,
                        AdaLoss::Square => r * r,
                        AdaLoss::Exponential => 1.0 - (-r).exp(),
                    }
                })
                .collect();
            let avg_loss: f64 = losses.iter().zip(&weights).map(|(l, w)| l * w).sum::<f64>()
                / weights.iter().sum::<f64>();
            if avg_loss >= 0.5 {
                // Worse than random re-weighting — stop as R2 prescribes
                // (keep the stage only if it is the first one).
                if self.estimators.is_empty() {
                    self.estimators.push(tree);
                    self.log_betas.push(1e-6);
                }
                break;
            }
            let beta = avg_loss / (1.0 - avg_loss);
            // Down-weight well-predicted samples.
            for (w, l) in weights.iter_mut().zip(&losses) {
                *w *= beta.powf(self.learning_rate * (1.0 - l));
            }
            let sum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= sum;
            }
            self.estimators.push(tree);
            self.log_betas.push(self.learning_rate * (1.0 / beta).ln());
        }
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.estimators.is_empty(), "AdaBoost::predict before fit");
        (0..x.nrows()).map(|i| self.weighted_median_predict(x.row(i))).collect()
    }

    fn name(&self) -> &'static str {
        "AB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn data(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 2, |i, j| ((i * (j + 2)) % 19) as f64);
        let y = (0..n).map(|i| x[(i, 0)] * 1.5 + (x[(i, 1)] * 0.8).cos() * 4.0).collect();
        (x, y)
    }

    #[test]
    fn fits_reasonably() {
        let (x, y) = data(250);
        let mut ab = AdaBoost::new(50, 6);
        ab.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &ab.predict(&x)) > 0.95, "r2 {}", r2_score(&y, &ab.predict(&x)));
    }

    #[test]
    fn all_loss_shapes_work() {
        let (x, y) = data(120);
        for loss in [AdaLoss::Linear, AdaLoss::Square, AdaLoss::Exponential] {
            let mut ab = AdaBoost::new(20, 5);
            ab.loss = loss;
            ab.fit(&x, &y).unwrap();
            assert!(
                r2_score(&y, &ab.predict(&x)) > 0.8,
                "loss {loss:?} r2 {}",
                r2_score(&y, &ab.predict(&x))
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = data(80);
        let run = |seed| {
            let mut ab = AdaBoost::new(15, 4);
            ab.seed = seed;
            ab.fit(&x, &y).unwrap();
            ab.predict(&x)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn perfect_base_learner_short_circuits() {
        let x = Matrix::from_fn(16, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..16).map(|i| if i < 8 { 0.0 } else { 1.0 }).collect();
        let mut ab = AdaBoost::new(100, 4);
        ab.fit(&x, &y).unwrap();
        assert!(ab.n_stages() < 100);
        assert_eq!(ab.predict(&x), y);
    }

    #[test]
    fn prediction_is_one_of_stage_outputs() {
        // Weighted median selects an actual stage prediction.
        let (x, y) = data(60);
        let mut ab = AdaBoost::new(9, 4);
        ab.fit(&x, &y).unwrap();
        let row = x.row(10);
        let p = ab.predict_one(row);
        let stage_preds: Vec<f64> =
            (0..ab.n_stages()).map(|k| ab.estimators[k].predict_one(row)).collect();
        assert!(stage_preds.iter().any(|s| (s - p).abs() < 1e-12));
    }

    #[test]
    fn rejects_zero_estimators() {
        let (x, y) = data(10);
        let mut ab = AdaBoost::new(0, 3);
        assert!(matches!(ab.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
    }
}
