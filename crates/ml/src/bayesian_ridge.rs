//! Bayesian ridge regression (paper §3.1, "BR").
//!
//! Ridge regression with the two precisions (`alpha` = noise, `lambda` =
//! weight prior) estimated from the data by iterative evidence (type-II
//! maximum likelihood) updates, following Bishop PRML §3.5 / sklearn's
//! `BayesianRidge`.

use crate::preprocessing::StandardScaler;
use crate::traits::{validate_fit_inputs, FitError, Regressor, UncertaintyRegressor};
use chemcost_linalg::{gemm, Matrix, SpdSolver};

/// Bayesian ridge regressor with evidence-maximized regularization.
#[derive(Debug, Clone)]
pub struct BayesianRidge {
    /// Maximum evidence-update iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the weight change.
    pub tol: f64,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    scaler: StandardScaler,
    weights: Vec<f64>,
    intercept: f64,
    /// Noise precision.
    alpha: f64,
    /// Weight precision.
    lambda: f64,
    /// Posterior covariance of the weights (in scaled feature space).
    sigma: Matrix,
}

impl Default for BayesianRidge {
    fn default() -> Self {
        Self::new()
    }
}

impl BayesianRidge {
    /// Defaults matching sklearn (300 iterations, 1e-3 tolerance).
    pub fn new() -> Self {
        Self { max_iter: 300, tol: 1e-3, state: None }
    }

    /// Estimated noise precision (`None` before fit).
    pub fn alpha(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.alpha)
    }

    /// Estimated weight precision (`None` before fit).
    pub fn lambda(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.lambda)
    }

    /// Fitted weights in scaled feature space.
    pub fn weights(&self) -> Option<&[f64]> {
        self.state.as_ref().map(|s| s.weights.as_slice())
    }
}

impl Regressor for BayesianRidge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform(x);
        let n = xs.nrows() as f64;
        let d = xs.ncols();
        let y_mean = chemcost_linalg::vecops::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        let gram = gemm::gram(&xs);
        let xty = xs.transpose().matvec(&yc);

        // Initialize precisions from the data variance, like sklearn.
        let var_y = chemcost_linalg::vecops::variance(&yc).max(1e-12);
        let mut alpha = 1.0 / var_y;
        let mut lambda = 1.0;
        let mut weights = vec![0.0; d];
        let mut sigma = Matrix::identity(d);

        for _ in 0..self.max_iter {
            // Posterior: Σ = (αXᵀX + λI)⁻¹, μ = αΣXᵀy.
            let mut a = gram.clone();
            for v in a.as_mut_slice().iter_mut() {
                *v *= alpha;
            }
            a.add_diagonal(lambda);
            let solver = SpdSolver::factor(&a)
                .map_err(|e| FitError::Numerical(format!("BR posterior: {e}")))?;
            let rhs: Vec<f64> = xty.iter().map(|v| v * alpha).collect();
            let mu = solver.solve(&rhs);
            sigma = solver.cholesky().solve_matrix(&Matrix::identity(d));

            // Effective number of well-determined parameters.
            // gamma = Σⱼ (1 − λ Σⱼⱼ)
            let gamma: f64 = (0..d).map(|j| 1.0 - lambda * sigma[(j, j)]).sum();
            let residual: f64 = (0..xs.nrows())
                .map(|i| {
                    let p = chemcost_linalg::vecops::dot(xs.row(i), &mu);
                    (yc[i] - p) * (yc[i] - p)
                })
                .sum();
            let w_norm: f64 = mu.iter().map(|w| w * w).sum();

            let new_lambda = (gamma.max(1e-12)) / w_norm.max(1e-12);
            let new_alpha = (n - gamma).max(1e-12) / residual.max(1e-12);

            let delta: f64 = weights.iter().zip(&mu).map(|(a, b)| (a - b).abs()).sum();
            weights = mu;
            alpha = new_alpha.clamp(1e-12, 1e12);
            lambda = new_lambda.clamp(1e-12, 1e12);
            if delta < self.tol {
                break;
            }
        }

        self.state = Some(Fitted { scaler, weights, intercept: y_mean, alpha, lambda, sigma });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let st = self.state.as_ref().expect("BayesianRidge::predict before fit");
        let xs = st.scaler.transform(x);
        (0..xs.nrows())
            .map(|i| chemcost_linalg::vecops::dot(xs.row(i), &st.weights) + st.intercept)
            .collect()
    }

    fn name(&self) -> &'static str {
        "BR"
    }
}

impl UncertaintyRegressor for BayesianRidge {
    /// Predictive std from the posterior: `σ²(x) = 1/α + xᵀΣx`.
    fn predict_with_std(&self, x: &Matrix) -> (Vec<f64>, Vec<f64>) {
        let st = self.state.as_ref().expect("BayesianRidge::predict before fit");
        let xs = st.scaler.transform(x);
        let mean = self.predict(x);
        let std = (0..xs.nrows())
            .map(|i| {
                let row = xs.row(i);
                let sx = st.sigma.matvec(row);
                let var = 1.0 / st.alpha + chemcost_linalg::vecops::dot(row, &sx);
                var.max(0.0).sqrt()
            })
            .collect();
        (mean, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn noisy_linear(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 3, |i, j| ((i * (j + 2) + j) % 31) as f64);
        // Deterministic pseudo-noise so the test is stable.
        let y = (0..n)
            .map(|i| {
                let r = x.row(i);
                2.0 * r[0] - 1.0 * r[1] + 0.5 * r[2] + 3.0 + ((i * 2654435761) % 100) as f64 * 0.002
            })
            .collect();
        (x, y)
    }

    #[test]
    fn recovers_linear_relationship() {
        let (x, y) = noisy_linear(100);
        let mut br = BayesianRidge::new();
        br.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &br.predict(&x)) > 0.9999);
    }

    #[test]
    fn estimates_positive_precisions() {
        let (x, y) = noisy_linear(60);
        let mut br = BayesianRidge::new();
        br.fit(&x, &y).unwrap();
        assert!(br.alpha().unwrap() > 0.0);
        assert!(br.lambda().unwrap() > 0.0);
    }

    #[test]
    fn higher_noise_lowers_alpha() {
        let (x, y) = noisy_linear(80);
        let mut quiet = BayesianRidge::new();
        quiet.fit(&x, &y).unwrap();
        // Add large deterministic noise.
        let y_noisy: Vec<f64> =
            y.iter().enumerate().map(|(i, v)| v + ((i * 7919) % 41) as f64 - 20.0).collect();
        let mut loud = BayesianRidge::new();
        loud.fit(&x, &y_noisy).unwrap();
        assert!(
            loud.alpha().unwrap() < quiet.alpha().unwrap(),
            "noise precision should drop with noisier targets"
        );
    }

    #[test]
    fn predictive_std_positive_and_grows_off_distribution() {
        let (x, y) = noisy_linear(60);
        let mut br = BayesianRidge::new();
        br.fit(&x, &y).unwrap();
        let (_, std_in) = br.predict_with_std(&x);
        assert!(std_in.iter().all(|&s| s > 0.0));
        let far = Matrix::from_rows(&[&[1e4, -1e4, 1e4]]);
        let (_, std_far) = br.predict_with_std(&far);
        assert!(std_far[0] > std_in.iter().cloned().fold(0.0, f64::max));
    }

    #[test]
    fn converges_quickly_on_easy_data() {
        let x = Matrix::from_fn(50, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..50).map(|i| 2.0 * i as f64 + 1.0).collect();
        let mut br = BayesianRidge { max_iter: 5, tol: 1e-6, state: None };
        br.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &br.predict(&x)) > 0.999999);
    }
}
