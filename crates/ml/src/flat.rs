//! Flat, struct-of-arrays tree-ensemble inference — the serving hot path.
//!
//! Fitted [`DecisionTree`]s store `enum` nodes in per-tree arenas; walking
//! them means matching an enum and chasing per-tree allocations for every
//! row × tree. That is fine for training-time evaluation but wasteful on
//! the advisor's query path, where one `/v1/advise` request sweeps hundreds
//! of candidate configurations through an ensemble of hundreds of trees.
//!
//! This module compiles a fitted ensemble into two parallel layouts:
//!
//! * an **exact** struct-of-arrays layout (`FlatNodes`): one `Vec` each for
//!   split feature, `f64` threshold, children and leaf value, trees
//!   concatenated and addressed by root offset. Served by
//!   [`FlatForest::predict_batch_exact`] / [`FlatGbt::predict_batch_exact`],
//!   its predictions are **bit-for-bit identical** to the recursive path:
//!   per-row accumulation order over trees, the `<=`-threshold comparison
//!   (including its NaN behaviour) and the scaling operations are exactly
//!   those of [`RandomForest::predict`] and [`GradientBoosting::predict`].
//! * a **quantized** layout (`QNodes`): 16-byte array-of-structs nodes
//!   (`f32` threshold, feature, two child indices) plus a separate `f32`
//!   leaf-value array. This is the default path behind
//!   [`FlatForest::predict_batch`] / [`FlatGbt::predict_batch`]. Nodes
//!   shrink from 28 to 16 bytes on the traversal stream, rows are
//!   converted to `f32` once per batch, and leaves are stored as ordinary
//!   self-loop nodes so the 8-lane interleaved stepper needs no leaf test
//!   at all: it runs a fixed, per-tree-depth count of uniform
//!   load→compare→select steps (bounds checks hoisted to one-time
//!   compile-side validation), giving the core eight independent
//!   dependent-load chains to overlap while a deep ensemble streams
//!   through cache at roughly half the bytes of the exact layout.
//!
//! # Quantization contract
//!
//! Thresholds quantize **toward −∞** (the largest `f32` ≤ the exact `f64`
//! threshold). For any `f32` value `x` this preserves routing exactly:
//! `x ≤ t ⟺ x ≤ quantize(t)`, because an `f32` strictly above the
//! quantized threshold cannot lie at or below the exact one. Feature
//! values are rounded to nearest `f32` once per batch, so for inputs that
//! are exactly representable in `f32` — including the advisor's whole
//! candidate grid of small-integer node/tile/O/V counts — the quantized
//! path visits the *same leaves* as the recursive model and differs only
//! by `f32` rounding of the leaf values themselves (one rounding of
//! ≤ 2⁻²⁴ relative per tree, accumulated in `f64`). That error is bounded
//! well inside [`QUANT_REL_TOL`], which the tolerance battery in
//! `tests/flat_equivalence.rs` asserts on proptest-generated models and on
//! the 750-tree paper-config ensemble. For inputs *not* representable in
//! `f32`, the quantized path computes an exact evaluation of the nearest-
//! `f32` perturbation of the input (a backward-error statement): relative
//! input perturbation ≤ 2⁻²⁴, which only matters for rows engineered to
//! sit within one `f32` ulp of a split threshold.
//!
//! Within the quantized path, batched, blocked-parallel and single-row
//! evaluation remain bit-for-bit identical to each other (same comparison,
//! same `f64` accumulation order over trees), so serve-side batching
//! equivalence tests keep asserting with `==`.
//!
//! Evaluation is **tree-major** everywhere (trees outer, rows inner): a
//! deep ensemble's node arrays are far larger than cache, so walking one
//! tree across all rows before moving to the next keeps its hot nodes
//! resident instead of re-streaming the whole ensemble per row. Large
//! batches additionally parallelise over *trees* — each worker fills leaf
//! values for its run of trees, streamed once in total, and a serial pass
//! reduces each row's leaves in tree order so results are independent of
//! worker count.

use crate::forest::RandomForest;
use crate::gradient_boosting::GradientBoosting;
use crate::traits::{FitError, Regressor};
use crate::tree::{DecisionTree, FlatNode};
use chemcost_linalg::{parallel, Matrix};
use std::cell::RefCell;

/// Sentinel feature index marking a leaf (same encoding as [`FlatNode`]).
const LEAF: u32 = u32::MAX;

/// Below this many rows a batch is predicted serially: spawning scoped
/// threads costs more than walking a few hundred trees for a handful of
/// rows.
const PAR_MIN_ROWS: usize = 64;

/// Rows per block in the parallel batch path; bounds the transient
/// per-tree leaf buffer (`n_trees × ROW_BLOCK × 4` bytes).
const ROW_BLOCK: usize = 1024;

/// Documented relative-error bound of the quantized path against the
/// recursive `f64` model, for feature values representable in `f32`.
///
/// The per-tree error is one `f64 → f32` rounding of the leaf value
/// (≤ 2⁻²⁴ ≈ 6 × 10⁻⁸ relative); accumulation happens in `f64`, so the
/// ensemble error stays far below this bound. The tolerance battery in
/// `tests/flat_equivalence.rs` and the in-bench sanity checks assert
/// `|quantized − exact| ≤ QUANT_REL_TOL · (1 + |exact|)`.
pub const QUANT_REL_TOL: f64 = 1e-5;

/// Largest `f32` less than or equal to `t` (round toward −∞), so that for
/// every `f32` value `x`: `x ≤ t ⟺ x ≤ quantize_threshold(t)`.
fn quantize_threshold(t: f64) -> f32 {
    let q = t as f32; // round to nearest
    if q as f64 <= t {
        q
    } else {
        q.next_down()
    }
}

/// Number of split steps on the longest root-to-leaf path of the tree
/// whose nodes occupy `root..end` of `exact` (0 for a lone-leaf tree).
/// Iterative DFS — recursion depth would otherwise track tree depth.
fn tree_depth(exact: &FlatNodes, root: u32, end: usize) -> u32 {
    let mut max = 0u32;
    let mut stack = vec![(root as usize, 0u32)];
    while let Some((i, d)) = stack.pop() {
        assert!(i < end, "child index escapes its tree");
        if exact.feature[i] == LEAF {
            max = max.max(d);
        } else {
            let [l, r] = exact.children[i];
            stack.push((l as usize, d + 1));
            stack.push((r as usize, d + 1));
        }
    }
    max
}

/// Concatenated struct-of-arrays node storage for a whole ensemble — the
/// exact (`f64`) representation.
///
/// Node `i` of the ensemble lives at position `i` of every array; tree
/// boundaries exist only as entries in `roots`. Leaves carry `LEAF` in
/// `feature` and their prediction in `value`; split nodes carry the
/// feature index, threshold and two absolute child indices.
#[derive(Debug, Clone, Default)]
struct FlatNodes {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    children: Vec<[u32; 2]>,
    value: Vec<f64>,
    roots: Vec<u32>,
}

impl FlatNodes {
    fn with_capacity(trees: usize, nodes: usize) -> Self {
        Self {
            feature: Vec::with_capacity(nodes),
            threshold: Vec::with_capacity(nodes),
            children: Vec::with_capacity(nodes),
            value: Vec::with_capacity(nodes),
            roots: Vec::with_capacity(trees),
        }
    }

    /// Append one tree's exported nodes, rebasing child indices to the
    /// ensemble-wide address space.
    fn push_tree(&mut self, nodes: &[FlatNode]) {
        assert!(!nodes.is_empty(), "cannot flatten an unfitted tree");
        let base = self.feature.len() as u32;
        self.roots.push(base);
        for n in nodes {
            let abs = self.feature.len() as u32;
            self.feature.push(n.feature);
            if n.feature == LEAF {
                // Leaves self-loop behind an always-true comparison so the
                // interleaved traversal can keep stepping a finished row
                // harmlessly while its lane-mates are still descending.
                self.threshold.push(f64::INFINITY);
                self.children.push([abs, abs]);
                self.value.push(n.value);
            } else {
                assert!(
                    (n.left as usize) < nodes.len() && (n.right as usize) < nodes.len(),
                    "child index out of range in flattened tree"
                );
                self.threshold.push(n.threshold);
                self.children.push([base + n.left, base + n.right]);
                self.value.push(0.0);
            }
        }
    }

    /// Largest feature index referenced by any split, plus one.
    fn min_features(&self) -> usize {
        self.feature.iter().filter(|&&f| f != LEAF).map(|&f| f as usize + 1).max().unwrap_or(0)
    }

    /// Walk one tree for one row. Branch-light: the comparison selects a
    /// child slot instead of branching, and the loop exits only at a leaf.
    ///
    /// The comparison is `!(x <= t)` rather than `x > t` so NaN feature
    /// values fall right, exactly as in `DecisionTree::predict_row`.
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN must fall right
    fn leaf_value(&self, root: u32, row: &[f64]) -> f64 {
        let mut i = root as usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.value[i];
            }
            let go_right = !(row[f as usize] <= self.threshold[i]) as usize;
            i = self.children[i][go_right] as usize;
        }
    }

    /// Accumulate `init + Σ weight · tree(row)` over all trees, in tree
    /// order — the exact floating-point sequence of the recursive path.
    #[inline]
    fn score_row(&self, row: &[f64], init: f64, weight: f64) -> f64 {
        let mut acc = init;
        for &root in &self.roots {
            acc += weight * self.leaf_value(root, row);
        }
        acc
    }

    /// Score every row of `x` serially, tree-major, into a fresh vector —
    /// the exact-path batch entry point. (The quantized path owns the
    /// parallel machinery; the exact path exists as a reference and for
    /// callers that need bit-for-bit recursive equality, where throughput
    /// is secondary.)
    fn score_batch(&self, x: &Matrix, init: f64, weight: f64) -> Vec<f64> {
        let mut out = vec![init; x.nrows()];
        for &root in &self.roots {
            for (k, o) in out.iter_mut().enumerate() {
                *o += weight * self.leaf_value(root, x.row(k));
            }
        }
        out
    }
}

/// One quantized tree node: 16 bytes, a single predictable stream for the
/// traversal loop (threshold, feature and both children land on one cache
/// line together instead of three separate array streams).
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct QNode {
    threshold: f32,
    feature: u32,
    children: [u32; 2],
}

/// The quantized ensemble: array-of-structs nodes plus a separate leaf
/// value array (leaf values are only touched once per row × tree, at the
/// end of a descent — keeping them out of [`QNode`] keeps the hot
/// traversal stream dense).
///
/// Quantized leaves are stored as *ordinary* nodes that compare feature 0
/// against `+∞` and route to themselves, so the traversal loop needs no
/// leaf test at all: it steps every lane exactly [`QNodes::depth`] times
/// (the tree's longest root-to-leaf path) and lands on a leaf by
/// construction, with finished rows self-looping harmlessly.
#[derive(Debug, Clone, Default)]
struct QNodes {
    nodes: Vec<QNode>,
    value: Vec<f32>,
    roots: Vec<u32>,
    /// Per tree: the number of split steps on its longest root-to-leaf
    /// path. Walking exactly this many uniform steps from the root is
    /// guaranteed to finish on (or self-loop at) a leaf.
    depth: Vec<u32>,
}

/// Reusable per-thread scratch for the quantized batch path: the `f32`
/// row-major copy of the input and the per-tree leaf buffer. Thread-local
/// so warm steady-state batches allocate nothing.
#[derive(Default)]
struct QScratch {
    rows: Vec<f32>,
    leaves: Vec<f32>,
    row: Vec<f32>,
}

thread_local! {
    static Q_SCRATCH: RefCell<QScratch> = RefCell::new(QScratch::default());
}

impl QNodes {
    /// Quantize the exact layout: thresholds round toward −∞ (see
    /// [`quantize_threshold`]), leaf values round to nearest `f32`.
    /// Leaves become uniform self-loop nodes (`feature 0` vs `+∞`, both
    /// children pointing back at themselves) so the traversal loops never
    /// have to distinguish them, and each tree's maximum descent depth is
    /// recorded so those loops can run a fixed number of steps.
    fn quantize(exact: &FlatNodes) -> Self {
        let nodes = exact
            .feature
            .iter()
            .zip(&exact.threshold)
            .zip(&exact.children)
            .map(|((&feature, &t), &children)| QNode {
                threshold: quantize_threshold(t),
                feature: if feature == LEAF { 0 } else { feature },
                children,
            })
            .collect();
        let value = exact.value.iter().map(|&v| v as f32).collect();
        let depth = (0..exact.roots.len())
            .map(|t| {
                let end = exact.roots.get(t + 1).map_or(exact.feature.len(), |&r| r as usize);
                tree_depth(exact, exact.roots[t], end)
            })
            .collect();
        let q = QNodes { nodes, value, roots: exact.roots.clone(), depth };
        // One-time structural validation backing the unchecked loads in
        // `for_each_leaf`: every root and every child index must land
        // inside the node array (push_tree guarantees this per tree; this
        // re-checks the rebased ensemble-wide indices).
        let len = q.nodes.len();
        assert!(q.value.len() == len, "leaf value array out of sync");
        assert!(q.roots.iter().all(|&r| (r as usize) < len), "root index out of range");
        assert!(
            q.nodes
                .iter()
                .all(|n| (n.children[0] as usize) < len && (n.children[1] as usize) < len),
            "child index out of range"
        );
        q
    }

    /// Walk one tree for one `f32` row; returns the leaf's node index.
    /// Runs exactly `depth` uniform steps — leaves self-loop, so landing
    /// early just spins in place (see [`QNodes`]).
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN must fall right
    fn leaf_index(&self, root: u32, depth: u32, row: &[f32]) -> usize {
        let mut i = root as usize;
        for _ in 0..depth {
            let n = self.nodes[i];
            let go_right = !(row[n.feature as usize] <= n.threshold) as usize;
            i = n.children[go_right] as usize;
        }
        i
    }

    /// Accumulate `init + Σ weight · tree(row)` in tree order, in `f64`.
    #[inline]
    fn score_row(&self, row: &[f32], init: f64, weight: f64) -> f64 {
        let mut acc = init;
        for (&root, &depth) in self.roots.iter().zip(&self.depth) {
            acc += weight * self.value[self.leaf_index(root, depth, row)] as f64;
        }
        acc
    }

    /// Call `sink(k, leaf)` with tree `root`'s leaf value for each row
    /// `start + k`, `k < n`, walking `LANES` rows at a time through the
    /// tree. Tree traversal is a chain of dependent loads; independent
    /// per-lane cursors give the core that many load chains to overlap.
    /// The per-lane step is uniform and branchless — leaves are ordinary
    /// self-loop nodes (see [`QNodes`]) — so the group runs exactly
    /// `depth` lock-step iterations with no leaf test, and rows that
    /// reach a leaf early self-loop until the group finishes.
    ///
    /// The inner loop uses unchecked loads; its indices are covered by
    /// two invariants. (1) Node cursors: each `idx[j]` starts at `root`
    /// and only ever moves to a `children` slot, and [`Self::quantize`]
    /// asserts every root and child index is in range once per compile.
    /// (2) Feature gathers: every stored feature index is below the
    /// ensemble's `min_features` (leaves store feature 0, which a
    /// non-empty split set makes valid; an all-leaf ensemble has
    /// `depth == 0` and never gathers), and the public entry points
    /// assert `ncols ≥ min_features`, so
    /// `base[j] + feature < (start + n) · ncols ≤ rows.len()` — the
    /// debug assertion below re-states that bound.
    #[inline]
    #[allow(clippy::needless_range_loop)] // j indexes lock-step lane arrays
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN must fall right
    #[allow(clippy::too_many_arguments)] // flat args keep the hot call zero-cost
    fn for_each_leaf<F: FnMut(usize, f32)>(
        &self,
        root: u32,
        depth: u32,
        rows: &[f32],
        ncols: usize,
        start: usize,
        n: usize,
        mut sink: F,
    ) {
        const LANES: usize = 8;
        debug_assert!(rows.len() >= (start + n) * ncols);
        let r = root as usize;
        let mut k = 0;
        while k + LANES <= n {
            let base: [usize; LANES] = std::array::from_fn(|j| (start + k + j) * ncols);
            let mut idx = [r; LANES];
            for _ in 0..depth {
                // One fused load→compare→select step per lane, fully
                // unrolled (LANES is const): each lane's chain lives in
                // registers and the eight chains overlap their loads.
                // SAFETY: invariants (1) and (2) in the doc comment —
                // `idx` holds quantize-validated node indices and the
                // gather offset is bounded by the entry-point width check.
                for j in 0..LANES {
                    let n = unsafe { *self.nodes.get_unchecked(idx[j]) };
                    let x = unsafe { *rows.get_unchecked(base[j] + n.feature as usize) };
                    let go_right = !(x <= n.threshold) as usize;
                    idx[j] = n.children[go_right] as usize;
                }
            }
            for j in 0..LANES {
                sink(k + j, self.value[idx[j]]);
            }
            k += LANES;
        }
        while k < n {
            let row = &rows[(start + k) * ncols..(start + k + 1) * ncols];
            sink(k, self.value[self.leaf_index(root, depth, row)]);
            k += 1;
        }
    }

    /// Score rows `offset..offset + out.len()` of the `f32` row-major
    /// buffer into `out`, **tree-major**: the outer loop walks trees, the
    /// inner loop rows, so one tree's nodes stay hot in cache across the
    /// whole chunk. Each row accumulates `init + Σ weight·tree(row)` in
    /// tree order in `f64` — the identical floating-point sequence to
    /// [`Self::score_row`].
    fn score_chunk(
        &self,
        rows: &[f32],
        ncols: usize,
        offset: usize,
        out: &mut [f64],
        init: f64,
        weight: f64,
    ) {
        out.fill(init);
        let n = out.len();
        for (&root, &depth) in self.roots.iter().zip(&self.depth) {
            self.for_each_leaf(root, depth, rows, ncols, offset, n, |k, leaf| {
                out[k] += weight * leaf as f64
            });
        }
    }

    /// Score every row of `x` into `out`, in parallel for large batches.
    ///
    /// The parallel split is over **trees**, not rows: each worker owns a
    /// contiguous run of trees and fills their leaf values for every row
    /// of the block, so the ensemble's node arrays are streamed through
    /// cache once in total instead of once per row chunk. A serial pass
    /// then accumulates each row's leaves in tree order — the identical
    /// floating-point sequence to [`Self::score_row`], so results are
    /// independent of worker count.
    ///
    /// All scratch (the `f32` row conversion, the per-tree leaf buffer)
    /// is thread-local and reused, and `out` is resized in place: a warm
    /// steady-state caller that holds on to `out` allocates nothing here.
    fn score_batch_into(&self, x: &Matrix, init: f64, weight: f64, out: &mut Vec<f64>) {
        let n = x.nrows();
        let ncols = x.ncols();
        out.clear();
        out.resize(n, 0.0);
        Q_SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            s.rows.clear();
            s.rows.reserve(n * ncols);
            for i in 0..n {
                s.rows.extend(x.row(i).iter().map(|&v| v as f32));
            }
            // Small batches — and any batch on a single-core host, where
            // the tree-split buys nothing — take the direct tree-major
            // pass and skip the intermediate leaf buffer entirely. Both
            // paths accumulate each row's leaves in tree order in `f64`,
            // so the choice never changes a result bit.
            if n < PAR_MIN_ROWS || parallel::default_threads() <= 1 {
                self.score_chunk(&s.rows, ncols, 0, out, init, weight);
                return;
            }
            let t = self.roots.len();
            // Row blocking bounds the transient leaf buffer at
            // `t × ROW_BLOCK × 4` bytes regardless of batch size.
            let block = n.min(ROW_BLOCK);
            s.leaves.clear();
            s.leaves.resize(t * block, 0.0);
            for start in (0..n).step_by(block) {
                let rows = block.min(n - start);
                let leaves = &mut s.leaves[..t * rows];
                let xrows: &[f32] = &s.rows;
                parallel::par_chunks_mut(leaves, rows, |offset, chunk| {
                    for (b, tree_leaves) in chunk.chunks_mut(rows).enumerate() {
                        let t = offset / rows + b;
                        let (root, depth) = (self.roots[t], self.depth[t]);
                        self.for_each_leaf(root, depth, xrows, ncols, start, rows, |k, leaf| {
                            tree_leaves[k] = leaf
                        });
                    }
                });
                let out_block = &mut out[start..start + rows];
                out_block.fill(init);
                for tree_leaves in leaves.chunks(rows) {
                    for (o, &l) in out_block.iter_mut().zip(tree_leaves.iter()) {
                        *o += weight * l as f64;
                    }
                }
            }
        });
    }

    /// Score one `f64` row through the quantized ensemble, converting it
    /// into thread-local scratch (allocation-free when warm).
    fn score_row_f64(&self, row: &[f64], init: f64, weight: f64) -> f64 {
        Q_SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            s.row.clear();
            s.row.extend(row.iter().map(|&v| v as f32));
            self.score_row(&s.row, init, weight)
        })
    }
}

/// A fitted [`RandomForest`] compiled for fast batched inference.
///
/// The default [`predict_batch`](FlatForest::predict_batch) runs the
/// quantized `f32` path (see the module docs for the tolerance contract);
/// [`predict_batch_exact`](FlatForest::predict_batch_exact) replays the
/// recursive path bit-for-bit.
///
/// # Example
///
/// ```
/// use chemcost_linalg::Matrix;
/// use chemcost_ml::flat::{FlatForest, QUANT_REL_TOL};
/// use chemcost_ml::forest::RandomForest;
/// use chemcost_ml::Regressor;
///
/// let x = Matrix::from_fn(60, 2, |i, j| ((i * (j + 2)) % 17) as f64);
/// let y: Vec<f64> = (0..60).map(|i| x[(i, 0)] * 3.0 - x[(i, 1)]).collect();
/// let mut rf = RandomForest::new(12, 6);
/// rf.fit(&x, &y).unwrap();
///
/// let flat = FlatForest::compile(&rf);
/// // The exact path is bit-for-bit the recursive model …
/// assert_eq!(flat.predict_batch_exact(&x), rf.predict(&x));
/// // … and the quantized default stays within the documented tolerance.
/// for (q, e) in flat.predict_batch(&x).iter().zip(rf.predict(&x)) {
///     assert!((q - e).abs() <= QUANT_REL_TOL * (1.0 + e.abs()));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FlatForest {
    nodes: FlatNodes,
    qnodes: QNodes,
    /// `x.ncols()` must be at least this for prediction to be meaningful.
    min_features: usize,
}

impl FlatForest {
    /// Compile a fitted forest into the flat layouts.
    ///
    /// # Panics
    /// Panics if the forest has not been fitted.
    pub fn compile(rf: &RandomForest) -> FlatForest {
        assert!(!rf.trees().is_empty(), "FlatForest::compile before fit");
        let total: usize = rf.trees().iter().map(DecisionTree::n_nodes).sum();
        let mut nodes = FlatNodes::with_capacity(rf.trees().len(), total);
        for tree in rf.trees() {
            nodes.push_tree(&tree.export_nodes());
        }
        let min_features = nodes.min_features();
        let qnodes = QNodes::quantize(&nodes);
        FlatForest { nodes, qnodes, min_features }
    }

    /// Number of trees in the compiled ensemble.
    pub fn n_trees(&self) -> usize {
        self.nodes.roots.len()
    }

    /// Total nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.nodes.feature.len()
    }

    /// Predict one row on the quantized path (allocation-free when warm).
    ///
    /// # Panics
    /// Panics if `row` is shorter than the largest feature index used.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(row.len() >= self.min_features, "FlatForest::predict_row: row too short");
        self.qnodes.score_row_f64(row, 0.0, 1.0) / self.n_trees() as f64
    }

    /// Predict every row of `x` on the quantized path, in parallel for
    /// large batches.
    ///
    /// # Panics
    /// Panics if `x` has fewer columns than the largest feature index used.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        assert!(x.ncols() >= self.min_features, "FlatForest::predict_batch: too few columns");
        let k = self.n_trees() as f64;
        let mut out = Vec::new();
        self.qnodes.score_batch_into(x, 0.0, 1.0, &mut out);
        for o in &mut out {
            *o /= k;
        }
        out
    }

    /// Predict one row on the exact `f64` path — bit-for-bit
    /// [`RandomForest::predict`].
    ///
    /// # Panics
    /// Panics if `row` is shorter than the largest feature index used.
    pub fn predict_row_exact(&self, row: &[f64]) -> f64 {
        assert!(row.len() >= self.min_features, "FlatForest::predict_row_exact: row too short");
        self.nodes.score_row(row, 0.0, 1.0) / self.n_trees() as f64
    }

    /// Predict every row of `x` on the exact `f64` path — bit-for-bit
    /// [`RandomForest::predict`].
    ///
    /// # Panics
    /// Panics if `x` has fewer columns than the largest feature index used.
    pub fn predict_batch_exact(&self, x: &Matrix) -> Vec<f64> {
        assert!(x.ncols() >= self.min_features, "FlatForest::predict_batch_exact: too few columns");
        let k = self.n_trees() as f64;
        let mut out = self.nodes.score_batch(x, 0.0, 1.0);
        for o in &mut out {
            *o /= k;
        }
        out
    }
}

impl Regressor for FlatForest {
    /// Compiled models are read-only; refit the source [`RandomForest`]
    /// and re-[`compile`](FlatForest::compile) instead.
    fn fit(&mut self, _x: &Matrix, _y: &[f64]) -> Result<(), FitError> {
        Err(FitError::NotTrainable("FlatForest"))
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_batch(x)
    }

    fn name(&self) -> &'static str {
        "FlatRF"
    }
}

/// A fitted [`GradientBoosting`] ensemble compiled for fast batched
/// inference.
///
/// The default [`predict_batch`](FlatGbt::predict_batch) runs the
/// quantized `f32` path within the module-level tolerance contract;
/// [`predict_batch_exact`](FlatGbt::predict_batch_exact) replays
/// `init + Σ lr · treeᵗ(row)` in stage order — the exact floating-point
/// sequence of [`GradientBoosting::predict`], bit-for-bit.
#[derive(Debug, Clone)]
pub struct FlatGbt {
    nodes: FlatNodes,
    qnodes: QNodes,
    init: f64,
    learning_rate: f64,
    n_features: usize,
}

impl FlatGbt {
    /// Compile a fitted gradient-boosting ensemble into the flat layouts.
    ///
    /// # Panics
    /// Panics if the ensemble has no fitted stages.
    pub fn compile(gb: &GradientBoosting) -> FlatGbt {
        let (init, learning_rate, n_features, trees) = gb.export();
        assert!(!trees.is_empty(), "FlatGbt::compile before fit");
        let total: usize = trees.iter().map(Vec::len).sum();
        let mut nodes = FlatNodes::with_capacity(trees.len(), total);
        for tree in &trees {
            nodes.push_tree(tree);
        }
        let qnodes = QNodes::quantize(&nodes);
        FlatGbt { nodes, qnodes, init, learning_rate, n_features }
    }

    /// Number of boosting stages in the compiled ensemble.
    pub fn n_trees(&self) -> usize {
        self.nodes.roots.len()
    }

    /// Total nodes across all stages.
    pub fn n_nodes(&self) -> usize {
        self.nodes.feature.len()
    }

    /// Number of features the source model was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    fn check_width(&self, ncols: usize, what: &str) {
        if self.n_features > 0 {
            assert_eq!(ncols, self.n_features, "FlatGbt::{what}: feature-count mismatch");
        }
    }

    /// Predict one row on the quantized path (allocation-free when warm).
    ///
    /// # Panics
    /// Panics on feature-count mismatch.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.check_width(row.len(), "predict_row");
        self.qnodes.score_row_f64(row, self.init, self.learning_rate)
    }

    /// Predict every row of `x` on the quantized path, in parallel for
    /// large batches.
    ///
    /// # Panics
    /// Panics on feature-count mismatch.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_batch_into(x, &mut out);
        out
    }

    /// Predict every row of `x` into a caller-owned buffer, resized in
    /// place — the zero-allocation entry point for steady-state serving
    /// (all internal scratch is thread-local and reused).
    ///
    /// # Panics
    /// Panics on feature-count mismatch.
    pub fn predict_batch_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        self.check_width(x.ncols(), "predict_batch");
        self.qnodes.score_batch_into(x, self.init, self.learning_rate, out);
    }

    /// Predict one row on the exact `f64` path — bit-for-bit
    /// [`GradientBoosting::predict`].
    ///
    /// # Panics
    /// Panics on feature-count mismatch.
    pub fn predict_row_exact(&self, row: &[f64]) -> f64 {
        self.check_width(row.len(), "predict_row_exact");
        self.nodes.score_row(row, self.init, self.learning_rate)
    }

    /// Predict every row of `x` on the exact `f64` path — bit-for-bit
    /// [`GradientBoosting::predict`].
    ///
    /// # Panics
    /// Panics on feature-count mismatch.
    pub fn predict_batch_exact(&self, x: &Matrix) -> Vec<f64> {
        self.check_width(x.ncols(), "predict_batch_exact");
        self.nodes.score_batch(x, self.init, self.learning_rate)
    }
}

impl Regressor for FlatGbt {
    /// Compiled models are read-only; refit the source
    /// [`GradientBoosting`] and re-[`compile`](FlatGbt::compile) instead.
    fn fit(&mut self, _x: &Matrix, _y: &[f64]) -> Result<(), FitError> {
        Err(FitError::NotTrainable("FlatGbt"))
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_batch(x)
    }

    fn name(&self) -> &'static str {
        "FlatGB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_data(n: usize) -> (Matrix, Vec<f64>) {
        // Feature values pass through f32 so the quantized path routes
        // rows through exactly the same leaves as the recursive model
        // (see the module-level quantization contract).
        let x =
            Matrix::from_fn(n, 3, |i, j| ((((i * 41 + j * 17) % 59) as f64) / 3.0) as f32 as f64);
        let y = (0..n).map(|i| (x[(i, 0)] * 0.7).sin() * 10.0 + x[(i, 1)] - x[(i, 2)]).collect();
        (x, y)
    }

    fn assert_close(quantized: &[f64], exact: &[f64]) {
        assert_eq!(quantized.len(), exact.len());
        for (i, (q, e)) in quantized.iter().zip(exact).enumerate() {
            assert!(
                (q - e).abs() <= QUANT_REL_TOL * (1.0 + e.abs()),
                "row {i}: quantized {q} vs exact {e} outside QUANT_REL_TOL"
            );
        }
    }

    #[test]
    fn forest_exact_path_matches_recursive_exactly() {
        let (x, y) = training_data(150);
        let mut rf = RandomForest::new(15, 7);
        rf.seed = 11;
        rf.fit(&x, &y).unwrap();
        let flat = FlatForest::compile(&rf);
        assert_eq!(flat.predict_batch_exact(&x), rf.predict(&x));
        assert_eq!(flat.n_trees(), 15);
    }

    #[test]
    fn forest_quantized_path_within_tolerance() {
        let (x, y) = training_data(150);
        let mut rf = RandomForest::new(15, 7);
        rf.seed = 11;
        rf.fit(&x, &y).unwrap();
        let flat = FlatForest::compile(&rf);
        assert_close(&flat.predict_batch(&x), &rf.predict(&x));
    }

    #[test]
    fn gbt_exact_path_matches_recursive_exactly() {
        let (x, y) = training_data(120);
        let mut gb = GradientBoosting::new(40, 4, 0.1);
        gb.seed = 7;
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        assert_eq!(flat.predict_batch_exact(&x), gb.predict(&x));
        assert_eq!(flat.n_trees(), gb.n_stages());
        assert_eq!(flat.n_features(), 3);
    }

    #[test]
    fn gbt_quantized_path_within_tolerance() {
        let (x, y) = training_data(120);
        let mut gb = GradientBoosting::new(40, 4, 0.1);
        gb.seed = 7;
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        assert_close(&flat.predict_batch(&x), &gb.predict(&x));
        for i in 0..x.nrows() {
            assert!(
                (flat.predict_row_exact(x.row(i)) - gb.predict(&x)[i]).abs() == 0.0,
                "exact row path must stay bit-for-bit"
            );
        }
    }

    #[test]
    fn single_row_matches_batch() {
        let (x, y) = training_data(90);
        let mut gb = GradientBoosting::new(25, 3, 0.2);
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        let batch = flat.predict_batch(&x);
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(flat.predict_row(x.row(i)), b);
        }
    }

    #[test]
    fn predict_batch_into_reuses_buffer() {
        let (x, y) = training_data(80);
        let mut gb = GradientBoosting::new(10, 3, 0.2);
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        let mut out = Vec::new();
        flat.predict_batch_into(&x, &mut out);
        let first = out.clone();
        let cap = out.capacity();
        flat.predict_batch_into(&x, &mut out);
        assert_eq!(out, first);
        assert_eq!(out.capacity(), cap, "warm call must not reallocate the out buffer");
    }

    #[test]
    fn large_batch_takes_parallel_path() {
        // More rows than PAR_MIN_ROWS so score_batch goes parallel; the
        // result must be identical to the serial per-row quantized path
        // and within tolerance of the recursive model.
        let (x, y) = training_data(PAR_MIN_ROWS * 4);
        let mut rf = RandomForest::new(8, 6);
        rf.fit(&x, &y).unwrap();
        let flat = FlatForest::compile(&rf);
        let batch = flat.predict_batch(&x);
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(flat.predict_row(x.row(i)), b);
        }
        assert_close(&batch, &rf.predict(&x));
        assert_eq!(flat.predict_batch_exact(&x), rf.predict(&x));
    }

    #[test]
    fn quantized_thresholds_round_toward_neg_inf() {
        for t in [0.1, -0.1, 1.0 / 3.0, 1e300, -1e300, 5.0, f64::INFINITY] {
            let q = quantize_threshold(t);
            assert!(q as f64 <= t, "quantized threshold {q} above exact {t}");
            if q.is_finite() {
                assert!(
                    q.next_up() as f64 > t,
                    "quantized threshold {q} not the largest f32 ≤ {t}"
                );
            }
        }
    }

    #[test]
    fn flat_models_are_not_trainable() {
        let (x, y) = training_data(40);
        let mut gb = GradientBoosting::new(5, 2, 0.5);
        gb.fit(&x, &y).unwrap();
        let mut flat = FlatGbt::compile(&gb);
        assert!(matches!(flat.fit(&x, &y), Err(FitError::NotTrainable(_))));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn compile_unfitted_forest_panics() {
        let _ = FlatForest::compile(&RandomForest::new(5, 3));
    }

    #[test]
    #[should_panic(expected = "feature-count mismatch")]
    fn gbt_batch_rejects_wrong_width() {
        let (x, y) = training_data(40);
        let mut gb = GradientBoosting::new(5, 2, 0.5);
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        let _ = flat.predict_batch(&Matrix::zeros(2, 2));
    }

    #[test]
    fn regressor_impl_routes_through_flat_path() {
        let (x, y) = training_data(60);
        let mut gb = GradientBoosting::new(10, 3, 0.3);
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        let as_regressor: &dyn Regressor = &flat;
        assert_eq!(as_regressor.predict(&x), flat.predict_batch(&x));
        assert_close(&as_regressor.predict(&x), &gb.predict(&x));
        assert_eq!(as_regressor.name(), "FlatGB");
    }
}
