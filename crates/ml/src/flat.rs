//! Flat, struct-of-arrays tree-ensemble inference — the serving hot path.
//!
//! Fitted [`DecisionTree`]s store `enum` nodes in per-tree arenas; walking
//! them means matching an enum and chasing per-tree allocations for every
//! row × tree. That is fine for training-time evaluation but wasteful on
//! the advisor's query path, where one `/v1/advise` request sweeps hundreds
//! of candidate configurations through an ensemble of hundreds of trees.
//!
//! This module compiles a fitted ensemble into a single contiguous
//! struct-of-arrays layout (`FlatNodes` inside [`FlatForest`] /
//! [`FlatGbt`]): one `Vec` each for split feature, threshold, children and
//! leaf value, with all trees concatenated and addressed by root offset.
//! Traversal is a tight iterative loop — no enum match, no recursion, one
//! predictable memory stream — and [`FlatForest::predict_batch`] /
//! [`FlatGbt::predict_batch`] evaluate all rows × all trees in parallel
//! over the [`chemcost_linalg::parallel`] worker pool. Evaluation is
//! **tree-major** everywhere (trees outer, rows inner): a deep ensemble's
//! node arrays are far larger than cache, so walking one tree across all
//! rows before moving to the next keeps its hot nodes resident instead of
//! re-streaming the whole ensemble per row. Large batches additionally
//! parallelise over *trees* — each worker fills leaf values for its run
//! of trees, streamed once in total, and a serial pass reduces each row's
//! leaves in tree order so results stay bit-identical.
//!
//! Predictions are **bit-for-bit identical** to the recursive path: the
//! per-row accumulation order over trees, the `<=`-threshold comparison
//! (including its NaN behaviour) and the scaling operations are exactly
//! those of [`RandomForest::predict`] and [`GradientBoosting::predict`].
//! The equivalence battery in `tests/flat_equivalence.rs` asserts this
//! with `==` on the raw `f64`s.

use crate::forest::RandomForest;
use crate::gradient_boosting::GradientBoosting;
use crate::traits::{FitError, Regressor};
use crate::tree::{DecisionTree, FlatNode};
use chemcost_linalg::{parallel, Matrix};

/// Sentinel feature index marking a leaf (same encoding as [`FlatNode`]).
const LEAF: u32 = u32::MAX;

/// Below this many rows a batch is predicted serially: spawning scoped
/// threads costs more than walking a few hundred trees for a handful of
/// rows.
const PAR_MIN_ROWS: usize = 64;

/// Rows per block in the parallel batch path; bounds the transient
/// per-tree leaf buffer (`n_trees × ROW_BLOCK × 8` bytes).
const ROW_BLOCK: usize = 1024;

/// Concatenated struct-of-arrays node storage for a whole ensemble.
///
/// Node `i` of the ensemble lives at position `i` of every array; tree
/// boundaries exist only as entries in `roots`. Leaves carry `LEAF` in
/// `feature` and their prediction in `value`; split nodes carry the
/// feature index, threshold and two absolute child indices.
#[derive(Debug, Clone, Default)]
struct FlatNodes {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    children: Vec<[u32; 2]>,
    value: Vec<f64>,
    roots: Vec<u32>,
}

impl FlatNodes {
    fn with_capacity(trees: usize, nodes: usize) -> Self {
        Self {
            feature: Vec::with_capacity(nodes),
            threshold: Vec::with_capacity(nodes),
            children: Vec::with_capacity(nodes),
            value: Vec::with_capacity(nodes),
            roots: Vec::with_capacity(trees),
        }
    }

    /// Append one tree's exported nodes, rebasing child indices to the
    /// ensemble-wide address space.
    fn push_tree(&mut self, nodes: &[FlatNode]) {
        assert!(!nodes.is_empty(), "cannot flatten an unfitted tree");
        let base = self.feature.len() as u32;
        self.roots.push(base);
        for n in nodes {
            let abs = self.feature.len() as u32;
            self.feature.push(n.feature);
            if n.feature == LEAF {
                // Leaves self-loop behind an always-true comparison so the
                // interleaved traversal can keep stepping a finished row
                // harmlessly while its lane-mates are still descending.
                self.threshold.push(f64::INFINITY);
                self.children.push([abs, abs]);
                self.value.push(n.value);
            } else {
                assert!(
                    (n.left as usize) < nodes.len() && (n.right as usize) < nodes.len(),
                    "child index out of range in flattened tree"
                );
                self.threshold.push(n.threshold);
                self.children.push([base + n.left, base + n.right]);
                self.value.push(0.0);
            }
        }
    }

    /// Largest feature index referenced by any split, plus one.
    fn min_features(&self) -> usize {
        self.feature.iter().filter(|&&f| f != LEAF).map(|&f| f as usize + 1).max().unwrap_or(0)
    }

    /// Walk one tree for one row. Branch-light: the comparison selects a
    /// child slot instead of branching, and the loop exits only at a leaf.
    ///
    /// The comparison is `!(x <= t)` rather than `x > t` so NaN feature
    /// values fall right, exactly as in `DecisionTree::predict_row`.
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN must fall right
    fn leaf_value(&self, root: u32, row: &[f64]) -> f64 {
        let mut i = root as usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.value[i];
            }
            let go_right = !(row[f as usize] <= self.threshold[i]) as usize;
            i = self.children[i][go_right] as usize;
        }
    }

    /// Accumulate `init + Σ weight · tree(row)` over all trees, in tree
    /// order — the exact floating-point sequence of the recursive path.
    #[inline]
    fn score_row(&self, row: &[f64], init: f64, weight: f64) -> f64 {
        let mut acc = init;
        for &root in &self.roots {
            acc += weight * self.leaf_value(root, row);
        }
        acc
    }

    /// One traversal step for the interleaved path. `f` is node `i`'s
    /// already-loaded feature; leaves (encoded with an always-true
    /// comparison and self-pointing children) step to themselves, so this
    /// is safe to apply to a row that already reached its leaf.
    #[inline(always)]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: NaN must fall right
    fn step(&self, f: u32, i: usize, row: &[f64]) -> usize {
        let fi = if f == LEAF { 0 } else { f as usize };
        let go_right = !(row[fi] <= self.threshold[i]) as usize;
        self.children[i][go_right] as usize
    }

    /// Call `sink(k, leaf)` with tree `root`'s leaf value for each row
    /// `start + k`, `k < n`, walking `LANES` rows at a time through the
    /// tree. Tree traversal is a chain of dependent loads; independent
    /// per-lane cursors give the core that many load chains to overlap,
    /// which is worth ~2× even single-threaded. Rows that reach a leaf
    /// early self-loop until the slowest lane finishes.
    #[inline]
    #[allow(clippy::needless_range_loop)] // j indexes three lock-step lane arrays
    fn for_each_leaf<F: FnMut(usize, f64)>(
        &self,
        root: u32,
        x: &Matrix,
        start: usize,
        n: usize,
        mut sink: F,
    ) {
        const LANES: usize = 8;
        let r = root as usize;
        let mut k = 0;
        while k + LANES <= n {
            let rows: [&[f64]; LANES] = std::array::from_fn(|j| x.row(start + k + j));
            let mut idx = [r; LANES];
            loop {
                let fs: [u32; LANES] = std::array::from_fn(|j| self.feature[idx[j]]);
                // AND only clears bits, so the fold is LEAF exactly when
                // every lane sits on a leaf.
                if fs.iter().fold(LEAF, |acc, &f| acc & f) == LEAF {
                    break;
                }
                for j in 0..LANES {
                    idx[j] = self.step(fs[j], idx[j], rows[j]);
                }
            }
            for j in 0..LANES {
                sink(k + j, self.value[idx[j]]);
            }
            k += LANES;
        }
        while k < n {
            sink(k, self.leaf_value(root, x.row(start + k)));
            k += 1;
        }
    }

    /// Score rows `offset..offset + out.len()` of `x` into `out`,
    /// **tree-major**: the outer loop walks trees, the inner loop rows, so
    /// one tree's nodes stay hot in cache across the whole chunk instead
    /// of every row streaming the full ensemble. Each row still
    /// accumulates `init + Σ weight·tree(row)` in tree order — the
    /// identical floating-point sequence to [`Self::score_row`].
    fn score_chunk(&self, x: &Matrix, offset: usize, out: &mut [f64], init: f64, weight: f64) {
        out.fill(init);
        let n = out.len();
        for &root in &self.roots {
            self.for_each_leaf(root, x, offset, n, |k, leaf| out[k] += weight * leaf);
        }
    }

    /// Score every row of `x`, in parallel for large batches.
    ///
    /// The parallel split is over **trees**, not rows: each worker owns a
    /// contiguous run of trees and fills their leaf values for every row
    /// of the block, so the ensemble's node arrays are streamed through
    /// cache once in total instead of once per row chunk (a deep ensemble
    /// is tens of MB; the candidate rows are KB). A serial pass then
    /// accumulates each row's leaves in tree order — the identical
    /// floating-point sequence to [`Self::score_row`], so the parallel
    /// path stays bit-for-bit equivalent.
    fn score_batch(&self, x: &Matrix, init: f64, weight: f64) -> Vec<f64> {
        let n = x.nrows();
        let mut out = vec![0.0; n];
        if n < PAR_MIN_ROWS {
            self.score_chunk(x, 0, &mut out, init, weight);
            return out;
        }
        let t = self.roots.len();
        // Row blocking bounds the transient leaf buffer at
        // `t × ROW_BLOCK × 8` bytes regardless of batch size.
        let block = n.min(ROW_BLOCK);
        let mut leaves = vec![0.0; t * block];
        for start in (0..n).step_by(block) {
            let rows = block.min(n - start);
            let leaves = &mut leaves[..t * rows];
            parallel::par_chunks_mut(leaves, rows, |offset, chunk| {
                for (b, tree_leaves) in chunk.chunks_mut(rows).enumerate() {
                    let root = self.roots[offset / rows + b];
                    self.for_each_leaf(root, x, start, rows, |k, leaf| tree_leaves[k] = leaf);
                }
            });
            let out_block = &mut out[start..start + rows];
            out_block.fill(init);
            for tree_leaves in leaves.chunks(rows) {
                for (o, &l) in out_block.iter_mut().zip(tree_leaves) {
                    *o += weight * l;
                }
            }
        }
        out
    }
}

/// A fitted [`RandomForest`] compiled for fast batched inference.
///
/// Predictions equal `RandomForest::predict` bit-for-bit; see the module
/// docs for why.
///
/// # Example
///
/// ```
/// use chemcost_linalg::Matrix;
/// use chemcost_ml::flat::FlatForest;
/// use chemcost_ml::forest::RandomForest;
/// use chemcost_ml::Regressor;
///
/// let x = Matrix::from_fn(60, 2, |i, j| ((i * (j + 2)) % 17) as f64);
/// let y: Vec<f64> = (0..60).map(|i| x[(i, 0)] * 3.0 - x[(i, 1)]).collect();
/// let mut rf = RandomForest::new(12, 6);
/// rf.fit(&x, &y).unwrap();
///
/// let flat = FlatForest::compile(&rf);
/// assert_eq!(flat.predict_batch(&x), rf.predict(&x)); // exact, not approximate
/// ```
#[derive(Debug, Clone)]
pub struct FlatForest {
    nodes: FlatNodes,
    /// `x.ncols()` must be at least this for prediction to be meaningful.
    min_features: usize,
}

impl FlatForest {
    /// Compile a fitted forest into the flat layout.
    ///
    /// # Panics
    /// Panics if the forest has not been fitted.
    pub fn compile(rf: &RandomForest) -> FlatForest {
        assert!(!rf.trees().is_empty(), "FlatForest::compile before fit");
        let total: usize = rf.trees().iter().map(DecisionTree::n_nodes).sum();
        let mut nodes = FlatNodes::with_capacity(rf.trees().len(), total);
        for tree in rf.trees() {
            nodes.push_tree(&tree.export_nodes());
        }
        let min_features = nodes.min_features();
        FlatForest { nodes, min_features }
    }

    /// Number of trees in the compiled ensemble.
    pub fn n_trees(&self) -> usize {
        self.nodes.roots.len()
    }

    /// Total nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.nodes.feature.len()
    }

    /// Predict one row (iterative, allocation-free).
    ///
    /// # Panics
    /// Panics if `row` is shorter than the largest feature index used.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(row.len() >= self.min_features, "FlatForest::predict_row: row too short");
        self.nodes.score_row(row, 0.0, 1.0) / self.n_trees() as f64
    }

    /// Predict every row of `x`, in parallel for large batches.
    ///
    /// # Panics
    /// Panics if `x` has fewer columns than the largest feature index used.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        assert!(x.ncols() >= self.min_features, "FlatForest::predict_batch: too few columns");
        let k = self.n_trees() as f64;
        let mut out = self.nodes.score_batch(x, 0.0, 1.0);
        for o in &mut out {
            *o /= k;
        }
        out
    }
}

impl Regressor for FlatForest {
    /// Compiled models are read-only; refit the source [`RandomForest`]
    /// and re-[`compile`](FlatForest::compile) instead.
    fn fit(&mut self, _x: &Matrix, _y: &[f64]) -> Result<(), FitError> {
        Err(FitError::NotTrainable("FlatForest"))
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_batch(x)
    }

    fn name(&self) -> &'static str {
        "FlatRF"
    }
}

/// A fitted [`GradientBoosting`] ensemble compiled for fast batched
/// inference.
///
/// Predictions equal `GradientBoosting::predict` bit-for-bit: the flat
/// path replays `init + Σ lr · treeᵗ(row)` in stage order, which is the
/// exact floating-point sequence of the recursive path.
#[derive(Debug, Clone)]
pub struct FlatGbt {
    nodes: FlatNodes,
    init: f64,
    learning_rate: f64,
    n_features: usize,
}

impl FlatGbt {
    /// Compile a fitted gradient-boosting ensemble into the flat layout.
    ///
    /// # Panics
    /// Panics if the ensemble has no fitted stages.
    pub fn compile(gb: &GradientBoosting) -> FlatGbt {
        let (init, learning_rate, n_features, trees) = gb.export();
        assert!(!trees.is_empty(), "FlatGbt::compile before fit");
        let total: usize = trees.iter().map(Vec::len).sum();
        let mut nodes = FlatNodes::with_capacity(trees.len(), total);
        for tree in &trees {
            nodes.push_tree(tree);
        }
        FlatGbt { nodes, init, learning_rate, n_features }
    }

    /// Number of boosting stages in the compiled ensemble.
    pub fn n_trees(&self) -> usize {
        self.nodes.roots.len()
    }

    /// Total nodes across all stages.
    pub fn n_nodes(&self) -> usize {
        self.nodes.feature.len()
    }

    /// Number of features the source model was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Predict one row (iterative, allocation-free).
    ///
    /// # Panics
    /// Panics on feature-count mismatch.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        if self.n_features > 0 {
            assert_eq!(row.len(), self.n_features, "FlatGbt::predict_row: feature-count mismatch");
        }
        self.nodes.score_row(row, self.init, self.learning_rate)
    }

    /// Predict every row of `x`, in parallel for large batches.
    ///
    /// # Panics
    /// Panics on feature-count mismatch.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        if self.n_features > 0 {
            assert_eq!(
                x.ncols(),
                self.n_features,
                "FlatGbt::predict_batch: feature-count mismatch"
            );
        }
        self.nodes.score_batch(x, self.init, self.learning_rate)
    }
}

impl Regressor for FlatGbt {
    /// Compiled models are read-only; refit the source
    /// [`GradientBoosting`] and re-[`compile`](FlatGbt::compile) instead.
    fn fit(&mut self, _x: &Matrix, _y: &[f64]) -> Result<(), FitError> {
        Err(FitError::NotTrainable("FlatGbt"))
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_batch(x)
    }

    fn name(&self) -> &'static str {
        "FlatGB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_data(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 3, |i, j| (((i * 41 + j * 17) % 59) as f64) / 3.0);
        let y = (0..n).map(|i| (x[(i, 0)] * 0.7).sin() * 10.0 + x[(i, 1)] - x[(i, 2)]).collect();
        (x, y)
    }

    #[test]
    fn forest_flat_matches_recursive_exactly() {
        let (x, y) = training_data(150);
        let mut rf = RandomForest::new(15, 7);
        rf.seed = 11;
        rf.fit(&x, &y).unwrap();
        let flat = FlatForest::compile(&rf);
        assert_eq!(flat.predict_batch(&x), rf.predict(&x));
        assert_eq!(flat.n_trees(), 15);
    }

    #[test]
    fn gbt_flat_matches_recursive_exactly() {
        let (x, y) = training_data(120);
        let mut gb = GradientBoosting::new(40, 4, 0.1);
        gb.seed = 7;
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        assert_eq!(flat.predict_batch(&x), gb.predict(&x));
        assert_eq!(flat.n_trees(), gb.n_stages());
        assert_eq!(flat.n_features(), 3);
    }

    #[test]
    fn single_row_matches_batch() {
        let (x, y) = training_data(90);
        let mut gb = GradientBoosting::new(25, 3, 0.2);
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        let batch = flat.predict_batch(&x);
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(flat.predict_row(x.row(i)), b);
        }
    }

    #[test]
    fn large_batch_takes_parallel_path() {
        // More rows than PAR_MIN_ROWS so score_batch goes parallel; the
        // result must be identical to the serial per-row path.
        let (x, y) = training_data(PAR_MIN_ROWS * 4);
        let mut rf = RandomForest::new(8, 6);
        rf.fit(&x, &y).unwrap();
        let flat = FlatForest::compile(&rf);
        let batch = flat.predict_batch(&x);
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(flat.predict_row(x.row(i)), b);
        }
        assert_eq!(batch, rf.predict(&x));
    }

    #[test]
    fn flat_models_are_not_trainable() {
        let (x, y) = training_data(40);
        let mut gb = GradientBoosting::new(5, 2, 0.5);
        gb.fit(&x, &y).unwrap();
        let mut flat = FlatGbt::compile(&gb);
        assert!(matches!(flat.fit(&x, &y), Err(FitError::NotTrainable(_))));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn compile_unfitted_forest_panics() {
        let _ = FlatForest::compile(&RandomForest::new(5, 3));
    }

    #[test]
    #[should_panic(expected = "feature-count mismatch")]
    fn gbt_batch_rejects_wrong_width() {
        let (x, y) = training_data(40);
        let mut gb = GradientBoosting::new(5, 2, 0.5);
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        let _ = flat.predict_batch(&Matrix::zeros(2, 2));
    }

    #[test]
    fn regressor_impl_routes_through_flat_path() {
        let (x, y) = training_data(60);
        let mut gb = GradientBoosting::new(10, 3, 0.3);
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);
        let as_regressor: &dyn Regressor = &flat;
        assert_eq!(as_regressor.predict(&x), gb.predict(&x));
        assert_eq!(as_regressor.name(), "FlatGB");
    }
}
