//! Random forest regression (paper §3.1, "RF"): bagged CART trees with
//! per-node feature subsampling, fitted in parallel.

use crate::rand_util::bootstrap_indices;
use crate::traits::{validate_fit_inputs, FitError, Regressor, UncertaintyRegressor};
use crate::tree::{DecisionTree, MaxFeatures};
use chemcost_linalg::{parallel, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random forest regressor.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_estimators: usize,
    /// Depth cap per tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Per-node feature subsampling.
    pub max_features: MaxFeatures,
    /// Draw bootstrap replicates (true = classic bagging).
    pub bootstrap: bool,
    /// Master seed; per-tree seeds derive from it.
    pub seed: u64,
    /// Worker threads for fitting (0 = all cores).
    pub n_threads: usize,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// A forest with sklearn-ish defaults.
    pub fn new(n_estimators: usize, max_depth: usize) -> Self {
        Self {
            n_estimators,
            max_depth,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            bootstrap: true,
            seed: 0,
            n_threads: 0,
            trees: Vec::new(),
        }
    }

    /// The fitted trees (empty before fit).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    fn threads(&self) -> usize {
        if self.n_threads == 0 {
            parallel::default_threads()
        } else {
            self.n_threads
        }
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        if self.n_estimators == 0 {
            return Err(FitError::InvalidHyperParameter("n_estimators must be >= 1".into()));
        }
        // Derive independent per-tree seeds up front so the fit is
        // deterministic regardless of thread scheduling.
        let mut master = StdRng::seed_from_u64(self.seed);
        let seeds: Vec<u64> = (0..self.n_estimators).map(|_| master.gen()).collect();
        let trees = parallel::par_map_indexed(self.n_estimators, self.threads(), |t| {
            let mut rng = StdRng::seed_from_u64(seeds[t]);
            let mut tree = DecisionTree::new(self.max_depth);
            tree.min_samples_leaf = self.min_samples_leaf;
            tree.max_features = self.max_features;
            tree.seed = seeds[t].wrapping_add(1);
            if self.bootstrap {
                let idx = bootstrap_indices(&mut rng, x.nrows());
                let xb = x.select_rows(&idx);
                let yb: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
                tree.fit(&xb, &yb).expect("validated inputs");
            } else {
                tree.fit(x, y).expect("validated inputs");
            }
            tree
        });
        self.trees = trees;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "RandomForest::predict before fit");
        let mut acc = vec![0.0; x.nrows()];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict(x)) {
                *a += p;
            }
        }
        let k = self.trees.len() as f64;
        for a in &mut acc {
            *a /= k;
        }
        acc
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

impl UncertaintyRegressor for RandomForest {
    /// Mean and standard deviation across the ensemble's per-tree
    /// predictions (a standard cheap uncertainty proxy).
    fn predict_with_std(&self, x: &Matrix) -> (Vec<f64>, Vec<f64>) {
        assert!(!self.trees.is_empty(), "RandomForest::predict_with_std before fit");
        let n = x.nrows();
        let k = self.trees.len();
        let mut sum = vec![0.0; n];
        let mut sum_sq = vec![0.0; n];
        for tree in &self.trees {
            for (i, p) in tree.predict(x).into_iter().enumerate() {
                sum[i] += p;
                sum_sq[i] += p * p;
            }
        }
        let kf = k as f64;
        let mean: Vec<f64> = sum.iter().map(|s| s / kf).collect();
        let std =
            sum_sq.iter().zip(&mean).map(|(sq, m)| (sq / kf - m * m).max(0.0).sqrt()).collect();
        (mean, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn friedmanish(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 3, |i, j| (((i * 73 + j * 31) % 101) as f64) / 100.0);
        let y = (0..n)
            .map(|i| {
                let r = x.row(i);
                10.0 * (std::f64::consts::PI * r[0]).sin()
                    + 20.0 * (r[1] - 0.5).powi(2)
                    + 5.0 * r[2]
            })
            .collect();
        (x, y)
    }

    #[test]
    fn fits_nonlinear_data() {
        let (x, y) = friedmanish(300);
        let mut rf = RandomForest::new(50, 8);
        rf.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &rf.predict(&x)) > 0.95);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (x, y) = friedmanish(120);
        let mut a = RandomForest::new(20, 6);
        a.seed = 42;
        a.n_threads = 1;
        a.fit(&x, &y).unwrap();
        let mut b = RandomForest::new(20, 6);
        b.seed = 42;
        b.n_threads = 4;
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = friedmanish(100);
        let mut a = RandomForest::new(10, 6);
        a.seed = 1;
        a.fit(&x, &y).unwrap();
        let mut b = RandomForest::new(10, 6);
        b.seed = 2;
        b.fit(&x, &y).unwrap();
        assert_ne!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn ensemble_smoother_than_single_tree() {
        // With bootstrap on, a forest's training error is worse than a deep
        // single tree's (which interpolates), but test error is better.
        let (x, y) = friedmanish(400);
        let xtrain = x.select_rows(&(0..300).collect::<Vec<_>>());
        let ytrain = &y[..300];
        let xtest = x.select_rows(&(300..400).collect::<Vec<_>>());
        let ytest = &y[300..];

        let mut tree = DecisionTree::new(usize::MAX);
        tree.fit(&xtrain, ytrain).unwrap();
        let mut rf = RandomForest::new(60, usize::MAX);
        rf.seed = 3;
        rf.fit(&xtrain, ytrain).unwrap();

        let tree_r2 = r2_score(ytest, &tree.predict(&xtest));
        let rf_r2 = r2_score(ytest, &rf.predict(&xtest));
        assert!(rf_r2 >= tree_r2 - 0.02, "rf {rf_r2} vs tree {tree_r2}");
    }

    #[test]
    fn uncertainty_nonnegative_and_informative() {
        let (x, y) = friedmanish(200);
        let mut rf = RandomForest::new(30, 4);
        rf.fit(&x, &y).unwrap();
        let (mean, std) = rf.predict_with_std(&x);
        assert_eq!(mean.len(), x.nrows());
        assert!(std.iter().all(|&s| s >= 0.0));
        assert!(std.iter().any(|&s| s > 0.0), "bootstrap trees should disagree somewhere");
        // Mean from predict_with_std must match predict.
        let p = rf.predict(&x);
        for (a, b) in mean.iter().zip(&p) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_zero_estimators() {
        let (x, y) = friedmanish(20);
        let mut rf = RandomForest::new(0, 3);
        assert!(matches!(rf.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
    }

    #[test]
    fn no_bootstrap_all_trees_identical_without_subsampling() {
        let (x, y) = friedmanish(80);
        let mut rf = RandomForest::new(5, 4);
        rf.bootstrap = false;
        rf.fit(&x, &y).unwrap();
        let p0 = rf.trees()[0].predict(&x);
        for t in rf.trees() {
            assert_eq!(t.predict(&x), p0);
        }
    }
}
