//! Incremental model-quality accumulators for production monitoring.
//!
//! The serving layer records every `(predicted, measured)` runtime pair
//! it learns about; this module turns that stream into the numbers a
//! dashboard wants without ever storing more than a bounded window:
//!
//! * [`RollingQuality`] — a sliding window of residuals exposing
//!   windowed MAPE, signed bias, absolute-residual quantiles, and
//!   GP-uncertainty calibration (the fraction of residuals inside the
//!   predicted `±σ` band);
//! * [`PageHinkley`] — the classic Page–Hinkley cumulative-deviation
//!   test over a non-negative error stream (here: absolute percentage
//!   errors), which trips when the stream's level rises by more than a
//!   tolerated drift for long enough — the "this model has gone stale"
//!   signal that kicks off retraining advice.
//!
//! Everything is plain `f64` arithmetic over a `VecDeque`; the caller
//! supplies the locking (one accumulator per served model, behind the
//! serving layer's registry lock).

use std::collections::VecDeque;

/// One prediction/ground-truth pair, plus the model's uncertainty for
/// the prediction when it had one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Residual {
    /// The runtime the model promised, in seconds.
    pub predicted: f64,
    /// The runtime actually measured, in seconds (must be `> 0`).
    pub measured: f64,
    /// The model's 1-σ uncertainty for this prediction, when available.
    pub sigma: Option<f64>,
}

impl Residual {
    /// Signed error in seconds (`predicted − measured`).
    pub fn signed(&self) -> f64 {
        self.predicted - self.measured
    }

    /// Absolute percentage error `|predicted − measured| / measured`.
    pub fn ape(&self) -> f64 {
        (self.predicted - self.measured).abs() / self.measured
    }
}

/// Sliding-window rolling accuracy statistics.
///
/// Keeps the most recent `capacity` residuals; all statistics are over
/// that window, while [`RollingQuality::observations`] counts every pair
/// ever pushed. Windowed statistics of an **empty** window are `NaN`
/// (the Prometheus idiom for "no data yet"), never a misleading `0`.
#[derive(Debug, Clone)]
pub struct RollingQuality {
    window: VecDeque<Residual>,
    capacity: usize,
    total: u64,
}

impl RollingQuality {
    /// A window holding at most `capacity` residuals (minimum 1).
    pub fn new(capacity: usize) -> RollingQuality {
        RollingQuality { window: VecDeque::new(), capacity: capacity.max(1), total: 0 }
    }

    /// Record one pair, evicting the oldest when the window is full.
    /// `measured` must be positive and finite — the caller validates
    /// wire input before it gets here.
    pub fn push(&mut self, predicted: f64, measured: f64, sigma: Option<f64>) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(Residual { predicted, measured, sigma });
        self.total += 1;
    }

    /// Residuals currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Is the window empty?
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Every pair ever pushed (not just the current window).
    pub fn observations(&self) -> u64 {
        self.total
    }

    /// Windowed mean absolute percentage error; `NaN` when empty.
    pub fn mape(&self) -> f64 {
        if self.window.is_empty() {
            return f64::NAN;
        }
        self.window.iter().map(Residual::ape).sum::<f64>() / self.window.len() as f64
    }

    /// Windowed signed bias in seconds, `mean(predicted − measured)`:
    /// positive means the model over-promises runtime. `NaN` when empty.
    pub fn bias_seconds(&self) -> f64 {
        if self.window.is_empty() {
            return f64::NAN;
        }
        self.window.iter().map(Residual::signed).sum::<f64>() / self.window.len() as f64
    }

    /// Nearest-rank `q`-quantile of the windowed **absolute** residuals
    /// in seconds (`q` in `(0, 1]`); `NaN` when empty.
    pub fn residual_quantile(&self, q: f64) -> f64 {
        if self.window.is_empty() {
            return f64::NAN;
        }
        let mut abs: Vec<f64> = self.window.iter().map(|r| r.signed().abs()).collect();
        abs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = (q.clamp(0.0, 1.0) * abs.len() as f64).ceil() as usize;
        abs[rank.max(1) - 1]
    }

    /// Uncertainty calibration: among windowed residuals that carried a
    /// σ, the fraction whose absolute error is within that σ. A
    /// well-calibrated Gaussian lands ≈ 0.68 here; ≈ 1.0 means σ is
    /// too wide, ≈ 0.0 too confident. `NaN` until a σ-carrying
    /// residual arrives.
    pub fn calibration_ratio(&self) -> f64 {
        let with_sigma: Vec<&Residual> = self.window.iter().filter(|r| r.sigma.is_some()).collect();
        if with_sigma.is_empty() {
            return f64::NAN;
        }
        let inside =
            with_sigma.iter().filter(|r| r.signed().abs() <= r.sigma.expect("filtered")).count();
        inside as f64 / with_sigma.len() as f64
    }
}

/// Page–Hinkley test for an upward level shift in a non-negative error
/// stream (Page 1954; the standard drift detector in streaming ML).
///
/// Maintains the cumulative sum of deviations from the running mean,
/// minus a tolerated per-step drift `delta`; when the cumulative sum
/// rises more than `lambda` above its historical minimum, the stream's
/// level has shifted up and the detector trips. After a trip the caller
/// decides what to do (flag the model degraded, propose experiments)
/// and may [`PageHinkley::reset`] to re-arm.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    /// Tolerated drift per observation (shifts smaller than this never trip).
    delta: f64,
    /// Trip threshold on the cumulative deviation.
    lambda: f64,
    /// Minimum observations before the test may trip (warm-up).
    min_n: u64,
    n: u64,
    mean: f64,
    cum: f64,
    cum_min: f64,
}

impl PageHinkley {
    /// A detector with explicit parameters.
    pub fn new(delta: f64, lambda: f64, min_n: u64) -> PageHinkley {
        PageHinkley { delta, lambda, min_n, n: 0, mean: 0.0, cum: 0.0, cum_min: 0.0 }
    }

    /// Defaults tuned for an absolute-percentage-error stream: tolerate
    /// a 0.02 APE level rise, trip once the cumulative excess reaches
    /// 1.0 (e.g. ~4 observations at +0.25 APE), after a 10-observation
    /// warm-up.
    pub fn for_ape_stream() -> PageHinkley {
        PageHinkley::new(0.02, 1.0, 10)
    }

    /// Observations consumed since construction or the last reset.
    pub fn observations(&self) -> u64 {
        self.n
    }

    /// Feed one observation; returns `true` when the detector trips.
    /// Non-finite inputs are ignored (they are wire-validation bugs,
    /// not drift).
    pub fn update(&mut self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        self.n += 1;
        // Running mean first, so the deviation is against the stream's
        // own history including this point (Page's original form).
        self.mean += (x - self.mean) / self.n as f64;
        self.cum += x - self.mean - self.delta;
        self.cum_min = self.cum_min.min(self.cum);
        self.n >= self.min_n && self.cum - self.cum_min > self.lambda
    }

    /// Re-arm after a trip: forget all state.
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cum = 0.0;
        self.cum_min = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_is_nan_not_zero() {
        let q = RollingQuality::new(8);
        assert!(q.mape().is_nan());
        assert!(q.bias_seconds().is_nan());
        assert!(q.residual_quantile(0.5).is_nan());
        assert!(q.calibration_ratio().is_nan());
        assert_eq!(q.observations(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn mape_bias_and_quantiles_match_hand_computation() {
        let mut q = RollingQuality::new(8);
        q.push(110.0, 100.0, None); // ape 0.10, signed +10
        q.push(90.0, 100.0, None); // ape 0.10, signed -10
        q.push(130.0, 100.0, None); // ape 0.30, signed +30
        assert!((q.mape() - (0.1 + 0.1 + 0.3) / 3.0).abs() < 1e-12);
        assert!((q.bias_seconds() - 10.0).abs() < 1e-12);
        // |residuals| sorted: [10, 10, 30]
        assert_eq!(q.residual_quantile(0.5), 10.0);
        assert_eq!(q.residual_quantile(0.99), 30.0);
        assert_eq!(q.residual_quantile(1.0), 30.0);
        assert_eq!(q.len(), 3);
        assert_eq!(q.observations(), 3);
    }

    #[test]
    fn window_slides_and_total_keeps_counting() {
        let mut q = RollingQuality::new(2);
        q.push(200.0, 100.0, None); // ape 1.0 — about to slide out
        q.push(105.0, 100.0, None); // ape 0.05
        q.push(110.0, 100.0, None); // ape 0.10
        assert_eq!(q.len(), 2);
        assert_eq!(q.observations(), 3);
        assert!((q.mape() - 0.075).abs() < 1e-12, "old residual must have slid out");
    }

    #[test]
    fn calibration_counts_only_sigma_residuals() {
        let mut q = RollingQuality::new(8);
        q.push(105.0, 100.0, Some(10.0)); // |err| 5 <= 10: inside
        q.push(130.0, 100.0, Some(10.0)); // |err| 30 > 10: outside
        q.push(500.0, 100.0, None); // no sigma: excluded
        assert!((q.calibration_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn page_hinkley_stays_quiet_on_a_stationary_stream() {
        let mut ph = PageHinkley::for_ape_stream();
        // A healthy APE stream: deterministic wobble around 0.10.
        for i in 0..1000u64 {
            let wobble = ((i as f64 * 0.7).sin() + (i as f64 * 1.3).cos()) * 0.04;
            assert!(!ph.update(0.10 + wobble), "false trip at observation {i}");
        }
        assert_eq!(ph.observations(), 1000);
    }

    #[test]
    fn page_hinkley_trips_quickly_on_a_level_shift() {
        let mut ph = PageHinkley::for_ape_stream();
        for i in 0..200u64 {
            let wobble = ((i as f64 * 0.7).sin()) * 0.04;
            assert!(!ph.update(0.10 + wobble));
        }
        // The model went stale: APE jumps to ~0.45.
        let mut tripped_at = None;
        for i in 0..50u64 {
            if ph.update(0.45 + ((i as f64 * 0.9).cos()) * 0.05) {
                tripped_at = Some(i);
                break;
            }
        }
        let at = tripped_at.expect("a 4.5x error level shift must trip Page-Hinkley");
        assert!(at < 30, "tripped only after {at} drifted observations");
    }

    #[test]
    fn page_hinkley_respects_warm_up_and_reset() {
        let mut ph = PageHinkley::new(0.0, 0.1, 10);
        // A huge shift inside the warm-up window cannot trip...
        for _ in 0..4 {
            assert!(!ph.update(0.0));
        }
        for i in 0..5 {
            assert!(!ph.update(10.0), "inside warm-up at {i}");
        }
        // ...but the very next observation past warm-up can.
        assert!(ph.update(10.0));
        ph.reset();
        assert_eq!(ph.observations(), 0);
        for _ in 0..9 {
            assert!(!ph.update(0.0));
        }
    }

    #[test]
    fn page_hinkley_ignores_non_finite_input() {
        let mut ph = PageHinkley::new(0.0, 0.1, 1);
        assert!(!ph.update(f64::NAN));
        assert!(!ph.update(f64::INFINITY));
        assert_eq!(ph.observations(), 0);
        // The detector still works afterwards.
        ph.update(0.0);
        assert!(ph.update(100.0));
    }
}
