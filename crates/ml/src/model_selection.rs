//! K-fold cross-validation and hyper-parameter search.
//!
//! The paper tunes every model with three strategies from
//! scikit-learn/scikit-optimize — exhaustive grid search, random search,
//! and Bayesian (GP surrogate) search — and reports the achieved metric and
//! the optimization wall time per model (Figures 1–2). This module
//! reimplements all three behind a shared [`Params`]-keyed factory
//! interface so heterogeneous model families can be swept uniformly.
//!
//! Candidate evaluation is embarrassingly parallel and runs on the
//! workspace's dynamic `par_map` scheduler.

use crate::dataset::Dataset;
use crate::gaussian_process::GaussianProcess;
use crate::metrics;
use crate::rand_util::permutation;
use crate::traits::{Regressor, UncertaintyRegressor};
use chemcost_linalg::{parallel, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Instant;

/// A hyper-parameter assignment. All values are `f64`; integer-valued
/// parameters (tree depth, estimator counts) are rounded by the model
/// factories.
pub type Params = BTreeMap<String, f64>;

/// Build a [`Params`] from `(&str, f64)` pairs.
pub fn params(pairs: &[(&str, f64)]) -> Params {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

/// K-fold cross-validation splitter.
#[derive(Debug, Clone, Copy)]
pub struct KFold {
    /// Number of folds (≥ 2).
    pub n_splits: usize,
    /// Shuffle sample order before folding.
    pub shuffle: bool,
    /// Shuffle seed.
    pub seed: u64,
}

impl KFold {
    /// Shuffled K-fold with a fixed seed.
    pub fn new(n_splits: usize) -> Self {
        Self { n_splits, shuffle: true, seed: 0 }
    }

    /// Produce `(train_indices, validation_indices)` pairs covering `0..n`.
    ///
    /// Every sample appears in exactly one validation fold; fold sizes
    /// differ by at most one.
    ///
    /// # Panics
    /// Panics if `n < n_splits` or `n_splits < 2`.
    pub fn splits(&self, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(self.n_splits >= 2, "need at least 2 folds");
        assert!(n >= self.n_splits, "more folds than samples");
        let order: Vec<usize> = if self.shuffle {
            permutation(&mut StdRng::seed_from_u64(self.seed), n)
        } else {
            (0..n).collect()
        };
        let base = n / self.n_splits;
        let extra = n % self.n_splits;
        let mut out = Vec::with_capacity(self.n_splits);
        let mut start = 0;
        for fold in 0..self.n_splits {
            let size = base + usize::from(fold < extra);
            let val: Vec<usize> = order[start..start + size].to_vec();
            let train: Vec<usize> =
                order[..start].iter().chain(&order[start + size..]).copied().collect();
            out.push((train, val));
            start += size;
        }
        out
    }
}

/// Which loss a search minimizes during cross-validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scoring {
    /// Mean squared error (sklearn's effective default ranking).
    #[default]
    Mse,
    /// Mean absolute percentage error — the paper's headline metric;
    /// prefer it when small-runtime configurations matter as much as
    /// large ones.
    Mape,
}

/// Mean validation loss of `factory`-built models across the folds, under
/// the given scoring. Folds where `fit` fails contribute `f64::INFINITY`,
/// so broken hyper-parameter combinations lose the search rather than
/// abort it.
pub fn cross_val_loss<F>(factory: &F, data: &Dataset, cv: &KFold, scoring: Scoring) -> f64
where
    F: Fn() -> Box<dyn Regressor>,
{
    let splits = cv.splits(data.len());
    let mut total = 0.0;
    for (train_idx, val_idx) in &splits {
        let train = data.select(train_idx);
        let val = data.select(val_idx);
        let mut model = factory();
        match model.fit(&train.x, &train.y) {
            Ok(()) => {
                let pred = model.predict(&val.x);
                if pred.iter().all(|p| p.is_finite()) {
                    total += match scoring {
                        Scoring::Mse => metrics::mse(&val.y, &pred),
                        Scoring::Mape => metrics::mape(&val.y, &pred),
                    };
                } else {
                    return f64::INFINITY;
                }
            }
            Err(_) => return f64::INFINITY,
        }
    }
    total / splits.len() as f64
}

/// Mean validation MSE across the folds (see [`cross_val_loss`]).
pub fn cross_val_mse<F>(factory: &F, data: &Dataset, cv: &KFold) -> f64
where
    F: Fn() -> Box<dyn Regressor>,
{
    cross_val_loss(factory, data, cv, Scoring::Mse)
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The hyper-parameters tried.
    pub params: Params,
    /// Mean CV loss under the search's scoring (lower is better;
    /// `INFINITY` = failed fit).
    pub cv_loss: f64,
}

/// Result of a hyper-parameter search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best (lowest CV-loss) parameters found.
    pub best_params: Params,
    /// The winning CV loss.
    pub best_cv_loss: f64,
    /// Every evaluated candidate, in evaluation order.
    pub evaluations: Vec<Evaluation>,
    /// Search wall time in seconds.
    pub wall_seconds: f64,
}

impl SearchResult {
    fn from_evaluations(evaluations: Vec<Evaluation>, started: Instant) -> Self {
        let best = evaluations
            .iter()
            .min_by(|a, b| a.cv_loss.partial_cmp(&b.cv_loss).unwrap_or(std::cmp::Ordering::Equal))
            .expect("at least one candidate");
        Self {
            best_params: best.params.clone(),
            best_cv_loss: best.cv_loss,
            evaluations,
            wall_seconds: started.elapsed().as_secs_f64(),
        }
    }
}

/// Exhaustive grid search over the cartesian product of per-parameter
/// value lists, evaluated in parallel.
pub struct GridSearch {
    /// `(name, candidate values)` axes.
    pub grid: Vec<(String, Vec<f64>)>,
    /// Cross-validation scheme.
    pub cv: KFold,
    /// Loss the search minimizes.
    pub scoring: Scoring,
}

impl GridSearch {
    /// Build from string-keyed axes (MSE scoring).
    pub fn new(grid: Vec<(&str, Vec<f64>)>, cv: KFold) -> Self {
        Self {
            grid: grid.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            cv,
            scoring: Scoring::Mse,
        }
    }

    /// Switch the selection loss.
    pub fn with_scoring(mut self, scoring: Scoring) -> Self {
        self.scoring = scoring;
        self
    }

    /// Enumerate the full cartesian product.
    pub fn candidates(&self) -> Vec<Params> {
        let mut out: Vec<Params> = vec![Params::new()];
        for (name, values) in &self.grid {
            let mut next = Vec::with_capacity(out.len() * values.len());
            for base in &out {
                for &v in values {
                    let mut p = base.clone();
                    p.insert(name.clone(), v);
                    next.push(p);
                }
            }
            out = next;
        }
        out
    }

    /// Run the search: `factory` builds a fresh model from each candidate.
    pub fn search<F>(&self, factory: F, data: &Dataset) -> SearchResult
    where
        F: Fn(&Params) -> Box<dyn Regressor> + Sync,
    {
        let started = Instant::now();
        let cands = self.candidates();
        let cv = self.cv;
        let evals = parallel::par_map(cands.len(), |i| {
            let p = &cands[i];
            let loss = cross_val_loss(&|| factory(p), data, &cv, self.scoring);
            Evaluation { params: p.clone(), cv_loss: loss }
        });
        SearchResult::from_evaluations(evals, started)
    }
}

/// How a random/Bayesian search dimension is sampled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// Uniform on `[lo, hi]`.
    Linear,
    /// Log-uniform on `[lo, hi]` (both must be > 0).
    Log,
    /// Uniform integer in `[lo, hi]` (rounded).
    Integer,
}

/// One search-space dimension.
#[derive(Debug, Clone)]
pub struct Dimension {
    /// Parameter name.
    pub name: String,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Sampling scale.
    pub scale: Scale,
}

impl Dimension {
    /// Construct a dimension.
    pub fn new(name: &str, lo: f64, hi: f64, scale: Scale) -> Self {
        assert!(hi >= lo, "dimension {name}: hi < lo");
        if scale == Scale::Log {
            assert!(lo > 0.0, "log dimension {name} needs lo > 0");
        }
        Self { name: name.to_string(), lo, hi, scale }
    }

    /// Map a unit-interval coordinate to a parameter value.
    pub fn from_unit(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self.scale {
            Scale::Linear => self.lo + (self.hi - self.lo) * u,
            Scale::Log => (self.lo.ln() + (self.hi.ln() - self.lo.ln()) * u).exp(),
            Scale::Integer => (self.lo + (self.hi - self.lo) * u).round(),
        }
    }

    /// Map a parameter value back to the unit interval.
    pub fn to_unit(&self, v: f64) -> f64 {
        let t = match self.scale {
            Scale::Linear | Scale::Integer => (v - self.lo) / (self.hi - self.lo).max(1e-300),
            Scale::Log => (v.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln()).max(1e-300),
        };
        t.clamp(0.0, 1.0)
    }
}

fn sample_params<R: Rng + ?Sized>(space: &[Dimension], rng: &mut R) -> Params {
    space.iter().map(|d| (d.name.clone(), d.from_unit(rng.gen::<f64>()))).collect()
}

/// Random search: `n_iter` independent draws from the space, evaluated in
/// parallel.
pub struct RandomSearch {
    /// Search space.
    pub space: Vec<Dimension>,
    /// Number of candidates to draw.
    pub n_iter: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cross-validation scheme.
    pub cv: KFold,
    /// Loss the search minimizes.
    pub scoring: Scoring,
}

impl RandomSearch {
    /// Run the search.
    pub fn search<F>(&self, factory: F, data: &Dataset) -> SearchResult
    where
        F: Fn(&Params) -> Box<dyn Regressor> + Sync,
    {
        let started = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cands: Vec<Params> =
            (0..self.n_iter.max(1)).map(|_| sample_params(&self.space, &mut rng)).collect();
        let cv = self.cv;
        let evals = parallel::par_map(cands.len(), |i| {
            let p = &cands[i];
            Evaluation {
                params: p.clone(),
                cv_loss: cross_val_loss(&|| factory(p), data, &cv, self.scoring),
            }
        });
        SearchResult::from_evaluations(evals, started)
    }
}

/// Bayesian search (GP surrogate + expected improvement), mirroring
/// scikit-optimize's `BayesSearchCV` at small scale.
///
/// `n_initial` random evaluations seed the surrogate; each subsequent
/// round fits a GP to `(unit-cube params) → log(1 + cv_mse)` and evaluates
/// the EI-maximizing point from a random candidate pool.
pub struct BayesSearch {
    /// Search space.
    pub space: Vec<Dimension>,
    /// Total evaluations (including the initial random ones).
    pub n_iter: usize,
    /// Random seed evaluations before the surrogate kicks in.
    pub n_initial: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cross-validation scheme.
    pub cv: KFold,
    /// Loss the search minimizes.
    pub scoring: Scoring,
}

impl BayesSearch {
    /// Run the search (sequential by nature; each step informs the next).
    pub fn search<F>(&self, factory: F, data: &Dataset) -> SearchResult
    where
        F: Fn(&Params) -> Box<dyn Regressor> + Sync,
    {
        let started = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_initial = self.n_initial.clamp(1, self.n_iter.max(1));
        let mut evals: Vec<Evaluation> = Vec::with_capacity(self.n_iter);
        let mut unit_points: Vec<Vec<f64>> = Vec::with_capacity(self.n_iter);

        let eval_candidate =
            |p: &Params| -> f64 { cross_val_loss(&|| factory(p), data, &self.cv, self.scoring) };

        for _ in 0..n_initial {
            let p = sample_params(&self.space, &mut rng);
            unit_points.push(self.space.iter().map(|d| d.to_unit(p[&d.name])).collect());
            let loss = eval_candidate(&p);
            evals.push(Evaluation { params: p, cv_loss: loss });
        }

        while evals.len() < self.n_iter {
            // Surrogate targets: log1p of finite MSEs; failures get a big
            // but finite penalty so the GP stays well-conditioned.
            let worst = evals
                .iter()
                .filter(|e| e.cv_loss.is_finite())
                .map(|e| e.cv_loss)
                .fold(1.0, f64::max);
            let targets: Vec<f64> = evals
                .iter()
                .map(|e| if e.cv_loss.is_finite() { e.cv_loss } else { worst * 10.0 })
                .map(|m| (1.0 + m).ln())
                .collect();
            let xmat =
                Matrix::from_rows(&unit_points.iter().map(|p| p.as_slice()).collect::<Vec<_>>());
            let mut gp = GaussianProcess::new(1.0, 1e-4);
            let next = if gp.fit(&xmat, &targets).is_ok() {
                // EI over a random candidate pool.
                let best_y = targets.iter().cloned().fold(f64::INFINITY, f64::min);
                let pool: Vec<Vec<f64>> = (0..256)
                    .map(|_| (0..self.space.len()).map(|_| rng.gen::<f64>()).collect())
                    .collect();
                let pool_mat =
                    Matrix::from_rows(&pool.iter().map(|p| p.as_slice()).collect::<Vec<_>>());
                let (mu, sd) = gp.predict_with_std(&pool_mat);
                let mut best_ei = f64::NEG_INFINITY;
                let mut best_idx = 0;
                for i in 0..pool.len() {
                    let ei = expected_improvement(best_y, mu[i], sd[i]);
                    if ei > best_ei {
                        best_ei = ei;
                        best_idx = i;
                    }
                }
                pool[best_idx].clone()
            } else {
                (0..self.space.len()).map(|_| rng.gen::<f64>()).collect()
            };
            let p: Params = self
                .space
                .iter()
                .zip(&next)
                .map(|(d, &u)| (d.name.clone(), d.from_unit(u)))
                .collect();
            unit_points.push(self.space.iter().map(|d| d.to_unit(p[&d.name])).collect());
            let loss = eval_candidate(&p);
            evals.push(Evaluation { params: p, cv_loss: loss });
        }
        SearchResult::from_evaluations(evals, started)
    }
}

/// Expected improvement for *minimization*: `E[max(best − Y, 0)]` for
/// `Y ~ N(mu, sd²)`.
pub fn expected_improvement(best: f64, mu: f64, sd: f64) -> f64 {
    if sd <= 1e-12 {
        return (best - mu).max(0.0);
    }
    let z = (best - mu) / sd;
    (best - mu) * normal_cdf(z) + sd * normal_pdf(z)
}

/// Standard normal density.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7, plenty for acquisition ranking).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Ridge;
    use crate::tree::DecisionTree;

    fn toy_dataset(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 2, |i, j| ((i * (j + 3)) % 13) as f64);
        let y = (0..n).map(|i| 2.0 * x[(i, 0)] + x[(i, 1)] + 1.0).collect();
        Dataset::unnamed(x, y)
    }

    #[test]
    fn kfold_partitions_all_samples() {
        let kf = KFold::new(4);
        let splits = kf.splits(22);
        assert_eq!(splits.len(), 4);
        let mut seen = [0; 22];
        for (train, val) in &splits {
            assert_eq!(train.len() + val.len(), 22);
            for &i in val {
                seen[i] += 1;
            }
            // train and val are disjoint
            for &i in val {
                assert!(!train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each sample in exactly one validation fold");
    }

    #[test]
    fn kfold_sizes_balanced() {
        let kf = KFold { n_splits: 3, shuffle: false, seed: 0 };
        let sizes: Vec<usize> = kf.splits(10).iter().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "more folds than samples")]
    fn kfold_rejects_tiny_data() {
        KFold::new(5).splits(3);
    }

    #[test]
    fn cross_val_low_for_correct_model() {
        let data = toy_dataset(60);
        let mse = cross_val_mse(&|| Box::new(Ridge::new(1e-8)), &data, &KFold::new(5));
        assert!(mse < 1e-6, "linear data should cross-validate perfectly: {mse}");
    }

    #[test]
    fn grid_search_candidate_count() {
        let gs = GridSearch::new(
            vec![("a", vec![1.0, 2.0, 3.0]), ("b", vec![10.0, 20.0])],
            KFold::new(3),
        );
        assert_eq!(gs.candidates().len(), 6);
    }

    #[test]
    fn grid_search_finds_the_good_cell() {
        let data = toy_dataset(60);
        let gs = GridSearch::new(vec![("max_depth", vec![1.0, 8.0])], KFold::new(4));
        let result = gs.search(
            |p| {
                let mut t = DecisionTree::new(p["max_depth"] as usize);
                t.seed = 1;
                Box::new(t)
            },
            &data,
        );
        assert_eq!(result.best_params["max_depth"], 8.0, "deeper tree must win on rich data");
        assert_eq!(result.evaluations.len(), 2);
        assert!(result.wall_seconds >= 0.0);
    }

    #[test]
    fn random_search_respects_bounds() {
        let data = toy_dataset(40);
        let rs = RandomSearch {
            space: vec![Dimension::new("alpha", 1e-6, 1e2, Scale::Log)],
            n_iter: 12,
            seed: 3,
            cv: KFold::new(3),
            scoring: Scoring::Mse,
        };
        let result = rs.search(|p| Box::new(Ridge::new(p["alpha"])) as Box<dyn Regressor>, &data);
        assert_eq!(result.evaluations.len(), 12);
        for e in &result.evaluations {
            let a = e.params["alpha"];
            assert!((1e-6..=1e2).contains(&a));
        }
    }

    #[test]
    fn bayes_search_improves_over_initial() {
        let data = toy_dataset(50);
        let bs = BayesSearch {
            space: vec![Dimension::new("alpha", 1e-8, 1e4, Scale::Log)],
            n_iter: 12,
            n_initial: 4,
            seed: 5,
            cv: KFold::new(3),
            scoring: Scoring::Mse,
        };
        let result = bs.search(|p| Box::new(Ridge::new(p["alpha"])) as Box<dyn Regressor>, &data);
        assert_eq!(result.evaluations.len(), 12);
        // Best must be at least as good as the best of the random phase.
        let init_best =
            result.evaluations[..4].iter().map(|e| e.cv_loss).fold(f64::INFINITY, f64::min);
        assert!(result.best_cv_loss <= init_best);
    }

    #[test]
    fn failed_fits_lose_not_crash() {
        let data = toy_dataset(30);
        let gs = GridSearch::new(vec![("alpha", vec![-1.0, 1.0])], KFold::new(3));
        let result = gs.search(|p| Box::new(Ridge::new(p["alpha"])) as Box<dyn Regressor>, &data);
        // The invalid alpha candidate gets INFINITY, the valid one wins.
        assert_eq!(result.best_params["alpha"], 1.0);
        assert!(result.evaluations.iter().any(|e| e.cv_loss.is_infinite()));
    }

    #[test]
    fn dimension_unit_round_trip() {
        for d in [
            Dimension::new("x", 2.0, 10.0, Scale::Linear),
            Dimension::new("y", 1e-4, 1e2, Scale::Log),
        ] {
            for &u in &[0.0, 0.25, 0.5, 0.75, 1.0] {
                let v = d.from_unit(u);
                assert!((d.to_unit(v) - u).abs() < 1e-9, "{}: {u} -> {v}", d.name);
            }
        }
        let di = Dimension::new("k", 1.0, 9.0, Scale::Integer);
        assert_eq!(di.from_unit(0.5), 5.0);
        assert_eq!(di.from_unit(0.0), 1.0);
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(normal_cdf(5.0) > 0.999999);
        assert!(normal_cdf(-5.0) < 1e-6);
        // Symmetry.
        assert!((normal_cdf(1.3) + normal_cdf(-1.3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn expected_improvement_properties() {
        // No uncertainty: EI is the plain improvement.
        assert_eq!(expected_improvement(1.0, 0.4, 0.0), 0.6);
        assert_eq!(expected_improvement(1.0, 2.0, 0.0), 0.0);
        // More uncertainty at the same mean → more EI.
        assert!(expected_improvement(1.0, 1.0, 1.0) > expected_improvement(1.0, 1.0, 0.1));
        // EI is non-negative.
        assert!(expected_improvement(0.0, 5.0, 2.0) >= 0.0);
    }
}
