//! Gaussian-process regression (paper §3.1, "GP") — the uncertainty source
//! for uncertainty-sampling active learning (Algorithm 1).
//!
//! Standard exact GP: RBF kernel on standardized features, normalized
//! targets, Cholesky of `K + σₙ²I`, posterior mean `k*ᵀ K⁻¹ y` and variance
//! `k** − k*ᵀ K⁻¹ k*`. Optionally tunes `(gamma, noise)` by maximizing the
//! log marginal likelihood over a small grid — cheap, derivative-free, and
//! robust, which matters more here than squeezing the last nat out of the
//! evidence.

use crate::kernel::Kernel;
use crate::preprocessing::{StandardScaler, TargetScaler};
use crate::traits::{validate_fit_inputs, FitError, Regressor, UncertaintyRegressor};
use chemcost_linalg::{Cholesky, Matrix, SpdSolver};

/// Exact Gaussian-process regressor with an RBF kernel.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    /// RBF inverse squared length scale.
    pub gamma: f64,
    /// Observation noise variance added to the kernel diagonal.
    pub noise: f64,
    /// When true, `(gamma, noise)` are refined on a log-grid around the
    /// configured values by marginal likelihood at fit time.
    pub optimize_hyperparams: bool,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    x_train: Matrix,
    alpha: Vec<f64>,
    chol: Cholesky,
    scaler: StandardScaler,
    yscaler: TargetScaler,
    gamma: f64,
    log_marginal_likelihood: f64,
}

impl GaussianProcess {
    /// GP with fixed hyper-parameters.
    pub fn new(gamma: f64, noise: f64) -> Self {
        Self { gamma, noise, optimize_hyperparams: false, state: None }
    }

    /// GP that grid-tunes its hyper-parameters at fit time.
    pub fn tuned() -> Self {
        Self { gamma: 1.0, noise: 1e-4, optimize_hyperparams: true, state: None }
    }

    /// Log marginal likelihood of the fitted model.
    pub fn log_marginal_likelihood(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.log_marginal_likelihood)
    }

    /// The kernel hyper-parameters actually used (after optional tuning).
    pub fn fitted_gamma(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.gamma)
    }

    /// Fit with explicit hyper-parameters; returns the log marginal
    /// likelihood on success.
    fn fit_once(
        xs: &Matrix,
        ys: &[f64],
        gamma: f64,
        noise: f64,
    ) -> Result<(Vec<f64>, Cholesky, f64), FitError> {
        let kernel = Kernel::Rbf { gamma };
        let mut k = kernel.matrix(xs);
        k.add_diagonal(noise.max(1e-10));
        let solver =
            SpdSolver::factor(&k).map_err(|e| FitError::Numerical(format!("GP kernel: {e}")))?;
        let alpha = solver.solve(ys);
        let chol = solver.cholesky().clone();
        let n = ys.len() as f64;
        // log p(y|X) = −½ yᵀα − ½ log|K| − n/2 log 2π
        let fit_term: f64 = ys.iter().zip(&alpha).map(|(y, a)| y * a).sum();
        let lml =
            -0.5 * fit_term - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln();
        Ok((alpha, chol, lml))
    }
}

impl Regressor for GaussianProcess {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        if self.gamma <= 0.0 || self.gamma.is_nan() {
            return Err(FitError::InvalidHyperParameter(format!(
                "gamma must be > 0, got {}",
                self.gamma
            )));
        }
        if self.noise < 0.0 {
            return Err(FitError::InvalidHyperParameter(format!(
                "noise must be >= 0, got {}",
                self.noise
            )));
        }
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform(x);
        let yscaler = TargetScaler::fit(y);
        let ys = yscaler.transform(y);

        let candidates: Vec<(f64, f64)> = if self.optimize_hyperparams {
            let gammas = [0.01, 0.05, 0.1, 0.3, 1.0, 3.0, 10.0];
            let noises = [1e-6, 1e-4, 1e-2, 1e-1];
            gammas.iter().flat_map(|&g| noises.iter().map(move |&n| (g, n))).collect()
        } else {
            vec![(self.gamma, self.noise)]
        };

        let mut best: Option<(f64, f64, Vec<f64>, Cholesky, f64)> = None;
        for (g, nz) in candidates {
            if let Ok((alpha, chol, lml)) = Self::fit_once(&xs, &ys, g, nz) {
                if best.as_ref().is_none_or(|b| lml > b.4) {
                    best = Some((g, nz, alpha, chol, lml));
                }
            }
        }
        let (g, nz, alpha, chol, lml) =
            best.ok_or_else(|| FitError::Numerical("no GP hyper-parameters factored".into()))?;
        self.gamma = g;
        self.noise = nz;
        self.state = Some(Fitted {
            x_train: xs,
            alpha,
            chol,
            scaler,
            yscaler,
            gamma: g,
            log_marginal_likelihood: lml,
        });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_with_std(x).0
    }

    fn name(&self) -> &'static str {
        "GP"
    }
}

impl UncertaintyRegressor for GaussianProcess {
    fn predict_with_std(&self, x: &Matrix) -> (Vec<f64>, Vec<f64>) {
        let st = self.state.as_ref().expect("GaussianProcess::predict before fit");
        let xs = st.scaler.transform(x);
        let kernel = Kernel::Rbf { gamma: st.gamma };
        let kx = kernel.cross_matrix(&xs, &st.x_train); // m × n
        let mean: Vec<f64> =
            kx.matvec(&st.alpha).into_iter().map(|v| st.yscaler.inverse(v)).collect();
        // var(x) = k(x,x) − vᵀv with v = L⁻¹ k*.
        let mut std = Vec::with_capacity(x.nrows());
        for i in 0..x.nrows() {
            let kstar = kx.row(i);
            let v = st.chol.forward_sub(kstar);
            let prior = 1.0; // RBF has unit prior variance
            let var = (prior - v.iter().map(|u| u * u).sum::<f64>()).max(0.0);
            std.push(st.yscaler.inverse_std(var.sqrt()));
        }
        (mean, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn smooth(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 * 10.0 / n as f64);
        let y = (0..n).map(|i| (x[(i, 0)]).sin() * 3.0 + 5.0).collect();
        (x, y)
    }

    #[test]
    fn fits_smooth_function() {
        let (x, y) = smooth(60);
        let mut gp = GaussianProcess::new(1.0, 1e-6);
        gp.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &gp.predict(&x)) > 0.999);
    }

    #[test]
    fn uncertainty_low_at_train_high_far_away() {
        let (x, y) = smooth(30);
        let mut gp = GaussianProcess::new(1.0, 1e-6);
        gp.fit(&x, &y).unwrap();
        let (_, std_train) = gp.predict_with_std(&x);
        // A faraway extrapolation point.
        let far = Matrix::from_rows(&[&[100.0]]);
        let (_, std_far) = gp.predict_with_std(&far);
        let max_train = std_train.iter().cloned().fold(0.0, f64::max);
        assert!(
            std_far[0] > max_train * 5.0,
            "extrapolation std {} should exceed train std {}",
            std_far[0],
            max_train
        );
    }

    #[test]
    fn noise_increases_posterior_std_at_train_points() {
        let (x, y) = smooth(30);
        let mut quiet = GaussianProcess::new(1.0, 1e-8);
        quiet.fit(&x, &y).unwrap();
        let mut noisy = GaussianProcess::new(1.0, 0.5);
        noisy.fit(&x, &y).unwrap();
        let sq = quiet.predict_with_std(&x).1;
        let sn = noisy.predict_with_std(&x).1;
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&sn) > avg(&sq));
    }

    #[test]
    fn tuned_picks_reasonable_hyperparams() {
        let (x, y) = smooth(50);
        let mut gp = GaussianProcess::tuned();
        gp.fit(&x, &y).unwrap();
        assert!(gp.fitted_gamma().is_some());
        assert!(gp.log_marginal_likelihood().unwrap().is_finite());
        assert!(r2_score(&y, &gp.predict(&x)) > 0.99);
    }

    #[test]
    fn tuned_beats_or_matches_bad_fixed_gamma() {
        let (x, y) = smooth(50);
        let mut bad = GaussianProcess::new(1e4, 1e-6); // absurd length scale
        bad.fit(&x, &y).unwrap();
        let mut tuned = GaussianProcess::tuned();
        tuned.fit(&x, &y).unwrap();
        assert!(tuned.log_marginal_likelihood().unwrap() >= bad.log_marginal_likelihood().unwrap());
    }

    #[test]
    fn std_nonnegative_everywhere() {
        let (x, y) = smooth(40);
        let mut gp = GaussianProcess::new(0.5, 1e-4);
        gp.fit(&x, &y).unwrap();
        let probe = Matrix::from_fn(100, 1, |i, _| i as f64 * 0.3 - 10.0);
        let (_, std) = gp.predict_with_std(&probe);
        assert!(std.iter().all(|&s| s >= 0.0 && s.is_finite()));
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let (x, y) = smooth(10);
        let mut gp = GaussianProcess::new(0.0, 1e-4);
        assert!(matches!(gp.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
        let mut gp = GaussianProcess::new(1.0, -1.0);
        assert!(matches!(gp.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
    }
}
