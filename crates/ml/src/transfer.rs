//! Cross-machine transfer learning.
//!
//! The paper's hardest scenario (§3.4) is a *new* supercomputer with
//! little data. Active learning attacks it by choosing measurements well;
//! this module attacks it from the other side: reuse a model trained on a
//! data-rich machine and learn only a small *correction* on the new one.
//!
//! The correction is multiplicative: runtimes across machines differ
//! mostly by throughput ratios (per-GPU rate, counts per node), so the
//! target model is `source(x) · exp(g(x))` with `g` a gradient-boosting
//! model fitted to the **log-ratios** `ln(y_target / source(x))`. With
//! zero target data this degrades gracefully to the source model; with
//! plenty it converges to a fully local model.

use crate::gradient_boosting::GradientBoosting;
use crate::traits::{validate_fit_inputs, FitError, Regressor};
use chemcost_linalg::Matrix;

/// A source model plus a log-space correction for the target machine.
pub struct TransferModel {
    source: Box<dyn Regressor>,
    /// Shape of the correction GB `(n_estimators, max_depth, lr)`. Kept
    /// deliberately small — with tens of target samples a deep correction
    /// would just memorize them.
    pub correction_shape: (usize, usize, f64),
    /// Seed for the correction model.
    pub seed: u64,
    correction: Option<GradientBoosting>,
}

impl TransferModel {
    /// Wrap a *fitted* source model.
    pub fn new(source: Box<dyn Regressor>) -> Self {
        Self { source, correction_shape: (80, 3, 0.1), seed: 0, correction: None }
    }

    /// Predict with the source model only (zero-shot transfer).
    pub fn predict_zero_shot(&self, x: &Matrix) -> Vec<f64> {
        self.source.predict(x)
    }

    /// Whether a correction has been fitted.
    pub fn is_corrected(&self) -> bool {
        self.correction.is_some()
    }
}

impl Regressor for TransferModel {
    /// Fit the correction on target-machine data. The source model is
    /// frozen.
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        let base = self.source.predict(x);
        if y.iter().any(|&v| v <= 0.0) || base.iter().any(|&b| b <= 0.0) {
            return Err(FitError::Numerical(
                "transfer correction needs positive runtimes from data and source".into(),
            ));
        }
        let log_ratio: Vec<f64> = y.iter().zip(&base).map(|(t, b)| (t / b).ln()).collect();
        let (n_est, depth, lr) = self.correction_shape;
        let mut gb = GradientBoosting::new(n_est, depth, lr);
        gb.seed = self.seed;
        gb.fit(x, &log_ratio)?;
        self.correction = Some(gb);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let base = self.source.predict(x);
        match &self.correction {
            None => base,
            Some(gb) => {
                // Clamp the learned log-ratio: a correction model should
                // rescale, not invent orders of magnitude outside its data.
                base.iter().zip(gb.predict(x)).map(|(b, r)| b * r.clamp(-5.0, 5.0).exp()).collect()
            }
        }
    }

    fn name(&self) -> &'static str {
        "TRANSFER"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mape, r2_score};

    /// Source "machine": y = f(x); target: y' = 2.5·f(x)·(1 + small dent).
    /// Features are non-periodic so small target samples cannot cover the
    /// whole surface.
    fn source_data(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 2, |i, j| {
            let u = ((i as u64 * 2654435761 + j as u64 * 40503) % 10007) as f64 / 10007.0;
            1.0 + u * 20.0
        });
        let y = (0..n).map(|i| x[(i, 0)] * 3.0 + x[(i, 1)] * x[(i, 1)] * 0.2 + 5.0).collect();
        (x, y)
    }

    fn target_y(x: &Matrix) -> Vec<f64> {
        (0..x.nrows())
            .map(|i| {
                let base = x[(i, 0)] * 3.0 + x[(i, 1)] * x[(i, 1)] * 0.2 + 5.0;
                // Machine-specific multiplicative shift + a mild regime dent.
                2.5 * base * (1.0 + 0.1 * (x[(i, 0)] * 0.3).sin())
            })
            .collect()
    }

    fn fitted_source() -> Box<dyn Regressor> {
        let (x, y) = source_data(300);
        let mut gb = GradientBoosting::new(200, 4, 0.1);
        gb.fit(&x, &y).unwrap();
        Box::new(gb)
    }

    #[test]
    fn zero_shot_is_biased_corrected_is_not() {
        let (x, _) = source_data(300);
        let yt = target_y(&x);
        let mut tm = TransferModel::new(fitted_source());
        // Zero-shot under-predicts by the machine ratio (~2.5×).
        let zero = tm.predict_zero_shot(&x);
        assert!(mape(&yt, &zero) > 0.5, "zero-shot must show the machine gap");
        // A small amount of target data fixes it.
        let few: Vec<usize> = (0..60).map(|i| i * 5).collect();
        let xs = x.select_rows(&few);
        let ys: Vec<f64> = few.iter().map(|&i| yt[i]).collect();
        tm.fit(&xs, &ys).unwrap();
        assert!(tm.is_corrected());
        let corrected = tm.predict(&x);
        assert!(
            mape(&yt, &corrected) < 0.1,
            "corrected transfer should be accurate: {}",
            mape(&yt, &corrected)
        );
    }

    #[test]
    fn transfer_beats_from_scratch_at_low_data() {
        let (x, _) = source_data(300);
        let yt = target_y(&x);
        // Only 15 target measurements.
        let few: Vec<usize> = (0..15).map(|i| i * 19).collect();
        let xs = x.select_rows(&few);
        let ys: Vec<f64> = few.iter().map(|&i| yt[i]).collect();

        let mut tm = TransferModel::new(fitted_source());
        tm.fit(&xs, &ys).unwrap();
        let mut scratch = GradientBoosting::new(200, 4, 0.1);
        scratch.fit(&xs, &ys).unwrap();

        let tm_r2 = r2_score(&yt, &tm.predict(&x));
        let sc_r2 = r2_score(&yt, &scratch.predict(&x));
        assert!(
            tm_r2 > sc_r2,
            "transfer ({tm_r2:.3}) should beat from-scratch ({sc_r2:.3}) at 25 samples"
        );
    }

    #[test]
    fn unfitted_correction_equals_source() {
        let (x, _) = source_data(50);
        let tm = TransferModel::new(fitted_source());
        assert_eq!(tm.predict(&x), tm.predict_zero_shot(&x));
        assert!(!tm.is_corrected());
    }

    #[test]
    fn rejects_nonpositive_targets() {
        let (x, _) = source_data(20);
        let mut tm = TransferModel::new(fitted_source());
        let bad = vec![0.0; 20];
        assert!(matches!(tm.fit(&x, &bad), Err(FitError::Numerical(_))));
    }

    #[test]
    fn correction_is_clamped() {
        // Absurd targets (1e12× the source) must not explode predictions
        // beyond the e⁵ clamp.
        let (x, y) = source_data(40);
        let huge: Vec<f64> = y.iter().map(|v| v * 1e12).collect();
        let mut tm = TransferModel::new(fitted_source());
        tm.fit(&x, &huge).unwrap();
        let pred = tm.predict(&x);
        let zero = tm.predict_zero_shot(&x);
        for (p, z) in pred.iter().zip(&zero) {
            assert!(p / z <= 5.0f64.exp() + 1e-6);
        }
    }
}
