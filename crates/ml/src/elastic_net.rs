//! Elastic-net regression (l1 + l2 penalized least squares) via cyclic
//! coordinate descent with soft thresholding — Friedman et al.'s glmnet
//! recipe at small scale.
//!
//! An extension beyond the paper's nine families: the l1 term gives sparse
//! weights, which is how a user can ask "which of O, V, nodes, tile
//! actually drives my runtime?" with a linear lens.

use crate::preprocessing::{StandardScaler, TargetScaler};
use crate::traits::{validate_fit_inputs, FitError, Regressor};
use chemcost_linalg::Matrix;

/// Elastic-net: minimizes
/// `½‖y − Xw‖²/n + alpha·(l1_ratio·‖w‖₁ + (1−l1_ratio)/2·‖w‖₂²)`.
#[derive(Debug, Clone)]
pub struct ElasticNet {
    /// Overall penalty strength (≥ 0).
    pub alpha: f64,
    /// Mix between l1 (1.0 = lasso) and l2 (0.0 = ridge).
    pub l1_ratio: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the max coefficient change.
    pub tol: f64,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    scaler: StandardScaler,
    yscaler: TargetScaler,
    /// Weights in scaled feature / scaled target space.
    weights: Vec<f64>,
}

impl ElasticNet {
    /// Elastic-net with the given penalty and mix.
    pub fn new(alpha: f64, l1_ratio: f64) -> Self {
        Self { alpha, l1_ratio, max_iter: 1000, tol: 1e-7, state: None }
    }

    /// Pure lasso.
    pub fn lasso(alpha: f64) -> Self {
        Self::new(alpha, 1.0)
    }

    /// Fitted weights in standardized-feature space (`None` before fit).
    /// Zero entries mark features the l1 penalty eliminated.
    pub fn weights(&self) -> Option<&[f64]> {
        self.state.as_ref().map(|s| s.weights.as_slice())
    }

    /// Number of nonzero coefficients.
    pub fn n_active(&self) -> Option<usize> {
        self.weights().map(|w| w.iter().filter(|v| v.abs() > 1e-12).count())
    }
}

fn soft_threshold(z: f64, t: f64) -> f64 {
    if z > t {
        z - t
    } else if z < -t {
        z + t
    } else {
        0.0
    }
}

impl Regressor for ElasticNet {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        if self.alpha < 0.0 || self.alpha.is_nan() {
            return Err(FitError::InvalidHyperParameter(format!(
                "alpha must be >= 0, got {}",
                self.alpha
            )));
        }
        if !(0.0..=1.0).contains(&self.l1_ratio) {
            return Err(FitError::InvalidHyperParameter(format!(
                "l1_ratio must be in [0, 1], got {}",
                self.l1_ratio
            )));
        }
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform(x);
        let yscaler = TargetScaler::fit(y);
        let ys = yscaler.transform(y);
        let n = xs.nrows() as f64;
        let d = xs.ncols();
        let l1 = self.alpha * self.l1_ratio;
        let l2 = self.alpha * (1.0 - self.l1_ratio);

        // Precompute column norms ‖xⱼ‖²/n (≈1 after standardization, but
        // exact values keep the updates correct for constant columns).
        let mut col_sq = vec![0.0; d];
        for i in 0..xs.nrows() {
            for (j, c) in col_sq.iter_mut().enumerate() {
                *c += xs[(i, j)] * xs[(i, j)];
            }
        }
        for c in &mut col_sq {
            *c /= n;
        }

        let mut w = vec![0.0; d];
        // residual r = y − Xw, maintained incrementally.
        let mut r = ys.clone();
        for _sweep in 0..self.max_iter {
            let mut max_delta = 0.0f64;
            for j in 0..d {
                if col_sq[j] <= 1e-18 {
                    continue; // constant column carries no signal
                }
                // ρ = xⱼᵀ(r + xⱼ wⱼ)/n
                let mut rho = 0.0;
                for i in 0..xs.nrows() {
                    rho += xs[(i, j)] * r[i];
                }
                rho = rho / n + col_sq[j] * w[j];
                let new_w = soft_threshold(rho, l1) / (col_sq[j] + l2);
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for i in 0..xs.nrows() {
                        r[i] -= delta * xs[(i, j)];
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        self.state = Some(Fitted { scaler, yscaler, weights: w });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let st = self.state.as_ref().expect("ElasticNet::predict before fit");
        let xs = st.scaler.transform(x);
        (0..xs.nrows())
            .map(|i| st.yscaler.inverse(chemcost_linalg::vecops::dot(xs.row(i), &st.weights)))
            .collect()
    }

    fn name(&self) -> &'static str {
        "EN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn sparse_linear(n: usize) -> (Matrix, Vec<f64>) {
        // Only features 0 and 3 matter; 1, 2 are noise-ish distractors.
        let x = Matrix::from_fn(n, 4, |i, j| (((i + 1) * (j * j + 3)) % 29) as f64);
        let y = (0..n).map(|i| 3.0 * x[(i, 0)] - 2.0 * x[(i, 3)] + 1.0).collect();
        (x, y)
    }

    #[test]
    fn zero_alpha_recovers_ols_fit() {
        let (x, y) = sparse_linear(80);
        let mut en = ElasticNet::new(0.0, 0.5);
        en.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &en.predict(&x)) > 0.999999);
    }

    #[test]
    fn lasso_zeros_out_irrelevant_features() {
        let (x, y) = sparse_linear(120);
        let mut en = ElasticNet::lasso(0.08);
        en.fit(&x, &y).unwrap();
        let w = en.weights().unwrap();
        assert!(w[0].abs() > 0.1, "relevant feature kept: {w:?}");
        assert!(w[3].abs() > 0.1, "relevant feature kept: {w:?}");
        assert!(en.n_active().unwrap() <= 3, "some shrinkage expected: {w:?}");
        assert!(r2_score(&y, &en.predict(&x)) > 0.95);
    }

    #[test]
    fn huge_alpha_kills_all_weights() {
        let (x, y) = sparse_linear(50);
        let mut en = ElasticNet::lasso(1e6);
        en.fit(&x, &y).unwrap();
        assert_eq!(en.n_active().unwrap(), 0);
        // Prediction degenerates to the target mean.
        let mean = chemcost_linalg::vecops::mean(&y);
        for p in en.predict(&x) {
            assert!((p - mean).abs() < 1e-6);
        }
    }

    #[test]
    fn ridge_limit_keeps_all_weights() {
        let (x, y) = sparse_linear(60);
        let mut en = ElasticNet::new(0.01, 0.0); // pure l2
        en.fit(&x, &y).unwrap();
        assert_eq!(en.n_active().unwrap(), 4, "l2 never zeroes exactly");
    }

    #[test]
    fn soft_threshold_shapes() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let (x, y) = sparse_linear(20);
        let mut en = ElasticNet::new(-1.0, 0.5);
        assert!(matches!(en.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
        let mut en = ElasticNet::new(1.0, 1.5);
        assert!(matches!(en.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
    }
}
