//! Random sampling helpers shared by the stochastic models.

use rand::Rng;

/// One standard-normal variate via Box–Muller (we avoid the `rand_distr`
/// dependency; two uniforms per call is fine at our scales).
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample `n` indices from `0..n` with replacement (a bootstrap replicate).
pub fn bootstrap_indices<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

/// Sample `n` indices from `0..n` with replacement, with probability
/// proportional to `weights` (used by AdaBoost.R2's weighted resampling).
///
/// Uses inverse-CDF sampling over the cumulative weight array; O(n log n).
///
/// # Panics
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn weighted_bootstrap_indices<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "empty weights");
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w.max(0.0);
        cdf.push(acc);
    }
    assert!(acc > 0.0, "weights sum to zero");
    (0..weights.len())
        .map(|_| {
            let t = rng.gen::<f64>() * acc;
            // partition_point returns the first index with cdf > t.
            cdf.partition_point(|&c| c <= t).min(weights.len() - 1)
        })
        .collect()
}

/// Fisher–Yates shuffle of `0..n`.
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Choose `k` distinct indices from `0..n` (partial Fisher–Yates).
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} from {n} without replacement");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn bootstrap_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let idx = bootstrap_indices(&mut rng, 50);
        assert_eq!(idx.len(), 50);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn weighted_bootstrap_respects_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        // Index 2 has 90% of the mass.
        let w = [0.05, 0.05, 0.9];
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            for i in weighted_bootstrap_indices(&mut rng, &w) {
                counts[i] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let frac2 = counts[2] as f64 / total as f64;
        assert!(frac2 > 0.85 && frac2 < 0.95, "index-2 fraction {frac2}");
    }

    #[test]
    fn weighted_bootstrap_zero_weight_never_drawn() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = [0.0, 1.0];
        for _ in 0..100 {
            assert!(weighted_bootstrap_indices(&mut rng, &w).iter().all(|&i| i == 1));
        }
    }

    #[test]
    fn permutation_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = permutation(&mut rng, 100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = sample_without_replacement(&mut rng, 20, 8);
        assert_eq!(s.len(), 8);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn sample_without_replacement_rejects_oversample() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_without_replacement(&mut rng, 3, 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = permutation(&mut StdRng::seed_from_u64(5), 30);
        let b = permutation(&mut StdRng::seed_from_u64(5), 30);
        assert_eq!(a, b);
    }
}
