//! Permutation feature importance.
//!
//! Model-agnostic: shuffle one feature column at a time and measure how
//! much a fitted model's error grows. For the runtime predictor this is
//! the user-facing answer to "which of O, V, nodes, tile actually drives
//! my wall time?" — and a sanity check that the model learned physics
//! rather than noise (V should dominate: the cost is quartic in it).

use crate::metrics::mse;
use crate::rand_util::permutation;
use crate::traits::Regressor;
use chemcost_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Importance of one feature.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureImportance {
    /// Column index.
    pub feature: usize,
    /// Mean MSE increase caused by shuffling the column (≥ ~0; higher =
    /// more important). Can be slightly negative for irrelevant features.
    pub mse_increase: f64,
}

/// Compute permutation importances of a fitted model on evaluation data.
///
/// `n_repeats` independent shuffles per feature are averaged (the paper's
/// stack uses sklearn, whose `permutation_importance` defaults to 5).
///
/// # Panics
/// Panics if inputs are empty or misaligned.
pub fn permutation_importance(
    model: &dyn Regressor,
    x: &Matrix,
    y: &[f64],
    n_repeats: usize,
    seed: u64,
) -> Vec<FeatureImportance> {
    assert!(x.nrows() > 1, "need at least two samples");
    assert_eq!(x.nrows(), y.len(), "misaligned evaluation data");
    let n_repeats = n_repeats.max(1);
    let baseline = mse(y, &model.predict(x));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(x.ncols());
    for feature in 0..x.ncols() {
        let mut total = 0.0;
        for _ in 0..n_repeats {
            let perm = permutation(&mut rng, x.nrows());
            let shuffled = Matrix::from_fn(x.nrows(), x.ncols(), |i, j| {
                if j == feature {
                    x[(perm[i], j)]
                } else {
                    x[(i, j)]
                }
            });
            total += mse(y, &model.predict(&shuffled)) - baseline;
        }
        out.push(FeatureImportance { feature, mse_increase: total / n_repeats as f64 });
    }
    out
}

/// Importances sorted descending, paired with feature names.
pub fn ranked_importance(
    model: &dyn Regressor,
    x: &Matrix,
    y: &[f64],
    names: &[String],
    seed: u64,
) -> Vec<(String, f64)> {
    assert_eq!(names.len(), x.ncols(), "name count mismatch");
    let mut imps = permutation_importance(model, x, y, 5, seed);
    imps.sort_by(|a, b| {
        b.mse_increase.partial_cmp(&a.mse_increase).unwrap_or(std::cmp::Ordering::Equal)
    });
    imps.into_iter().map(|fi| (names[fi.feature].clone(), fi.mse_increase)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient_boosting::GradientBoosting;

    fn model_and_data() -> (GradientBoosting, Matrix, Vec<f64>) {
        // y depends strongly on feature 0, weakly on 1, not at all on 2.
        let x = Matrix::from_fn(200, 3, |i, j| (((i + 1) * (j * j + 2)) % 37) as f64);
        let y: Vec<f64> = (0..200).map(|i| 10.0 * x[(i, 0)] + 0.5 * x[(i, 1)]).collect();
        let mut gb = GradientBoosting::new(150, 4, 0.1);
        gb.fit(&x, &y).unwrap();
        (gb, x, y)
    }

    #[test]
    fn important_feature_ranks_first() {
        let (gb, x, y) = model_and_data();
        let imps = permutation_importance(&gb, &x, &y, 3, 1);
        assert_eq!(imps.len(), 3);
        assert!(imps[0].mse_increase > imps[1].mse_increase, "feature 0 must dominate: {imps:?}");
        assert!(
            imps[0].mse_increase > 10.0 * imps[2].mse_increase.abs().max(1e-9),
            "irrelevant feature must be near zero: {imps:?}"
        );
    }

    #[test]
    fn ranked_importance_sorts_and_names() {
        let (gb, x, y) = model_and_data();
        let names = vec!["big".to_string(), "small".to_string(), "none".to_string()];
        let ranked = ranked_importance(&gb, &x, &y, &names, 2);
        assert_eq!(ranked[0].0, "big");
        assert!(ranked[0].1 >= ranked[1].1 && ranked[1].1 >= ranked[2].1);
    }

    #[test]
    fn deterministic_under_seed() {
        let (gb, x, y) = model_and_data();
        let a = permutation_importance(&gb, &x, &y, 2, 7);
        let b = permutation_importance(&gb, &x, &y, 2, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn rejects_misaligned_inputs() {
        let (gb, x, _) = model_and_data();
        let _ = permutation_importance(&gb, &x, &[1.0], 1, 0);
    }
}
