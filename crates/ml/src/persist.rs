//! Binary persistence for the deployed gradient-boosting model.
//!
//! Training takes ~1 s (Table 2), but a downstream tool (a job-script
//! generator, a CI gate on allocation requests) should not retrain per
//! invocation. This module gives the deployed GB a compact, versioned
//! binary format: save once after training, load in microseconds.
//!
//! Format (little-endian, via `bytes`):
//!
//! ```text
//! magic  u32  = 0x43434742  ("CCGB")
//! version u32 = 1
//! init   f64
//! learning_rate f64
//! n_features u32
//! n_trees u32
//! per tree: n_nodes u32, then nodes as
//!   feature u32, threshold f64, left u32, right u32, value f64
//! version 2 only, after the last tree (the lineage trailer):
//!   parent_version u64, train_rows u32, observed_rows u32,
//!   fit_duration_ms u64, seed u64
//! ```
//!
//! Version 2 is version 1 plus a fixed [`Lineage`] trailer recording a
//! retrained model's provenance (see the `lifecycle` subsystem); both
//! versions decode with [`decode_gb_full`].
//!
//! Decoding validates every structural field (magic, version, counts,
//! child indices in range, split features < n_features), so arbitrary or
//! corrupted bytes produce [`DecodeError`], never a panic — fuzzed in
//! `tests/properties.rs`.

use crate::gradient_boosting::GradientBoosting;
use crate::tree::FlatNode;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;

const MAGIC: u32 = 0x4343_4742;
const VERSION: u32 = 1;
/// Format version 2 = the version-1 payload plus a 32-byte [`Lineage`]
/// trailer after the last tree. Version-1 files remain readable forever;
/// [`encode_gb`] keeps writing version 1 so artifacts stay compatible
/// with older builds unless lineage is explicitly requested.
const VERSION_LINEAGE: u32 = 2;

/// Provenance of a retrained model: where it came from and what data and
/// effort produced it. Persisted as a fixed 32-byte trailer in version-2
/// model files so a promoted candidate on disk explains itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lineage {
    /// Registry version of the serving model this candidate was
    /// warm-started from (0 when trained from scratch).
    pub parent_version: u64,
    /// Rows in the original training set the parent retains knowledge of.
    pub train_rows: u32,
    /// Redeemed live observations the warm-start stages were fitted on.
    pub observed_rows: u32,
    /// Wall-clock fit duration in milliseconds.
    pub fit_duration_ms: u64,
    /// RNG seed the fit ran with, for reproducibility.
    pub seed: u64,
}

/// Error decoding a persisted model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes — not a chemcost model file.
    BadMagic,
    /// Format version this build does not understand.
    UnsupportedVersion(u32),
    /// Buffer ended early or counts are inconsistent.
    Truncated,
    /// Node indices out of range.
    Corrupt(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a chemcost GB model (bad magic)"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported model version {v}"),
            DecodeError::Truncated => write!(f, "model file truncated"),
            DecodeError::Corrupt(msg) => write!(f, "corrupt model: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize a fitted GB model to bytes (version 1, no lineage).
pub fn encode_gb(gb: &GradientBoosting) -> Bytes {
    encode_gb_at(gb, None)
}

/// Serialize a fitted GB model with its [`Lineage`] trailer (version 2).
pub fn encode_gb_with_lineage(gb: &GradientBoosting, lineage: &Lineage) -> Bytes {
    encode_gb_at(gb, Some(lineage))
}

fn encode_gb_at(gb: &GradientBoosting, lineage: Option<&Lineage>) -> Bytes {
    let (init, lr, n_features, trees) = gb.export();
    let node_total: usize = trees.iter().map(|t| t.len()).sum();
    let mut buf = BytesMut::with_capacity(36 + trees.len() * 4 + node_total * 28 + 32);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(if lineage.is_some() { VERSION_LINEAGE } else { VERSION });
    buf.put_f64_le(init);
    buf.put_f64_le(lr);
    buf.put_u32_le(n_features as u32);
    buf.put_u32_le(trees.len() as u32);
    for tree in &trees {
        buf.put_u32_le(tree.len() as u32);
        for n in tree {
            buf.put_u32_le(n.feature);
            buf.put_f64_le(n.threshold);
            buf.put_u32_le(n.left);
            buf.put_u32_le(n.right);
            buf.put_f64_le(n.value);
        }
    }
    if let Some(l) = lineage {
        buf.put_u64_le(l.parent_version);
        buf.put_u32_le(l.train_rows);
        buf.put_u32_le(l.observed_rows);
        buf.put_u64_le(l.fit_duration_ms);
        buf.put_u64_le(l.seed);
    }
    buf.freeze()
}

/// Deserialize a GB model from bytes, discarding any lineage trailer.
pub fn decode_gb(buf: &[u8]) -> Result<GradientBoosting, DecodeError> {
    decode_gb_full(buf).map(|(gb, _)| gb)
}

/// Deserialize a GB model plus its [`Lineage`] (version-2 files; `None`
/// for version-1 files, which predate lineage).
pub fn decode_gb_full(mut buf: &[u8]) -> Result<(GradientBoosting, Option<Lineage>), DecodeError> {
    let need = |n: usize, buf: &[u8]| {
        if buf.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    };
    need(8, buf)?;
    if buf.get_u32_le() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION && version != VERSION_LINEAGE {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    need(24, buf)?;
    let init = buf.get_f64_le();
    let lr = buf.get_f64_le();
    let n_features = buf.get_u32_le() as usize;
    let n_trees = buf.get_u32_le() as usize;
    if n_trees > 1_000_000 {
        return Err(DecodeError::Corrupt(format!("implausible tree count {n_trees}")));
    }
    if n_features == 0 || n_features > 1_000_000 {
        return Err(DecodeError::Corrupt(format!("implausible feature count {n_features}")));
    }
    let mut trees = Vec::with_capacity(n_trees);
    for _ in 0..n_trees {
        need(4, buf)?;
        let n_nodes = buf.get_u32_le() as usize;
        if n_nodes == 0 {
            return Err(DecodeError::Corrupt("empty tree".into()));
        }
        if buf.remaining() < n_nodes * 28 {
            return Err(DecodeError::Truncated);
        }
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let feature = buf.get_u32_le();
            let threshold = buf.get_f64_le();
            let left = buf.get_u32_le();
            let right = buf.get_u32_le();
            let value = buf.get_f64_le();
            if feature != u32::MAX {
                if left as usize >= n_nodes || right as usize >= n_nodes {
                    return Err(DecodeError::Corrupt("child index out of range".into()));
                }
                if feature as usize >= n_features {
                    return Err(DecodeError::Corrupt(format!(
                        "split feature {feature} >= feature count {n_features}"
                    )));
                }
            }
            nodes.push(FlatNode { feature, threshold, left, right, value });
        }
        trees.push(nodes);
    }
    let lineage = if version == VERSION_LINEAGE {
        need(32, buf)?;
        Some(Lineage {
            parent_version: buf.get_u64_le(),
            train_rows: buf.get_u32_le(),
            observed_rows: buf.get_u32_le(),
            fit_duration_ms: buf.get_u64_le(),
            seed: buf.get_u64_le(),
        })
    } else {
        None
    };
    if buf.remaining() > 0 {
        return Err(DecodeError::Corrupt(format!(
            "{} trailing bytes after last tree",
            buf.remaining()
        )));
    }
    Ok((GradientBoosting::from_export(init, lr, n_features, &trees), lineage))
}

/// Save a fitted GB model to a file.
pub fn save_gb(path: &Path, gb: &GradientBoosting) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, encode_gb(gb))
}

/// Save a fitted GB model with its [`Lineage`] trailer (version-2 file).
pub fn save_gb_with_lineage(
    path: &Path,
    gb: &GradientBoosting,
    lineage: &Lineage,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, encode_gb_with_lineage(gb, lineage))
}

/// Load a GB model from a file.
pub fn load_gb(path: &Path) -> std::io::Result<GradientBoosting> {
    let data = std::fs::read(path)?;
    decode_gb(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Load a GB model plus its lineage (if the file is version 2).
pub fn load_gb_full(path: &Path) -> std::io::Result<(GradientBoosting, Option<Lineage>)> {
    let data = std::fs::read(path)?;
    decode_gb_full(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Regressor;
    use chemcost_linalg::Matrix;

    fn fitted_gb() -> (GradientBoosting, Matrix) {
        let x = Matrix::from_fn(120, 3, |i, j| ((i * (j + 2)) % 23) as f64);
        let y: Vec<f64> =
            (0..120).map(|i| x[(i, 0)] * 2.0 + (x[(i, 1)] * 0.5).sin() * 4.0).collect();
        let mut gb = GradientBoosting::new(60, 4, 0.1);
        gb.fit(&x, &y).unwrap();
        (gb, x)
    }

    #[test]
    fn round_trip_preserves_predictions_exactly() {
        let (gb, x) = fitted_gb();
        let bytes = encode_gb(&gb);
        let back = decode_gb(&bytes).unwrap();
        assert_eq!(gb.predict(&x), back.predict(&x));
    }

    #[test]
    fn file_round_trip() {
        let (gb, x) = fitted_gb();
        let dir = std::env::temp_dir().join("chemcost_persist_test");
        let path = dir.join("model.ccgb");
        save_gb(&path, &gb).unwrap();
        let back = load_gb(&path).unwrap();
        assert_eq!(gb.predict(&x), back.predict(&x));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decode_gb(&[0u8; 64]).unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let (gb, _) = fitted_gb();
        let bytes = encode_gb(&gb);
        // Cutting the buffer at any prefix must error, never panic.
        for cut in [0, 4, 8, 20, 25, 30, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_gb(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn rejects_future_version() {
        let (gb, _) = fitted_gb();
        let mut bytes = encode_gb(&gb).to_vec();
        bytes[4] = 99; // version field
        assert!(matches!(decode_gb(&bytes), Err(DecodeError::UnsupportedVersion(_))));
    }

    #[test]
    fn rejects_corrupt_child_index() {
        let (gb, _) = fitted_gb();
        let mut bytes = encode_gb(&gb).to_vec();
        // First tree's first node: set feature=0 with left pointing far out
        // of range. Node layout starts at offset 32 (header) + 4 (n_nodes).
        let node0 = 32 + 4;
        bytes[node0..node0 + 4].copy_from_slice(&0u32.to_le_bytes());
        bytes[node0 + 12..node0 + 16].copy_from_slice(&u32::MAX.to_le_bytes()); // left
        let r = decode_gb(&bytes);
        assert!(r.is_err(), "corrupt child index must be rejected");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let (gb, _) = fitted_gb();
        let mut bytes = encode_gb(&gb).to_vec();
        bytes.extend_from_slice(&[0xAB; 7]);
        match decode_gb(&bytes) {
            Err(DecodeError::Corrupt(msg)) => {
                assert!(msg.contains("trailing"), "{msg}");
                assert!(msg.contains('7'), "{msg}");
            }
            other => panic!("expected Corrupt(trailing), got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_header_fields() {
        // Valid magic+version, then the header cut mid-f64.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 5]);
        assert_eq!(decode_gb(&bytes).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn rejects_implausible_counts() {
        let (gb, _) = fitted_gb();
        let mut bytes = encode_gb(&gb).to_vec();
        // n_features at offset 24, n_trees at offset 28.
        bytes[24..28].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(decode_gb(&bytes), Err(DecodeError::Corrupt(_))), "zero features");
        let mut bytes = encode_gb(&gb).to_vec();
        bytes[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_gb(&bytes), Err(DecodeError::Corrupt(_))), "huge tree count");
    }

    #[test]
    fn rejects_split_feature_out_of_range() {
        let (gb, _) = fitted_gb();
        let mut bytes = encode_gb(&gb).to_vec();
        // First node: feature index far beyond n_features (3), with valid
        // child indices (0) so the feature check is the one that fires.
        let node0 = 32 + 4;
        bytes[node0..node0 + 4].copy_from_slice(&1000u32.to_le_bytes());
        bytes[node0 + 12..node0 + 16].copy_from_slice(&0u32.to_le_bytes());
        bytes[node0 + 16..node0 + 20].copy_from_slice(&0u32.to_le_bytes());
        match decode_gb(&bytes) {
            Err(DecodeError::Corrupt(msg)) => assert!(msg.contains("split feature"), "{msg}"),
            other => panic!("expected Corrupt(split feature), got {other:?}"),
        }
    }

    #[test]
    fn rejects_empty_tree() {
        // Header for one tree with zero nodes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_le_bytes());
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1.0f64.to_le_bytes());
        bytes.extend_from_slice(&0.1f64.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes()); // n_features
        bytes.extend_from_slice(&1u32.to_le_bytes()); // n_trees
        bytes.extend_from_slice(&0u32.to_le_bytes()); // n_nodes = 0
        assert!(matches!(decode_gb(&bytes), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn arbitrary_byte_soup_never_panics() {
        // Deterministic pseudo-random buffers of varied length; decode
        // must always return an error, never panic or loop.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for len in [0usize, 1, 7, 31, 32, 33, 64, 257, 1024] {
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                bytes.push((state >> 56) as u8);
            }
            assert!(decode_gb(&bytes).is_err(), "random soup of len {len} accepted");
        }
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert_eq!(DecodeError::BadMagic.to_string(), "not a chemcost GB model (bad magic)");
        assert_eq!(DecodeError::UnsupportedVersion(9).to_string(), "unsupported model version 9");
        assert_eq!(DecodeError::Truncated.to_string(), "model file truncated");
        assert!(DecodeError::Corrupt("x".into()).to_string().contains("x"));
    }

    fn lineage() -> Lineage {
        Lineage {
            parent_version: 3,
            train_rows: 240,
            observed_rows: 57,
            fit_duration_ms: 1234,
            seed: 0xDEAD_BEEF,
        }
    }

    #[test]
    fn lineage_round_trip_preserves_model_and_trailer() {
        let (gb, x) = fitted_gb();
        let bytes = encode_gb_with_lineage(&gb, &lineage());
        let (back, l) = decode_gb_full(&bytes).unwrap();
        assert_eq!(gb.predict(&x), back.predict(&x));
        assert_eq!(l, Some(lineage()));
        // The v2 payload is exactly the v1 payload plus the 32-byte
        // trailer and the version field difference.
        assert_eq!(bytes.len(), encode_gb(&gb).len() + 32);
    }

    #[test]
    fn v1_files_decode_with_no_lineage() {
        let (gb, x) = fitted_gb();
        let (back, l) = decode_gb_full(&encode_gb(&gb)).unwrap();
        assert_eq!(l, None);
        assert_eq!(gb.predict(&x), back.predict(&x));
    }

    #[test]
    fn lineage_file_round_trip() {
        let (gb, x) = fitted_gb();
        let dir = std::env::temp_dir().join("chemcost_persist_lineage_test");
        let path = dir.join("model.ccgb");
        save_gb_with_lineage(&path, &gb, &lineage()).unwrap();
        // load_gb tolerates the trailer; load_gb_full surfaces it.
        assert_eq!(load_gb(&path).unwrap().predict(&x), gb.predict(&x));
        let (_, l) = load_gb_full(&path).unwrap();
        assert_eq!(l, Some(lineage()));
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn v2_rejects_truncated_trailer_and_trailing_garbage() {
        let (gb, _) = fitted_gb();
        let bytes = encode_gb_with_lineage(&gb, &lineage());
        for cut in 1..32 {
            assert!(
                decode_gb_full(&bytes[..bytes.len() - cut]).is_err(),
                "trailer cut by {cut} accepted"
            );
        }
        let mut noisy = bytes.to_vec();
        noisy.extend_from_slice(&[0xCD; 5]);
        assert!(matches!(decode_gb_full(&noisy), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn encoded_size_is_compact() {
        let (gb, _) = fitted_gb();
        let bytes = encode_gb(&gb);
        let (_, _, _, trees) = gb.export();
        let nodes: usize = trees.iter().map(|t| t.len()).sum();
        // 28 bytes per node + small framing.
        assert!(bytes.len() < nodes * 28 + trees.len() * 4 + 64);
    }
}
