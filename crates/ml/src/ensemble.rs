//! Model combination: weighted voting over heterogeneous regressors.
//!
//! The Figures 1–2 experiment shows GB and RF trading places on MAPE
//! depending on machine and split; a small blend of the two is the
//! classic way to stop choosing. `VotingRegressor` owns a set of already
//! configured models, fits them all on the same data (in parallel), and
//! predicts their weighted mean. It also exposes committee-style
//! uncertainty (weighted std of member predictions), so it can drive the
//! active-learning loop.

use crate::traits::{FitError, Regressor, UncertaintyRegressor};
use chemcost_linalg::{parallel, Matrix};
use parking_lot::Mutex;

/// Weighted average of heterogeneous regressors.
pub struct VotingRegressor {
    members: Vec<Mutex<Box<dyn Regressor>>>,
    weights: Vec<f64>,
    fitted: bool,
}

impl VotingRegressor {
    /// Equal-weight ensemble.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn Regressor>>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let n = members.len();
        Self {
            members: members.into_iter().map(Mutex::new).collect(),
            weights: vec![1.0 / n as f64; n],
            fitted: false,
        }
    }

    /// Explicitly weighted ensemble; weights are normalized to sum 1.
    ///
    /// # Panics
    /// Panics on length mismatch or non-positive total weight.
    pub fn weighted(members: Vec<Box<dyn Regressor>>, weights: Vec<f64>) -> Self {
        assert_eq!(members.len(), weights.len(), "one weight per member");
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0 && weights.iter().all(|w| *w >= 0.0), "weights must be >= 0, sum > 0");
        Self {
            members: members.into_iter().map(Mutex::new).collect(),
            weights: weights.into_iter().map(|w| w / total).collect(),
            fitted: false,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The normalized member weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn member_predictions(&self, x: &Matrix) -> Vec<Vec<f64>> {
        self.members.iter().map(|m| m.lock().predict(x)).collect()
    }
}

impl Regressor for VotingRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        // Fit members in parallel; surface the first error, if any.
        let results = parallel::par_map(self.members.len(), |i| self.members[i].lock().fit(x, y));
        for r in results {
            r?;
        }
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.fitted, "VotingRegressor::predict before fit");
        let preds = self.member_predictions(x);
        let mut out = vec![0.0; x.nrows()];
        for (p, &w) in preds.iter().zip(&self.weights) {
            for (o, v) in out.iter_mut().zip(p) {
                *o += w * v;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "VOTE"
    }
}

impl UncertaintyRegressor for VotingRegressor {
    /// Weighted mean and weighted standard deviation across members.
    fn predict_with_std(&self, x: &Matrix) -> (Vec<f64>, Vec<f64>) {
        assert!(self.fitted, "VotingRegressor::predict_with_std before fit");
        let preds = self.member_predictions(x);
        let n = x.nrows();
        let mut mean = vec![0.0; n];
        for (p, &w) in preds.iter().zip(&self.weights) {
            for (m, v) in mean.iter_mut().zip(p) {
                *m += w * v;
            }
        }
        let mut var = vec![0.0; n];
        for (p, &w) in preds.iter().zip(&self.weights) {
            for ((vv, v), m) in var.iter_mut().zip(p).zip(&mean) {
                *vv += w * (v - m) * (v - m);
            }
        }
        (mean, var.into_iter().map(|v| v.max(0.0).sqrt()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForest;
    use crate::gradient_boosting::GradientBoosting;
    use crate::linear::Ridge;
    use crate::metrics::r2_score;

    fn data(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 2, |i, j| ((i * (j + 2)) % 19) as f64);
        let y = (0..n).map(|i| x[(i, 0)] * 2.0 + (x[(i, 1)] * 0.7).sin() * 3.0).collect();
        (x, y)
    }

    fn gb_rf() -> Vec<Box<dyn Regressor>> {
        vec![Box::new(GradientBoosting::new(100, 4, 0.1)), Box::new(RandomForest::new(40, 10))]
    }

    #[test]
    fn blend_fits_well() {
        let (x, y) = data(200);
        let mut vote = VotingRegressor::new(gb_rf());
        vote.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &vote.predict(&x)) > 0.98);
    }

    #[test]
    fn single_member_is_identity() {
        let (x, y) = data(80);
        let mut solo = GradientBoosting::new(50, 3, 0.1);
        solo.fit(&x, &y).unwrap();
        let mut vote = VotingRegressor::new(vec![Box::new(GradientBoosting::new(50, 3, 0.1))]);
        vote.fit(&x, &y).unwrap();
        let a = solo.predict(&x);
        let b = vote.predict(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_skew_the_blend() {
        let (x, y) = data(100);
        // A strong member and a deliberately weak one.
        let members = || -> Vec<Box<dyn Regressor>> {
            vec![Box::new(GradientBoosting::new(120, 4, 0.1)), Box::new(Ridge::new(1e9))]
        };
        let mut mostly_gb = VotingRegressor::weighted(members(), vec![0.95, 0.05]);
        mostly_gb.fit(&x, &y).unwrap();
        let mut mostly_ridge = VotingRegressor::weighted(members(), vec![0.05, 0.95]);
        mostly_ridge.fit(&x, &y).unwrap();
        assert!(
            r2_score(&y, &mostly_gb.predict(&x)) > r2_score(&y, &mostly_ridge.predict(&x)),
            "weighting toward the strong member must help"
        );
    }

    #[test]
    fn uncertainty_reflects_member_disagreement() {
        let (x, y) = data(120);
        let mut vote = VotingRegressor::new(gb_rf());
        vote.fit(&x, &y).unwrap();
        let (mean, std) = vote.predict_with_std(&x);
        assert_eq!(mean.len(), x.nrows());
        assert!(std.iter().all(|&s| s >= 0.0));
        assert!(std.iter().any(|&s| s > 0.0), "GB and RF should disagree somewhere");
        // Mean matches predict.
        let p = vote.predict(&x);
        for (a, b) in mean.iter().zip(&p) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn member_fit_error_propagates() {
        let (x, y) = data(30);
        let mut vote = VotingRegressor::new(vec![
            Box::new(GradientBoosting::new(10, 3, 0.1)),
            Box::new(Ridge::new(-1.0)), // invalid alpha
        ]);
        assert!(vote.fit(&x, &y).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn rejects_empty_ensemble() {
        let _ = VotingRegressor::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "one weight per member")]
    fn rejects_mismatched_weights() {
        let _ = VotingRegressor::weighted(gb_rf(), vec![1.0]);
    }
}
