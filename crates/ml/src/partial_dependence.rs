//! Partial-dependence profiles: how a fitted model's prediction responds
//! to one feature with the others held at observed values.
//!
//! For feature `j` and grid value `g`, the profile is the mean prediction
//! over the evaluation set with column `j` overwritten by `g` (Friedman's
//! classic PDP). For the runtime predictor this answers the advisor-shaped
//! question "according to the model, how does wall time respond to node
//! count?" — and lets a user check the model learned the response *shape*
//! (interior node/tile optima), not just point accuracy.

use crate::traits::Regressor;
use chemcost_linalg::Matrix;

/// One partial-dependence curve.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialDependence {
    /// Feature column the curve varies.
    pub feature: usize,
    /// Grid values the feature was set to.
    pub grid: Vec<f64>,
    /// Mean model prediction at each grid value.
    pub mean_prediction: Vec<f64>,
}

impl PartialDependence {
    /// Grid value minimizing the mean prediction.
    pub fn argmin(&self) -> f64 {
        let i = chemcost_linalg::vecops::argmin(&self.mean_prediction).expect("non-empty grid");
        self.grid[i]
    }

    /// Total relative swing of the curve: `(max − min) / max(|mean|, ε)` —
    /// a quick "does this feature matter at all" number.
    pub fn relative_swing(&self) -> f64 {
        let (lo, hi) = self
            .mean_prediction
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        let mean = self.mean_prediction.iter().sum::<f64>() / self.mean_prediction.len() as f64;
        (hi - lo) / mean.abs().max(1e-12)
    }
}

/// Compute the partial-dependence curve of `feature` over `grid` using the
/// rows of `x` as the background distribution.
///
/// # Panics
/// Panics on an empty grid/background or an out-of-range feature.
pub fn partial_dependence(
    model: &dyn Regressor,
    x: &Matrix,
    feature: usize,
    grid: &[f64],
) -> PartialDependence {
    assert!(x.nrows() > 0, "need background samples");
    assert!(feature < x.ncols(), "feature {feature} out of range");
    assert!(!grid.is_empty(), "empty grid");
    let mut mean_prediction = Vec::with_capacity(grid.len());
    for &g in grid {
        let xg =
            Matrix::from_fn(x.nrows(), x.ncols(), |i, j| if j == feature { g } else { x[(i, j)] });
        let pred = model.predict(&xg);
        mean_prediction.push(pred.iter().sum::<f64>() / pred.len() as f64);
    }
    PartialDependence { feature, grid: grid.to_vec(), mean_prediction }
}

/// Convenience: an evenly spaced grid across the observed range of a
/// feature.
pub fn feature_grid(x: &Matrix, feature: usize, n_points: usize) -> Vec<f64> {
    assert!(feature < x.ncols(), "feature {feature} out of range");
    let col = x.col(feature);
    let (lo, hi) = col.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
    chemcost_linalg::vecops::linspace(lo, hi, n_points.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient_boosting::GradientBoosting;

    /// y = (x0 − 5)² + x1: a parabola in feature 0, linear in feature 1.
    fn fitted() -> (GradientBoosting, Matrix) {
        let x =
            Matrix::from_fn(
                300,
                2,
                |i, j| {
                    if j == 0 {
                        (i % 11) as f64
                    } else {
                        ((i * 7) % 13) as f64
                    }
                },
            );
        let y: Vec<f64> = (0..300).map(|i| (x[(i, 0)] - 5.0).powi(2) + x[(i, 1)]).collect();
        let mut gb = GradientBoosting::new(200, 4, 0.1);
        gb.fit(&x, &y).unwrap();
        (gb, x)
    }

    #[test]
    fn recovers_parabola_minimum() {
        let (gb, x) = fitted();
        let grid = feature_grid(&x, 0, 11);
        let pd = partial_dependence(&gb, &x, 0, &grid);
        assert!((pd.argmin() - 5.0).abs() <= 1.0, "parabola vertex near 5, got {}", pd.argmin());
    }

    #[test]
    fn linear_feature_has_monotone_curve() {
        let (gb, x) = fitted();
        let grid = feature_grid(&x, 1, 13);
        let pd = partial_dependence(&gb, &x, 1, &grid);
        // Allow tree plateaus: check endpoints rise substantially.
        assert!(
            pd.mean_prediction.last().unwrap() > pd.mean_prediction.first().unwrap(),
            "{:?}",
            pd.mean_prediction
        );
    }

    #[test]
    fn relative_swing_ranks_features_sensibly() {
        // In y = (x0−5)² + x1, feature 0 swings predictions more than
        // feature 1 over these ranges ((0..10)² vs 0..12).
        let (gb, x) = fitted();
        let s0 = partial_dependence(&gb, &x, 0, &feature_grid(&x, 0, 11)).relative_swing();
        let s1 = partial_dependence(&gb, &x, 1, &feature_grid(&x, 1, 13)).relative_swing();
        assert!(s0 > s1, "s0 {s0} vs s1 {s1}");
        assert!(s0 > 0.0 && s1 > 0.0);
    }

    #[test]
    fn feature_grid_spans_observed_range() {
        let (_, x) = fitted();
        let grid = feature_grid(&x, 0, 5);
        assert_eq!(grid.first().copied(), Some(0.0));
        assert_eq!(grid.last().copied(), Some(10.0));
        assert_eq!(grid.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_feature() {
        let (gb, x) = fitted();
        let _ = partial_dependence(&gb, &x, 9, &[1.0]);
    }
}
