//! From-scratch regression model suite for runtime prediction.
//!
//! This crate implements every model family evaluated in the paper
//! (§3.1) plus the surrounding machinery:
//!
//! * **Models** — polynomial regression ([`polynomial`]), kernel ridge
//!   ([`kernel_ridge`]), decision trees ([`tree`]), random forests
//!   ([`forest`]), gradient boosting ([`gradient_boosting`]), AdaBoost.R2
//!   ([`adaboost`]), Gaussian processes ([`gaussian_process`]), Bayesian
//!   ridge ([`bayesian_ridge`]) and ε-support-vector regression ([`svr`]),
//!   all built on ordinary/ridge least squares ([`linear`]).
//! * **Fast inference** — fitted tree ensembles compile into a contiguous
//!   flat layout ([`flat`]) with two entry points: a quantized default
//!   within `flat::QUANT_REL_TOL` of the recursive path, and `*_exact`
//!   variants that stay bit-for-bit; this is what the advisor sweep and
//!   the serving daemon query.
//! * **Metrics** — R², MAE, MAPE (§3.2) and friends in [`metrics`].
//! * **Model selection** — K-fold cross-validation plus grid, random and
//!   Bayesian hyper-parameter search in [`model_selection`].
//! * **The zoo** — a uniform, string-keyed construction layer
//!   ([`zoo`]) so experiment harnesses can sweep heterogeneous model
//!   families with one loop.
//!
//! Models implement [`Regressor`]; models that can quantify predictive
//! uncertainty (Gaussian processes, committees) also implement
//! [`UncertaintyRegressor`], which the active-learning crate requires.
//!
//! # Example
//!
//! ```
//! use chemcost_linalg::Matrix;
//! use chemcost_ml::{Regressor, gradient_boosting::GradientBoosting};
//!
//! // y = x0 + 2·x1 with a little structure a GB model can pick up.
//! let x = Matrix::from_fn(80, 2, |i, j| ((i * (j + 1)) % 13) as f64);
//! let y: Vec<f64> = (0..80).map(|i| x[(i, 0)] + 2.0 * x[(i, 1)]).collect();
//! let mut model = GradientBoosting::new(100, 3, 0.1);
//! model.fit(&x, &y).unwrap();
//! let pred = model.predict(&x);
//! assert!(chemcost_ml::metrics::r2_score(&y, &pred) > 0.95);
//! ```

#![deny(missing_docs)]

pub mod adaboost;
pub mod bayesian_ridge;
pub mod dataset;
pub mod elastic_net;
pub mod ensemble;
pub mod flat;
pub mod forest;
pub mod gaussian_process;
pub mod gradient_boosting;
pub mod importance;
pub mod kernel;
pub mod kernel_ridge;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod model_selection;
pub mod monitor;
pub mod partial_dependence;
pub mod persist;
pub mod polynomial;
pub mod preprocessing;
pub mod rand_util;
pub mod svr;
pub mod traits;
pub mod transfer;
pub mod tree;
pub mod zoo;

pub use dataset::Dataset;
pub use flat::{FlatForest, FlatGbt};
pub use traits::{FitError, Regressor, UncertaintyRegressor};
