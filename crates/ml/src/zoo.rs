//! The model zoo: uniform construction of every model family the paper
//! evaluates, keyed by [`ModelKind`] and string-keyed [`Params`].
//!
//! Experiment harnesses (Figures 1–2) iterate `ModelKind::all()`, pull each
//! kind's default hyper-parameter grid / search space, and hand the factory
//! to the searchers in [`crate::model_selection`] — one loop covers nine
//! heterogeneous model families.

use crate::adaboost::{AdaBoost, AdaLoss};
use crate::bayesian_ridge::BayesianRidge;
use crate::elastic_net::ElasticNet;
use crate::forest::RandomForest;
use crate::gaussian_process::GaussianProcess;
use crate::gradient_boosting::GradientBoosting;
use crate::kernel::Kernel;
use crate::kernel_ridge::KernelRidge;
use crate::knn::{KnnRegressor, KnnWeights};
use crate::mlp::MlpRegressor;
use crate::model_selection::{Dimension, Params, Scale};
use crate::polynomial::PolynomialRegression;
use crate::svr::Svr;
use crate::traits::Regressor;
use crate::tree::{DecisionTree, MaxFeatures};

/// The nine model families of paper §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Polynomial regression.
    Polynomial,
    /// Kernel ridge regression.
    KernelRidge,
    /// CART decision tree.
    DecisionTree,
    /// Random forest.
    RandomForest,
    /// Gradient-boosted trees.
    GradientBoosting,
    /// AdaBoost.R2.
    AdaBoost,
    /// Gaussian process.
    GaussianProcess,
    /// Bayesian ridge.
    BayesianRidge,
    /// ε-support-vector regression.
    Svr,
    /// k-nearest neighbours (extension; not in the paper's nine).
    Knn,
    /// Elastic net (extension; not in the paper's nine).
    ElasticNet,
    /// Multilayer perceptron (extension; the deep-learning option the
    /// paper declines in §3.3).
    Mlp,
}

impl ModelKind {
    /// Every family, in the paper's presentation order.
    pub fn all() -> [ModelKind; 9] {
        [
            ModelKind::Polynomial,
            ModelKind::KernelRidge,
            ModelKind::DecisionTree,
            ModelKind::RandomForest,
            ModelKind::GradientBoosting,
            ModelKind::AdaBoost,
            ModelKind::GaussianProcess,
            ModelKind::BayesianRidge,
            ModelKind::Svr,
        ]
    }

    /// The paper's nine plus this repository's extensions (k-NN, elastic
    /// net, MLP).
    pub fn all_extended() -> [ModelKind; 12] {
        [
            ModelKind::Polynomial,
            ModelKind::KernelRidge,
            ModelKind::DecisionTree,
            ModelKind::RandomForest,
            ModelKind::GradientBoosting,
            ModelKind::AdaBoost,
            ModelKind::GaussianProcess,
            ModelKind::BayesianRidge,
            ModelKind::Svr,
            ModelKind::Knn,
            ModelKind::ElasticNet,
            ModelKind::Mlp,
        ]
    }

    /// The paper's abbreviation ("PR", "KR", …).
    pub fn abbrev(self) -> &'static str {
        match self {
            ModelKind::Polynomial => "PR",
            ModelKind::KernelRidge => "KR",
            ModelKind::DecisionTree => "DT",
            ModelKind::RandomForest => "RF",
            ModelKind::GradientBoosting => "GB",
            ModelKind::AdaBoost => "AB",
            ModelKind::GaussianProcess => "GP",
            ModelKind::BayesianRidge => "BR",
            ModelKind::Svr => "SVR",
            ModelKind::Knn => "KNN",
            ModelKind::ElasticNet => "EN",
            ModelKind::Mlp => "MLP",
        }
    }

    /// Build a model from a hyper-parameter assignment. Missing keys fall
    /// back to sensible defaults; integer-valued keys are rounded.
    pub fn build(self, p: &Params) -> Box<dyn Regressor> {
        let get = |k: &str, default: f64| p.get(k).copied().unwrap_or(default);
        let geti = |k: &str, default: usize| get(k, default as f64).round().max(0.0) as usize;
        match self {
            ModelKind::Polynomial => {
                Box::new(PolynomialRegression::with_alpha(geti("degree", 3), get("alpha", 1e-6)))
            }
            ModelKind::KernelRidge => Box::new(KernelRidge::new(
                get("alpha", 1e-3),
                Kernel::Rbf { gamma: get("gamma", 0.5) },
            )),
            ModelKind::DecisionTree => {
                let mut t = DecisionTree::new(geti("max_depth", 10));
                t.min_samples_leaf = geti("min_samples_leaf", 1).max(1);
                Box::new(t)
            }
            ModelKind::RandomForest => {
                let mut f = RandomForest::new(geti("n_estimators", 100), geti("max_depth", 12));
                f.min_samples_leaf = geti("min_samples_leaf", 1).max(1);
                let mf = geti("max_features", 0);
                f.max_features = if mf == 0 { MaxFeatures::All } else { MaxFeatures::Count(mf) };
                f.seed = geti("seed", 0) as u64;
                Box::new(f)
            }
            ModelKind::GradientBoosting => {
                let mut g = GradientBoosting::new(
                    geti("n_estimators", 300),
                    geti("max_depth", 6),
                    get("learning_rate", 0.1),
                );
                g.subsample = get("subsample", 1.0);
                g.min_samples_leaf = geti("min_samples_leaf", 1).max(1);
                g.seed = geti("seed", 0) as u64;
                Box::new(g)
            }
            ModelKind::AdaBoost => {
                let mut a = AdaBoost::new(geti("n_estimators", 100), geti("max_depth", 8));
                a.learning_rate = get("learning_rate", 1.0);
                a.loss = match geti("loss", 0) {
                    1 => AdaLoss::Square,
                    2 => AdaLoss::Exponential,
                    _ => AdaLoss::Linear,
                };
                a.seed = geti("seed", 0) as u64;
                Box::new(a)
            }
            ModelKind::GaussianProcess => {
                Box::new(GaussianProcess::new(get("gamma", 0.5), get("noise", 1e-4)))
            }
            ModelKind::BayesianRidge => Box::new(BayesianRidge::new()),
            ModelKind::Svr => {
                Box::new(Svr::rbf(get("c", 10.0), get("epsilon", 0.01), get("gamma", 0.5)))
            }
            ModelKind::Knn => {
                let mut knn = KnnRegressor::new(geti("k", 5).max(1));
                if geti("distance_weighted", 1) != 0 {
                    knn.weights = KnnWeights::Distance;
                }
                Box::new(knn)
            }
            ModelKind::ElasticNet => {
                Box::new(ElasticNet::new(get("alpha", 1e-3), get("l1_ratio", 0.5)))
            }
            ModelKind::Mlp => {
                let width = geti("width", 64).max(1);
                let depth = geti("depth", 2).clamp(1, 4);
                let mut mlp = MlpRegressor::new(vec![width; depth]);
                mlp.learning_rate = get("learning_rate", 3e-3);
                mlp.epochs = geti("epochs", 200).max(1);
                mlp.seed = geti("seed", 0) as u64;
                Box::new(mlp)
            }
        }
    }

    /// A small default grid per family (used by the grid-search arm of the
    /// Figure 1/2 experiment). Sizes are deliberately modest so the full
    /// 9-model × 3-strategy sweep completes in minutes, matching the role —
    /// not the exact extent — of the paper's grids.
    pub fn default_grid(self) -> Vec<(&'static str, Vec<f64>)> {
        match self {
            ModelKind::Polynomial => {
                vec![("degree", vec![1.0, 2.0, 3.0, 4.0]), ("alpha", vec![1e-8, 1e-4, 1e-2])]
            }
            ModelKind::KernelRidge => {
                vec![("alpha", vec![1e-5, 1e-3, 1e-1]), ("gamma", vec![0.05, 0.2, 0.5, 1.0])]
            }
            ModelKind::DecisionTree => vec![
                ("max_depth", vec![4.0, 8.0, 12.0, 16.0]),
                ("min_samples_leaf", vec![1.0, 2.0, 5.0]),
            ],
            ModelKind::RandomForest => {
                vec![("n_estimators", vec![50.0, 150.0]), ("max_depth", vec![8.0, 12.0, 16.0])]
            }
            ModelKind::GradientBoosting => vec![
                ("n_estimators", vec![150.0, 400.0, 750.0]),
                ("max_depth", vec![4.0, 6.0, 10.0]),
                ("learning_rate", vec![0.05, 0.1]),
            ],
            ModelKind::AdaBoost => vec![
                ("n_estimators", vec![50.0, 100.0]),
                ("max_depth", vec![6.0, 8.0, 10.0]),
                ("learning_rate", vec![0.5, 1.0]),
            ],
            ModelKind::GaussianProcess => {
                vec![("gamma", vec![0.05, 0.2, 0.5, 1.0]), ("noise", vec![1e-6, 1e-4, 1e-2])]
            }
            ModelKind::BayesianRidge => vec![],
            ModelKind::Svr => vec![
                ("c", vec![1.0, 10.0, 100.0]),
                ("epsilon", vec![0.005, 0.02, 0.1]),
                ("gamma", vec![0.1, 0.5, 1.0]),
            ],
            ModelKind::Knn => {
                vec![("k", vec![3.0, 5.0, 9.0, 15.0]), ("distance_weighted", vec![0.0, 1.0])]
            }
            ModelKind::ElasticNet => {
                vec![("alpha", vec![1e-4, 1e-3, 1e-2, 1e-1]), ("l1_ratio", vec![0.1, 0.5, 0.9])]
            }
            ModelKind::Mlp => vec![
                ("width", vec![32.0, 64.0]),
                ("depth", vec![1.0, 2.0]),
                ("learning_rate", vec![1e-3, 3e-3]),
            ],
        }
    }

    /// Continuous search space for the random/Bayesian strategies.
    pub fn search_space(self) -> Vec<Dimension> {
        match self {
            ModelKind::Polynomial => vec![
                Dimension::new("degree", 1.0, 4.0, Scale::Integer),
                Dimension::new("alpha", 1e-8, 1e-1, Scale::Log),
            ],
            ModelKind::KernelRidge => vec![
                Dimension::new("alpha", 1e-6, 1.0, Scale::Log),
                Dimension::new("gamma", 0.01, 2.0, Scale::Log),
            ],
            ModelKind::DecisionTree => vec![
                Dimension::new("max_depth", 2.0, 20.0, Scale::Integer),
                Dimension::new("min_samples_leaf", 1.0, 8.0, Scale::Integer),
            ],
            ModelKind::RandomForest => vec![
                Dimension::new("n_estimators", 30.0, 200.0, Scale::Integer),
                Dimension::new("max_depth", 4.0, 20.0, Scale::Integer),
            ],
            ModelKind::GradientBoosting => vec![
                Dimension::new("n_estimators", 100.0, 800.0, Scale::Integer),
                Dimension::new("max_depth", 3.0, 12.0, Scale::Integer),
                Dimension::new("learning_rate", 0.02, 0.3, Scale::Log),
            ],
            ModelKind::AdaBoost => vec![
                Dimension::new("n_estimators", 30.0, 150.0, Scale::Integer),
                Dimension::new("max_depth", 4.0, 12.0, Scale::Integer),
                Dimension::new("learning_rate", 0.1, 2.0, Scale::Log),
            ],
            ModelKind::GaussianProcess => vec![
                Dimension::new("gamma", 0.01, 3.0, Scale::Log),
                Dimension::new("noise", 1e-7, 1e-1, Scale::Log),
            ],
            ModelKind::BayesianRidge => vec![],
            ModelKind::Svr => vec![
                Dimension::new("c", 0.1, 1000.0, Scale::Log),
                Dimension::new("epsilon", 1e-3, 0.3, Scale::Log),
                Dimension::new("gamma", 0.05, 2.0, Scale::Log),
            ],
            ModelKind::Knn => vec![
                Dimension::new("k", 1.0, 25.0, Scale::Integer),
                Dimension::new("distance_weighted", 0.0, 1.0, Scale::Integer),
            ],
            ModelKind::ElasticNet => vec![
                Dimension::new("alpha", 1e-5, 1.0, Scale::Log),
                Dimension::new("l1_ratio", 0.0, 1.0, Scale::Linear),
            ],
            ModelKind::Mlp => vec![
                Dimension::new("width", 8.0, 96.0, Scale::Integer),
                Dimension::new("depth", 1.0, 3.0, Scale::Integer),
                Dimension::new("learning_rate", 3e-4, 1e-2, Scale::Log),
            ],
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;
    use chemcost_linalg::Matrix;

    fn data(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 2, |i, j| ((i * (j + 2)) % 21) as f64);
        let y = (0..n).map(|i| x[(i, 0)] * 1.2 + x[(i, 1)] * 0.7 + 5.0).collect();
        (x, y)
    }

    #[test]
    fn every_kind_builds_and_fits_with_defaults() {
        let (x, y) = data(90);
        for kind in ModelKind::all_extended() {
            let mut m = kind.build(&Params::new());
            m.fit(&x, &y).unwrap_or_else(|e| panic!("{kind} failed to fit: {e}"));
            let r2 = r2_score(&y, &m.predict(&x));
            assert!(r2 > 0.8, "{kind} default fit too weak: r2 {r2}");
            assert_eq!(m.name(), kind.abbrev());
        }
    }

    #[test]
    fn grids_only_mention_buildable_params() {
        let (x, y) = data(60);
        for kind in ModelKind::all_extended() {
            for (name, values) in kind.default_grid() {
                let mut p = Params::new();
                p.insert(name.to_string(), values[0]);
                let mut m = kind.build(&p);
                assert!(m.fit(&x, &y).is_ok(), "{kind} grid param {name} broke fit");
            }
        }
    }

    #[test]
    fn search_space_dimensions_valid() {
        for kind in ModelKind::all_extended() {
            for d in kind.search_space() {
                assert!(d.hi >= d.lo);
                let mid = d.from_unit(0.5);
                assert!(mid >= d.lo - 1e-9 && mid <= d.hi + 1e-9);
            }
        }
    }

    #[test]
    fn all_has_nine_distinct_families() {
        let kinds = ModelKind::all();
        assert_eq!(kinds.len(), 9);
        let abbrevs: std::collections::HashSet<&str> = kinds.iter().map(|k| k.abbrev()).collect();
        assert_eq!(abbrevs.len(), 9);
    }

    #[test]
    fn extended_adds_three_more_families() {
        let kinds = ModelKind::all_extended();
        assert_eq!(kinds.len(), 12);
        let abbrevs: std::collections::HashSet<&str> = kinds.iter().map(|k| k.abbrev()).collect();
        assert_eq!(abbrevs.len(), 12);
        for k in ModelKind::all() {
            assert!(kinds.contains(&k), "extended must be a superset");
        }
    }

    #[test]
    fn build_rounds_integer_params() {
        let p = crate::model_selection::params(&[("max_depth", 7.6)]);
        let mut m = ModelKind::DecisionTree.build(&p);
        let (x, y) = data(40);
        m.fit(&x, &y).unwrap();
        // Depth 8 (rounded) should be enough to fit this data well.
        assert!(r2_score(&y, &m.predict(&x)) > 0.95);
    }
}
