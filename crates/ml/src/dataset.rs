//! Labelled dataset container and splitting utilities.

use crate::rand_util::permutation;
use chemcost_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A labelled regression dataset: one sample per row of `x`, target in `y`.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Feature matrix, one sample per row.
    pub x: Matrix,
    /// Targets, `y.len() == x.nrows()`.
    pub y: Vec<f64>,
    /// Feature names for reports; `feature_names.len() == x.ncols()`.
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Build a dataset, validating the shape invariants.
    ///
    /// # Panics
    /// Panics if the target length or feature-name count disagrees with `x`.
    pub fn new(x: Matrix, y: Vec<f64>, feature_names: Vec<String>) -> Self {
        assert_eq!(x.nrows(), y.len(), "targets must match sample count");
        assert_eq!(x.ncols(), feature_names.len(), "feature names must match columns");
        Self { x, y, feature_names }
    }

    /// Build with auto-generated feature names `x0, x1, …`.
    pub fn unnamed(x: Matrix, y: Vec<f64>) -> Self {
        let names = (0..x.ncols()).map(|i| format!("x{i}")).collect();
        Self::new(x, y, names)
    }

    /// An empty dataset with the given feature names.
    pub fn empty(feature_names: Vec<String>) -> Self {
        let mut x = Matrix::zeros(0, 0);
        // Fix the width so push_sample validates against it.
        if !feature_names.is_empty() {
            x = Matrix::zeros(0, feature_names.len());
        }
        Self { x, y: vec![], feature_names }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.x.ncols()
    }

    /// Append one labelled sample.
    pub fn push_sample(&mut self, features: &[f64], target: f64) {
        self.x.push_row(features);
        self.y.push(target);
    }

    /// New dataset containing the selected sample indices, in order.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
        }
    }

    /// Deterministic shuffled split into `(train, test)`.
    ///
    /// `test_fraction` is clamped to `[0, 1]`; the split is computed on a
    /// seeded permutation so the same `(seed, fraction)` always produces the
    /// same partition — this is what makes every experiment reproducible.
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let n = self.len();
        let frac = test_fraction.clamp(0.0, 1.0);
        let n_test = (n as f64 * frac).round() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let perm = permutation(&mut rng, n);
        let (test_idx, train_idx) = perm.split_at(n_test.min(n));
        (self.select(train_idx), self.select(test_idx))
    }

    /// Concatenate two datasets with identical schemas.
    ///
    /// # Panics
    /// Panics if feature counts differ.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.n_features(), other.n_features(), "schema mismatch in concat");
        let mut out = self.clone();
        for i in 0..other.len() {
            out.push_sample(other.x.row(i), other.y[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f64);
        let y = (0..n).map(|i| i as f64).collect();
        Dataset::unnamed(x, y)
    }

    #[test]
    fn new_validates() {
        let d = demo(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.feature_names, vec!["x0", "x1"]);
    }

    #[test]
    #[should_panic(expected = "targets must match")]
    fn new_rejects_bad_targets() {
        let _ = Dataset::unnamed(Matrix::zeros(3, 2), vec![1.0]);
    }

    #[test]
    fn push_sample_grows() {
        let mut d = Dataset::empty(vec!["a".into(), "b".into()]);
        d.push_sample(&[1.0, 2.0], 3.0);
        d.push_sample(&[4.0, 5.0], 6.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.x.row(1), &[4.0, 5.0]);
    }

    #[test]
    fn select_keeps_pairing() {
        let d = demo(6);
        let s = d.select(&[5, 0, 3]);
        assert_eq!(s.y, vec![5.0, 0.0, 3.0]);
        assert_eq!(s.x.row(0), &[10.0, 11.0]);
    }

    #[test]
    fn split_partitions() {
        let d = demo(100);
        let (train, test) = d.train_test_split(0.25, 42);
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
        // Every original target appears exactly once across the split.
        let mut all: Vec<f64> = train.y.iter().chain(&test.y).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic() {
        let d = demo(40);
        let (a, _) = d.train_test_split(0.3, 7);
        let (b, _) = d.train_test_split(0.3, 7);
        assert_eq!(a.y, b.y);
        let (c, _) = d.train_test_split(0.3, 8);
        assert_ne!(a.y, c.y, "different seeds should differ (overwhelmingly likely)");
    }

    #[test]
    fn split_extremes() {
        let d = demo(10);
        let (train, test) = d.train_test_split(0.0, 1);
        assert_eq!((train.len(), test.len()), (10, 0));
        let (train, test) = d.train_test_split(1.0, 1);
        assert_eq!((train.len(), test.len()), (0, 10));
    }

    #[test]
    fn concat_appends() {
        let a = demo(3);
        let b = demo(2);
        let c = a.concat(&b);
        assert_eq!(c.len(), 5);
        assert_eq!(c.y[3], 0.0);
    }
}
