//! Feature preprocessing: standardization, min-max scaling, polynomial
//! feature expansion.

use chemcost_linalg::Matrix;

/// Zero-mean, unit-variance scaler (per feature column).
///
/// Constant columns get a scale of 1.0 so transform is a pure shift — the
/// same convention sklearn uses.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Learn per-column mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `x` has no rows.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.nrows() > 0, "cannot fit scaler on empty matrix");
        let (n, d) = x.shape();
        let mut means = vec![0.0; d];
        for i in 0..n {
            for (j, m) in means.iter_mut().enumerate() {
                *m += x[(i, j)];
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        let mut stds = vec![0.0; d];
        for i in 0..n {
            for (j, s) in stds.iter_mut().enumerate() {
                let d = x[(i, j)] - means[j];
                *s += d * d;
            }
        }
        for s in &mut stds {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Apply `(x - mean) / std` column-wise.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.ncols(), self.means.len(), "scaler feature-count mismatch");
        Matrix::from_fn(x.nrows(), x.ncols(), |i, j| (x[(i, j)] - self.means[j]) / self.stds[j])
    }

    /// Invert the transform.
    pub fn inverse_transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.ncols(), self.means.len(), "scaler feature-count mismatch");
        Matrix::from_fn(x.nrows(), x.ncols(), |i, j| x[(i, j)] * self.stds[j] + self.means[j])
    }

    /// Transform a single row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "scaler feature-count mismatch");
        for (j, v) in row.iter_mut().enumerate() {
            *v = (*v - self.means[j]) / self.stds[j];
        }
    }

    /// Learned per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Learned per-column standard deviations (1.0 for constant columns).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// Scaler for the target vector (GP and SVR normalize `y` internally).
#[derive(Debug, Clone, Copy)]
pub struct TargetScaler {
    /// Target mean.
    pub mean: f64,
    /// Target standard deviation (1.0 if degenerate).
    pub std: f64,
}

impl TargetScaler {
    /// Learn mean/std of `y`.
    pub fn fit(y: &[f64]) -> Self {
        let mean = chemcost_linalg::vecops::mean(y);
        let mut std = chemcost_linalg::vecops::std_dev(y);
        if std < 1e-12 {
            std = 1.0;
        }
        Self { mean, std }
    }

    /// `(y - mean) / std` for each element.
    pub fn transform(&self, y: &[f64]) -> Vec<f64> {
        y.iter().map(|v| (v - self.mean) / self.std).collect()
    }

    /// Map a scaled prediction back to the original target unit.
    pub fn inverse(&self, v: f64) -> f64 {
        v * self.std + self.mean
    }

    /// Map a scaled standard deviation back (scale only, no shift).
    pub fn inverse_std(&self, s: f64) -> f64 {
        s * self.std
    }
}

/// Polynomial feature expansion up to `degree`, including all interaction
/// monomials (like sklearn's `PolynomialFeatures` without the bias column —
/// the regression models add their own intercept).
///
/// For input features `(a, b)` and degree 2 the output columns are
/// `a, b, a², ab, b²`.
#[derive(Debug, Clone)]
pub struct PolynomialFeatures {
    degree: usize,
    /// Exponent vectors, one per output feature.
    exponents: Vec<Vec<usize>>,
    n_input: usize,
}

impl PolynomialFeatures {
    /// Enumerate monomials of total degree `1..=degree` over `n_input`
    /// features.
    ///
    /// # Panics
    /// Panics if `degree == 0` or `n_input == 0`.
    pub fn new(n_input: usize, degree: usize) -> Self {
        assert!(degree >= 1, "degree must be >= 1");
        assert!(n_input >= 1, "need at least one input feature");
        let mut exponents = Vec::new();
        let mut current = vec![0usize; n_input];
        // Depth-first enumeration in graded-lexicographic order.
        fn rec(feat: usize, remaining: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if feat == current.len() {
                if current.iter().sum::<usize>() >= 1 {
                    out.push(current.clone());
                }
                return;
            }
            for e in 0..=remaining {
                current[feat] = e;
                rec(feat + 1, remaining - e, current, out);
            }
            current[feat] = 0;
        }
        rec(0, degree, &mut current, &mut exponents);
        // Order by total degree then lexicographic, for stable reports.
        exponents.sort_by_key(|e| {
            (e.iter().sum::<usize>(), e.iter().map(|&x| usize::MAX - x).collect::<Vec<_>>())
        });
        Self { degree, exponents, n_input }
    }

    /// Number of output features.
    pub fn n_output(&self) -> usize {
        self.exponents.len()
    }

    /// The configured degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Expand every row of `x`.
    ///
    /// # Panics
    /// Panics if the column count disagrees with construction.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.ncols(), self.n_input, "polynomial feature-count mismatch");
        Matrix::from_fn(x.nrows(), self.exponents.len(), |i, j| {
            let row = x.row(i);
            self.exponents[j]
                .iter()
                .enumerate()
                .fold(1.0, |acc, (f, &e)| acc * row[f].powi(e as i32))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_scaler_round_trip() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        // Each column now has mean ~0.
        for j in 0..2 {
            let col = t.col(j);
            assert!(chemcost_linalg::vecops::mean(&col).abs() < 1e-12);
            assert!((chemcost_linalg::vecops::std_dev(&col) - 1.0).abs() < 1e-9);
        }
        assert!(s.inverse_transform(&t).max_abs_diff(&x) < 1e-9);
    }

    #[test]
    fn standard_scaler_constant_column() {
        let x = Matrix::from_rows(&[&[7.0], &[7.0], &[7.0]]);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        assert!(t.col(0).iter().all(|&v| v.abs() < 1e-12));
        assert_eq!(s.stds()[0], 1.0);
    }

    #[test]
    fn transform_row_matches_matrix() {
        let x = Matrix::from_rows(&[&[1.0, 4.0], &[3.0, 8.0]]);
        let s = StandardScaler::fit(&x);
        let t = s.transform(&x);
        let mut row = [1.0, 4.0];
        s.transform_row(&mut row);
        assert!((row[0] - t[(0, 0)]).abs() < 1e-12);
        assert!((row[1] - t[(0, 1)]).abs() < 1e-12);
    }

    #[test]
    fn target_scaler_round_trip() {
        let y = [10.0, 20.0, 40.0];
        let s = TargetScaler::fit(&y);
        let t = s.transform(&y);
        for (orig, scaled) in y.iter().zip(&t) {
            assert!((s.inverse(*scaled) - orig).abs() < 1e-12);
        }
    }

    #[test]
    fn poly_degree1_is_identity() {
        let p = PolynomialFeatures::new(3, 1);
        assert_eq!(p.n_output(), 3);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let t = p.transform(&x);
        let mut vals: Vec<f64> = t.row(0).to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn poly_degree2_two_features() {
        let p = PolynomialFeatures::new(2, 2);
        // a, b, a², ab, b² → 5 features.
        assert_eq!(p.n_output(), 5);
        let x = Matrix::from_rows(&[&[2.0, 3.0]]);
        let t = p.transform(&x);
        let mut vals: Vec<f64> = t.row(0).to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, vec![2.0, 3.0, 4.0, 6.0, 9.0]);
    }

    #[test]
    fn poly_output_count_formula() {
        // C(n+d, d) - 1 monomials of degree 1..=d over n variables.
        let p = PolynomialFeatures::new(4, 3);
        assert_eq!(p.n_output(), 35 - 1); // C(7,3)=35 including the constant
    }

    #[test]
    #[should_panic(expected = "degree must be")]
    fn poly_rejects_degree_zero() {
        let _ = PolynomialFeatures::new(2, 0);
    }
}
