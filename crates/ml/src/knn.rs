//! k-nearest-neighbours regression.
//!
//! Not part of the paper's evaluated nine, but a natural cheap baseline
//! for runtime prediction: configurations close in `(O, V, nodes, tile)`
//! run for similar times. Distances are computed on standardized features;
//! predictions are uniform or inverse-distance-weighted means of the `k`
//! nearest training targets.

use crate::preprocessing::StandardScaler;
use crate::traits::{validate_fit_inputs, FitError, Regressor};
use chemcost_linalg::{vecops, Matrix};

/// Neighbour weighting scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnWeights {
    /// Plain mean of the k nearest targets.
    Uniform,
    /// Weight each neighbour by `1 / (distance + ε)`.
    Distance,
}

/// k-NN regressor on standardized features.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    /// Number of neighbours (clamped to the training-set size at fit).
    pub k: usize,
    /// Weighting scheme.
    pub weights: KnnWeights,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    x_train: Matrix,
    y_train: Vec<f64>,
    scaler: StandardScaler,
}

impl KnnRegressor {
    /// Uniform-weighted k-NN.
    pub fn new(k: usize) -> Self {
        Self { k, weights: KnnWeights::Uniform, state: None }
    }

    /// Inverse-distance-weighted k-NN.
    pub fn distance_weighted(k: usize) -> Self {
        Self { k, weights: KnnWeights::Distance, state: None }
    }

    fn predict_row(&self, st: &Fitted, row: &[f64]) -> f64 {
        let n = st.x_train.nrows();
        let k = self.k.clamp(1, n);
        // Squared distances to every training point; partial select of k.
        let mut dists: Vec<(f64, usize)> =
            (0..n).map(|i| (vecops::sq_dist(st.x_train.row(i), row), i)).collect();
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        let nearest = &dists[..k];
        match self.weights {
            KnnWeights::Uniform => {
                nearest.iter().map(|&(_, i)| st.y_train[i]).sum::<f64>() / k as f64
            }
            KnnWeights::Distance => {
                let mut num = 0.0;
                let mut den = 0.0;
                for &(d2, i) in nearest {
                    let w = 1.0 / (d2.sqrt() + 1e-12);
                    num += w * st.y_train[i];
                    den += w;
                }
                num / den
            }
        }
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        if self.k == 0 {
            return Err(FitError::InvalidHyperParameter("k must be >= 1".into()));
        }
        let scaler = StandardScaler::fit(x);
        self.state = Some(Fitted { x_train: scaler.transform(x), y_train: y.to_vec(), scaler });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let st = self.state.as_ref().expect("KnnRegressor::predict before fit");
        let xs = st.scaler.transform(x);
        (0..xs.nrows()).map(|i| self.predict_row(st, xs.row(i))).collect()
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn grid_data(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 2, |i, j| ((i * (j + 1)) % 25) as f64);
        let y = (0..n).map(|i| x[(i, 0)] * 2.0 + x[(i, 1)]).collect();
        (x, y)
    }

    #[test]
    fn k1_memorizes_training_set() {
        let (x, y) = grid_data(60);
        let mut knn = KnnRegressor::new(1);
        knn.fit(&x, &y).unwrap();
        // With distinct rows, 1-NN at a training point returns its target.
        let pred = knn.predict(&x);
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn larger_k_smooths() {
        let (x, mut y) = grid_data(80);
        // Inject one outlier.
        y[10] += 1000.0;
        let probe = x.select_rows(&[10]);
        let mut k1 = KnnRegressor::new(1);
        k1.fit(&x, &y).unwrap();
        let mut k15 = KnnRegressor::new(15);
        k15.fit(&x, &y).unwrap();
        let p1 = k1.predict(&probe)[0];
        let p15 = k15.predict(&probe)[0];
        assert!(p1 > p15, "more neighbours should dilute the outlier ({p1} vs {p15})");
    }

    #[test]
    fn distance_weighting_tracks_local_structure() {
        let x = Matrix::from_fn(50, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..50).map(|i| i as f64 * 3.0).collect();
        let mut knn = KnnRegressor::distance_weighted(5);
        knn.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &knn.predict(&x)) > 0.99);
    }

    #[test]
    fn interpolates_between_points() {
        let x = Matrix::from_rows(&[&[0.0], &[10.0]]);
        let y = vec![0.0, 100.0];
        let mut knn = KnnRegressor::new(2);
        knn.fit(&x, &y).unwrap();
        let p = knn.predict(&Matrix::from_rows(&[&[5.0]]))[0];
        assert!((p - 50.0).abs() < 1e-9, "uniform 2-NN midpoint = mean");
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let (x, y) = grid_data(5);
        let mut knn = KnnRegressor::new(100);
        knn.fit(&x, &y).unwrap();
        let mean = chemcost_linalg::vecops::mean(&y);
        for p in knn.predict(&x) {
            assert!((p - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_k_zero() {
        let (x, y) = grid_data(5);
        let mut knn = KnnRegressor::new(0);
        assert!(matches!(knn.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
    }
}
