//! CART regression trees (paper §3.1, "DT").
//!
//! Variance-reduction splitting with the usual structural controls
//! (`max_depth`, `min_samples_split`, `min_samples_leaf`) and per-node
//! feature subsampling (`max_features`) for use inside random forests.
//! Nodes live in a flat arena (`Vec<Node>`), which keeps prediction a tight
//! pointer-free loop.

use crate::rand_util::sample_without_replacement;
use crate::traits::{validate_fit_inputs, FitError, Regressor};
use chemcost_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many features to consider per split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (classic CART, default for GB).
    All,
    /// ⌈√d⌉ features (random-forest default).
    Sqrt,
    /// An explicit count (clamped to `d`).
    Count(usize),
}

impl MaxFeatures {
    fn resolve(self, d: usize) -> usize {
        match self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Count(c) => c.clamp(1, d),
        }
        .clamp(1, d)
    }
}

/// A flat, serialization-friendly tree node. Leaves are encoded with
/// `feature == u32::MAX`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatNode {
    /// Split feature index, or `u32::MAX` for a leaf.
    pub feature: u32,
    /// Split threshold (unused for leaves).
    pub threshold: f64,
    /// Left child index (unused for leaves).
    pub left: u32,
    /// Right child index (unused for leaves).
    pub right: u32,
    /// Leaf value (unused for splits).
    pub value: f64,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A CART regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum tree depth (root = depth 0). `usize::MAX` for unbounded.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Feature subsampling policy per node.
    pub max_features: MaxFeatures,
    /// Seed for feature subsampling (only consulted when subsampling).
    pub seed: u64,
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// A tree with the given depth cap and otherwise-default controls.
    pub fn new(max_depth: usize) -> Self {
        Self {
            max_depth,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            seed: 0,
            nodes: Vec::new(),
        }
    }

    /// Number of nodes in the fitted tree (0 before fit).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves in the fitted tree.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Depth of the fitted tree (leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, left).max(rec(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[f64],
        indices: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let n = indices.len();
        let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / n as f64;
        let sse: f64 = indices.iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum();
        let make_leaf = depth >= self.max_depth
            || n < self.min_samples_split
            || n < 2 * self.min_samples_leaf
            || sse <= 1e-12;
        if !make_leaf {
            if let Some((feature, threshold)) = self.best_split(x, y, indices, rng) {
                // Partition in place around the threshold.
                let mut lo = 0usize;
                let mut hi = n;
                while lo < hi {
                    if x[(indices[lo], feature)] <= threshold {
                        lo += 1;
                    } else {
                        hi -= 1;
                        indices.swap(lo, hi);
                    }
                }
                // Guaranteed by best_split's min_samples_leaf handling, but
                // degenerate float comparisons are worth guarding.
                if lo >= self.min_samples_leaf && n - lo >= self.min_samples_leaf {
                    let id = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: mean }); // placeholder
                    let (left_idx, right_idx) = indices.split_at_mut(lo);
                    let left = self.build(x, y, left_idx, depth + 1, rng);
                    let right = self.build(x, y, right_idx, depth + 1, rng);
                    self.nodes[id] = Node::Split { feature, threshold, left, right };
                    return id;
                }
            }
        }
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        id
    }

    /// Best `(feature, threshold)` by SSE reduction, or `None` when no
    /// valid split exists.
    fn best_split(
        &self,
        x: &Matrix,
        y: &[f64],
        indices: &[usize],
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let d = x.ncols();
        let k = self.max_features.resolve(d);
        let features: Vec<usize> =
            if k == d { (0..d).collect() } else { sample_without_replacement(rng, d, k) };
        let n = indices.len();
        let total_sum: f64 = indices.iter().map(|&i| y[i]).sum();
        let mut best: Option<(f64, usize, f64)> = None; // (score, feature, threshold)
        let mut order: Vec<usize> = Vec::with_capacity(n);
        for &f in &features {
            order.clear();
            order.extend_from_slice(indices);
            order.sort_unstable_by(|&a, &b| {
                x[(a, f)].partial_cmp(&x[(b, f)]).unwrap_or(std::cmp::Ordering::Equal)
            });
            // Scan split positions; maximizing SSE reduction is equivalent
            // to maximizing sumL²/nL + sumR²/nR.
            let mut sum_left = 0.0;
            for pos in 1..n {
                let prev = order[pos - 1];
                sum_left += y[prev];
                let v_prev = x[(prev, f)];
                let v_next = x[(order[pos], f)];
                if v_next <= v_prev {
                    continue; // tied feature values cannot separate
                }
                if pos < self.min_samples_leaf || n - pos < self.min_samples_leaf {
                    continue;
                }
                let n_left = pos as f64;
                let n_right = (n - pos) as f64;
                let sum_right = total_sum - sum_left;
                let score = sum_left * sum_left / n_left + sum_right * sum_right / n_right;
                if best.is_none_or(|(b, _, _)| score > b) {
                    // Midpoint threshold, robust to duplicated values.
                    best = Some((score, f, 0.5 * (v_prev + v_next)));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    /// Export the fitted tree as flat, serializable nodes
    /// (see [`FlatNode`]); empty before fit.
    pub fn export_nodes(&self) -> Vec<FlatNode> {
        self.nodes
            .iter()
            .map(|n| match *n {
                Node::Leaf { value } => {
                    FlatNode { feature: u32::MAX, threshold: 0.0, left: 0, right: 0, value }
                }
                Node::Split { feature, threshold, left, right } => FlatNode {
                    feature: feature as u32,
                    threshold,
                    left: left as u32,
                    right: right as u32,
                    value: 0.0,
                },
            })
            .collect()
    }

    /// Rebuild a fitted tree from flat nodes (inverse of
    /// [`DecisionTree::export_nodes`]). Structural hyper-parameters are
    /// reset to defaults — the imported tree is for prediction only.
    ///
    /// # Panics
    /// Panics if any child index is out of range.
    pub fn from_flat(nodes: &[FlatNode]) -> Self {
        let n = nodes.len();
        let decoded = nodes
            .iter()
            .map(|f| {
                if f.feature == u32::MAX {
                    Node::Leaf { value: f.value }
                } else {
                    assert!((f.left as usize) < n && (f.right as usize) < n, "child out of range");
                    Node::Split {
                        feature: f.feature as usize,
                        threshold: f.threshold,
                        left: f.left as usize,
                        right: f.right as usize,
                    }
                }
            })
            .collect();
        let mut t = DecisionTree::new(usize::MAX);
        t.nodes = decoded;
        t
    }

    /// Node index of the leaf a sample lands in.
    ///
    /// # Panics
    /// Panics before fit.
    pub fn leaf_of(&self, row: &[f64]) -> usize {
        assert!(!self.nodes.is_empty(), "DecisionTree::leaf_of before fit");
        let mut i = 0;
        loop {
            match self.nodes[i] {
                Node::Leaf { .. } => return i,
                Node::Split { feature, threshold, left, right } => {
                    i = if row[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    /// Overwrite a leaf's prediction value (used by gradient boosting's
    /// robust-loss terminal-region re-estimation).
    ///
    /// # Panics
    /// Panics if `node` is not a leaf.
    pub fn set_leaf_value(&mut self, node: usize, value: f64) {
        match &mut self.nodes[node] {
            Node::Leaf { value: v } => *v = value,
            Node::Split { .. } => panic!("node {node} is not a leaf"),
        }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match self.nodes[i] {
                Node::Leaf { value } => return value,
                Node::Split { feature, threshold, left, right } => {
                    i = if row[feature] <= threshold { left } else { right };
                }
            }
        }
    }
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        self.nodes.clear();
        let mut indices: Vec<usize> = (0..x.nrows()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.build(x, y, &mut indices, 0, &mut rng);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(!self.nodes.is_empty(), "DecisionTree::predict before fit");
        (0..x.nrows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn fits_step_function_exactly() {
        let x = Matrix::from_fn(20, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let mut t = DecisionTree::new(3);
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&x), y);
        // One split is enough.
        assert_eq!(t.n_leaves(), 2);
    }

    #[test]
    fn depth_zero_predicts_mean() {
        let x = Matrix::from_fn(10, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut t = DecisionTree::new(0);
        t.fit(&x, &y).unwrap();
        let p = t.predict(&x);
        assert!(p.iter().all(|&v| (v - 4.5).abs() < 1e-12));
    }

    #[test]
    fn respects_max_depth() {
        let x = Matrix::from_fn(128, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..128).map(|i| (i as f64).sin()).collect();
        let mut t = DecisionTree::new(3);
        t.fit(&x, &y).unwrap();
        assert!(t.depth() <= 3);
        assert!(t.n_leaves() <= 8);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let x = Matrix::from_fn(30, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..30).map(|i| i as f64 * 2.0).collect();
        let mut t = DecisionTree::new(10);
        t.min_samples_leaf = 10;
        t.fit(&x, &y).unwrap();
        // With 30 samples and min 10 per leaf, at most 3 leaves.
        assert!(t.n_leaves() <= 3);
    }

    #[test]
    fn deep_tree_interpolates_distinct_xs() {
        let x = Matrix::from_fn(64, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..64).map(|i| ((i * 37) % 19) as f64).collect();
        let mut t = DecisionTree::new(usize::MAX);
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn two_feature_interaction() {
        // y depends on x1 only; the tree should ignore x0.
        let x =
            Matrix::from_fn(100, 2, |i, j| if j == 0 { (i % 10) as f64 } else { (i / 10) as f64 });
        let y: Vec<f64> = (0..100).map(|i| if (i / 10) < 5 { 0.0 } else { 10.0 }).collect();
        let mut t = DecisionTree::new(2);
        t.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &t.predict(&x)) > 0.999);
    }

    #[test]
    fn predictions_within_target_range() {
        let x = Matrix::from_fn(50, 2, |i, j| ((i * 7 + j * 13) % 23) as f64);
        let y: Vec<f64> = (0..50).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut t = DecisionTree::new(6);
        t.fit(&x, &y).unwrap();
        let (lo, hi) = y.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        for p in t.predict(&x) {
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn constant_target_single_leaf() {
        let x = Matrix::from_fn(25, 3, |i, j| (i * j) as f64);
        let y = vec![4.2; 25];
        let mut t = DecisionTree::new(8);
        t.fit(&x, &y).unwrap();
        assert_eq!(t.n_nodes(), 1);
        assert!(t.predict(&x).iter().all(|&p| (p - 4.2).abs() < 1e-12));
    }

    #[test]
    fn feature_subsampling_still_fits() {
        let x = Matrix::from_fn(200, 4, |i, j| ((i * (j + 3)) % 29) as f64);
        let y: Vec<f64> = (0..200).map(|i| x[(i, 1)] * 2.0 + x[(i, 3)]).collect();
        let mut t = DecisionTree::new(10);
        t.max_features = MaxFeatures::Sqrt;
        t.seed = 7;
        t.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &t.predict(&x)) > 0.8);
    }

    #[test]
    fn duplicate_feature_values_no_invalid_split() {
        // All feature values identical → no split possible.
        let x = Matrix::from_fn(10, 1, |_, _| 3.0);
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut t = DecisionTree::new(5);
        t.fit(&x, &y).unwrap();
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(9), 9);
        assert_eq!(MaxFeatures::Sqrt.resolve(9), 3);
        assert_eq!(MaxFeatures::Sqrt.resolve(10), 4);
        assert_eq!(MaxFeatures::Count(100).resolve(4), 4);
        assert_eq!(MaxFeatures::Count(0).resolve(4), 1);
    }
}
