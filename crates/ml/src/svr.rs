//! ε-insensitive support-vector regression (paper §3.1, "SVR").
//!
//! Trains the kernelized ε-SVR dual **without offset** (targets are
//! centred/normalized internally, which removes the need for the bias
//! equality constraint) by cyclic coordinate descent with soft
//! thresholding:
//!
//! minimize  ½ βᵀKβ − yᵀβ + ε‖β‖₁   s.t.  |βᵢ| ≤ C
//!
//! Each coordinate has a closed-form update `β* = clip(Sε(yᵢ − gᵢ)/Kᵢᵢ)`
//! where `gᵢ` is the partial residual and `Sε` the soft-threshold — the
//! same structure as liblinear-style dual coordinate descent. For RBF
//! kernels on standardized features this converges in a few dozen sweeps.

use crate::kernel::Kernel;
use crate::preprocessing::{StandardScaler, TargetScaler};
use crate::traits::{validate_fit_inputs, FitError, Regressor};
use chemcost_linalg::Matrix;

/// ε-SVR with a configurable kernel.
#[derive(Debug, Clone)]
pub struct Svr {
    /// Box constraint (regularization inverse).
    pub c: f64,
    /// Width of the ε-insensitive tube (in *normalized* target units).
    pub epsilon: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the largest coordinate change per sweep.
    pub tol: f64,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    x_train: Matrix,
    beta: Vec<f64>,
    scaler: StandardScaler,
    yscaler: TargetScaler,
}

impl Svr {
    /// RBF-kernel SVR.
    pub fn rbf(c: f64, epsilon: f64, gamma: f64) -> Self {
        Self { c, epsilon, kernel: Kernel::Rbf { gamma }, max_iter: 200, tol: 1e-6, state: None }
    }

    /// Number of support vectors (nonzero duals); `None` before fit.
    pub fn n_support(&self) -> Option<usize> {
        self.state.as_ref().map(|s| s.beta.iter().filter(|b| b.abs() > 1e-12).count())
    }
}

impl Regressor for Svr {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        if self.c <= 0.0 || self.c.is_nan() {
            return Err(FitError::InvalidHyperParameter(format!("C must be > 0, got {}", self.c)));
        }
        if self.epsilon < 0.0 {
            return Err(FitError::InvalidHyperParameter(format!(
                "epsilon must be >= 0, got {}",
                self.epsilon
            )));
        }
        self.kernel.validate().map_err(FitError::InvalidHyperParameter)?;
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform(x);
        let yscaler = TargetScaler::fit(y);
        let ys = yscaler.transform(y);
        let n = xs.nrows();
        let k = self.kernel.matrix(&xs);
        let mut beta = vec![0.0; n];
        // f[i] = Σⱼ K[i,j] βⱼ, maintained incrementally.
        let mut f = vec![0.0; n];
        for _sweep in 0..self.max_iter {
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let kii = k[(i, i)].max(1e-12);
                // Partial residual excluding i's own contribution.
                let g = f[i] - kii * beta[i];
                let z = ys[i] - g;
                // Soft threshold by ε then clip to the box.
                let unclipped = if z > self.epsilon {
                    (z - self.epsilon) / kii
                } else if z < -self.epsilon {
                    (z + self.epsilon) / kii
                } else {
                    0.0
                };
                let new_beta = unclipped.clamp(-self.c, self.c);
                let delta = new_beta - beta[i];
                if delta != 0.0 {
                    // Update cached kernel expansion.
                    let krow = k.row(i);
                    for (fj, kij) in f.iter_mut().zip(krow) {
                        *fj += delta * kij;
                    }
                    beta[i] = new_beta;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        self.state = Some(Fitted { x_train: xs, beta, scaler, yscaler });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let st = self.state.as_ref().expect("Svr::predict before fit");
        let xs = st.scaler.transform(x);
        let k = self.kernel.cross_matrix(&xs, &st.x_train);
        k.matvec(&st.beta).into_iter().map(|v| st.yscaler.inverse(v)).collect()
    }

    fn name(&self) -> &'static str {
        "SVR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mae, r2_score};

    fn wave(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 * 8.0 / n as f64);
        let y = (0..n).map(|i| (x[(i, 0)]).sin() * 4.0 + 10.0).collect();
        (x, y)
    }

    #[test]
    fn fits_sine_wave() {
        let (x, y) = wave(100);
        let mut svr = Svr::rbf(10.0, 0.01, 1.0);
        svr.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &svr.predict(&x)) > 0.99, "r2 {}", r2_score(&y, &svr.predict(&x)));
    }

    #[test]
    fn wide_tube_gives_sparser_model() {
        let (x, y) = wave(80);
        let mut narrow = Svr::rbf(10.0, 0.001, 1.0);
        narrow.fit(&x, &y).unwrap();
        let mut wide = Svr::rbf(10.0, 0.5, 1.0);
        wide.fit(&x, &y).unwrap();
        assert!(
            wide.n_support().unwrap() <= narrow.n_support().unwrap(),
            "wider tube should not use more support vectors"
        );
    }

    #[test]
    fn predictions_within_epsilon_ball_when_unconstrained() {
        let (x, y) = wave(60);
        let mut svr = Svr::rbf(1e4, 0.05, 2.0);
        svr.fit(&x, &y).unwrap();
        // With a huge C the training error should sit near the tube width
        // (in normalized units the tube is 0.05 σ_y).
        let sigma = chemcost_linalg::vecops::std_dev(&y);
        assert!(mae(&y, &svr.predict(&x)) < 0.1 * sigma);
    }

    #[test]
    fn small_c_flattens_model() {
        let (x, y) = wave(60);
        let mut svr = Svr::rbf(1e-6, 0.01, 1.0);
        svr.fit(&x, &y).unwrap();
        let mean = chemcost_linalg::vecops::mean(&y);
        // Heavy regularization keeps predictions near the target mean.
        for p in svr.predict(&x) {
            assert!((p - mean).abs() < 2.0, "prediction {p} should hug the mean {mean}");
        }
    }

    #[test]
    fn duals_respect_box() {
        let (x, y) = wave(50);
        let c = 0.7;
        let mut svr = Svr::rbf(c, 0.01, 1.0);
        svr.fit(&x, &y).unwrap();
        let st = svr.state.as_ref().unwrap();
        assert!(st.beta.iter().all(|b| b.abs() <= c + 1e-12));
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let (x, y) = wave(10);
        let mut svr = Svr::rbf(0.0, 0.1, 1.0);
        assert!(matches!(svr.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
        let mut svr = Svr::rbf(1.0, -0.1, 1.0);
        assert!(matches!(svr.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
    }

    #[test]
    fn multivariate_input() {
        let x = Matrix::from_fn(150, 3, |i, j| (((i + 1) * (j + 2)) % 17) as f64);
        let y: Vec<f64> = (0..150)
            .map(|i| {
                let r = x.row(i);
                r[0] * 0.5 + (r[1] * 0.3).cos() * 3.0 + r[2]
            })
            .collect();
        let mut svr = Svr::rbf(50.0, 0.01, 0.5);
        svr.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &svr.predict(&x)) > 0.95);
    }
}
