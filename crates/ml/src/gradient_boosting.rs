//! Gradient-boosted regression trees (paper §3.1, "GB").
//!
//! Each stage fits a depth-capped CART tree to the current loss gradient,
//! scaled by a learning rate, with optional row subsampling (stochastic
//! gradient boosting). This is the model the paper selects after
//! hyper-parameter optimization (750 estimators, depth 10) and deploys for
//! both the STQ/BQ advisor and the QC active-learning committee.
//!
//! Beyond the paper's squared-error setup, the implementation supports the
//! robust losses of classic GBM (absolute error, Huber) with Friedman's
//! terminal-region re-estimation, and validation-based early stopping —
//! both useful on noisy machines where a few straggler-corrupted
//! measurements would otherwise pull the squared loss around.

use crate::rand_util::sample_without_replacement;
use crate::traits::{validate_fit_inputs, FitError, Regressor};
use crate::tree::DecisionTree;
use chemcost_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Loss minimized by the boosting stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GbLoss {
    /// ½(y−f)² — the paper's setting.
    SquaredError,
    /// |y−f| (LAD): stages fit sign residuals, leaves re-estimated as
    /// in-leaf medians.
    AbsoluteError,
    /// Huber with the transition point at the `alpha`-quantile of the
    /// absolute residuals (sklearn's parameterization; 0.9 typical).
    Huber {
        /// Quantile in (0, 1) selecting the clipping threshold δ.
        alpha: f64,
    },
}

/// Gradient boosting regressor.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    /// Number of boosting stages.
    pub n_estimators: usize,
    /// Depth cap per stage tree.
    pub max_depth: usize,
    /// Shrinkage applied to each stage's contribution (0 < lr ≤ 1).
    pub learning_rate: f64,
    /// Fraction of rows sampled (without replacement) per stage; 1.0
    /// disables subsampling.
    pub subsample: f64,
    /// Minimum samples per leaf in stage trees.
    pub min_samples_leaf: usize,
    /// Seed for subsampling.
    pub seed: u64,
    /// Stage loss.
    pub loss: GbLoss,
    /// Early stopping: stop after this many stages without validation
    /// improvement (`None` disables; sklearn's `n_iter_no_change`).
    pub n_iter_no_change: Option<usize>,
    /// Fraction of training rows held out for early stopping.
    pub validation_fraction: f64,
    /// Minimum validation-loss improvement that counts as progress.
    pub tol: f64,
    init: f64,
    n_features: usize,
    trees: Vec<DecisionTree>,
}

impl GradientBoosting {
    /// GB with the given shape; `subsample = 1.0`.
    pub fn new(n_estimators: usize, max_depth: usize, learning_rate: f64) -> Self {
        Self {
            n_estimators,
            max_depth,
            learning_rate,
            subsample: 1.0,
            min_samples_leaf: 1,
            seed: 0,
            loss: GbLoss::SquaredError,
            n_iter_no_change: None,
            validation_fraction: 0.1,
            tol: 1e-4,
            init: 0.0,
            n_features: 0,
            trees: Vec::new(),
        }
    }

    /// The paper's deployed configuration: 750 estimators, depth 10,
    /// other hyper-parameters at defaults (sklearn lr = 0.1).
    pub fn paper_config() -> Self {
        Self::new(750, 10, 0.1)
    }

    /// Fitted stage count (may be < `n_estimators` if residuals vanish).
    pub fn n_stages(&self) -> usize {
        self.trees.len()
    }

    /// Export the fitted ensemble for persistence: `(init, learning_rate,
    /// n_features, per-stage flat trees)`.
    pub fn export(&self) -> (f64, f64, usize, Vec<Vec<crate::tree::FlatNode>>) {
        (
            self.init,
            self.learning_rate,
            self.n_features,
            self.trees.iter().map(|t| t.export_nodes()).collect(),
        )
    }

    /// Rebuild a fitted ensemble from [`GradientBoosting::export`] output.
    /// The result is prediction-ready; refitting re-derives everything.
    pub fn from_export(
        init: f64,
        learning_rate: f64,
        n_features: usize,
        trees: &[Vec<crate::tree::FlatNode>],
    ) -> Self {
        let mut gb = GradientBoosting::new(trees.len().max(1), 0, learning_rate);
        gb.init = init;
        gb.n_features = n_features;
        gb.trees = trees.iter().map(|t| DecisionTree::from_flat(t)).collect();
        gb
    }

    /// Number of features the model was fitted on (0 before fit).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Staged predictions: the model's output after each boosting stage for
    /// a single row. Useful for picking early-stopping points.
    pub fn staged_predict_one(&self, row: &[f64]) -> Vec<f64> {
        let mut acc = self.init;
        self.trees
            .iter()
            .map(|t| {
                acc += self.learning_rate * t.predict_one(row);
                acc
            })
            .collect()
    }

    /// Hyper-parameter checks shared by [`Regressor::fit`] and
    /// [`GradientBoosting::fit_more`].
    fn validate_hyperparams(&self) -> Result<(), FitError> {
        if self.n_estimators == 0 {
            return Err(FitError::InvalidHyperParameter("n_estimators must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.learning_rate) || self.learning_rate == 0.0 {
            return Err(FitError::InvalidHyperParameter(format!(
                "learning_rate must be in (0, 1], got {}",
                self.learning_rate
            )));
        }
        if !(0.0..=1.0).contains(&self.subsample) || self.subsample == 0.0 {
            return Err(FitError::InvalidHyperParameter(format!(
                "subsample must be in (0, 1], got {}",
                self.subsample
            )));
        }
        if let GbLoss::Huber { alpha } = self.loss {
            if !(alpha > 0.0 && alpha < 1.0) {
                return Err(FitError::InvalidHyperParameter(format!(
                    "Huber alpha must be in (0, 1), got {alpha}"
                )));
            }
        }
        Ok(())
    }

    /// Run up to `budget` boosting stages, appending trees to the ensemble
    /// and updating the running prediction `f` (one entry per row of `x`)
    /// in place. `fit_rows` are the row indices stages fit on; `val_rows`
    /// drive early stopping (empty disables it). Cold fit and warm start
    /// share this loop so their stage arithmetic cannot drift apart.
    #[allow(clippy::too_many_arguments)]
    fn boost(
        &mut self,
        x: &Matrix,
        y: &[f64],
        fit_rows: &[usize],
        val_rows: &[usize],
        f: &mut [f64],
        rng: &mut StdRng,
        budget: usize,
    ) {
        let loss = self.loss;
        let n_sub = ((fit_rows.len() as f64) * self.subsample).round().max(1.0) as usize;

        let val_loss = |f: &[f64]| -> f64 {
            val_rows
                .iter()
                .map(|&i| {
                    let r = y[i] - f[i];
                    match loss {
                        GbLoss::SquaredError => 0.5 * r * r,
                        GbLoss::AbsoluteError => r.abs(),
                        GbLoss::Huber { .. } => 0.5 * r * r, // proxy; δ varies per stage
                    }
                })
                .sum::<f64>()
                / val_rows.len().max(1) as f64
        };
        let mut best_val = f64::INFINITY;
        let mut stale = 0usize;

        for _stage in 0..budget {
            // Actual residuals on the fitting rows.
            let residual: Vec<f64> = fit_rows.iter().map(|&i| y[i] - f[i]).collect();
            if residual.iter().all(|r| r.abs() < 1e-12) {
                break; // perfectly fitted; further stages are no-ops
            }
            // Huber clipping threshold from the residual distribution.
            let delta = match loss {
                GbLoss::Huber { alpha } => {
                    let mut abs: Vec<f64> = residual.iter().map(|r| r.abs()).collect();
                    abs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                    let idx = ((abs.len() as f64 - 1.0) * alpha).round() as usize;
                    abs[idx].max(1e-12)
                }
                _ => 0.0,
            };
            // Pseudo-residuals (negative gradients).
            let pseudo: Vec<f64> = residual
                .iter()
                .map(|&r| match loss {
                    GbLoss::SquaredError => r,
                    GbLoss::AbsoluteError => r.signum(),
                    GbLoss::Huber { .. } => r.clamp(-delta, delta),
                })
                .collect();

            let mut tree = DecisionTree::new(self.max_depth);
            tree.min_samples_leaf = self.min_samples_leaf;
            tree.seed = rng.gen();
            // Rows the tree is fitted on (positions into fit_rows).
            let positions: Vec<usize> = if n_sub < fit_rows.len() {
                sample_without_replacement(rng, fit_rows.len(), n_sub)
            } else {
                (0..fit_rows.len()).collect()
            };
            let xs = x.select_rows(&positions.iter().map(|&p| fit_rows[p]).collect::<Vec<_>>());
            let ps: Vec<f64> = positions.iter().map(|&p| pseudo[p]).collect();
            tree.fit(&xs, &ps).expect("validated inputs");

            // Robust losses: re-estimate leaf values from the *actual*
            // residuals of all fitting rows (Friedman's terminal-region
            // update), not the pseudo-residual means.
            if loss != GbLoss::SquaredError {
                use std::collections::HashMap;
                let mut leaves: HashMap<usize, Vec<f64>> = HashMap::new();
                for (p, &row) in fit_rows.iter().enumerate() {
                    let leaf = tree.leaf_of(x.row(row));
                    leaves.entry(leaf).or_default().push(residual[p]);
                }
                for (leaf, rs) in leaves {
                    let value = match loss {
                        GbLoss::AbsoluteError => median(&rs),
                        GbLoss::Huber { .. } => {
                            let m = median(&rs);
                            let adj: f64 = rs
                                .iter()
                                .map(|&r| (r - m).signum() * (r - m).abs().min(delta))
                                .sum::<f64>()
                                / rs.len() as f64;
                            m + adj
                        }
                        GbLoss::SquaredError => unreachable!(),
                    };
                    tree.set_leaf_value(leaf, value);
                }
            }

            // Update the running model on *all* rows.
            for (fi, p) in f.iter_mut().zip(tree.predict(x)) {
                *fi += self.learning_rate * p;
            }
            self.trees.push(tree);

            // Early stopping check.
            if let Some(patience) = self.n_iter_no_change {
                if !val_rows.is_empty() {
                    let loss_now = val_loss(f);
                    if loss_now < best_val - self.tol {
                        best_val = loss_now;
                        stale = 0;
                    } else {
                        stale += 1;
                        if stale >= patience {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Warm start: continue boosting an already-fitted ensemble with up to
    /// `n_more` additional stages on fresh data, keeping every existing
    /// tree. The new stages fit the residual of the *current* model on
    /// `(x, y)`, so knowledge from the original training set is retained
    /// while the ensemble adapts to the new measurements — the refit mode
    /// the in-service lifecycle trainer uses on redeemed observations.
    ///
    /// The stage RNG is re-seeded from `seed` mixed with the current stage
    /// count, so successive warm starts are deterministic yet draw
    /// different subsamples than the cold fit. No early-stopping holdout is
    /// carved from `x` (the caller's shadow window judges the candidate).
    ///
    /// Errors if the model has never been fitted, `n_more` is zero, the
    /// feature count disagrees with the original fit, or inputs /
    /// hyper-parameters fail the same validation as [`Regressor::fit`].
    /// Note that a model rebuilt by [`GradientBoosting::from_export`] has
    /// `max_depth = 0` (depth is not persisted); set a real depth before
    /// warm-starting or the new stages will be constant stumps.
    pub fn fit_more(&mut self, x: &Matrix, y: &[f64], n_more: usize) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        self.validate_hyperparams()?;
        if n_more == 0 {
            return Err(FitError::InvalidHyperParameter("n_more must be >= 1".into()));
        }
        if self.n_features == 0 {
            return Err(FitError::InvalidHyperParameter(
                "fit_more requires a fitted model; call fit first".into(),
            ));
        }
        if x.ncols() != self.n_features {
            return Err(FitError::InvalidHyperParameter(format!(
                "fit_more: {} feature columns but the model was fitted on {}",
                x.ncols(),
                self.n_features
            )));
        }
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (self.trees.len() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let fit_rows: Vec<usize> = (0..x.nrows()).collect();
        let mut f = self.predict(x);
        self.boost(x, y, &fit_rows, &[], &mut f, &mut rng, n_more);
        Ok(())
    }
}

/// Median of a non-empty slice (copy + sort; stage-level cost is fine).
fn median(v: &[f64]) -> f64 {
    debug_assert!(!v.is_empty());
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        self.validate_hyperparams()?;
        let n = x.nrows();
        self.n_features = x.ncols();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Early-stopping split: hold out a validation slice of row indices.
        let (fit_rows, val_rows): (Vec<usize>, Vec<usize>) = match self.n_iter_no_change {
            Some(_) if n >= 10 => {
                let n_val =
                    ((n as f64) * self.validation_fraction.clamp(0.05, 0.5)).round() as usize;
                let perm = crate::rand_util::permutation(&mut rng, n);
                let (val, fit) = perm.split_at(n_val.max(1));
                (fit.to_vec(), val.to_vec())
            }
            _ => ((0..n).collect(), Vec::new()),
        };

        self.init = match self.loss {
            GbLoss::SquaredError => {
                fit_rows.iter().map(|&i| y[i]).sum::<f64>() / fit_rows.len() as f64
            }
            // Robust losses start from the median.
            GbLoss::AbsoluteError | GbLoss::Huber { .. } => {
                median(&fit_rows.iter().map(|&i| y[i]).collect::<Vec<_>>())
            }
        };
        self.trees = Vec::with_capacity(self.n_estimators);
        let mut f: Vec<f64> = vec![self.init; n];
        let budget = self.n_estimators;
        self.boost(x, y, &fit_rows, &val_rows, &mut f, &mut rng, budget);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert!(
            !self.trees.is_empty() || self.init != 0.0 || self.n_estimators > 0,
            "GradientBoosting::predict before fit"
        );
        if self.n_features > 0 {
            assert_eq!(
                x.ncols(),
                self.n_features,
                "GradientBoosting::predict: feature-count mismatch"
            );
        }
        let mut out = vec![self.init; x.nrows()];
        for tree in &self.trees {
            for (o, p) in out.iter_mut().zip(tree.predict(x)) {
                *o += self.learning_rate * p;
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "GB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mape, r2_score};

    fn wavy(n: usize) -> (Matrix, Vec<f64>) {
        let x =
            Matrix::from_fn(
                n,
                2,
                |i, j| {
                    if j == 0 {
                        (i as f64) * 0.1
                    } else {
                        ((i * 17) % 13) as f64
                    }
                },
            );
        let y = (0..n).map(|i| (x[(i, 0)]).sin() * 5.0 + x[(i, 1)] * 2.0 + 10.0).collect();
        (x, y)
    }

    #[test]
    fn drives_training_error_down() {
        let (x, y) = wavy(200);
        let mut gb = GradientBoosting::new(200, 3, 0.1);
        gb.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &gb.predict(&x)) > 0.999);
        assert!(mape(&y, &gb.predict(&x)) < 0.01);
    }

    #[test]
    fn more_stages_monotonically_reduce_training_error() {
        let (x, y) = wavy(150);
        let mut small = GradientBoosting::new(10, 3, 0.1);
        small.fit(&x, &y).unwrap();
        let mut big = GradientBoosting::new(200, 3, 0.1);
        big.fit(&x, &y).unwrap();
        let e_small = crate::metrics::mse(&y, &small.predict(&x));
        let e_big = crate::metrics::mse(&y, &big.predict(&x));
        assert!(e_big < e_small, "more stages should fit better: {e_big} vs {e_small}");
    }

    #[test]
    fn stops_early_on_perfect_fit() {
        // A step function a single depth-1 tree can capture exactly.
        let x = Matrix::from_fn(20, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let mut gb = GradientBoosting::new(500, 2, 1.0);
        gb.fit(&x, &y).unwrap();
        assert!(gb.n_stages() < 500, "should stop once residuals vanish, got {}", gb.n_stages());
    }

    #[test]
    fn subsampling_still_learns() {
        let (x, y) = wavy(300);
        let mut gb = GradientBoosting::new(150, 3, 0.1);
        gb.subsample = 0.5;
        gb.seed = 9;
        gb.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &gb.predict(&x)) > 0.99);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = wavy(100);
        let mk = || {
            let mut gb = GradientBoosting::new(50, 3, 0.1);
            gb.subsample = 0.7;
            gb.seed = 123;
            gb.fit(&x, &y).unwrap();
            gb.predict(&x)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn staged_predictions_converge_to_final() {
        let (x, y) = wavy(80);
        let mut gb = GradientBoosting::new(60, 3, 0.1);
        gb.fit(&x, &y).unwrap();
        let staged = gb.staged_predict_one(x.row(5));
        let final_pred = gb.predict_one(x.row(5));
        assert!((staged.last().unwrap() - final_pred).abs() < 1e-12);
        assert_eq!(staged.len(), gb.n_stages());
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let (x, y) = wavy(20);
        let mut gb = GradientBoosting::new(10, 3, 0.0);
        assert!(matches!(gb.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
        let mut gb = GradientBoosting::new(10, 3, 0.1);
        gb.subsample = 0.0;
        assert!(matches!(gb.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
        let mut gb = GradientBoosting::new(0, 3, 0.1);
        assert!(matches!(gb.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
    }

    #[test]
    fn lad_loss_resists_outliers_better_than_squared() {
        let (x, mut y) = wavy(200);
        // Corrupt 5% of targets with huge spikes.
        for i in (0..200).step_by(40) {
            y[i] += 500.0;
        }
        let clean_idx: Vec<usize> = (0..200).filter(|i| i % 40 != 0).collect();
        let eval = |loss: GbLoss| {
            let mut gb = GradientBoosting::new(120, 3, 0.1);
            gb.loss = loss;
            gb.fit(&x, &y).unwrap();
            let pred = gb.predict(&x);
            // Error on the uncorrupted points only.
            clean_idx.iter().map(|&i| (pred[i] - y[i]).abs()).sum::<f64>() / clean_idx.len() as f64
        };
        let sq = eval(GbLoss::SquaredError);
        let lad = eval(GbLoss::AbsoluteError);
        assert!(lad < sq, "LAD should track the clean majority better: lad {lad:.3} vs sq {sq:.3}");
    }

    #[test]
    fn huber_loss_fits_clean_data_well() {
        let (x, y) = wavy(150);
        let mut gb = GradientBoosting::new(150, 3, 0.1);
        gb.loss = GbLoss::Huber { alpha: 0.9 };
        gb.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &gb.predict(&x)) > 0.99);
    }

    #[test]
    fn huber_rejects_bad_alpha() {
        let (x, y) = wavy(30);
        for alpha in [0.0, 1.0, -0.5, f64::NAN] {
            let mut gb = GradientBoosting::new(10, 3, 0.1);
            gb.loss = GbLoss::Huber { alpha };
            assert!(
                matches!(gb.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))),
                "alpha {alpha} accepted"
            );
        }
    }

    #[test]
    fn early_stopping_halts_before_budget() {
        let (x, y) = wavy(300);
        let mut gb = GradientBoosting::new(2000, 3, 0.3);
        gb.n_iter_no_change = Some(5);
        gb.validation_fraction = 0.2;
        gb.seed = 4;
        gb.fit(&x, &y).unwrap();
        assert!(
            gb.n_stages() < 2000,
            "validation loss should plateau well before 2000 stages (got {})",
            gb.n_stages()
        );
        // And the model must still be good.
        assert!(r2_score(&y, &gb.predict(&x)) > 0.98);
    }

    #[test]
    fn early_stopping_disabled_uses_full_budget() {
        let x = Matrix::from_fn(50, 1, |i, _| i as f64);
        // Noisy-ish target the trees can keep chasing.
        let y: Vec<f64> = (0..50).map(|i| ((i * 7919) % 101) as f64).collect();
        let mut gb = GradientBoosting::new(40, 2, 0.05);
        gb.fit(&x, &y).unwrap();
        assert_eq!(gb.n_stages(), 40);
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 9.0]), 5.0);
        assert_eq!(median(&[5.0, 1.0, 9.0]), 5.0);
        assert_eq!(median(&[4.0, 1.0, 9.0, 6.0]), 5.0);
    }

    #[test]
    fn paper_config_shape() {
        let gb = GradientBoosting::paper_config();
        assert_eq!(gb.n_estimators, 750);
        assert_eq!(gb.max_depth, 10);
    }

    /// A shifted copy of `wavy`: same features, targets scaled — the
    /// "world changed" data a warm start must adapt to.
    fn shifted(n: usize, factor: f64) -> (Matrix, Vec<f64>) {
        let (x, y) = wavy(n);
        let y = y.into_iter().map(|v| v * factor).collect();
        (x, y)
    }

    #[test]
    fn fit_more_appends_stages_and_reduces_error_on_new_data() {
        let (x, y) = wavy(150);
        let mut gb = GradientBoosting::new(40, 3, 0.1);
        gb.fit(&x, &y).unwrap();
        let before_stages = gb.n_stages();
        let (x2, y2) = shifted(150, 1.7);
        let err_before = mape(&y2, &gb.predict(&x2));
        gb.fit_more(&x2, &y2, 60).unwrap();
        assert!(gb.n_stages() > before_stages, "warm start must append trees");
        let err_after = mape(&y2, &gb.predict(&x2));
        assert!(
            err_after < err_before * 0.5,
            "warm start should adapt to shifted data: {err_after:.4} vs {err_before:.4}"
        );
    }

    #[test]
    fn fit_more_keeps_existing_trees() {
        let (x, y) = wavy(100);
        let mut gb = GradientBoosting::new(30, 3, 0.1);
        gb.fit(&x, &y).unwrap();
        let (init0, _, _, trees0) = gb.export();
        let (x2, y2) = shifted(100, 1.4);
        gb.fit_more(&x2, &y2, 10).unwrap();
        let (init1, _, _, trees1) = gb.export();
        assert_eq!(init0, init1, "warm start must not rewrite the init");
        assert_eq!(&trees1[..trees0.len()], &trees0[..], "existing trees must be untouched");
    }

    #[test]
    fn fit_more_is_deterministic() {
        let (x, y) = wavy(90);
        let (x2, y2) = shifted(90, 1.5);
        let mk = || {
            let mut gb = GradientBoosting::new(25, 3, 0.1);
            gb.subsample = 0.8;
            gb.seed = 7;
            gb.fit(&x, &y).unwrap();
            gb.fit_more(&x2, &y2, 15).unwrap();
            gb.predict(&x2)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn fit_more_rejects_unfitted_and_bad_inputs() {
        let (x, y) = wavy(40);
        let mut gb = GradientBoosting::new(10, 3, 0.1);
        assert!(matches!(gb.fit_more(&x, &y, 5), Err(FitError::InvalidHyperParameter(_))));
        gb.fit(&x, &y).unwrap();
        assert!(matches!(gb.fit_more(&x, &y, 0), Err(FitError::InvalidHyperParameter(_))));
        // Feature-count mismatch against the original fit.
        let x3 = Matrix::from_fn(10, 3, |i, j| (i + j) as f64);
        let y3 = vec![1.0; 10];
        assert!(matches!(gb.fit_more(&x3, &y3, 5), Err(FitError::InvalidHyperParameter(_))));
        // Non-finite data is rejected before any tree is touched.
        let stages = gb.n_stages();
        let xn = Matrix::from_rows(&[&[1.0, f64::NAN]]);
        assert!(gb.fit_more(&xn, &[1.0], 5).is_err());
        assert_eq!(gb.n_stages(), stages);
    }

    #[test]
    fn cold_fit_unchanged_by_refactor() {
        // The shared boost() helper must reproduce the exact pre-refactor
        // cold-fit behavior: deterministic, early-stops, full budget when
        // chasing noise (mirrors the dedicated tests above, pinned here as
        // a unit so a warm-start change cannot silently alter cold fits).
        let (x, y) = wavy(100);
        let mut a = GradientBoosting::new(50, 3, 0.1);
        a.subsample = 0.7;
        a.seed = 123;
        a.fit(&x, &y).unwrap();
        let mut b = a.clone();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
