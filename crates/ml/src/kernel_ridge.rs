//! Kernel ridge regression (paper §3.1, "KR").
//!
//! Solves `(K + αI) a = y` on standardized features and centred targets;
//! prediction is `k(x, X)·a`. Standardization matters a lot here: the raw
//! features span `O ∈ [44, 345]` vs `nodes ∈ [5, 900]`, so an isotropic RBF
//! on raw features would be dominated by the node count.

use crate::kernel::Kernel;
use crate::preprocessing::{StandardScaler, TargetScaler};
use crate::traits::{validate_fit_inputs, FitError, Regressor};
use chemcost_linalg::{Matrix, SpdSolver};

/// Kernel ridge regression model.
#[derive(Debug, Clone)]
pub struct KernelRidge {
    /// Regularization strength (> 0).
    pub alpha: f64,
    /// Kernel function.
    pub kernel: Kernel,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    x_train: Matrix,
    dual: Vec<f64>,
    scaler: StandardScaler,
    yscaler: TargetScaler,
}

impl KernelRidge {
    /// Kernel ridge with the given regularization and kernel.
    pub fn new(alpha: f64, kernel: Kernel) -> Self {
        Self { alpha, kernel, state: None }
    }

    /// Convenience: RBF kernel ridge.
    pub fn rbf(alpha: f64, gamma: f64) -> Self {
        Self::new(alpha, Kernel::Rbf { gamma })
    }

    /// The dual coefficients; `None` before fit.
    pub fn dual_coef(&self) -> Option<&[f64]> {
        self.state.as_ref().map(|s| s.dual.as_slice())
    }
}

impl Regressor for KernelRidge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        if self.alpha <= 0.0 || self.alpha.is_nan() {
            return Err(FitError::InvalidHyperParameter(format!(
                "kernel ridge alpha must be > 0, got {}",
                self.alpha
            )));
        }
        self.kernel.validate().map_err(FitError::InvalidHyperParameter)?;
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform(x);
        let yscaler = TargetScaler::fit(y);
        let ys = yscaler.transform(y);
        let mut k = self.kernel.matrix(&xs);
        k.add_diagonal(self.alpha);
        let solver = SpdSolver::factor(&k)
            .map_err(|e| FitError::Numerical(format!("kernel system: {e}")))?;
        let dual = solver.solve(&ys);
        self.state = Some(Fitted { x_train: xs, dual, scaler, yscaler });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let st = self.state.as_ref().expect("KernelRidge::predict before fit");
        let xs = st.scaler.transform(x);
        let k = self.kernel.cross_matrix(&xs, &st.x_train);
        k.matvec(&st.dual).into_iter().map(|v| st.yscaler.inverse(v)).collect()
    }

    fn name(&self) -> &'static str {
        "KR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mape, r2_score};

    fn nonlinear_data(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 2, |i, j| {
            let t = i as f64 / n as f64;
            if j == 0 {
                t * 6.0
            } else {
                (i % 7) as f64
            }
        });
        let y = (0..n).map(|i| (x[(i, 0)]).sin() * 10.0 + x[(i, 1)] + 20.0).collect();
        (x, y)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (x, y) = nonlinear_data(120);
        let mut m = KernelRidge::rbf(1e-4, 1.0);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x);
        assert!(r2_score(&y, &pred) > 0.999, "r2 {}", r2_score(&y, &pred));
    }

    #[test]
    fn interpolates_training_points_with_small_alpha() {
        let (x, y) = nonlinear_data(40);
        let mut m = KernelRidge::rbf(1e-8, 2.0);
        m.fit(&x, &y).unwrap();
        assert!(mape(&y, &m.predict(&x)) < 1e-3);
    }

    #[test]
    fn strong_alpha_flattens_predictions() {
        let (x, y) = nonlinear_data(60);
        let mut m = KernelRidge::rbf(1e6, 1.0);
        m.fit(&x, &y).unwrap();
        let mean = chemcost_linalg::vecops::mean(&y);
        for p in m.predict(&x) {
            assert!((p - mean).abs() < 3.0, "prediction {p} should be near mean {mean}");
        }
    }

    #[test]
    fn polynomial_kernel_fits_quadratic() {
        let x = Matrix::from_fn(50, 1, |i, _| i as f64 * 0.1);
        let y: Vec<f64> = (0..50)
            .map(|i| {
                let v = i as f64 * 0.1;
                v * v + 1.0
            })
            .collect();
        let mut m =
            KernelRidge::new(1e-6, Kernel::Polynomial { gamma: 1.0, coef0: 1.0, degree: 2 });
        m.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &m.predict(&x)) > 0.9999);
    }

    #[test]
    fn rejects_bad_alpha_and_kernel() {
        let (x, y) = nonlinear_data(10);
        let mut m = KernelRidge::rbf(0.0, 1.0);
        assert!(matches!(m.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
        let mut m = KernelRidge::rbf(1.0, -1.0);
        assert!(matches!(m.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
    }

    #[test]
    fn refit_discards_old_state() {
        let (x1, y1) = nonlinear_data(30);
        let x2 = Matrix::from_fn(20, 2, |i, _| i as f64);
        let y2: Vec<f64> = (0..20).map(|i| i as f64 * 100.0).collect();
        let mut m = KernelRidge::rbf(1e-4, 0.5);
        m.fit(&x1, &y1).unwrap();
        m.fit(&x2, &y2).unwrap();
        assert!(r2_score(&y2, &m.predict(&x2)) > 0.99);
    }
}
