//! Regression evaluation metrics (paper §3.2).
//!
//! The paper reports R², MAE and MAPE. Note that it quotes MAPE as a
//! fraction (0.023 = 2.3 %), so [`mape`] here returns a fraction, not a
//! percentage, to match the paper's tables directly.

/// Coefficient of determination R².
///
/// `1 - Σ(y-ŷ)² / Σ(y-ȳ)²`. Returns 1.0 when both the residuals and the
/// variance are zero (perfect fit of a constant), and may be negative for
/// models worse than predicting the mean.
///
/// # Panics
/// Panics if lengths differ or input is empty.
pub fn r2_score(y_true: &[f64], y_pred: &[f64]) -> f64 {
    check(y_true, y_pred);
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_res: f64 = y_true.iter().zip(y_pred).map(|(t, p)| (t - p) * (t - p)).sum();
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Mean absolute error.
///
/// # Panics
/// Panics if lengths differ or input is empty.
pub fn mean_absolute_error(y_true: &[f64], y_pred: &[f64]) -> f64 {
    check(y_true, y_pred);
    y_true.iter().zip(y_pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / y_true.len() as f64
}

/// Mean absolute percentage error, **as a fraction** (0.1 = 10 %).
///
/// Samples with `|y_true| < 1e-12` are guarded with that floor rather than
/// dividing by zero (sklearn does the same with its epsilon).
///
/// # Panics
/// Panics if lengths differ or input is empty.
pub fn mean_absolute_percentage_error(y_true: &[f64], y_pred: &[f64]) -> f64 {
    check(y_true, y_pred);
    y_true.iter().zip(y_pred).map(|(t, p)| (t - p).abs() / t.abs().max(1e-12)).sum::<f64>()
        / y_true.len() as f64
}

/// Mean squared error.
///
/// # Panics
/// Panics if lengths differ or input is empty.
pub fn mean_squared_error(y_true: &[f64], y_pred: &[f64]) -> f64 {
    check(y_true, y_pred);
    y_true.iter().zip(y_pred).map(|(t, p)| (t - p) * (t - p)).sum::<f64>() / y_true.len() as f64
}

/// Root mean squared error.
pub fn root_mean_squared_error(y_true: &[f64], y_pred: &[f64]) -> f64 {
    mean_squared_error(y_true, y_pred).sqrt()
}

/// Short aliases matching the paper's terminology.
pub use mean_absolute_error as mae;
pub use mean_absolute_percentage_error as mape;
pub use mean_squared_error as mse;
pub use root_mean_squared_error as rmse;

/// The `(R², MAE, MAPE)` triple the paper reports everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scores {
    /// Coefficient of determination.
    pub r2: f64,
    /// Mean absolute error (same unit as the target, seconds here).
    pub mae: f64,
    /// Mean absolute percentage error as a fraction.
    pub mape: f64,
}

impl Scores {
    /// Compute all three scores at once.
    pub fn compute(y_true: &[f64], y_pred: &[f64]) -> Self {
        Self {
            r2: r2_score(y_true, y_pred),
            mae: mean_absolute_error(y_true, y_pred),
            mape: mean_absolute_percentage_error(y_true, y_pred),
        }
    }
}

impl std::fmt::Display for Scores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R²={:.3} MAE={:.2} MAPE={:.3}", self.r2, self.mae, self.mape)
    }
}

fn check(y_true: &[f64], y_pred: &[f64]) {
    assert_eq!(y_true.len(), y_pred.len(), "metric length mismatch");
    assert!(!y_true.is_empty(), "metrics need at least one sample");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r2_perfect_fit() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(r2_score(&y, &y), 1.0);
    }

    #[test]
    fn r2_mean_predictor_is_zero() {
        let y = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r2_score(&y, &pred).abs() < 1e-12);
    }

    #[test]
    fn r2_negative_for_bad_model() {
        let y = [1.0, 2.0, 3.0];
        let pred = [10.0, -10.0, 10.0];
        assert!(r2_score(&y, &pred) < 0.0);
    }

    #[test]
    fn r2_constant_target_perfect() {
        assert_eq!(r2_score(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(r2_score(&[5.0, 5.0], &[5.0, 6.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn mae_known() {
        assert!((mae(&[1.0, 2.0, 3.0], &[2.0, 2.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mape_is_fraction() {
        // 10% error on each sample.
        let y = [100.0, 200.0];
        let p = [110.0, 180.0];
        assert!((mape(&y, &p) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mape_guards_zero_target() {
        let v = mape(&[0.0], &[1.0]);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn mse_rmse_relation() {
        let y = [0.0, 0.0];
        let p = [3.0, 4.0];
        assert!((mse(&y, &p) - 12.5).abs() < 1e-12);
        assert!((rmse(&y, &p) - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn scores_struct_consistent() {
        let y = [10.0, 20.0, 30.0];
        let p = [12.0, 18.0, 33.0];
        let s = Scores::compute(&y, &p);
        assert_eq!(s.r2, r2_score(&y, &p));
        assert_eq!(s.mae, mae(&y, &p));
        assert_eq!(s.mape, mape(&y, &p));
        assert!(s.to_string().contains("R²"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn metrics_check_lengths() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn metrics_reject_empty() {
        let _ = r2_score(&[], &[]);
    }
}
