//! Core model traits.

use chemcost_linalg::Matrix;

/// Error produced when a model cannot be fitted.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Training data was empty.
    EmptyTrainingSet,
    /// Feature matrix and target length disagree.
    ShapeMismatch {
        /// Rows in the feature matrix.
        rows: usize,
        /// Entries in the target vector.
        targets: usize,
    },
    /// The training data contained NaN or infinite values.
    NonFiniteData,
    /// A linear system could not be solved even with jitter.
    Numerical(String),
    /// A hyper-parameter value is outside its valid range.
    InvalidHyperParameter(String),
    /// The model is a compiled, read-only artifact (e.g. a flattened
    /// ensemble) — fit the source model and re-compile instead.
    NotTrainable(&'static str),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::EmptyTrainingSet => write!(f, "empty training set"),
            FitError::ShapeMismatch { rows, targets } => {
                write!(f, "feature rows ({rows}) != target length ({targets})")
            }
            FitError::NonFiniteData => write!(f, "training data contains NaN/inf"),
            FitError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            FitError::InvalidHyperParameter(msg) => write!(f, "invalid hyper-parameter: {msg}"),
            FitError::NotTrainable(kind) => {
                write!(f, "{kind} is a compiled read-only model; fit its source ensemble instead")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// Validate the common preconditions shared by every `fit` implementation.
pub(crate) fn validate_fit_inputs(x: &Matrix, y: &[f64]) -> Result<(), FitError> {
    if x.nrows() == 0 {
        return Err(FitError::EmptyTrainingSet);
    }
    if x.nrows() != y.len() {
        return Err(FitError::ShapeMismatch { rows: x.nrows(), targets: y.len() });
    }
    if !x.is_finite() || !y.iter().all(|v| v.is_finite()) {
        return Err(FitError::NonFiniteData);
    }
    Ok(())
}

/// A trainable regression model.
///
/// `fit` may be called repeatedly; each call discards previous state.
/// `predict` panics if called before a successful `fit` (programmer error,
/// like sklearn's `NotFittedError`).
///
/// # Example
///
/// ```
/// use chemcost_linalg::Matrix;
/// use chemcost_ml::tree::DecisionTree;
/// use chemcost_ml::Regressor;
///
/// // A step function a shallow tree captures exactly.
/// let x = Matrix::from_fn(20, 1, |i, _| i as f64);
/// let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
///
/// let mut model = DecisionTree::new(3);
/// model.fit(&x, &y).unwrap();
/// assert_eq!(model.predict(&x), y);
/// assert_eq!(model.predict_one(&[3.0]), 1.0);
/// assert_eq!(model.name(), "DT");
/// ```
pub trait Regressor: Send + Sync {
    /// Train on feature matrix `x` (one sample per row) and targets `y`.
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError>;

    /// Predict targets for each row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<f64>;

    /// Predict a single sample.
    fn predict_one(&self, row: &[f64]) -> f64 {
        let m = Matrix::from_rows(&[row]);
        self.predict(&m)[0]
    }

    /// A short human-readable name ("GB", "KR", …) used in reports.
    fn name(&self) -> &'static str;
}

/// A regressor that also produces per-sample predictive standard
/// deviations — required by uncertainty-sampling active learning.
pub trait UncertaintyRegressor: Regressor {
    /// Predict `(mean, std)` for each row of `x`.
    fn predict_with_std(&self, x: &Matrix) -> (Vec<f64>, Vec<f64>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_empty() {
        let x = Matrix::zeros(0, 3);
        assert_eq!(validate_fit_inputs(&x, &[]), Err(FitError::EmptyTrainingSet));
    }

    #[test]
    fn validate_rejects_shape_mismatch() {
        let x = Matrix::zeros(3, 2);
        assert_eq!(
            validate_fit_inputs(&x, &[1.0]),
            Err(FitError::ShapeMismatch { rows: 3, targets: 1 })
        );
    }

    #[test]
    fn validate_rejects_nan() {
        let x = Matrix::from_rows(&[&[1.0, f64::NAN]]);
        assert_eq!(validate_fit_inputs(&x, &[1.0]), Err(FitError::NonFiniteData));
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(validate_fit_inputs(&x, &[f64::INFINITY]), Err(FitError::NonFiniteData));
    }

    #[test]
    fn validate_accepts_good_input() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(validate_fit_inputs(&x, &[1.0, 2.0]).is_ok());
    }

    #[test]
    fn fit_error_display() {
        let e = FitError::Numerical("singular".into());
        assert!(e.to_string().contains("singular"));
    }
}
