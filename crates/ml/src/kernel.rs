//! Kernel functions shared by kernel ridge regression, Gaussian processes
//! and support-vector regression.

use chemcost_linalg::{vecops, Matrix};

/// A positive-definite kernel `k(x, z)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Radial basis function `exp(-gamma ‖x−z‖²)`.
    Rbf {
        /// Inverse squared length scale (> 0).
        gamma: f64,
    },
    /// Polynomial `(gamma ⟨x,z⟩ + coef0)^degree`.
    Polynomial {
        /// Scale on the inner product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
        /// Polynomial degree (≥ 1).
        degree: u32,
    },
    /// Linear `⟨x, z⟩`.
    Linear,
}

impl Kernel {
    /// Evaluate `k(a, b)`.
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    #[inline]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Rbf { gamma } => (-gamma * vecops::sq_dist(a, b)).exp(),
            Kernel::Polynomial { gamma, coef0, degree } => {
                (gamma * vecops::dot(a, b) + coef0).powi(degree as i32)
            }
            Kernel::Linear => vecops::dot(a, b),
        }
    }

    /// The full kernel (Gram) matrix `K[i,j] = k(xᵢ, xⱼ)` for rows of `x`.
    /// Exploits symmetry: only the upper triangle is evaluated.
    pub fn matrix(&self, x: &Matrix) -> Matrix {
        let n = x.nrows();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.eval(x.row(i), x.row(j));
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }

    /// The cross-kernel matrix `K[i,j] = k(aᵢ, bⱼ)`.
    pub fn cross_matrix(&self, a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.nrows(), b.nrows(), |i, j| self.eval(a.row(i), b.row(j)))
    }

    /// Validate hyper-parameters; returns a description of the problem if
    /// invalid.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Kernel::Rbf { gamma } if gamma <= 0.0 || gamma.is_nan() => {
                Err(format!("RBF gamma must be > 0, got {gamma}"))
            }
            Kernel::Polynomial { degree: 0, .. } => Err("polynomial degree must be >= 1".into()),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_identity_is_one() {
        let k = Kernel::Rbf { gamma: 0.7 };
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = Kernel::Rbf { gamma: 1.0 };
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[2.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn rbf_known_value() {
        let k = Kernel::Rbf { gamma: 0.5 };
        // ‖x-z‖² = 4, so k = exp(-2).
        assert!((k.eval(&[0.0], &[2.0]) - (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn polynomial_known_value() {
        let k = Kernel::Polynomial { gamma: 1.0, coef0: 1.0, degree: 2 };
        // (⟨(1,1),(2,0)⟩ + 1)² = 9.
        assert_eq!(k.eval(&[1.0, 1.0], &[2.0, 0.0]), 9.0);
    }

    #[test]
    fn linear_is_dot() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn kernel_matrix_symmetric_unit_diag_rbf() {
        let x = Matrix::from_fn(6, 2, |i, j| (i * 2 + j) as f64 * 0.3);
        let k = Kernel::Rbf { gamma: 0.2 }.matrix(&x);
        for i in 0..6 {
            assert!((k[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..6 {
                assert_eq!(k[(i, j)], k[(j, i)]);
            }
        }
    }

    #[test]
    fn cross_matrix_consistent_with_eval() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(4, 2, |i, j| (i * j) as f64 + 1.0);
        let kern = Kernel::Rbf { gamma: 0.1 };
        let k = kern.cross_matrix(&a, &b);
        assert_eq!(k.shape(), (3, 4));
        assert!((k[(1, 2)] - kern.eval(a.row(1), b.row(2))).abs() < 1e-15);
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(Kernel::Rbf { gamma: 0.0 }.validate().is_err());
        assert!(Kernel::Rbf { gamma: -1.0 }.validate().is_err());
        assert!(Kernel::Polynomial { gamma: 1.0, coef0: 0.0, degree: 0 }.validate().is_err());
        assert!(Kernel::Linear.validate().is_ok());
    }
}
