//! Polynomial regression (paper §3.1, "PR"): polynomial feature expansion
//! followed by (tiny-ridge) least squares.

use crate::linear::Ridge;
use crate::preprocessing::{PolynomialFeatures, StandardScaler};
use crate::traits::{validate_fit_inputs, FitError, Regressor};
use chemcost_linalg::Matrix;

/// Polynomial regression of configurable degree.
///
/// Features are standardized *before* expansion (otherwise degree-4
/// monomials of `nodes ∈ [5, 900]` overflow the conditioning of the normal
/// equations), then expanded to all monomials of total degree `1..=degree`,
/// then fitted with ridge regularization `alpha` (default tiny, for
/// stability rather than shrinkage).
#[derive(Debug, Clone)]
pub struct PolynomialRegression {
    /// Total polynomial degree (≥ 1).
    pub degree: usize,
    /// Ridge stabilizer on the expanded features.
    pub alpha: f64,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    scaler: StandardScaler,
    expansion: PolynomialFeatures,
    ridge: Ridge,
}

impl PolynomialRegression {
    /// Polynomial regression of the given degree with a tiny stabilizing
    /// ridge penalty.
    pub fn new(degree: usize) -> Self {
        Self { degree, alpha: 1e-8, state: None }
    }

    /// Polynomial regression with an explicit ridge penalty.
    pub fn with_alpha(degree: usize, alpha: f64) -> Self {
        Self { degree, alpha, state: None }
    }
}

impl Regressor for PolynomialRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        if self.degree == 0 {
            return Err(FitError::InvalidHyperParameter("degree must be >= 1".into()));
        }
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform(x);
        let expansion = PolynomialFeatures::new(x.ncols(), self.degree);
        let xe = expansion.transform(&xs);
        let mut ridge = Ridge::new(self.alpha);
        ridge.fit(&xe, y)?;
        self.state = Some(Fitted { scaler, expansion, ridge });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let st = self.state.as_ref().expect("PolynomialRegression::predict before fit");
        let xs = st.scaler.transform(x);
        let xe = st.expansion.transform(&xs);
        st.ridge.predict(&xe)
    }

    fn name(&self) -> &'static str {
        "PR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn degree2_fits_quadratic_exactly() {
        let x = Matrix::from_fn(60, 2, |i, j| ((i + 3 * j) % 11) as f64);
        let y: Vec<f64> = (0..60)
            .map(|i| {
                let (a, b) = (x[(i, 0)], x[(i, 1)]);
                2.0 * a * a - 3.0 * a * b + b + 7.0
            })
            .collect();
        let mut m = PolynomialRegression::new(2);
        m.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &m.predict(&x)) > 0.999999);
    }

    #[test]
    fn degree1_reduces_to_linear() {
        let x = Matrix::from_fn(40, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..40).map(|i| 4.0 * i as f64 - 3.0).collect();
        let mut m = PolynomialRegression::new(1);
        m.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &m.predict(&x)) > 0.999999);
    }

    #[test]
    fn higher_degree_fits_cubic_better_than_linear() {
        let x = Matrix::from_fn(50, 1, |i, _| (i as f64 - 25.0) * 0.2);
        let y: Vec<f64> = (0..50)
            .map(|i| {
                let v = (i as f64 - 25.0) * 0.2;
                v * v * v
            })
            .collect();
        let mut lin = PolynomialRegression::new(1);
        lin.fit(&x, &y).unwrap();
        let mut cub = PolynomialRegression::new(3);
        cub.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &cub.predict(&x)) > r2_score(&y, &lin.predict(&x)));
        assert!(r2_score(&y, &cub.predict(&x)) > 0.99999);
    }

    #[test]
    fn large_feature_magnitudes_stay_stable() {
        // Mimics the real feature ranges: nodes up to 900, V up to 1600.
        let x = Matrix::from_fn(80, 2, |i, j| {
            if j == 0 {
                5.0 + (i as f64) * 11.0
            } else {
                200.0 + (i as f64) * 17.0
            }
        });
        let y: Vec<f64> = (0..80)
            .map(|i| {
                let r = x.row(i);
                1e-4 * r[0] * r[1] + 3.0
            })
            .collect();
        let mut m = PolynomialRegression::new(3);
        m.fit(&x, &y).unwrap();
        let pred = m.predict(&x);
        assert!(pred.iter().all(|p| p.is_finite()));
        assert!(r2_score(&y, &pred) > 0.999);
    }

    #[test]
    fn rejects_degree_zero() {
        let x = Matrix::from_fn(5, 1, |i, _| i as f64);
        let mut m = PolynomialRegression { degree: 0, alpha: 1e-8, state: None };
        assert!(matches!(m.fit(&x, &[1.0; 5]), Err(FitError::InvalidHyperParameter(_))));
    }
}
