//! Ordinary least squares and ridge regression (the bases every other
//! linear-family model builds on).

use crate::preprocessing::StandardScaler;
use crate::traits::{validate_fit_inputs, FitError, Regressor};
use chemcost_linalg::{gemm, Matrix, SpdSolver};

/// Shared solver: fit `w, b` minimizing `‖Xw + b − y‖² + alpha‖w‖²`.
///
/// Features are standardized internally for conditioning; the returned
/// weights are expressed in the *original* feature space.
fn fit_ridge_raw(x: &Matrix, y: &[f64], alpha: f64) -> Result<(Vec<f64>, f64), FitError> {
    let scaler = StandardScaler::fit(x);
    let xs = scaler.transform(x);
    let d = xs.ncols();
    let n = xs.nrows() as f64;
    let y_mean = chemcost_linalg::vecops::mean(y);
    // Centered targets: with standardized X and centered y the intercept of
    // the scaled problem is 0, so we solve only for the weights.
    let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
    let mut gram = gemm::gram(&xs);
    gram.add_diagonal(alpha.max(0.0) + 1e-10 * n);
    let xty = xs.transpose().matvec(&yc);
    let solver = SpdSolver::factor(&gram)
        .map_err(|e| FitError::Numerical(format!("normal equations: {e}")))?;
    let ws = solver.solve(&xty);
    // Undo the standardization: w_j = ws_j / std_j, b = y_mean − Σ w_j·mean_j.
    let mut w = vec![0.0; d];
    let mut b = y_mean;
    for j in 0..d {
        w[j] = ws[j] / scaler.stds()[j];
        b -= w[j] * scaler.means()[j];
    }
    Ok((w, b))
}

/// Ordinary least squares linear regression.
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    weights: Option<Vec<f64>>,
    intercept: f64,
}

impl LinearRegression {
    /// A fresh, unfitted model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fitted weights; `None` before `fit`.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        let (w, b) = fit_ridge_raw(x, y, 0.0)?;
        self.weights = Some(w);
        self.intercept = b;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let w = self.weights.as_ref().expect("LinearRegression::predict before fit");
        (0..x.nrows()).map(|i| chemcost_linalg::vecops::dot(x.row(i), w) + self.intercept).collect()
    }

    fn name(&self) -> &'static str {
        "OLS"
    }
}

/// Ridge regression (l2-regularized least squares).
#[derive(Debug, Clone)]
pub struct Ridge {
    /// Regularization strength (≥ 0).
    pub alpha: f64,
    weights: Option<Vec<f64>>,
    intercept: f64,
}

impl Ridge {
    /// Ridge with regularization strength `alpha`.
    pub fn new(alpha: f64) -> Self {
        Self { alpha, weights: None, intercept: 0.0 }
    }

    /// Fitted weights; `None` before `fit`.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Regressor for Ridge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        if self.alpha < 0.0 {
            return Err(FitError::InvalidHyperParameter(format!(
                "ridge alpha must be >= 0, got {}",
                self.alpha
            )));
        }
        let (w, b) = fit_ridge_raw(x, y, self.alpha)?;
        self.weights = Some(w);
        self.intercept = b;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let w = self.weights.as_ref().expect("Ridge::predict before fit");
        (0..x.nrows()).map(|i| chemcost_linalg::vecops::dot(x.row(i), w) + self.intercept).collect()
    }

    fn name(&self) -> &'static str {
        "Ridge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn linear_data(n: usize) -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(n, 2, |i, j| ((i * (3 + j) + j) % 17) as f64);
        let y = (0..n).map(|i| 3.0 * x[(i, 0)] - 2.0 * x[(i, 1)] + 5.0).collect();
        (x, y)
    }

    #[test]
    fn ols_recovers_exact_coefficients() {
        let (x, y) = linear_data(50);
        let mut m = LinearRegression::new();
        m.fit(&x, &y).unwrap();
        let w = m.weights().unwrap();
        assert!((w[0] - 3.0).abs() < 1e-6, "w0={}", w[0]);
        assert!((w[1] + 2.0).abs() < 1e-6, "w1={}", w[1]);
        assert!((m.intercept() - 5.0).abs() < 1e-5);
        assert!(r2_score(&y, &m.predict(&x)) > 0.999999);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let (x, y) = linear_data(50);
        let mut weak = Ridge::new(1e-6);
        weak.fit(&x, &y).unwrap();
        let mut strong = Ridge::new(1e6);
        strong.fit(&x, &y).unwrap();
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(strong.weights().unwrap()) < norm(weak.weights().unwrap()) * 1e-3);
    }

    #[test]
    fn ridge_strong_alpha_predicts_mean() {
        let (x, y) = linear_data(30);
        let mut m = Ridge::new(1e12);
        m.fit(&x, &y).unwrap();
        let mean = chemcost_linalg::vecops::mean(&y);
        for p in m.predict(&x) {
            assert!((p - mean).abs() < 1.0, "prediction {p} should be near mean {mean}");
        }
    }

    #[test]
    fn ridge_rejects_negative_alpha() {
        let (x, y) = linear_data(10);
        let mut m = Ridge::new(-1.0);
        assert!(matches!(m.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
    }

    #[test]
    fn handles_collinear_features() {
        // Second column is a multiple of the first — OLS would be singular
        // without the internal jitter.
        let x = Matrix::from_fn(20, 2, |i, j| (i as f64 + 1.0) * (j as f64 + 1.0));
        let y: Vec<f64> = (0..20).map(|i| 2.0 * (i as f64 + 1.0)).collect();
        let mut m = LinearRegression::new();
        m.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &m.predict(&x)) > 0.999);
    }

    #[test]
    fn predict_one_matches_batch() {
        let (x, y) = linear_data(25);
        let mut m = LinearRegression::new();
        m.fit(&x, &y).unwrap();
        let batch = m.predict(&x);
        assert!((m.predict_one(x.row(3)) - batch[3]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let m = LinearRegression::new();
        let _ = m.predict(&Matrix::zeros(1, 2));
    }

    #[test]
    fn fit_rejects_bad_shapes() {
        let mut m = LinearRegression::new();
        assert!(matches!(m.fit(&Matrix::zeros(3, 2), &[1.0]), Err(FitError::ShapeMismatch { .. })));
    }
}
