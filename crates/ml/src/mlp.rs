//! A small multilayer-perceptron regressor (from-scratch backprop, Adam).
//!
//! The paper deliberately *excludes* deep learning (§3.3: the classical
//! models are accurate and cheaper). Having an MLP in the suite lets the
//! repository demonstrate that claim instead of asserting it — the
//! `model_suite` bench and the extended-zoo comparison put it side by side
//! with GB on the same corpora.
//!
//! Architecture: fully connected, tanh hidden activations, linear output,
//! squared loss, Adam with mini-batches on standardized features/targets.

use crate::preprocessing::{StandardScaler, TargetScaler};
use crate::rand_util::{permutation, randn};
use crate::traits::{validate_fit_inputs, FitError, Regressor};
use chemcost_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// MLP regressor.
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    /// Hidden layer widths, e.g. `[64, 64]`.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// l2 weight decay.
    pub weight_decay: f64,
    /// Init/shuffling seed.
    pub seed: u64,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Layer {
    /// Weight matrix, `out × in`.
    w: Matrix,
    b: Vec<f64>,
    // Adam moments.
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

#[derive(Debug, Clone)]
struct Fitted {
    layers: Vec<Layer>,
    scaler: StandardScaler,
    yscaler: TargetScaler,
}

impl MlpRegressor {
    /// An MLP with the given hidden widths and sane defaults.
    pub fn new(hidden: Vec<usize>) -> Self {
        Self {
            hidden,
            learning_rate: 1e-3,
            epochs: 300,
            batch_size: 32,
            weight_decay: 1e-5,
            seed: 0,
            state: None,
        }
    }

    /// Forward pass for one standardized sample; returns per-layer
    /// activations (`acts[0]` = input, last = scalar output).
    fn forward(layers: &[Layer], x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(layers.len() + 1);
        acts.push(x.to_vec());
        for (li, layer) in layers.iter().enumerate() {
            let is_last = li + 1 == layers.len();
            let input = &acts[li];
            let mut out = layer.b.clone();
            for (o, out_val) in out.iter_mut().enumerate() {
                *out_val += chemcost_linalg::vecops::dot(layer.w.row(o), input);
            }
            if !is_last {
                for v in &mut out {
                    *v = v.tanh();
                }
            }
            acts.push(out);
        }
        acts
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), FitError> {
        validate_fit_inputs(x, y)?;
        if self.hidden.contains(&0) {
            return Err(FitError::InvalidHyperParameter("hidden widths must be >= 1".into()));
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err(FitError::InvalidHyperParameter("learning_rate must be > 0".into()));
        }
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform(x);
        let yscaler = TargetScaler::fit(y);
        let ys = yscaler.transform(y);
        let n = xs.nrows();
        let d = xs.ncols();

        let mut rng = StdRng::seed_from_u64(self.seed);
        // Layer sizes: d → hidden… → 1.
        let mut sizes = vec![d];
        sizes.extend(&self.hidden);
        sizes.push(1);
        let mut layers: Vec<Layer> = sizes
            .windows(2)
            .map(|io| {
                let (fan_in, fan_out) = (io[0], io[1]);
                // Xavier-ish init.
                let scale = (2.0 / (fan_in + fan_out) as f64).sqrt();
                Layer {
                    w: Matrix::from_fn(fan_out, fan_in, |_, _| randn(&mut rng) * scale),
                    b: vec![0.0; fan_out],
                    mw: Matrix::zeros(fan_out, fan_in),
                    vw: Matrix::zeros(fan_out, fan_in),
                    mb: vec![0.0; fan_out],
                    vb: vec![0.0; fan_out],
                }
            })
            .collect();

        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut t = 0usize;
        let batch = self.batch_size.clamp(1, n);
        for _epoch in 0..self.epochs {
            let order = permutation(&mut rng, n);
            for chunk in order.chunks(batch) {
                t += 1;
                // Accumulate gradients over the mini-batch.
                let mut gw: Vec<Matrix> =
                    layers.iter().map(|l| Matrix::zeros(l.w.nrows(), l.w.ncols())).collect();
                let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
                for &i in chunk {
                    let acts = Self::forward(&layers, xs.row(i));
                    let pred = acts.last().expect("output layer")[0];
                    // dL/dout for ½(pred − y)².
                    let mut delta = vec![pred - ys[i]];
                    for li in (0..layers.len()).rev() {
                        let input = &acts[li];
                        // Gradients for this layer.
                        for (o, &dv) in delta.iter().enumerate() {
                            gb[li][o] += dv;
                            let grow = gw[li].row_mut(o);
                            for (k, &iv) in input.iter().enumerate() {
                                grow[k] += dv * iv;
                            }
                        }
                        if li == 0 {
                            break;
                        }
                        // Back-propagate through W and the tanh of layer li-1.
                        let mut next = vec![0.0; input.len()];
                        for (o, &dv) in delta.iter().enumerate() {
                            let wrow = layers[li].w.row(o);
                            for (k, nv) in next.iter_mut().enumerate() {
                                *nv += dv * wrow[k];
                            }
                        }
                        for (nv, &a) in next.iter_mut().zip(input.iter()) {
                            *nv *= 1.0 - a * a; // tanh'
                        }
                        delta = next;
                    }
                }
                // Adam update.
                let inv = 1.0 / chunk.len() as f64;
                let bc1 = 1.0 - beta1.powi(t as i32);
                let bc2 = 1.0 - beta2.powi(t as i32);
                for (li, layer) in layers.iter_mut().enumerate() {
                    for idx in 0..layer.w.as_slice().len() {
                        let g = gw[li].as_slice()[idx] * inv
                            + self.weight_decay * layer.w.as_slice()[idx];
                        let m = &mut layer.mw.as_mut_slice()[idx];
                        *m = beta1 * *m + (1.0 - beta1) * g;
                        let v = &mut layer.vw.as_mut_slice()[idx];
                        *v = beta2 * *v + (1.0 - beta2) * g * g;
                        let mhat = layer.mw.as_slice()[idx] / bc1;
                        let vhat = layer.vw.as_slice()[idx] / bc2;
                        layer.w.as_mut_slice()[idx] -=
                            self.learning_rate * mhat / (vhat.sqrt() + eps);
                    }
                    for (o, b) in layer.b.iter_mut().enumerate() {
                        let g = gb[li][o] * inv;
                        layer.mb[o] = beta1 * layer.mb[o] + (1.0 - beta1) * g;
                        layer.vb[o] = beta2 * layer.vb[o] + (1.0 - beta2) * g * g;
                        let mhat = layer.mb[o] / bc1;
                        let vhat = layer.vb[o] / bc2;
                        *b -= self.learning_rate * mhat / (vhat.sqrt() + eps);
                    }
                }
            }
        }
        self.state = Some(Fitted { layers, scaler, yscaler });
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let st = self.state.as_ref().expect("MlpRegressor::predict before fit");
        let xs = st.scaler.transform(x);
        (0..xs.nrows())
            .map(|i| {
                let acts = Self::forward(&st.layers, xs.row(i));
                st.yscaler.inverse(acts.last().expect("output")[0])
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn learns_linear_function() {
        let x = Matrix::from_fn(100, 2, |i, j| ((i * (j + 2)) % 17) as f64);
        let y: Vec<f64> = (0..100).map(|i| 2.0 * x[(i, 0)] - x[(i, 1)] + 5.0).collect();
        let mut mlp = MlpRegressor::new(vec![16]);
        mlp.epochs = 200;
        mlp.fit(&x, &y).unwrap();
        let r2 = r2_score(&y, &mlp.predict(&x));
        assert!(r2 > 0.99, "linear fit r2 {r2}");
    }

    #[test]
    fn learns_nonlinear_function() {
        let x = Matrix::from_fn(150, 1, |i, _| i as f64 * 0.06);
        let y: Vec<f64> = (0..150).map(|i| (i as f64 * 0.06).sin() * 5.0 + 10.0).collect();
        let mut mlp = MlpRegressor::new(vec![32, 32]);
        mlp.epochs = 400;
        mlp.seed = 3;
        mlp.fit(&x, &y).unwrap();
        let r2 = r2_score(&y, &mlp.predict(&x));
        assert!(r2 > 0.95, "sine fit r2 {r2}");
    }

    #[test]
    fn deterministic_under_seed() {
        let x = Matrix::from_fn(40, 2, |i, j| (i + j) as f64);
        let y: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let run = || {
            let mut mlp = MlpRegressor::new(vec![8]);
            mlp.epochs = 30;
            mlp.seed = 9;
            mlp.fit(&x, &y).unwrap();
            mlp.predict(&x)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_hidden_layers_is_linear_model() {
        let x = Matrix::from_fn(60, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..60).map(|i| 4.0 * i as f64 - 7.0).collect();
        let mut mlp = MlpRegressor::new(vec![]);
        mlp.epochs = 400;
        mlp.learning_rate = 1e-2;
        mlp.fit(&x, &y).unwrap();
        assert!(r2_score(&y, &mlp.predict(&x)) > 0.999);
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let x = Matrix::from_fn(10, 1, |i, _| i as f64);
        let y = vec![0.0; 10];
        let mut mlp = MlpRegressor::new(vec![0]);
        assert!(matches!(mlp.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
        let mut mlp = MlpRegressor::new(vec![4]);
        mlp.learning_rate = -1.0;
        assert!(matches!(mlp.fit(&x, &y), Err(FitError::InvalidHyperParameter(_))));
    }

    #[test]
    fn predictions_finite_on_wide_inputs() {
        let x = Matrix::from_fn(50, 4, |i, j| ((i * 13 + j * 7) % 900) as f64);
        let y: Vec<f64> = (0..50).map(|i| (i % 9) as f64 * 50.0).collect();
        let mut mlp = MlpRegressor::new(vec![16, 8]);
        mlp.epochs = 50;
        mlp.fit(&x, &y).unwrap();
        assert!(mlp.predict(&x).iter().all(|p| p.is_finite()));
    }
}
