//! The global dispatcher: level filter, registered sinks, and the
//! monotonic id counters behind trace and span ids.

use crate::event::{Event, Field, Level};
use crate::sink::{JsonlSink, Sink, TextSink};
use crate::span::current_context;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Once, OnceLock, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// A single dispatcher instance. The process normally uses one global
/// (via [`global`]); tests can drive a private instance directly.
pub struct Dispatcher {
    /// Active filter: 0 = off, else the numeric value of the maximum
    /// enabled [`Level`].
    filter: AtomicU8,
    sinks: RwLock<Vec<(u64, Arc<dyn Sink>)>>,
    /// Cheap mirror of `sinks.len()` so the `enabled` fast path never
    /// takes the lock.
    sink_count: AtomicUsize,
    next_sink_id: AtomicU64,
    next_span_id: AtomicU64,
    next_trace_id: AtomicU64,
}

impl Dispatcher {
    /// Fresh dispatcher with the given filter and no sinks.
    pub fn new(filter: Option<Level>) -> Dispatcher {
        Dispatcher {
            filter: AtomicU8::new(filter.map_or(0, |l| l as u8)),
            sinks: RwLock::new(Vec::new()),
            sink_count: AtomicUsize::new(0),
            next_sink_id: AtomicU64::new(1),
            next_span_id: AtomicU64::new(1),
            next_trace_id: AtomicU64::new(1),
        }
    }

    /// Would a record at `level` reach any sink?
    pub fn enabled(&self, level: Level) -> bool {
        self.sink_count.load(Ordering::Relaxed) > 0
            && (level as u8) <= self.filter.load(Ordering::Relaxed)
    }

    /// Replace the level filter (`None` turns logging off entirely).
    pub fn set_level(&self, level: Option<Level>) {
        self.filter.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
    }

    /// The current level filter.
    pub fn level(&self) -> Option<Level> {
        Level::from_u8(self.filter.load(Ordering::Relaxed))
    }

    /// Register a sink; the returned handle removes it again.
    pub fn add_sink(&self, sink: Arc<dyn Sink>) -> SinkHandle {
        let id = self.next_sink_id.fetch_add(1, Ordering::Relaxed);
        let mut sinks = self.sinks.write().unwrap();
        sinks.push((id, sink));
        self.sink_count.store(sinks.len(), Ordering::Relaxed);
        SinkHandle(id)
    }

    /// Deregister a previously added sink.
    pub fn remove_sink(&self, handle: SinkHandle) {
        let mut sinks = self.sinks.write().unwrap();
        sinks.retain(|(id, _)| *id != handle.0);
        self.sink_count.store(sinks.len(), Ordering::Relaxed);
    }

    /// Deliver a fully-built event to every sink.
    pub fn send(&self, event: &Event) {
        for (_, sink) in self.sinks.read().unwrap().iter() {
            sink.emit(event);
        }
    }

    /// Flush every registered sink (see [`Sink::flush`]). Graceful
    /// drain, model reloads, and CLI exit call this so buffered JSONL
    /// records — e.g. the last window of quality residuals — reach disk.
    pub fn flush(&self) {
        for (_, sink) in self.sinks.read().unwrap().iter() {
            sink.flush();
        }
    }

    /// Allocate a process-monotonic span id.
    pub fn alloc_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate a process-monotonic trace id, rendered as 16 hex chars.
    pub fn alloc_trace_id(&self) -> String {
        format!("{:016x}", self.next_trace_id.fetch_add(1, Ordering::Relaxed))
    }
}

/// Opaque handle identifying a registered sink (see
/// [`Dispatcher::add_sink`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkHandle(u64);

/// The process-wide dispatcher. Its initial filter comes from the
/// `CHEMCOST_LOG` environment variable (default `info`; an unparsable
/// value also falls back to `info`); no sinks are attached until
/// [`init_from_env`] or [`add_sink`] runs, so instrumentation is free
/// until someone asks for output.
pub fn global() -> &'static Dispatcher {
    static GLOBAL: OnceLock<Dispatcher> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let filter = match std::env::var("CHEMCOST_LOG") {
            Ok(v) => Level::parse(&v).unwrap_or(Some(Level::Info)),
            Err(_) => Some(Level::Info),
        };
        Dispatcher::new(filter)
    })
}

/// Fast check against the global dispatcher; the `event!`/`span!`
/// macros call this before building any fields.
pub fn enabled(level: Level) -> bool {
    global().enabled(level)
}

/// Set the global level filter (`None` = off).
pub fn set_level(level: Option<Level>) {
    global().set_level(level);
}

/// Register a sink on the global dispatcher.
pub fn add_sink(sink: Arc<dyn Sink>) -> SinkHandle {
    global().add_sink(sink)
}

/// Deregister a sink from the global dispatcher.
pub fn remove_sink(handle: SinkHandle) {
    global().remove_sink(handle);
}

/// Allocate a fresh trace id (16 hex chars, process-monotonic).
pub fn next_trace_id() -> String {
    global().alloc_trace_id()
}

/// Flush every sink registered on the global dispatcher.
pub fn flush() {
    global().flush();
}

/// Microseconds since the Unix epoch.
pub(crate) fn now_micros() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}

/// Build an event from the calling thread's context and deliver it.
/// Called by the `event!` macro *after* its `enabled` check.
pub fn dispatch_event(level: Level, target: &'static str, name: &'static str, fields: Vec<Field>) {
    let (trace, span) = current_context();
    let event = Event {
        ts_micros: now_micros(),
        level,
        target,
        name,
        trace,
        span,
        parent: None,
        duration_micros: None,
        fields,
    };
    global().send(&event);
}

/// Wire the global dispatcher to the environment, once:
///
/// * `CHEMCOST_LOG` — level filter (`error|warn|info|debug|trace|off`);
///   when set to an actual level, a human-readable stderr sink is
///   installed so the CLI logs without further setup.
/// * `CHEMCOST_LOG_JSON=<path>` — additionally write every event as
///   JSONL to `<path>` (truncated at startup).
/// * `CHEMCOST_LOG_MAX_BYTES=<n>` — size-rotate the JSONL file once it
///   crosses `n` bytes (`<path>.1` newest rotated generation). Unset or
///   unparsable: unbounded.
/// * `CHEMCOST_LOG_KEEP=<n>` — rotated generations to keep (default 3).
///
/// Safe to call multiple times; only the first call installs sinks.
pub fn init_from_env() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let level = match std::env::var("CHEMCOST_LOG") {
            Ok(v) => match Level::parse(&v) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("chemcost-obs: {e}; defaulting to info");
                    Some(Level::Info)
                }
            },
            Err(_) => None, // unset: keep instrumentation silent
        };
        let Some(level) = level else {
            global().set_level(None);
            return;
        };
        global().set_level(Some(level));
        global().add_sink(Arc::new(TextSink::stderr()));
        if let Ok(path) = std::env::var("CHEMCOST_LOG_JSON") {
            let max_bytes = std::env::var("CHEMCOST_LOG_MAX_BYTES")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&n| n > 0);
            let keep = std::env::var("CHEMCOST_LOG_KEEP")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(3);
            let sink = match max_bytes {
                Some(max) => JsonlSink::with_rotation(std::path::Path::new(&path), max, keep),
                None => JsonlSink::create(std::path::Path::new(&path)),
            };
            match sink {
                Ok(sink) => {
                    global().add_sink(Arc::new(sink));
                }
                Err(e) => eprintln!("chemcost-obs: cannot open {path:?} for JSONL logs: {e}"),
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    #[test]
    fn filter_gates_enabled() {
        let d = Dispatcher::new(Some(Level::Info));
        // No sinks yet: nothing is enabled regardless of level.
        assert!(!d.enabled(Level::Error));
        let ring = Arc::new(RingSink::new(8));
        let h = d.add_sink(ring.clone());
        assert!(d.enabled(Level::Error));
        assert!(d.enabled(Level::Info));
        assert!(!d.enabled(Level::Debug));
        d.set_level(Some(Level::Trace));
        assert!(d.enabled(Level::Trace));
        d.set_level(None);
        assert!(!d.enabled(Level::Error));
        assert_eq!(d.level(), None);
        d.remove_sink(h);
        d.set_level(Some(Level::Trace));
        assert!(!d.enabled(Level::Error), "removed sink must disable dispatch");
        assert_eq!(ring.len(), 0);
    }

    #[test]
    fn ids_are_monotonic() {
        let d = Dispatcher::new(Some(Level::Trace));
        let a = d.alloc_span_id();
        let b = d.alloc_span_id();
        assert!(b > a);
        let t1 = d.alloc_trace_id();
        let t2 = d.alloc_trace_id();
        assert_ne!(t1, t2);
        assert_eq!(t1.len(), 16);
        assert!(u64::from_str_radix(&t1, 16).unwrap() < u64::from_str_radix(&t2, 16).unwrap());
    }

    #[test]
    fn send_fans_out_to_all_sinks() {
        let d = Dispatcher::new(Some(Level::Trace));
        let a = Arc::new(RingSink::new(4));
        let b = Arc::new(RingSink::new(4));
        d.add_sink(a.clone());
        let hb = d.add_sink(b.clone());
        let event = Event {
            ts_micros: 1,
            level: Level::Info,
            target: "t",
            name: "fanout",
            trace: None,
            span: None,
            parent: None,
            duration_micros: None,
            fields: vec![],
        };
        d.send(&event);
        d.remove_sink(hb);
        d.send(&event);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn flush_fans_out_to_every_sink() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting(AtomicUsize);
        impl Sink for Counting {
            fn emit(&self, _: &Event) {}
            fn flush(&self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let d = Dispatcher::new(Some(Level::Trace));
        let a = Arc::new(Counting(AtomicUsize::new(0)));
        let b = Arc::new(Counting(AtomicUsize::new(0)));
        d.add_sink(a.clone());
        let hb = d.add_sink(b.clone());
        d.flush();
        d.remove_sink(hb);
        d.flush();
        assert_eq!(a.0.load(Ordering::Relaxed), 2);
        assert_eq!(b.0.load(Ordering::Relaxed), 1);
        // RingSink's default flush is a no-op and must not panic.
        let ring = Arc::new(RingSink::new(2));
        d.add_sink(ring);
        d.flush();
    }
}
