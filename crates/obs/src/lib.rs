//! `chemcost-obs` — zero-dependency structured observability.
//!
//! A miniature, std-only tracing layer shared by every crate in the
//! workspace (the build environment has no crates.io access, so the
//! `tracing` ecosystem is out of reach — this is the vendored
//! equivalent, scoped to exactly what chemcost needs):
//!
//! * [`event!`] — one structured record: level, dotted name, typed
//!   `key = value` fields;
//! * [`span!`] — a timed RAII scope that emits a close record with
//!   `duration_us`, its own monotonic span id, and its parent's;
//! * [`TraceScope`] — pins a trace id (e.g. an HTTP `X-Request-Id`) to
//!   the current thread so every record in a request correlates;
//! * [`Timeline`] — an ordered set of named stage durations emitted as
//!   one event (`total_us` plus one field per stage), the record shape
//!   behind stage-resolved request timelines;
//! * sinks — human-readable text ([`TextSink`]), machine-readable
//!   JSONL ([`JsonlSink`]), and an in-memory ring buffer for tests
//!   ([`RingSink`]);
//! * level filtering via the `CHEMCOST_LOG` environment variable
//!   (`error|warn|info|debug|trace|off`), wired by [`init_from_env`].
//!
//! Instrumentation is free when disabled: the macros check
//! [`enabled`] (two relaxed atomic loads) before building any field,
//! and with no sinks registered nothing is ever enabled.
//!
//! ```
//! use chemcost_obs::{self as obs, Level, RingSink};
//! use std::sync::Arc;
//!
//! obs::set_level(Some(Level::Debug));
//! let ring = Arc::new(RingSink::new(64));
//! let handle = obs::add_sink(ring.clone());
//!
//! let _request = obs::TraceScope::enter("req-123");
//! {
//!     let mut span = obs::span!(Level::Debug, "doc.work", kind = "demo");
//!     span.record("rows", 10usize);
//! } // span closes here, emitting duration_us
//! obs::event!(Level::Info, "doc.done", ok = true);
//!
//! let events = ring.events_named("doc.done");
//! assert_eq!(events[0].trace.as_deref(), Some("req-123"));
//! obs::remove_sink(handle);
//! ```
//!
//! The JSONL schema and the metric/log catalog are documented in
//! `docs/OBSERVABILITY.md` at the repository root.

#![deny(missing_docs)]

mod dispatch;
mod event;
mod sink;
mod span;
mod timeline;

pub use dispatch::{
    add_sink, dispatch_event, enabled, flush, global, init_from_env, next_trace_id, remove_sink,
    set_level, Dispatcher, SinkHandle,
};
pub use event::{Event, Field, Level, Value};
pub use sink::{JsonlSink, RingSink, Sink, TextSink};
pub use span::{current_trace, Span, TraceScope};
pub use timeline::Timeline;

/// Emit one structured event: `event!(Level::Info, "name", key = value, …)`.
///
/// Field keys are bare identifiers; values are anything convertible
/// into a [`Value`] (strings, integers, floats, bools). The record is
/// stamped with the thread's current trace id and innermost span id.
/// Nothing is evaluated unless the level passes the active filter and
/// at least one sink is registered.
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::dispatch_event(
                $level,
                module_path!(),
                $name,
                vec![$($crate::Field::new(stringify!($key), $value)),*],
            );
        }
    };
}

/// Open a timed span: `let _s = span!(Level::Debug, "name", key = value, …);`
///
/// Returns a [`Span`] guard; when it drops, one close record is
/// emitted carrying the fields, the measured `duration_us`, the span's
/// monotonic id, and its parent span id. Below the active filter the
/// returned span is inert and no fields are built.
#[macro_export]
macro_rules! span {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::Span::new(
                $level,
                module_path!(),
                $name,
                vec![$($crate::Field::new(stringify!($key), $value)),*],
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn with_ring<R>(f: impl FnOnce(&RingSink) -> R) -> R {
        set_level(Some(Level::Trace));
        let ring = Arc::new(RingSink::new(256));
        let handle = add_sink(ring.clone());
        let out = f(&ring);
        remove_sink(handle);
        out
    }

    #[test]
    fn event_macro_records_fields_and_context() {
        with_ring(|ring| {
            let _scope = TraceScope::enter("macro-trace");
            event!(Level::Info, "macro.event", answer = 42usize, label = "x", ratio = 0.5);
            let events = ring.events_named("macro.event");
            assert_eq!(events.len(), 1);
            let e = &events[0];
            assert_eq!(e.level, Level::Info);
            assert_eq!(e.trace.as_deref(), Some("macro-trace"));
            assert_eq!(e.field("answer"), Some(&Value::U64(42)));
            assert_eq!(e.field("label"), Some(&Value::Str("x".into())));
            assert_eq!(e.field("ratio"), Some(&Value::F64(0.5)));
            assert!(e.target.contains("chemcost_obs"));
        });
    }

    #[test]
    fn span_macro_times_a_scope() {
        with_ring(|ring| {
            {
                let _span = span!(Level::Debug, "macro.span", stage = "fit");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let closes = ring.events_named("macro.span");
            assert_eq!(closes.len(), 1);
            assert!(closes[0].duration_micros.unwrap() >= 1_000);
            assert!(closes[0].span.is_some());
        });
    }

    #[test]
    fn events_nested_in_spans_carry_the_span_id() {
        with_ring(|ring| {
            let span = span!(Level::Debug, "macro.outer");
            let id = span.id().unwrap();
            event!(Level::Info, "macro.nested");
            drop(span);
            let nested = &ring.events_named("macro.nested")[0];
            assert_eq!(nested.span, Some(id));
            assert_eq!(nested.duration_micros, None);
        });
    }

    #[test]
    fn filtered_span_is_inert_even_with_sinks() {
        with_ring(|ring| {
            set_level(Some(Level::Error));
            {
                let span = span!(Level::Debug, "macro.filtered");
                assert_eq!(span.id(), None);
                event!(Level::Debug, "macro.filtered.event");
            }
            set_level(Some(Level::Trace));
            assert!(ring.events_named("macro.filtered").is_empty());
            assert!(ring.events_named("macro.filtered.event").is_empty());
        });
    }

    /// The JSONL schema golden test: every key in its documented place.
    #[test]
    fn jsonl_schema_golden() {
        let event = Event {
            ts_micros: 1_754_000_000_123_456,
            level: Level::Debug,
            target: "chemcost_serve::routes",
            name: "advise.sweep",
            trace: Some(Arc::from("req-42")),
            span: Some(7),
            parent: Some(3),
            duration_micros: Some(6400),
            fields: vec![
                Field::new("o", 120usize),
                Field::new("v", 900usize),
                Field::new("machine", "aurora"),
                Field::new("cached", false),
                Field::new("mape", 1.5),
            ],
        };
        assert_eq!(
            event.to_jsonl(),
            r#"{"ts_us":1754000000123456,"level":"debug","name":"advise.sweep","target":"chemcost_serve::routes","trace":"req-42","span":7,"parent":3,"duration_us":6400,"fields":{"o":120,"v":900,"machine":"aurora","cached":false,"mape":1.5}}"#
        );

        // Minimal event: optional keys absent entirely, not null.
        let bare = Event {
            ts_micros: 5,
            level: Level::Info,
            target: "t",
            name: "n",
            trace: None,
            span: None,
            parent: None,
            duration_micros: None,
            fields: vec![],
        };
        assert_eq!(
            bare.to_jsonl(),
            r#"{"ts_us":5,"level":"info","name":"n","target":"t","fields":{}}"#
        );
    }
}
