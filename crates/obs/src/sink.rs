//! Pluggable event sinks: human-readable text, JSONL files, and an
//! in-memory ring buffer for tests.

use crate::event::Event;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Destination for resolved [`Event`]s. Implementations must be
/// thread-safe; `emit` is called concurrently from every instrumented
/// thread.
pub trait Sink: Send + Sync {
    /// Consume one event. Failures are swallowed — observability must
    /// never take the service down.
    fn emit(&self, event: &Event);

    /// Push any buffered events to durable storage. Called on graceful
    /// shutdown, model reloads, and other "don't lose the tail" points;
    /// the default is a no-op for unbuffered sinks.
    fn flush(&self) {}
}

/// Human-readable single-line output to any writer (stderr by default).
pub struct TextSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl TextSink {
    /// Sink writing to standard error (the CLI default).
    pub fn stderr() -> TextSink {
        TextSink::new(Box::new(std::io::stderr()))
    }

    /// Sink writing to an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> TextSink {
        TextSink { writer: Mutex::new(writer) }
    }
}

impl Sink for TextSink {
    fn emit(&self, event: &Event) {
        let line = event.to_text();
        let mut w = self.writer.lock().unwrap();
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Machine-readable JSONL output, one event per line. Writes are
/// buffered for throughput; callers that need the file current on disk
/// (graceful drain, reload, process exit) go through [`Sink::flush`] —
/// the dispatcher's [`crate::flush`] fans out to every sink.
///
/// With [`JsonlSink::with_rotation`] the file is size-rotated: once the
/// active file crosses `max_bytes`, it is flushed and renamed to
/// `<path>.1` (shifting older generations to `.2`, `.3`, … and deleting
/// past `keep`), and writing continues into a fresh `<path>`. Rotation
/// happens on a line boundary, so every generation is valid JSONL.
pub struct JsonlSink {
    inner: Mutex<JsonlInner>,
}

struct JsonlInner {
    writer: BufWriter<File>,
    /// Bytes written to the active file so far (rotated sinks only).
    written: u64,
    rotation: Option<Rotation>,
}

struct Rotation {
    path: std::path::PathBuf,
    max_bytes: u64,
    keep: usize,
}

fn generation(path: &Path, n: usize) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".{n}"));
    std::path::PathBuf::from(os)
}

impl JsonlSink {
    /// Create (truncate) `path` and write every event to it, unbounded.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            inner: Mutex::new(JsonlInner {
                writer: BufWriter::new(file),
                written: 0,
                rotation: None,
            }),
        })
    }

    /// Create `path` with size-based rotation: rotate once the active
    /// file exceeds `max_bytes` (min 1), keeping `keep` rotated
    /// generations (`<path>.1` newest; min 1).
    pub fn with_rotation(path: &Path, max_bytes: u64, keep: usize) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            inner: Mutex::new(JsonlInner {
                writer: BufWriter::new(file),
                written: 0,
                rotation: Some(Rotation {
                    path: path.to_path_buf(),
                    max_bytes: max_bytes.max(1),
                    keep: keep.max(1),
                }),
            }),
        })
    }
}

impl JsonlInner {
    /// Flush and shift generations, then continue into a fresh file.
    /// Any rename/create failure leaves the sink writing to the old
    /// handle — degraded, never broken.
    fn rotate(&mut self) {
        let Some(rotation) = &self.rotation else { return };
        let _ = self.writer.flush();
        let _ = std::fs::remove_file(generation(&rotation.path, rotation.keep));
        for n in (1..rotation.keep).rev() {
            let _ =
                std::fs::rename(generation(&rotation.path, n), generation(&rotation.path, n + 1));
        }
        let _ = std::fs::rename(&rotation.path, generation(&rotation.path, 1));
        if let Ok(file) = File::create(&rotation.path) {
            self.writer = BufWriter::new(file);
            self.written = 0;
        }
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_jsonl();
        let mut inner = self.inner.lock().unwrap();
        let _ = writeln!(inner.writer, "{line}");
        if let Some(max_bytes) = inner.rotation.as_ref().map(|r| r.max_bytes) {
            inner.written += line.len() as u64 + 1;
            if inner.written >= max_bytes {
                inner.rotate();
            }
        }
    }

    fn flush(&self) {
        let _ = self.inner.lock().unwrap().writer.flush();
    }
}

/// Bounded in-memory buffer keeping the most recent events. Built for
/// tests (capture, then assert) and for lightweight in-process
/// inspection; when full, the oldest event is dropped.
pub struct RingSink {
    buf: Mutex<VecDeque<Event>>,
    capacity: usize,
}

impl RingSink {
    /// Ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink { buf: Mutex::new(VecDeque::new()), capacity: capacity.max(1) }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Buffered events with a given name, oldest first. Useful when the
    /// global dispatcher is shared between concurrently-running tests.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.buf.lock().unwrap().iter().filter(|e| e.name == name).cloned().collect()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn emit(&self, event: &Event) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Field, Level};

    fn event(name: &'static str, n: usize) -> Event {
        Event {
            ts_micros: n as u64,
            level: Level::Info,
            target: "test",
            name,
            trace: None,
            span: None,
            parent: None,
            duration_micros: None,
            fields: vec![Field::new("n", n)],
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let ring = RingSink::new(3);
        for i in 0..5 {
            ring.emit(&event("e", i));
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].ts_micros, 2);
        assert_eq!(events[2].ts_micros, 4);
    }

    #[test]
    fn ring_filters_by_name() {
        let ring = RingSink::new(10);
        ring.emit(&event("a", 0));
        ring.emit(&event("b", 1));
        ring.emit(&event("a", 2));
        assert_eq!(ring.events_named("a").len(), 2);
        assert_eq!(ring.events_named("c").len(), 0);
        assert!(!ring.is_empty());
    }

    #[test]
    fn text_sink_writes_lines() {
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let out = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = TextSink::new(Box::new(Shared(out.clone())));
        sink.emit(&event("hello", 7));
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        assert!(text.contains("hello"), "{text}");
        assert!(text.contains("n=7"), "{text}");
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn jsonl_sink_rotates_on_size_and_flushes_each_generation() {
        let dir = std::env::temp_dir().join(format!("chemcost-obs-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rot.jsonl");
        // Each event line is well over 8 bytes, so every emit rotates:
        // the rotation path must flush buffered lines before renaming or
        // the generations would be empty files.
        let sink = JsonlSink::with_rotation(&path, 8, 2).unwrap();
        for i in 0..5 {
            sink.emit(&event("spin", i));
        }
        let gen1 = std::fs::read_to_string(super::generation(&path, 1)).unwrap();
        let gen2 = std::fs::read_to_string(super::generation(&path, 2)).unwrap();
        assert!(gen1.contains("\"fields\":{\"n\":4}"), "{gen1}");
        assert!(gen2.contains("\"fields\":{\"n\":3}"), "{gen2}");
        assert!(!super::generation(&path, 3).exists(), "keep=2 must cap the generations");
        // Every rotated generation ends on a line boundary.
        assert!(gen1.ends_with('\n') && gen2.ends_with('\n'));
        // A tiny max_bytes rotates on every emit, so the latest line is
        // always generation 1 and the active file starts empty again.
        sink.emit(&event("tail", 9));
        let gen1 = std::fs::read_to_string(super::generation(&path, 1)).unwrap();
        assert!(gen1.contains("\"name\":\"tail\""), "{gen1}");
        sink.flush();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_sink_round_trips_through_file() {
        let dir = std::env::temp_dir().join(format!("chemcost-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&event("one", 1));
        sink.emit(&event("two", 2));
        // Writes are buffered; nothing is promised on disk until flush.
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"one\""));
        assert!(lines[1].contains("\"fields\":{\"n\":2}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
