//! Core log-record types: levels, typed field values, and the [`Event`]
//! struct every sink consumes.

use std::fmt;
use std::sync::Arc;

/// Verbosity level, ordered from most to least severe.
///
/// The numeric representation matters: a level is *enabled* when its
/// value is `<=` the active filter, so `Error` (1) passes every filter
/// and `Trace` (5) only the most verbose one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Something failed; the operation did not complete as intended.
    Error = 1,
    /// Something suspicious that deserves attention (slow requests,
    /// shed load, degraded answers).
    Warn = 2,
    /// High-level lifecycle records: access logs, round summaries.
    Info = 3,
    /// Per-stage detail: spans around sweeps, fits, cache probes.
    Debug = 4,
    /// Firehose detail for deep debugging.
    Trace = 5,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] =
        [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace];

    /// Lower-case name used in `CHEMCOST_LOG` and the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a `CHEMCOST_LOG` value. `Ok(None)` means logging is
    /// explicitly off (`"off"`, `"none"`, `"0"`); `Err` is an
    /// unrecognized value the caller may want to report.
    pub fn parse(s: &str) -> Result<Option<Level>, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Some(Level::Error)),
            "warn" | "warning" => Ok(Some(Level::Warn)),
            "info" => Ok(Some(Level::Info)),
            "debug" => Ok(Some(Level::Debug)),
            "trace" => Ok(Some(Level::Trace)),
            "off" | "none" | "0" => Ok(None),
            other => Err(format!("unknown log level {other:?} (error|warn|info|debug|trace|off)")),
        }
    }

    pub(crate) fn from_u8(v: u8) -> Option<Level> {
        match v {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            5 => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value. Kept small on purpose: everything the stack
/// wants to log is a string, an integer, a float, or a flag.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Text.
    Str(String),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (counts, sizes, ids).
    U64(u64),
    /// Float (durations, scores).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Append this value as a JSON token (strings quoted + escaped,
    /// non-finite floats as `null` since JSON has no NaN/Inf).
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Str(s) => write_json_string(out, s),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
/// Durations log as whole microseconds — the same unit the request
/// latency fields (`duration_us`) and deadline budgets already use.
impl From<std::time::Duration> for Value {
    fn from(v: std::time::Duration) -> Value {
        Value::U64(v.as_micros() as u64)
    }
}

/// One `key = value` pair attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (the identifier written in the macro call).
    pub key: &'static str,
    /// Field value.
    pub value: Value,
}

impl Field {
    /// Build a field from anything convertible to a [`Value`].
    pub fn new(key: &'static str, value: impl Into<Value>) -> Field {
        Field { key, value: value.into() }
    }
}

/// A fully-resolved log record, as delivered to every sink.
///
/// Plain events have `duration_micros: None`; span-close records carry
/// the measured duration and their own `span` id (with `parent` set to
/// the enclosing span, if any).
#[derive(Debug, Clone)]
pub struct Event {
    /// Wall-clock timestamp, microseconds since the Unix epoch.
    pub ts_micros: u64,
    /// Severity.
    pub level: Level,
    /// Module path of the call site (`module_path!()`).
    pub target: &'static str,
    /// Event name, dotted by convention (`"http.request"`,
    /// `"advise.sweep"`, `"active.round"`).
    pub name: &'static str,
    /// Trace id this record is correlated under, if a trace scope or
    /// request context was active.
    pub trace: Option<Arc<str>>,
    /// Innermost span id at the call site (for span closes, the span's
    /// own id).
    pub span: Option<u64>,
    /// Parent span id, for span-close records inside another span.
    pub parent: Option<u64>,
    /// Span duration in microseconds; `None` for plain events.
    pub duration_micros: Option<u64>,
    /// Structured key-value payload.
    pub fields: Vec<Field>,
}

impl Event {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|f| f.key == key).map(|f| &f.value)
    }

    /// Serialize as one JSONL line (no trailing newline).
    ///
    /// Schema (stable; `docs/OBSERVABILITY.md` is the reference):
    /// required keys `ts_us`, `level`, `name`, `target`, `fields`;
    /// optional keys `trace`, `span`, `parent`, `duration_us` appear
    /// only when set, in that order, between `target` and `fields`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"ts_us\":");
        out.push_str(&self.ts_micros.to_string());
        out.push_str(",\"level\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"name\":");
        write_json_string(&mut out, self.name);
        out.push_str(",\"target\":");
        write_json_string(&mut out, self.target);
        if let Some(trace) = &self.trace {
            out.push_str(",\"trace\":");
            write_json_string(&mut out, trace);
        }
        if let Some(span) = self.span {
            out.push_str(",\"span\":");
            out.push_str(&span.to_string());
        }
        if let Some(parent) = self.parent {
            out.push_str(",\"parent\":");
            out.push_str(&parent.to_string());
        }
        if let Some(d) = self.duration_micros {
            out.push_str(",\"duration_us\":");
            out.push_str(&d.to_string());
        }
        out.push_str(",\"fields\":{");
        for (i, f) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, f.key);
            out.push(':');
            f.value.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Render as one human-readable line (no trailing newline):
    /// `ts=<secs> LEVEL name target=... trace=... key=value …`.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(96);
        let secs = self.ts_micros / 1_000_000;
        let frac = self.ts_micros % 1_000_000;
        out.push_str(&format!("ts={secs}.{frac:06} {:<5} {}", self.level, self.name));
        if let Some(trace) = &self.trace {
            out.push_str(&format!(" trace={trace}"));
        }
        if let Some(span) = self.span {
            out.push_str(&format!(" span={span}"));
        }
        if let Some(d) = self.duration_micros {
            out.push_str(&format!(" duration_us={d}"));
        }
        for f in &self.fields {
            out.push_str(&format!(" {}={}", f.key, f.value));
        }
        out.push_str(&format!(" target={}", self.target));
        out
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_convert_to_whole_microseconds() {
        let v: Value = std::time::Duration::from_millis(3).into();
        assert!(matches!(v, Value::U64(3000)));
    }

    #[test]
    fn level_ordering_and_parse() {
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::parse("DEBUG").unwrap(), Some(Level::Debug));
        assert_eq!(Level::parse("off").unwrap(), None);
        assert!(Level::parse("loud").is_err());
        for l in Level::ALL {
            assert_eq!(Level::parse(l.as_str()).unwrap(), Some(l));
            assert_eq!(Level::from_u8(l as u8), Some(l));
        }
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        Value::F64(f64::NAN).write_json(&mut out);
        assert_eq!(out, "null");
    }

    #[test]
    fn field_lookup() {
        let e = Event {
            ts_micros: 1,
            level: Level::Info,
            target: "t",
            name: "n",
            trace: None,
            span: None,
            parent: None,
            duration_micros: None,
            fields: vec![Field::new("x", 3usize)],
        };
        assert_eq!(e.field("x"), Some(&Value::U64(3)));
        assert_eq!(e.field("y"), None);
    }
}
