//! Trace scopes and timed spans, tracked per thread.
//!
//! A [`TraceScope`] pins a trace id to the current thread for its
//! lifetime (the serve layer opens one per request from
//! `X-Request-Id`); [`Span`]s nest inside it, each emitting one close
//! record with its measured duration when dropped. Both are RAII
//! guards, so instrumentation can never leak context across requests
//! on a reused worker thread.

use crate::dispatch::{global, now_micros};
use crate::event::{Event, Field, Level, Value};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static CONTEXT: RefCell<Context> = const { RefCell::new(Context { trace: None, spans: Vec::new() }) };
}

struct Context {
    trace: Option<Arc<str>>,
    spans: Vec<u64>,
}

/// The calling thread's `(trace id, innermost span id)`, if any.
pub(crate) fn current_context() -> (Option<Arc<str>>, Option<u64>) {
    CONTEXT.with(|c| {
        let c = c.borrow();
        (c.trace.clone(), c.spans.last().copied())
    })
}

/// The trace id active on this thread, if a [`TraceScope`] is open.
pub fn current_trace() -> Option<Arc<str>> {
    CONTEXT.with(|c| c.borrow().trace.clone())
}

/// RAII guard that sets the thread's trace id, restoring the previous
/// one (usually `None`) on drop.
pub struct TraceScope {
    prev: Option<Arc<str>>,
}

impl TraceScope {
    /// Enter a trace: every event and span on this thread until the
    /// guard drops is stamped with `id`.
    pub fn enter(id: impl Into<Arc<str>>) -> TraceScope {
        let id = id.into();
        let prev = CONTEXT.with(|c| c.borrow_mut().trace.replace(id));
        TraceScope { prev }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.borrow_mut().trace = self.prev.take());
    }
}

/// A timed scope. Created by the [`span!`](crate::span!) macro; emits
/// one record (name, fields, `duration_us`, its own span id, parent
/// span id) when dropped. A span created while its level is filtered
/// out is inert: no id, no context push, no close record.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    id: u64,
    parent: Option<u64>,
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: Vec<Field>,
    started: Instant,
}

impl Span {
    /// Open a span. Prefer the [`span!`](crate::span!) macro, which
    /// checks [`enabled`](crate::enabled) before building fields.
    pub fn new(level: Level, target: &'static str, name: &'static str, fields: Vec<Field>) -> Span {
        if !global().enabled(level) {
            return Span::disabled();
        }
        let id = global().alloc_span_id();
        let parent = CONTEXT.with(|c| {
            let mut c = c.borrow_mut();
            let parent = c.spans.last().copied();
            c.spans.push(id);
            parent
        });
        Span {
            inner: Some(SpanInner {
                id,
                parent,
                level,
                target,
                name,
                fields,
                started: Instant::now(),
            }),
        }
    }

    /// An inert span (what `span!` returns below the active filter).
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// This span's id, or `None` when it is inert.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }

    /// Attach a field discovered after the span was opened (e.g. a row
    /// count known only once the data is loaded). No-op when inert.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push(Field { key, value: value.into() });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let duration_micros = inner.started.elapsed().as_micros() as u64;
        let trace = CONTEXT.with(|c| {
            let mut c = c.borrow_mut();
            // Pop our id; tolerate out-of-order drops from mem::drop.
            if let Some(pos) = c.spans.iter().rposition(|&s| s == inner.id) {
                c.spans.remove(pos);
            }
            c.trace.clone()
        });
        let event = Event {
            ts_micros: now_micros(),
            level: inner.level,
            target: inner.target,
            name: inner.name,
            trace,
            span: Some(inner.id),
            parent: inner.parent,
            duration_micros: Some(duration_micros),
            fields: inner.fields,
        };
        global().send(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{add_sink, remove_sink, set_level};
    use crate::sink::RingSink;

    /// Capture events from the global dispatcher for one test body.
    fn with_ring<R>(f: impl FnOnce(&RingSink) -> R) -> R {
        set_level(Some(Level::Trace));
        let ring = Arc::new(RingSink::new(256));
        let handle = add_sink(ring.clone());
        let out = f(&ring);
        remove_sink(handle);
        out
    }

    #[test]
    fn trace_scope_sets_and_restores() {
        assert_eq!(current_trace(), None);
        {
            let _outer = TraceScope::enter("outer-trace");
            assert_eq!(current_trace().as_deref(), Some("outer-trace"));
            {
                let _inner = TraceScope::enter("inner-trace");
                assert_eq!(current_trace().as_deref(), Some("inner-trace"));
            }
            assert_eq!(current_trace().as_deref(), Some("outer-trace"));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn span_close_carries_duration_parent_and_trace() {
        with_ring(|ring| {
            let _scope = TraceScope::enter("span-test-trace");
            let outer = Span::new(Level::Debug, "t", "span.outer", vec![]);
            let outer_id = outer.id().unwrap();
            {
                let mut inner = Span::new(Level::Debug, "t", "span.inner", vec![]);
                inner.record("rows", 42usize);
                assert!(inner.id().unwrap() > outer_id);
            }
            drop(outer);

            let inner_close = &ring.events_named("span.inner")[0];
            assert_eq!(inner_close.parent, Some(outer_id));
            assert_eq!(inner_close.trace.as_deref(), Some("span-test-trace"));
            assert!(inner_close.duration_micros.is_some());
            assert_eq!(inner_close.field("rows"), Some(&Value::U64(42)));
            let outer_close = &ring.events_named("span.outer")[0];
            assert_eq!(outer_close.span, Some(outer_id));
            assert_eq!(outer_close.parent, None);
        });
    }

    #[test]
    fn disabled_span_is_inert() {
        let span = Span::disabled();
        assert_eq!(span.id(), None);
        drop(span); // must not emit or touch context
        assert_eq!(current_context().1, None);
    }

    #[test]
    fn context_does_not_leak_across_threads() {
        with_ring(|_| {
            let _scope = TraceScope::enter("main-thread-trace");
            let seen = std::thread::spawn(current_trace).join().unwrap();
            assert_eq!(seen, None, "trace scope is thread-local");
        });
    }
}
