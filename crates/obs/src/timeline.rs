//! Stage-resolved timelines as structured events.
//!
//! A [`Timeline`] is an ordered list of named stages, each with a
//! duration in microseconds. It is the obs-side shape of the Dapper-style
//! "where did the time go" record: a caller that has stamped a request
//! (or job, or pipeline run) at its lifecycle edges collects the
//! per-stage durations here and emits them as **one** event whose fields
//! are the stage durations plus `total_us` — so a JSONL sink sees the
//! whole story on a single line, correlated by the thread's current
//! trace id like any other record.
//!
//! The type is deliberately generic: the serve crate uses it for HTTP
//! request timelines (`request.timeline`), but nothing here knows about
//! HTTP — any staged process can emit one.

use crate::event::{Field, Level};

/// An ordered set of named stage durations, emitted as one event.
///
/// Stage keys become field keys verbatim; by convention they carry a
/// `_us` suffix (`read_us`, `queue_us`, …) since values are microseconds.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    stages: Vec<(&'static str, u64)>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Append one stage (builder-style).
    pub fn stage(mut self, key: &'static str, micros: u64) -> Timeline {
        self.stages.push((key, micros));
        self
    }

    /// The recorded stages, in insertion order.
    pub fn stages(&self) -> &[(&'static str, u64)] {
        &self.stages
    }

    /// Sum of every stage duration, in microseconds.
    pub fn total_us(&self) -> u64 {
        self.stages.iter().map(|(_, us)| us).sum()
    }

    /// Emit the timeline as one structured event named `name`: `extra`
    /// fields first (identity — path, status, …), then `total_us`, then
    /// one field per stage. Free when `level` is filtered out. The
    /// record is stamped with the thread's current trace id, so emit
    /// inside the request's [`crate::TraceScope`] to correlate.
    pub fn emit(&self, level: Level, name: &'static str, extra: Vec<Field>) {
        if !crate::enabled(level) {
            return;
        }
        let mut fields = extra;
        fields.reserve(self.stages.len() + 1);
        fields.push(Field::new("total_us", self.total_us()));
        for &(key, us) in &self.stages {
            fields.push(Field::new(key, us));
        }
        crate::dispatch_event(level, module_path!(), name, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{add_sink, remove_sink, set_level, RingSink, TraceScope, Value};
    use std::sync::Arc;

    #[test]
    fn total_is_the_stage_sum() {
        let tl = Timeline::new().stage("read_us", 10).stage("work_us", 300).stage("write_us", 5);
        assert_eq!(tl.total_us(), 315);
        assert_eq!(tl.stages().len(), 3);
        assert_eq!(Timeline::new().total_us(), 0);
    }

    #[test]
    fn emit_carries_stages_total_extra_fields_and_trace() {
        set_level(Some(Level::Debug));
        let ring = Arc::new(RingSink::new(16));
        let handle = add_sink(ring.clone());
        {
            let _scope = TraceScope::enter("tl-trace-1");
            Timeline::new().stage("a_us", 7).stage("b_us", 13).emit(
                Level::Debug,
                "test.timeline",
                vec![Field::new("path", "/x")],
            );
        }
        let events = ring.events_named("test.timeline");
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.trace.as_deref(), Some("tl-trace-1"));
        assert_eq!(e.field("path"), Some(&Value::Str("/x".into())));
        assert_eq!(e.field("total_us"), Some(&Value::U64(20)));
        assert_eq!(e.field("a_us"), Some(&Value::U64(7)));
        assert_eq!(e.field("b_us"), Some(&Value::U64(13)));
        remove_sink(handle);
    }

    #[test]
    fn emit_below_the_filter_is_silent() {
        set_level(Some(Level::Error));
        let ring = Arc::new(RingSink::new(16));
        let handle = add_sink(ring.clone());
        Timeline::new().stage("a_us", 1).emit(Level::Debug, "test.timeline.quiet", vec![]);
        assert!(ring.events_named("test.timeline.quiet").is_empty());
        set_level(Some(Level::Trace));
        remove_sink(handle);
    }
}
