//! Lifecycle state machine for a (model, machine) serving group.
//!
//! A group moves through a small, fixed set of states while the daemon
//! retrains and evaluates a candidate model in the background:
//!
//! ```text
//!                        +--------------------------------------+
//!                        v                                      |
//! idle ---> queued ---> training ---> shadow ---> promoted --> rolled-back
//!   ^          ^            |            |  \         |
//!   |          |            v            |   +-> rejected
//!   |          +------- (re-queue) <-----+        |
//!   +---------------------------------------------+
//! ```
//!
//! Only the pairs enumerated in [`TRANSITIONS`] are counted as valid
//! transitions; anything else is applied (the state is authoritative) but
//! not counted, so a buggy caller cannot inflate the transition counters.

/// State of one (model, machine) group in the retrain/shadow/promote loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifecycleState {
    /// No candidate in flight; the serving model answers alone.
    Idle,
    /// A retrain job is waiting in the trainer queue.
    Queued,
    /// The background trainer is fitting a candidate right now.
    Training,
    /// A candidate silently scores live traffic alongside the serving model.
    Shadow,
    /// The last candidate was promoted into the registry.
    Promoted,
    /// The last candidate was rejected (fit failure, poison, or guardband).
    Rejected,
    /// The serving model was rolled back to its pre-promotion version.
    RolledBack,
}

impl LifecycleState {
    /// Every state, in gauge-code order.
    pub const ALL: [LifecycleState; 7] = [
        LifecycleState::Idle,
        LifecycleState::Queued,
        LifecycleState::Training,
        LifecycleState::Shadow,
        LifecycleState::Promoted,
        LifecycleState::Rejected,
        LifecycleState::RolledBack,
    ];

    /// Stable numeric code exported on the per-group state gauge.
    pub fn code(self) -> u8 {
        match self {
            LifecycleState::Idle => 0,
            LifecycleState::Queued => 1,
            LifecycleState::Training => 2,
            LifecycleState::Shadow => 3,
            LifecycleState::Promoted => 4,
            LifecycleState::Rejected => 5,
            LifecycleState::RolledBack => 6,
        }
    }

    /// Metric/JSON label for this state.
    pub fn label(self) -> &'static str {
        match self {
            LifecycleState::Idle => "idle",
            LifecycleState::Queued => "queued",
            LifecycleState::Training => "training",
            LifecycleState::Shadow => "shadow",
            LifecycleState::Promoted => "promoted",
            LifecycleState::Rejected => "rejected",
            LifecycleState::RolledBack => "rolled-back",
        }
    }
}

/// The complete set of valid state transitions.
///
/// Terminal-ish states (`Promoted`, `Rejected`, `RolledBack`) re-enter the
/// loop via `Queued` when the next retrain trigger fires. Rollback is an
/// operator action and is accepted from any settled state; `Queued` and
/// `Training` groups cannot roll back because the in-flight candidate still
/// owns the group.
pub const TRANSITIONS: [(LifecycleState, LifecycleState); 13] = [
    (LifecycleState::Idle, LifecycleState::Queued),
    (LifecycleState::Promoted, LifecycleState::Queued),
    (LifecycleState::Rejected, LifecycleState::Queued),
    (LifecycleState::RolledBack, LifecycleState::Queued),
    (LifecycleState::Queued, LifecycleState::Training),
    (LifecycleState::Training, LifecycleState::Shadow),
    (LifecycleState::Training, LifecycleState::Rejected),
    (LifecycleState::Shadow, LifecycleState::Promoted),
    (LifecycleState::Shadow, LifecycleState::Rejected),
    (LifecycleState::Idle, LifecycleState::RolledBack),
    (LifecycleState::Promoted, LifecycleState::RolledBack),
    (LifecycleState::Rejected, LifecycleState::RolledBack),
    (LifecycleState::Shadow, LifecycleState::RolledBack),
];

/// Whether `from -> to` is one of the enumerated valid transitions.
pub fn is_valid_transition(from: LifecycleState, to: LifecycleState) -> bool {
    TRANSITIONS.iter().any(|&(f, t)| f == from && t == to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_dense() {
        for (i, s) in LifecycleState::ALL.iter().enumerate() {
            assert_eq!(s.code() as usize, i);
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<&str> = LifecycleState::ALL.iter().map(|s| s.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn transition_table_is_irreflexive_and_deduped() {
        for (i, &(f, t)) in TRANSITIONS.iter().enumerate() {
            assert_ne!(f, t, "self-transition in table");
            for &(f2, t2) in &TRANSITIONS[i + 1..] {
                assert!(!(f == f2 && t == t2), "duplicate transition in table");
            }
        }
    }

    #[test]
    fn happy_path_is_valid() {
        use LifecycleState::*;
        for (f, t) in [(Idle, Queued), (Queued, Training), (Training, Shadow), (Shadow, Promoted)] {
            assert!(is_valid_transition(f, t), "{f:?} -> {t:?} should be valid");
        }
        assert!(is_valid_transition(Promoted, RolledBack));
        assert!(is_valid_transition(RolledBack, Queued));
    }

    #[test]
    fn invalid_pairs_are_rejected() {
        use LifecycleState::*;
        for (f, t) in [
            (Idle, Training),
            (Queued, Shadow),
            (Training, Promoted),
            (Queued, RolledBack),
            (Training, RolledBack),
        ] {
            assert!(!is_valid_transition(f, t), "{f:?} -> {t:?} should be invalid");
        }
    }
}
