//! In-service model lifecycle: background retraining, shadow scoring, and
//! guarded auto-promotion.
//!
//! PR 5 left a drift-tripped (model, machine) group latched *degraded* until
//! a human reloaded a new model file. This crate closes that loop inside the
//! serving daemon:
//!
//! 1. a **retraining trigger** (drift trip or observation-pool threshold)
//!    enqueues a retrain job for the group;
//! 2. a **background trainer** — one dedicated worker thread behind a
//!    bounded queue, at most one in-flight job per group — warm-starts a
//!    candidate [`GradientBoosting`] from the serving model's trees on the
//!    retained observations, compiles it to [`FlatGbt`], and records
//!    [`Lineage`] (parent version, row counts, fit duration, seed);
//! 3. a **shadow deploy** — the candidate silently scores live requests for
//!    its group into its own [`RollingQuality`] window while the serving
//!    model keeps answering;
//! 4. **guarded auto-promotion** — once the shadow window reaches
//!    [`LifecycleConfig::min_shadow`] and shadow MAPE beats serving MAPE by
//!    [`LifecycleConfig::guardband`], the hub issues a [`PromotionTicket`]
//!    that the server executes against its model registry (atomic hot swap,
//!    cache eviction, drift un-latch), keeping the prior version for
//!    one-command rollback.
//!
//! The crate is deliberately server-agnostic: it never touches sockets,
//! registries, or Prometheus. Metrics flow out through the
//! [`LifecycleObserver`] trait, and promotion is a two-phase handshake (the
//! hub hands out a ticket; the caller performs the registry swap and then
//! journals the outcome), so the state machine stays testable in isolation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use chemcost_linalg::Matrix;
use chemcost_ml::flat::FlatGbt;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::monitor::RollingQuality;
use chemcost_ml::persist::Lineage;
use chemcost_ml::Regressor;
use chemcost_obs::{self as obs, Level};
use parking_lot::Mutex;

pub mod state;

pub use state::{is_valid_transition, LifecycleState, TRANSITIONS};

/// Feature vector of one retained observation: `[o, v, nodes, tile]`,
/// matching the serving feature layout of `chemcost-serve`.
pub type FeatureRow = [f64; 4];

/// Tuning knobs for the retrain/shadow/promote loop.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Minimum shadow-window observations before promotion is considered.
    pub min_shadow: usize,
    /// Shadow observations after which a candidate that still has not beaten
    /// the serving model by the guardband is rejected.
    pub max_shadow: usize,
    /// Absolute MAPE margin a shadow must win by: promotion requires
    /// `shadow_mape + guardband <= serving_mape`.
    pub guardband: f64,
    /// Retained-pool size that triggers a retrain even without a drift trip.
    /// Also the minimum number of *new* observations between two
    /// pool-triggered retrains of the same group.
    pub pool_trigger: usize,
    /// Boosting stages appended on top of the parent model's trees.
    pub extra_stages: usize,
    /// Depth cap for the appended stages. Registry-loaded models report
    /// `max_depth = 0` (leaf-only), so the trainer always overrides depth.
    pub max_depth: usize,
    /// Minimum retained rows required to accept a retrain request.
    pub min_retrain_rows: usize,
    /// Bounded trainer-queue capacity; excess requests are refused, not
    /// buffered.
    pub queue_cap: usize,
    /// Capacity of each candidate's shadow `RollingQuality` window.
    pub shadow_window: usize,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            min_shadow: 24,
            max_shadow: 96,
            guardband: 0.02,
            pool_trigger: 96,
            extra_stages: 80,
            max_depth: 4,
            min_retrain_rows: 16,
            queue_cap: 8,
            shadow_window: 128,
        }
    }
}

/// Why a retrain job was enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainReason {
    /// The group's Page-Hinkley detector tripped.
    DriftTrip,
    /// The retained-observation pool crossed `pool_trigger`.
    PoolThreshold,
    /// Explicit operator request.
    Operator,
}

impl RetrainReason {
    /// Label used in events and JSON.
    pub fn label(self) -> &'static str {
        match self {
            RetrainReason::DriftTrip => "drift-trip",
            RetrainReason::PoolThreshold => "pool-threshold",
            RetrainReason::Operator => "operator",
        }
    }
}

/// Outcome recorded on `chemcost_lifecycle_promotions_total{outcome=...}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionOutcome {
    /// Guarded auto-promotion: shadow beat serving by the guardband.
    Auto,
    /// Operator forced the promotion via the CLI.
    Operator,
    /// Candidate rejected (fit failure, poison, or guardband never met).
    Rejected,
    /// A promoted version was rolled back.
    RolledBack,
}

impl PromotionOutcome {
    /// Every outcome, in metric-registration order.
    pub const ALL: [PromotionOutcome; 4] = [
        PromotionOutcome::Auto,
        PromotionOutcome::Operator,
        PromotionOutcome::Rejected,
        PromotionOutcome::RolledBack,
    ];

    /// Metric label for this outcome.
    pub fn label(self) -> &'static str {
        match self {
            PromotionOutcome::Auto => "auto",
            PromotionOutcome::Operator => "operator",
            PromotionOutcome::Rejected => "rejected",
            PromotionOutcome::RolledBack => "rolled-back",
        }
    }
}

/// Sink for lifecycle metrics; implemented by the server's metrics registry.
///
/// All methods default to no-ops so tests can pass a zero-sized observer.
pub trait LifecycleObserver: Send + Sync {
    /// Per-group state gauge changed (called on register and every
    /// transition).
    fn on_state(&self, model: &str, machine: &str, state: LifecycleState) {
        let _ = (model, machine, state);
    }
    /// A valid state transition happened.
    fn on_transition(&self, from: LifecycleState, to: LifecycleState) {
        let _ = (from, to);
    }
    /// Trainer queue depth changed.
    fn on_queue_depth(&self, depth: usize) {
        let _ = depth;
    }
    /// A candidate fit finished (success or failure); duration in seconds.
    fn on_fit_duration(&self, seconds: f64) {
        let _ = seconds;
    }
    /// A promotion decision was reached.
    fn on_promotion(&self, outcome: PromotionOutcome) {
        let _ = outcome;
    }
}

/// Observer that drops everything; used by [`LifecycleHub::new`].
#[derive(Debug, Default)]
pub struct NullObserver;

impl LifecycleObserver for NullObserver {}

/// A retrain job handed to [`LifecycleHub::request_retrain`].
pub struct RetrainRequest {
    /// Registry model name.
    pub model: String,
    /// Machine the group serves.
    pub machine: String,
    /// Registry version of the serving model the candidate warm-starts from.
    pub parent_version: u64,
    /// Snapshot of the serving model (cloned trees are the warm start).
    pub base: GradientBoosting,
    /// Retained observations: feature row plus measured seconds.
    pub rows: Vec<(FeatureRow, f64)>,
    /// Cumulative observation count for the group, used to space
    /// pool-triggered retrains.
    pub observations: u64,
    /// Why this retrain fired.
    pub reason: RetrainReason,
}

/// Handed out by [`LifecycleHub::evaluate_shadow`] / [`LifecycleHub::force_promote`]
/// when a candidate wins; the caller swaps it into the registry.
pub struct PromotionTicket {
    /// Registry model name.
    pub model: String,
    /// Machine the group serves.
    pub machine: String,
    /// The winning candidate, ready for `ModelRegistry::promote`.
    pub candidate: GradientBoosting,
    /// Lineage recorded at fit time.
    pub lineage: Lineage,
    /// Shadow-window MAPE at promotion time.
    pub shadow_mape: f64,
    /// Serving-window MAPE the shadow was judged against.
    pub serving_mape: f64,
    /// `Auto` or `Operator`.
    pub outcome: PromotionOutcome,
}

/// Verdict from [`LifecycleHub::evaluate_shadow`].
pub enum ShadowVerdict {
    /// Not enough evidence yet — keep shadow-scoring.
    KeepShadowing,
    /// The candidate won; execute the ticket against the registry.
    Promote(Box<PromotionTicket>),
    /// The candidate exhausted `max_shadow` without beating the guardband.
    Rejected,
}

/// Point-in-time view of one group, shaped for `GET /v1/lifecycle`.
#[derive(Debug, Clone)]
pub struct GroupLifecycle {
    /// Registry model name.
    pub model: String,
    /// Machine the group serves.
    pub machine: String,
    /// Current state.
    pub state: LifecycleState,
    /// Whether operator froze the group (no retrains, no auto-promotion).
    pub frozen: bool,
    /// Retrain jobs enqueued over the group's lifetime.
    pub retrains: u64,
    /// Shadow-window fill of the current candidate (0 when none).
    pub shadow_len: usize,
    /// Shadow-window MAPE of the current candidate (NaN when empty).
    pub shadow_mape: f64,
    /// Lineage of the current candidate, or of the last promoted candidate.
    pub lineage: Option<Lineage>,
    /// Human-readable reason for the last terminal decision.
    pub last_outcome: Option<String>,
}

struct Candidate {
    gb: GradientBoosting,
    flat: Arc<FlatGbt>,
    lineage: Lineage,
    window: RollingQuality,
}

struct GroupEntry {
    state: LifecycleState,
    frozen: bool,
    retrains: u64,
    candidate: Option<Candidate>,
    lineage: Option<Lineage>,
    last_outcome: Option<String>,
    last_trigger_obs: u64,
}

impl GroupEntry {
    fn new() -> GroupEntry {
        GroupEntry {
            state: LifecycleState::Idle,
            frozen: false,
            retrains: 0,
            candidate: None,
            lineage: None,
            last_outcome: None,
            last_trigger_obs: 0,
        }
    }
}

struct Inner {
    config: LifecycleConfig,
    observer: Box<dyn LifecycleObserver>,
    groups: Mutex<HashMap<(String, String), GroupEntry>>,
    queue_depth: AtomicUsize,
}

impl Inner {
    /// Apply a state change, updating the gauge always and the transition
    /// counter only for pairs in the enumerated valid set.
    fn set_state(&self, model: &str, machine: &str, entry: &mut GroupEntry, to: LifecycleState) {
        let from = entry.state;
        if from == to {
            return;
        }
        entry.state = to;
        self.observer.on_state(model, machine, to);
        if is_valid_transition(from, to) {
            self.observer.on_transition(from, to);
        }
        obs::event!(
            Level::Info,
            "lifecycle.transition",
            model = model,
            machine = machine,
            from = from.label(),
            to = to.label(),
        );
    }

    /// Worker-side: fit the candidate and move the group to Shadow or
    /// Rejected.
    fn train(&self, job: RetrainRequest) {
        {
            let mut groups = self.groups.lock();
            let entry = groups
                .entry((job.model.clone(), job.machine.clone()))
                .or_insert_with(GroupEntry::new);
            self.set_state(&job.model, &job.machine, entry, LifecycleState::Training);
        }
        let n = job.rows.len();
        let x = Matrix::from_fn(n, 4, |i, j| job.rows[i].0[j]);
        let y: Vec<f64> = job.rows.iter().map(|(_, m)| *m).collect();

        let mut candidate = job.base.clone();
        // Registry-loaded models decode with `max_depth = 0` (leaf-only), so
        // the appended stages always get a real depth cap; early stopping is
        // pointless on the small retained pool.
        candidate.max_depth = self.config.max_depth;
        candidate.n_iter_no_change = None;
        candidate.seed =
            job.parent_version.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(job.observations);
        let seed = candidate.seed;
        obs::event!(
            Level::Info,
            "lifecycle.fit.start",
            model = job.model.as_str(),
            machine = job.machine.as_str(),
            parent_version = job.parent_version,
            rows = n as u64,
            extra_stages = self.config.extra_stages as u64,
            reason = job.reason.label(),
        );
        let started = Instant::now();
        let fit = candidate.fit_more(&x, &y, self.config.extra_stages);
        let duration = started.elapsed();
        self.observer.on_fit_duration(duration.as_secs_f64());

        let failure = match fit {
            Err(e) => Some(format!("fit failed: {e}")),
            Ok(()) => {
                let preds = candidate.predict(&x);
                if preds.iter().any(|p| !p.is_finite()) {
                    Some("candidate produced non-finite predictions on its training rows".into())
                } else {
                    None
                }
            }
        };
        if let Some(why) = failure {
            obs::event!(
                Level::Warn,
                "lifecycle.fit.rejected",
                model = job.model.as_str(),
                machine = job.machine.as_str(),
                reason = why.as_str(),
                duration_us = duration.as_micros() as u64,
            );
            let mut groups = self.groups.lock();
            if let Some(entry) = groups.get_mut(&(job.model.clone(), job.machine.clone())) {
                entry.candidate = None;
                entry.last_outcome = Some(why);
                self.set_state(&job.model, &job.machine, entry, LifecycleState::Rejected);
            }
            self.observer.on_promotion(PromotionOutcome::Rejected);
            return;
        }

        let flat = Arc::new(FlatGbt::compile(&candidate));
        let lineage = Lineage {
            parent_version: job.parent_version,
            train_rows: 0,
            observed_rows: n as u32,
            fit_duration_ms: duration.as_millis() as u64,
            seed,
        };
        obs::event!(
            Level::Info,
            "lifecycle.fit.done",
            model = job.model.as_str(),
            machine = job.machine.as_str(),
            stages = candidate.n_stages() as u64,
            duration_us = duration.as_micros() as u64,
        );
        let mut groups = self.groups.lock();
        if let Some(entry) = groups.get_mut(&(job.model.clone(), job.machine.clone())) {
            entry.candidate = Some(Candidate {
                gb: candidate,
                flat,
                lineage,
                window: RollingQuality::new(self.config.shadow_window),
            });
            entry.lineage = Some(lineage);
            self.set_state(&job.model, &job.machine, entry, LifecycleState::Shadow);
        }
    }
}

/// Coordinates background retraining, shadow scoring, and promotion
/// decisions for every (model, machine) group.
///
/// Thread-safe; the server shares one hub between all connection handlers
/// and the single trainer thread the hub owns. Dropping the hub (or calling
/// [`LifecycleHub::shutdown`]) closes the queue and joins the trainer, so
/// in-flight fits finish and queued jobs drain before exit.
pub struct LifecycleHub {
    inner: Arc<Inner>,
    tx: Mutex<Option<SyncSender<RetrainRequest>>>,
    worker: Mutex<Option<thread::JoinHandle<()>>>,
}

impl LifecycleHub {
    /// Hub with a [`NullObserver`]; convenient for tests.
    pub fn new(config: LifecycleConfig) -> LifecycleHub {
        LifecycleHub::with_observer(config, Box::new(NullObserver))
    }

    /// Hub that reports metrics through `observer`; spawns the trainer
    /// thread.
    pub fn with_observer(
        config: LifecycleConfig,
        observer: Box<dyn LifecycleObserver>,
    ) -> LifecycleHub {
        let (tx, rx) = mpsc::sync_channel::<RetrainRequest>(config.queue_cap.max(1));
        let inner = Arc::new(Inner {
            config,
            observer,
            groups: Mutex::new(HashMap::new()),
            queue_depth: AtomicUsize::new(0),
        });
        let worker_inner = Arc::clone(&inner);
        let handle = thread::Builder::new()
            .name("chemcost-lifecycle".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    let depth =
                        worker_inner.queue_depth.fetch_sub(1, Ordering::AcqRel).saturating_sub(1);
                    worker_inner.observer.on_queue_depth(depth);
                    worker_inner.train(job);
                }
            })
            .expect("spawn lifecycle trainer thread");
        LifecycleHub { inner, tx: Mutex::new(Some(tx)), worker: Mutex::new(Some(handle)) }
    }

    /// Active configuration.
    pub fn config(&self) -> &LifecycleConfig {
        &self.inner.config
    }

    /// Ensure a group exists (Idle) and its state gauge is exported.
    pub fn register_group(&self, model: &str, machine: &str) {
        let mut groups = self.inner.groups.lock();
        let entry =
            groups.entry((model.to_string(), machine.to_string())).or_insert_with(GroupEntry::new);
        self.inner.observer.on_state(model, machine, entry.state);
    }

    /// Enqueue a retrain job. Refused (with a reason) when the group is
    /// frozen, already has a job or candidate in flight, lacks data, fired
    /// too recently, or the bounded queue is full.
    pub fn request_retrain(&self, req: RetrainRequest) -> Result<(), String> {
        {
            let mut groups = self.inner.groups.lock();
            let entry = groups
                .entry((req.model.clone(), req.machine.clone()))
                .or_insert_with(GroupEntry::new);
            if entry.frozen {
                return Err("group is frozen; unfreeze before retraining".into());
            }
            match entry.state {
                LifecycleState::Queued | LifecycleState::Training | LifecycleState::Shadow => {
                    return Err(format!(
                        "retrain already in flight (state {})",
                        entry.state.label()
                    ));
                }
                _ => {}
            }
            if req.rows.len() < self.inner.config.min_retrain_rows {
                return Err(format!(
                    "only {} retained rows; need at least {}",
                    req.rows.len(),
                    self.inner.config.min_retrain_rows
                ));
            }
            if req.reason == RetrainReason::PoolThreshold
                && req.observations < entry.last_trigger_obs + self.inner.config.pool_trigger as u64
            {
                return Err(format!(
                    "pool trigger needs {} new observations since the last retrain",
                    self.inner.config.pool_trigger
                ));
            }
            let tx = self.tx.lock();
            let Some(tx) = tx.as_ref() else {
                return Err("lifecycle trainer is shut down".into());
            };
            let model = req.model.clone();
            let machine = req.machine.clone();
            let observations = req.observations;
            let reason = req.reason;
            // Count the job before sending so the worker's decrement can
            // never observe (and wrap) a zero counter.
            let depth = self.inner.queue_depth.fetch_add(1, Ordering::AcqRel) + 1;
            match tx.try_send(req) {
                Ok(()) => {
                    self.inner.observer.on_queue_depth(depth);
                    entry.retrains += 1;
                    entry.last_trigger_obs = observations;
                    entry.candidate = None;
                    self.inner.set_state(&model, &machine, entry, LifecycleState::Queued);
                    obs::event!(
                        Level::Info,
                        "lifecycle.retrain.queued",
                        model = model.as_str(),
                        machine = machine.as_str(),
                        reason = reason.label(),
                        queue_depth = depth as u64,
                    );
                    Ok(())
                }
                Err(TrySendError::Full(_)) => {
                    self.inner.queue_depth.fetch_sub(1, Ordering::AcqRel);
                    Err("trainer queue is full; retry later".into())
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.inner.queue_depth.fetch_sub(1, Ordering::AcqRel);
                    Err("lifecycle trainer is shut down".into())
                }
            }
        }
    }

    /// Install a candidate directly into Shadow, bypassing the trainer.
    /// Used by tests and by operators re-arming a previously rejected
    /// candidate; the same promotion guards still apply.
    pub fn install_candidate(
        &self,
        model: &str,
        machine: &str,
        gb: GradientBoosting,
        lineage: Lineage,
    ) {
        let flat = Arc::new(FlatGbt::compile(&gb));
        let mut groups = self.inner.groups.lock();
        let entry =
            groups.entry((model.to_string(), machine.to_string())).or_insert_with(GroupEntry::new);
        entry.candidate = Some(Candidate {
            gb,
            flat,
            lineage,
            window: RollingQuality::new(self.inner.config.shadow_window),
        });
        entry.lineage = Some(lineage);
        self.inner.set_state(model, machine, entry, LifecycleState::Shadow);
    }

    /// Score one request with the group's shadow candidate, if any.
    ///
    /// Returns `None` when the group has no candidate in Shadow. A
    /// non-finite shadow prediction is poison: the candidate is rejected on
    /// the spot and `None` is returned, so a poisoned candidate can never
    /// accumulate a window, let alone promote.
    pub fn shadow_predict(&self, model: &str, machine: &str, features: &FeatureRow) -> Option<f64> {
        let flat = {
            let groups = self.inner.groups.lock();
            let entry = groups.get(&(model.to_string(), machine.to_string()))?;
            if entry.state != LifecycleState::Shadow {
                return None;
            }
            Arc::clone(&entry.candidate.as_ref()?.flat)
        };
        let predicted = flat.predict_row(features);
        if predicted.is_finite() {
            return Some(predicted);
        }
        let mut groups = self.inner.groups.lock();
        if let Some(entry) = groups.get_mut(&(model.to_string(), machine.to_string())) {
            if entry.state == LifecycleState::Shadow {
                entry.candidate = None;
                entry.last_outcome =
                    Some("shadow candidate produced a non-finite prediction".into());
                self.inner.set_state(model, machine, entry, LifecycleState::Rejected);
                self.inner.observer.on_promotion(PromotionOutcome::Rejected);
                obs::event!(
                    Level::Warn,
                    "lifecycle.shadow.poison",
                    model = model,
                    machine = machine,
                );
            }
        }
        None
    }

    /// Journal one redeemed observation into the shadow window.
    pub fn record_shadow(&self, model: &str, machine: &str, shadow_predicted: f64, measured: f64) {
        let mut groups = self.inner.groups.lock();
        let Some(entry) = groups.get_mut(&(model.to_string(), machine.to_string())) else {
            return;
        };
        if entry.state != LifecycleState::Shadow {
            return;
        }
        if let Some(candidate) = entry.candidate.as_mut() {
            candidate.window.push(shadow_predicted, measured, None);
        }
    }

    /// Decide the shadow candidate's fate against the serving model's
    /// current rolling MAPE.
    ///
    /// Promotion requires `shadow_mape + guardband <= serving_mape` (a
    /// non-finite serving MAPE counts as beaten) once the window holds
    /// `min_shadow` points. A candidate that reaches `max_shadow` without
    /// winning is rejected. Frozen groups always keep shadowing.
    pub fn evaluate_shadow(&self, model: &str, machine: &str, serving_mape: f64) -> ShadowVerdict {
        let mut groups = self.inner.groups.lock();
        let Some(entry) = groups.get_mut(&(model.to_string(), machine.to_string())) else {
            return ShadowVerdict::KeepShadowing;
        };
        if entry.state != LifecycleState::Shadow || entry.frozen {
            return ShadowVerdict::KeepShadowing;
        }
        let Some(candidate) = entry.candidate.as_ref() else {
            return ShadowVerdict::KeepShadowing;
        };
        let len = candidate.window.len();
        if len < self.inner.config.min_shadow {
            return ShadowVerdict::KeepShadowing;
        }
        let shadow_mape = candidate.window.mape();
        let wins = shadow_mape.is_finite()
            && (!serving_mape.is_finite()
                || shadow_mape + self.inner.config.guardband <= serving_mape);
        if wins {
            let candidate = entry.candidate.take().expect("candidate checked above");
            let lineage = candidate.lineage;
            entry.lineage = Some(lineage);
            entry.last_outcome = Some(format!(
                "auto-promoted: shadow MAPE {shadow_mape:.4} beat serving {serving_mape:.4} by ≥ {:.4}",
                self.inner.config.guardband
            ));
            self.inner.set_state(model, machine, entry, LifecycleState::Promoted);
            self.inner.observer.on_promotion(PromotionOutcome::Auto);
            return ShadowVerdict::Promote(Box::new(PromotionTicket {
                model: model.to_string(),
                machine: machine.to_string(),
                candidate: candidate.gb,
                lineage,
                shadow_mape,
                serving_mape,
                outcome: PromotionOutcome::Auto,
            }));
        }
        if len >= self.inner.config.max_shadow {
            entry.candidate = None;
            entry.last_outcome = Some(format!(
                "rejected: shadow MAPE {shadow_mape:.4} never beat serving {serving_mape:.4} by {:.4} within {len} observations",
                self.inner.config.guardband
            ));
            self.inner.set_state(model, machine, entry, LifecycleState::Rejected);
            self.inner.observer.on_promotion(PromotionOutcome::Rejected);
            obs::event!(
                Level::Warn,
                "lifecycle.shadow.rejected",
                model = model,
                machine = machine,
                shadow_mape = shadow_mape,
                serving_mape = serving_mape,
            );
            return ShadowVerdict::Rejected;
        }
        ShadowVerdict::KeepShadowing
    }

    /// Operator override: promote the current shadow candidate regardless of
    /// the guardband. Fails unless the group is in Shadow.
    pub fn force_promote(&self, model: &str, machine: &str) -> Result<PromotionTicket, String> {
        let mut groups = self.inner.groups.lock();
        let entry = groups
            .get_mut(&(model.to_string(), machine.to_string()))
            .ok_or_else(|| format!("unknown lifecycle group {model}/{machine}"))?;
        if entry.state != LifecycleState::Shadow {
            return Err(format!("no shadow candidate to promote (state {})", entry.state.label()));
        }
        let candidate =
            entry.candidate.take().ok_or_else(|| "shadow state without a candidate".to_string())?;
        let shadow_mape = candidate.window.mape();
        let lineage = candidate.lineage;
        entry.lineage = Some(lineage);
        entry.last_outcome = Some("operator-promoted".into());
        self.inner.set_state(model, machine, entry, LifecycleState::Promoted);
        self.inner.observer.on_promotion(PromotionOutcome::Operator);
        Ok(PromotionTicket {
            model: model.to_string(),
            machine: machine.to_string(),
            candidate: candidate.gb,
            lineage,
            shadow_mape,
            serving_mape: f64::NAN,
            outcome: PromotionOutcome::Operator,
        })
    }

    /// Record that the caller rolled the registry back for this group.
    /// Refused while a retrain is queued or training (the in-flight
    /// candidate still owns the group).
    pub fn mark_rolled_back(&self, model: &str, machine: &str) -> Result<(), String> {
        let mut groups = self.inner.groups.lock();
        let entry = groups
            .get_mut(&(model.to_string(), machine.to_string()))
            .ok_or_else(|| format!("unknown lifecycle group {model}/{machine}"))?;
        match entry.state {
            LifecycleState::Queued | LifecycleState::Training => Err(format!(
                "cannot roll back while a retrain is in flight (state {})",
                entry.state.label()
            )),
            _ => {
                entry.candidate = None;
                entry.last_outcome = Some("rolled back to prior version".into());
                self.inner.set_state(model, machine, entry, LifecycleState::RolledBack);
                self.inner.observer.on_promotion(PromotionOutcome::RolledBack);
                Ok(())
            }
        }
    }

    /// Freeze or unfreeze a group. Frozen groups refuse retrain triggers and
    /// never auto-promote; an existing shadow keeps scoring so the operator
    /// can inspect it. Returns the previous frozen flag.
    pub fn set_frozen(&self, model: &str, machine: &str, frozen: bool) -> Result<bool, String> {
        let mut groups = self.inner.groups.lock();
        let entry = groups
            .get_mut(&(model.to_string(), machine.to_string()))
            .ok_or_else(|| format!("unknown lifecycle group {model}/{machine}"))?;
        let was = entry.frozen;
        entry.frozen = frozen;
        obs::event!(
            Level::Info,
            "lifecycle.freeze",
            model = model,
            machine = machine,
            frozen = if frozen { 1u64 } else { 0u64 },
        );
        Ok(was)
    }

    /// Current state of one group.
    pub fn group_state(&self, model: &str, machine: &str) -> Option<LifecycleState> {
        let groups = self.inner.groups.lock();
        groups.get(&(model.to_string(), machine.to_string())).map(|e| e.state)
    }

    /// Snapshot of every group, sorted by (model, machine).
    pub fn snapshot(&self) -> Vec<GroupLifecycle> {
        let groups = self.inner.groups.lock();
        let mut out: Vec<GroupLifecycle> = groups
            .iter()
            .map(|((model, machine), e)| GroupLifecycle {
                model: model.clone(),
                machine: machine.clone(),
                state: e.state,
                frozen: e.frozen,
                retrains: e.retrains,
                shadow_len: e.candidate.as_ref().map_or(0, |c| c.window.len()),
                shadow_mape: e.candidate.as_ref().map_or(f64::NAN, |c| c.window.mape()),
                lineage: e.lineage,
                last_outcome: e.last_outcome.clone(),
            })
            .collect();
        out.sort_by(|a, b| (&a.model, &a.machine).cmp(&(&b.model, &b.machine)));
        out
    }

    /// Jobs currently waiting in the trainer queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue_depth.load(Ordering::Acquire)
    }

    /// Close the queue and join the trainer thread. Idempotent; also called
    /// on drop. Queued jobs drain (each finishes training) before the
    /// thread exits.
    pub fn shutdown(&self) {
        let tx = self.tx.lock().take();
        drop(tx);
        let handle = self.worker.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for LifecycleHub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    /// y = 3o + 2v + nodes/50 + tile/100, with a multiplicative `shift`.
    fn rows(n: usize, shift: f64, offset: usize) -> Vec<(FeatureRow, f64)> {
        (0..n)
            .map(|i| {
                let i = i + offset;
                let o = 90.0 + (i % 7) as f64;
                let v = 700.0 + (i % 11) as f64 * 3.0;
                let nodes = 60.0 + (i % 5) as f64 * 30.0;
                let tile = 30.0 + (i % 4) as f64 * 20.0;
                let y = shift * (3.0 * o + 2.0 * v + nodes / 50.0 + tile / 100.0);
                ([o, v, nodes, tile], y)
            })
            .collect()
    }

    fn fitted_base(n: usize) -> GradientBoosting {
        let data = rows(n, 1.0, 0);
        let x = Matrix::from_fn(n, 4, |i, j| data[i].0[j]);
        let y: Vec<f64> = data.iter().map(|(_, m)| *m).collect();
        let mut gb = GradientBoosting::new(60, 4, 0.1);
        gb.seed = 11;
        gb.fit(&x, &y).expect("fit base");
        gb
    }

    fn request(base: &GradientBoosting, shift: f64, n: usize) -> RetrainRequest {
        RetrainRequest {
            model: "gb".into(),
            machine: "aurora".into(),
            parent_version: 1,
            base: base.clone(),
            rows: rows(n, shift, 1),
            observations: n as u64 + 100,
            reason: RetrainReason::DriftTrip,
        }
    }

    fn wait_for(hub: &LifecycleHub, state: LifecycleState) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while hub.group_state("gb", "aurora") != Some(state) {
            assert!(Instant::now() < deadline, "timed out waiting for {state:?}");
            thread::sleep(Duration::from_millis(5));
        }
    }

    fn nan_candidate() -> GradientBoosting {
        use chemcost_ml::tree::FlatNode;
        let leaf =
            FlatNode { feature: u32::MAX, threshold: 0.0, left: 0, right: 0, value: f64::NAN };
        GradientBoosting::from_export(0.0, 0.1, 4, &[vec![leaf]])
    }

    fn lineage() -> Lineage {
        Lineage { parent_version: 1, train_rows: 0, observed_rows: 64, fit_duration_ms: 5, seed: 7 }
    }

    #[derive(Default)]
    struct CountingObserver {
        transitions: AtomicU64,
        promotions: AtomicU64,
        rejections: AtomicU64,
        fits: AtomicU64,
    }

    impl LifecycleObserver for CountingObserver {
        fn on_transition(&self, _from: LifecycleState, _to: LifecycleState) {
            self.transitions.fetch_add(1, Ordering::Relaxed);
        }
        fn on_fit_duration(&self, _seconds: f64) {
            self.fits.fetch_add(1, Ordering::Relaxed);
        }
        fn on_promotion(&self, outcome: PromotionOutcome) {
            match outcome {
                PromotionOutcome::Auto | PromotionOutcome::Operator => {
                    self.promotions.fetch_add(1, Ordering::Relaxed)
                }
                _ => self.rejections.fetch_add(1, Ordering::Relaxed),
            };
        }
    }

    #[test]
    fn retrain_reaches_shadow_and_auto_promotes() {
        let base = fitted_base(120);
        let hub = LifecycleHub::new(LifecycleConfig {
            min_shadow: 8,
            max_shadow: 32,
            guardband: 0.02,
            ..LifecycleConfig::default()
        });
        hub.register_group("gb", "aurora");
        hub.request_retrain(request(&base, 1.7, 120)).expect("enqueue");
        wait_for(&hub, LifecycleState::Shadow);

        // Replay the shifted world through the shadow and check it scores
        // far better than the stale serving model would.
        let world = rows(40, 1.7, 500);
        for (features, measured) in &world {
            let shadow = hub
                .shadow_predict("gb", "aurora", features)
                .expect("candidate must score while in Shadow");
            hub.record_shadow("gb", "aurora", shadow, *measured);
        }
        let snap = &hub.snapshot()[0];
        assert!(snap.shadow_mape < 0.1, "shadow MAPE {} too high", snap.shadow_mape);
        assert_eq!(snap.lineage.unwrap().observed_rows, 120);
        assert_eq!(snap.lineage.unwrap().parent_version, 1);

        // Serving MAPE under the shifted world is ~0.41 (1/1.7 off).
        match hub.evaluate_shadow("gb", "aurora", 0.41) {
            ShadowVerdict::Promote(ticket) => {
                assert_eq!(ticket.model, "gb");
                assert_eq!(ticket.outcome, PromotionOutcome::Auto);
                assert!(ticket.shadow_mape + 0.02 <= 0.41);
                assert!(ticket.candidate.n_stages() > base.n_stages());
            }
            _ => panic!("expected promotion"),
        }
        assert_eq!(hub.group_state("gb", "aurora"), Some(LifecycleState::Promoted));
        assert!(hub.shadow_predict("gb", "aurora", &world[0].0).is_none());
    }

    #[test]
    fn weak_candidate_is_rejected_at_max_shadow() {
        let base = fitted_base(120);
        let hub = LifecycleHub::new(LifecycleConfig {
            min_shadow: 4,
            max_shadow: 8,
            ..LifecycleConfig::default()
        });
        // Candidate trained on the SAME world as serving: it cannot beat a
        // serving MAPE that is already tiny.
        hub.request_retrain(request(&base, 1.0, 120)).expect("enqueue");
        wait_for(&hub, LifecycleState::Shadow);
        for (features, measured) in rows(8, 1.0, 900) {
            let shadow = hub.shadow_predict("gb", "aurora", &features).unwrap();
            hub.record_shadow("gb", "aurora", shadow, measured);
        }
        match hub.evaluate_shadow("gb", "aurora", 0.0001) {
            ShadowVerdict::Rejected => {}
            _ => panic!("expected rejection at max_shadow"),
        }
        assert_eq!(hub.group_state("gb", "aurora"), Some(LifecycleState::Rejected));
        let snap = &hub.snapshot()[0];
        assert!(snap.last_outcome.as_deref().unwrap().starts_with("rejected"));
    }

    #[test]
    fn poison_candidate_never_promotes() {
        let hub = LifecycleHub::new(LifecycleConfig::default());
        hub.install_candidate("gb", "aurora", nan_candidate(), lineage());
        assert_eq!(hub.group_state("gb", "aurora"), Some(LifecycleState::Shadow));
        let out = hub.shadow_predict("gb", "aurora", &[99.0, 718.0, 120.0, 90.0]);
        assert!(out.is_none());
        assert_eq!(hub.group_state("gb", "aurora"), Some(LifecycleState::Rejected));
        // Rejection is terminal for the candidate: evaluation cannot revive it.
        match hub.evaluate_shadow("gb", "aurora", 10.0) {
            ShadowVerdict::KeepShadowing => {}
            _ => panic!("rejected candidate must not be evaluated"),
        }
        assert!(hub.force_promote("gb", "aurora").is_err());
    }

    #[test]
    fn one_job_per_group_and_freeze_guard() {
        let base = fitted_base(60);
        let hub = LifecycleHub::new(LifecycleConfig::default());
        hub.request_retrain(request(&base, 1.3, 60)).expect("first enqueue");
        let err = hub.request_retrain(request(&base, 1.3, 60)).unwrap_err();
        assert!(err.contains("in flight"), "got: {err}");
        wait_for(&hub, LifecycleState::Shadow);

        // Frozen groups refuse triggers and never auto-promote.
        assert!(!hub.set_frozen("gb", "aurora", true).unwrap());
        match hub.evaluate_shadow("gb", "aurora", f64::NAN) {
            ShadowVerdict::KeepShadowing => {}
            _ => panic!("frozen group must keep shadowing"),
        }
        hub.set_frozen("gb", "aurora", false).unwrap();
        hub.mark_rolled_back("gb", "aurora").expect("rollback from shadow");
        let err = hub
            .request_retrain(RetrainRequest { rows: rows(4, 1.0, 0), ..request(&base, 1.0, 60) })
            .unwrap_err();
        assert!(err.contains("retained rows"), "got: {err}");
    }

    #[test]
    fn pool_trigger_is_spaced_by_new_observations() {
        let base = fitted_base(120);
        let hub = LifecycleHub::new(LifecycleConfig {
            min_shadow: 4,
            max_shadow: 8,
            pool_trigger: 100,
            ..LifecycleConfig::default()
        });
        let mut req = request(&base, 1.0, 120);
        req.reason = RetrainReason::PoolThreshold;
        req.observations = 120;
        hub.request_retrain(req).expect("first pool trigger");
        wait_for(&hub, LifecycleState::Shadow);
        for (features, measured) in rows(8, 1.0, 900) {
            let shadow = hub.shadow_predict("gb", "aurora", &features).unwrap();
            hub.record_shadow("gb", "aurora", shadow, measured);
        }
        let _ = hub.evaluate_shadow("gb", "aurora", 0.0001); // -> Rejected
        let mut again = request(&base, 1.0, 120);
        again.reason = RetrainReason::PoolThreshold;
        again.observations = 150; // only 30 new since the trigger at 120
        let err = hub.request_retrain(again).unwrap_err();
        assert!(err.contains("new observations"), "got: {err}");
        let mut later = request(&base, 1.0, 120);
        later.reason = RetrainReason::PoolThreshold;
        later.observations = 220;
        hub.request_retrain(later).expect("spaced pool trigger accepted");
    }

    #[test]
    fn fit_failure_rejects_and_observer_sees_everything() {
        let observer = Arc::new(CountingObserver::default());
        struct Fwd(Arc<CountingObserver>);
        impl LifecycleObserver for Fwd {
            fn on_transition(&self, f: LifecycleState, t: LifecycleState) {
                self.0.on_transition(f, t);
            }
            fn on_fit_duration(&self, s: f64) {
                self.0.on_fit_duration(s);
            }
            fn on_promotion(&self, o: PromotionOutcome) {
                self.0.on_promotion(o);
            }
        }
        let hub = LifecycleHub::with_observer(
            LifecycleConfig::default(),
            Box::new(Fwd(Arc::clone(&observer))),
        );
        // An unfitted base makes fit_more fail -> Rejected.
        let mut req = request(&GradientBoosting::new(10, 3, 0.1), 1.0, 60);
        req.rows = rows(60, 1.0, 0);
        hub.request_retrain(req).expect("enqueue");
        wait_for(&hub, LifecycleState::Rejected);
        let snap = &hub.snapshot()[0];
        assert!(snap.last_outcome.as_deref().unwrap().starts_with("fit failed"));
        // idle->queued, queued->training, training->rejected.
        assert_eq!(observer.transitions.load(Ordering::Relaxed), 3);
        assert_eq!(observer.fits.load(Ordering::Relaxed), 1);
        assert_eq!(observer.rejections.load(Ordering::Relaxed), 1);
        assert_eq!(observer.promotions.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn operator_force_promote_and_rollback() {
        let base = fitted_base(80);
        let hub = LifecycleHub::new(LifecycleConfig::default());
        hub.request_retrain(request(&base, 1.5, 80)).expect("enqueue");
        wait_for(&hub, LifecycleState::Shadow);
        let ticket = hub.force_promote("gb", "aurora").expect("force promote");
        assert_eq!(ticket.outcome, PromotionOutcome::Operator);
        assert_eq!(hub.group_state("gb", "aurora"), Some(LifecycleState::Promoted));
        hub.mark_rolled_back("gb", "aurora").expect("rollback");
        assert_eq!(hub.group_state("gb", "aurora"), Some(LifecycleState::RolledBack));
        // After rollback the group can re-enter the loop.
        hub.request_retrain(request(&base, 1.5, 80)).expect("re-queue");
        wait_for(&hub, LifecycleState::Shadow);
    }

    #[test]
    fn shutdown_drains_and_is_idempotent() {
        let base = fitted_base(60);
        let hub = LifecycleHub::new(LifecycleConfig::default());
        hub.request_retrain(request(&base, 1.2, 60)).expect("enqueue");
        hub.shutdown();
        hub.shutdown();
        // The queued job drained through training before the join returned.
        let state = hub.group_state("gb", "aurora").unwrap();
        assert!(
            matches!(state, LifecycleState::Shadow | LifecycleState::Rejected),
            "job did not drain: {state:?}"
        );
        assert_eq!(hub.queue_depth(), 0);
        // Settle the group so the next request reaches the (closed) queue.
        hub.mark_rolled_back("gb", "aurora").expect("settle group");
        let err = hub.request_retrain(request(&base, 1.2, 60)).unwrap_err();
        assert!(err.contains("shut down"), "got: {err}");
    }
}
