//! The user-facing resource-estimation framework (the paper's
//! contribution, §3).
//!
//! Given a trained runtime predictor, this crate answers the two questions
//! application users ask before committing a supercomputer allocation:
//!
//! * **STQ** — the *Shortest-Time Question*: for my problem `(O, V)`, which
//!   `(nodes, tile)` finishes a CCSD iteration fastest?
//! * **BQ** — the *Budget Question*: which `(nodes, tile)` spends the
//!   fewest node-hours?
//!
//! Modules:
//!
//! * [`data`] — bridge from the simulator's sample corpus to ML datasets,
//!   with the paper's 75/25 train/test protocol (Table 1).
//! * [`advisor`] — sweep-based question answering on a trained model
//!   (§3.3's iterative model querying).
//! * [`evaluation`] — the paper's evaluation protocol for Tables 3–6:
//!   per-problem optima from the test set, with losses computed at the
//!   predicted configuration's **true** runtime (§3.4's caveat), plus the
//!   goal evaluators Figures 5–6 plug into active learning.
//! * [`pipeline`] — one-call experiment flows used by the examples and
//!   the `exp_*` benchmark binaries.
//! * [`report`] — aligned text tables and CSV emission.

#![deny(missing_docs)]

pub mod advisor;
pub mod data;
pub mod evaluation;
pub mod pipeline;
pub mod report;

pub use advisor::{
    Advisor, Goal, Recommendation, RiskAwareRecommendation, Sweep, UncertaintyAdvisor,
};
pub use data::MachineData;
