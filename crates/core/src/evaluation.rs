//! The paper's evaluation protocol for the STQ/BQ goals (Tables 3–6 and
//! the goal curves of Figures 5–6).
//!
//! For every problem `(O, V)` appearing in the **test set**:
//!
//! 1. the *true* optimal configuration is the test row minimizing the true
//!    objective (seconds for STQ, node-hours for BQ);
//! 2. the *predicted* optimal configuration is the test row minimizing the
//!    **model-predicted** objective;
//! 3. the loss compares the true objective at (1) with the **true**
//!    objective at (2) — *not* with the predicted value at (2). A model
//!    that confidently predicts a bad configuration must pay that
//!    configuration's real cost (§3.4's caveat).

use crate::advisor::Goal;
use chemcost_linalg::Matrix;
use chemcost_ml::metrics::Scores;
use chemcost_ml::traits::Regressor;
use chemcost_sim::datagen::Sample;

/// One row of a Table 3–6 style report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptRow {
    /// Occupied orbitals.
    pub o: usize,
    /// Virtual orbitals.
    pub v: usize,
    /// True-optimal node count.
    pub true_nodes: usize,
    /// True-optimal tile size.
    pub true_tile: usize,
    /// True runtime (seconds) at the true optimum.
    pub true_seconds: f64,
    /// True objective value at the true optimum (== seconds for STQ,
    /// node-hours for BQ).
    pub true_objective: f64,
    /// Predicted-optimal node count.
    pub pred_nodes: usize,
    /// Predicted-optimal tile size.
    pub pred_tile: usize,
    /// **True** runtime at the predicted configuration.
    pub seconds_at_pred: f64,
    /// **True** objective at the predicted configuration.
    pub objective_at_pred: f64,
}

impl OptRow {
    /// Whether the model named the true optimal configuration.
    pub fn correct(&self) -> bool {
        self.true_nodes == self.pred_nodes && self.true_tile == self.pred_tile
    }
}

/// A complete STQ/BQ evaluation.
#[derive(Debug, Clone)]
pub struct OptTable {
    /// Which question was evaluated.
    pub goal: Goal,
    /// One row per test-set problem, in (O, V) order.
    pub rows: Vec<OptRow>,
    /// R²/MAE/MAPE between the per-problem true optima and the true
    /// objective at the predicted configurations.
    pub scores: Scores,
}

impl OptTable {
    /// Number of problems where the configuration was mispredicted.
    pub fn n_incorrect(&self) -> usize {
        self.rows.iter().filter(|r| !r.correct()).count()
    }
}

fn objective(s: &Sample, goal: Goal) -> f64 {
    match goal {
        Goal::ShortestTime => s.seconds,
        Goal::Budget => s.node_hours,
    }
}

fn predicted_objective(pred_seconds: f64, s: &Sample, goal: Goal) -> f64 {
    match goal {
        Goal::ShortestTime => pred_seconds,
        Goal::Budget => pred_seconds * s.nodes as f64 / 3600.0,
    }
}

/// Group test-sample indices by problem, in first-appearance order sorted
/// by `(O, V)`.
fn group_by_problem(samples: &[Sample]) -> Vec<((usize, usize), Vec<usize>)> {
    let mut map: std::collections::BTreeMap<(usize, usize), Vec<usize>> = Default::default();
    for (i, s) in samples.iter().enumerate() {
        map.entry((s.o, s.v)).or_default().push(i);
    }
    map.into_iter().collect()
}

/// Build an [`OptTable`] from the test samples and the model's predicted
/// seconds for each of them (aligned by index).
///
/// # Panics
/// Panics if the lengths disagree or the test set is empty.
pub fn optimal_table(test: &[Sample], pred_seconds: &[f64], goal: Goal) -> OptTable {
    assert_eq!(test.len(), pred_seconds.len(), "prediction/test misalignment");
    assert!(!test.is_empty(), "empty test set");
    let mut rows = Vec::new();
    let mut y_true = Vec::new();
    let mut y_at_pred = Vec::new();
    for ((o, v), idx) in group_by_problem(test) {
        let true_best = idx
            .iter()
            .copied()
            .min_by(|&a, &b| {
                objective(&test[a], goal)
                    .partial_cmp(&objective(&test[b], goal))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty group");
        let pred_best = idx
            .iter()
            .copied()
            .min_by(|&a, &b| {
                predicted_objective(pred_seconds[a], &test[a], goal)
                    .partial_cmp(&predicted_objective(pred_seconds[b], &test[b], goal))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty group");
        let tb = &test[true_best];
        let pb = &test[pred_best];
        rows.push(OptRow {
            o,
            v,
            true_nodes: tb.nodes,
            true_tile: tb.tile,
            true_seconds: tb.seconds,
            true_objective: objective(tb, goal),
            pred_nodes: pb.nodes,
            pred_tile: pb.tile,
            seconds_at_pred: pb.seconds,
            objective_at_pred: objective(pb, goal),
        });
        y_true.push(objective(tb, goal));
        y_at_pred.push(objective(pb, goal));
    }
    OptTable { goal, rows, scores: Scores::compute(&y_true, &y_at_pred) }
}

/// Evaluate a fitted seconds-model against the test samples and build the
/// table (predicts internally).
pub fn evaluate_model(model: &dyn Regressor, test: &[Sample], goal: Goal) -> OptTable {
    let x = features_of(test);
    let pred = model.predict(&x);
    optimal_table(test, &pred, goal)
}

/// Plain prediction scores (R²/MAE/MAPE of predicted vs. true seconds)
/// over the test samples — the paper's non-goal metric.
pub fn prediction_scores(model: &dyn Regressor, test: &[Sample]) -> Scores {
    let x = features_of(test);
    let pred = model.predict(&x);
    let y: Vec<f64> = test.iter().map(|s| s.seconds).collect();
    Scores::compute(&y, &pred)
}

/// Feature matrix of a sample slice.
pub fn features_of(samples: &[Sample]) -> Matrix {
    let mut x = Matrix::zeros(0, 4);
    for s in samples {
        x.push_row(&s.features());
    }
    x
}

/// A goal evaluator for active learning (Figures 5–6): given a fitted
/// model, runs the full table protocol on `test` and returns its scores.
pub fn goal_evaluator(test: Vec<Sample>, goal: Goal) -> impl Fn(&dyn Regressor) -> Scores {
    move |model: &dyn Regressor| evaluate_model(model, &test, goal).scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use chemcost_ml::FitError;

    fn sample(o: usize, v: usize, nodes: usize, tile: usize, seconds: f64) -> Sample {
        Sample {
            o,
            v,
            nodes,
            tile,
            seconds,
            node_hours: seconds * nodes as f64 / 3600.0,
            energy_kwh: seconds * nodes as f64 * 2500.0 / 3.6e6,
        }
    }

    /// Model returning a fixed list of predictions regardless of input.
    struct Canned(Vec<f64>);
    impl Regressor for Canned {
        fn fit(&mut self, _: &Matrix, _: &[f64]) -> Result<(), FitError> {
            Ok(())
        }
        fn predict(&self, x: &Matrix) -> Vec<f64> {
            self.0[..x.nrows()].to_vec()
        }
        fn name(&self) -> &'static str {
            "canned"
        }
    }

    fn demo_test_set() -> Vec<Sample> {
        vec![
            // Problem A: true best is (nodes=10, t=40) at 5 s.
            sample(10, 100, 5, 40, 9.0),
            sample(10, 100, 10, 40, 5.0),
            sample(10, 100, 20, 40, 7.0),
            // Problem B: true best is (nodes=50, t=80) at 11 s.
            sample(20, 200, 25, 80, 14.0),
            sample(20, 200, 50, 80, 11.0),
        ]
    }

    #[test]
    fn perfect_predictions_yield_perfect_table() {
        let test = demo_test_set();
        let pred: Vec<f64> = test.iter().map(|s| s.seconds).collect();
        let table = optimal_table(&test, &pred, Goal::ShortestTime);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.n_incorrect(), 0);
        assert_eq!(table.scores.r2, 1.0);
        assert_eq!(table.scores.mae, 0.0);
        let row_a = &table.rows[0];
        assert_eq!((row_a.true_nodes, row_a.true_tile), (10, 40));
    }

    #[test]
    fn loss_uses_true_time_at_predicted_config() {
        let test = demo_test_set();
        // Mispredict problem A: model thinks the 20-node run is fastest
        // (pred 1.0 s) even though it truly takes 7 s.
        let pred = vec![9.0, 5.0, 1.0, 14.0, 11.0];
        let table = optimal_table(&test, &pred, Goal::ShortestTime);
        let row_a = &table.rows[0];
        assert_eq!((row_a.pred_nodes, row_a.pred_tile), (20, 40));
        // The §3.4 caveat: the loss is against 7.0 (true), not 1.0 (predicted).
        assert_eq!(row_a.seconds_at_pred, 7.0);
        assert!(!row_a.correct());
        assert_eq!(table.n_incorrect(), 1);
        // MAE over problems: A contributes |5-7|=2, B contributes 0 → 1.0.
        assert!((table.scores.mae - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bq_goal_ranks_by_node_hours() {
        // Problem where the fastest config is NOT the cheapest.
        let test = vec![
            sample(10, 100, 100, 40, 5.0), // 0.139 node-hours
            sample(10, 100, 10, 40, 20.0), // 0.056 node-hours — cheapest
        ];
        let pred: Vec<f64> = test.iter().map(|s| s.seconds).collect();
        let stq = optimal_table(&test, &pred, Goal::ShortestTime);
        assert_eq!(stq.rows[0].true_nodes, 100);
        let bq = optimal_table(&test, &pred, Goal::Budget);
        assert_eq!(bq.rows[0].true_nodes, 10);
        assert!((bq.rows[0].true_objective - 20.0 * 10.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_model_wires_features() {
        let test = demo_test_set();
        let pred: Vec<f64> = test.iter().map(|s| s.seconds).collect();
        let model = Canned(pred);
        let table = evaluate_model(&model, &test, Goal::ShortestTime);
        assert_eq!(table.n_incorrect(), 0);
        let scores = prediction_scores(&model, &test);
        assert_eq!(scores.mae, 0.0);
    }

    #[test]
    fn goal_evaluator_closure_matches_direct_call() {
        let test = demo_test_set();
        let pred: Vec<f64> = test.iter().map(|s| s.seconds * 1.1).collect();
        let model = Canned(pred);
        let eval = goal_evaluator(test.clone(), Goal::ShortestTime);
        let via_closure = eval(&model);
        let direct = evaluate_model(&model, &test, Goal::ShortestTime).scores;
        assert_eq!(via_closure.mape, direct.mape);
    }

    #[test]
    fn rows_sorted_by_problem() {
        let test = vec![
            sample(30, 300, 5, 40, 3.0),
            sample(10, 100, 5, 40, 1.0),
            sample(20, 200, 5, 40, 2.0),
        ];
        let pred: Vec<f64> = test.iter().map(|s| s.seconds).collect();
        let table = optimal_table(&test, &pred, Goal::ShortestTime);
        let problems: Vec<(usize, usize)> = table.rows.iter().map(|r| (r.o, r.v)).collect();
        assert_eq!(problems, vec![(10, 100), (20, 200), (30, 300)]);
    }

    #[test]
    #[should_panic(expected = "misalignment")]
    fn misaligned_predictions_panic() {
        let test = demo_test_set();
        let _ = optimal_table(&test, &[1.0], Goal::ShortestTime);
    }
}
