//! Sweep-based question answering on a trained runtime model (§3.3).
//!
//! The paper's recipe: train one regression model `(O, V, nodes, tile) →
//! seconds`, then, for the user's fixed `(O_user, V_user)`, query it over a
//! grid of `(nodes, tile)` candidates of typical interest and return the
//! argmin — of predicted seconds for STQ, of predicted node-hours for BQ.
//!
//! # The sweep is computed once
//!
//! Every question ([`Advisor::answer`], [`Advisor::pareto_frontier`], the
//! budget/deadline variants) is a different reduction over the *same*
//! predictions, so the advisor materialises one [`Sweep`] per problem: the
//! feasible candidate matrix is built once and the model is asked for all
//! candidates in a **single batched `predict` call**, which lets batched
//! backends (notably the flat ensembles in `chemcost_ml::flat`) evaluate
//! rows × trees in parallel instead of pointer-chasing per candidate.
//! Callers answering several questions about one problem (as the serve
//! daemon's `/v1/advise` does for goal + budget + deadline) should call
//! [`Advisor::sweep`] once and reduce the result, paying for exactly one
//! model evaluation.
//!
//! # Memory feasibility
//!
//! A candidate `(nodes, tile)` enters the sweep iff the problem's CCSD
//! tensors fit in the machine's aggregate memory at that node count
//! (`chemcost_sim::simulate::fits_in_memory`): the `V⁴/8 + 6·O²V² + O⁴ +
//! 2·O³V` working set, divided over `nodes`, must not exceed
//! `mem_per_node`. Feasibility depends only on `(O, V, nodes)` — the tile
//! size shapes task granularity, not the resident footprint — so the check
//! runs once per node count, with the `Problem` hoisted out of the loop,
//! and every surviving node count is crossed with the full tile grid.
//! An empty sweep therefore means *no* node count can hold the problem,
//! which is itself useful guidance: the user needs a bigger machine.

use chemcost_linalg::Matrix;
use chemcost_ml::traits::{Regressor, UncertaintyRegressor};
use chemcost_sim::ccsd::Problem;
use chemcost_sim::datagen::{node_candidates, tile_candidates};
use chemcost_sim::machine::MachineModel;
use chemcost_sim::simulate::fits_in_memory;

/// Which question the user is asking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Goal {
    /// Shortest-Time Question: minimize wall seconds.
    ShortestTime,
    /// Budget Question: minimize node-hours.
    Budget,
}

impl Goal {
    /// Short label used in reports ("STQ" / "BQ").
    pub fn abbrev(self) -> &'static str {
        match self {
            Goal::ShortestTime => "STQ",
            Goal::Budget => "BQ",
        }
    }
}

/// An answer to a user question.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// Recommended node count.
    pub nodes: usize,
    /// Recommended tile size.
    pub tile: usize,
    /// Model-predicted wall seconds at that configuration.
    pub predicted_seconds: f64,
    /// Model-predicted node-hours at that configuration.
    pub predicted_node_hours: f64,
}

/// A trained-model wrapper that answers STQ/BQ by grid sweep.
pub struct Advisor<'a> {
    model: &'a dyn Regressor,
    machine: MachineModel,
    nodes_grid: Vec<usize>,
    tiles_grid: Vec<usize>,
}

impl<'a> Advisor<'a> {
    /// Wrap a trained seconds-predictor with the default candidate grids
    /// (the same ranges the datasets sweep).
    ///
    /// # Example
    ///
    /// ```
    /// use chemcost_core::advisor::{Advisor, Goal};
    /// use chemcost_linalg::Matrix;
    /// use chemcost_ml::gradient_boosting::GradientBoosting;
    /// use chemcost_ml::Regressor;
    /// use chemcost_sim::datagen::generate_dataset_sized;
    /// use chemcost_sim::machine::aurora;
    ///
    /// // Train a small runtime model on simulated CCSD timings.
    /// let machine = aurora();
    /// let samples = generate_dataset_sized(&machine, 120, 42);
    /// let mut x = Matrix::zeros(0, 4);
    /// let mut y = Vec::new();
    /// for s in &samples {
    ///     x.push_row(&s.features());
    ///     y.push(s.seconds);
    /// }
    /// let mut model = GradientBoosting::new(25, 4, 0.2);
    /// model.fit(&x, &y).unwrap();
    ///
    /// // One sweep answers every question about a problem.
    /// let advisor = Advisor::new(&model, machine);
    /// let sweep = advisor.sweep(116, 840);
    /// let fastest = sweep.best(Goal::ShortestTime).unwrap();
    /// let cheapest = sweep.best(Goal::Budget).unwrap();
    /// assert!(fastest.predicted_seconds <= cheapest.predicted_seconds);
    /// assert!(cheapest.predicted_node_hours <= fastest.predicted_node_hours);
    /// ```
    pub fn new(model: &'a dyn Regressor, machine: MachineModel) -> Self {
        Self { model, machine, nodes_grid: node_candidates(), tiles_grid: tile_candidates() }
    }

    /// Override the candidate grids.
    pub fn with_grids(mut self, nodes: Vec<usize>, tiles: Vec<usize>) -> Self {
        assert!(!nodes.is_empty() && !tiles.is_empty(), "grids must be non-empty");
        self.nodes_grid = nodes;
        self.tiles_grid = tiles;
        self
    }

    /// Every memory-feasible candidate configuration for a problem.
    ///
    /// Feasibility is per node count (see the module docs); the `Problem`
    /// is built once and each surviving node count is crossed with the
    /// whole tile grid.
    pub fn candidates(&self, o: usize, v: usize) -> Vec<(usize, usize)> {
        let p = Problem::new(o, v);
        let feasible_nodes: Vec<usize> = self
            .nodes_grid
            .iter()
            .copied()
            .filter(|&n| fits_in_memory(&p, n, &self.machine))
            .collect();
        let mut out = Vec::with_capacity(feasible_nodes.len() * self.tiles_grid.len());
        for &n in &feasible_nodes {
            for &t in &self.tiles_grid {
                out.push((n, t));
            }
        }
        out
    }

    /// Evaluate the model over every feasible candidate in **one batched
    /// `predict` call** and return the reusable [`Sweep`].
    ///
    /// Every question this advisor answers is a reduction over the sweep;
    /// callers with several questions about the same problem should sweep
    /// once and reduce many times.
    pub fn sweep(&self, o: usize, v: usize) -> Sweep {
        self.sweep_with(o, v, |x| self.model.predict(&x))
    }

    /// Like [`Advisor::sweep`] but evaluating the candidate matrix
    /// through `eval` instead of this advisor's own model. This is how
    /// a serving layer routes the sweep through shared machinery (e.g.
    /// a micro-batcher coalescing concurrent evaluations) while reusing
    /// the candidate enumeration and `Sweep` reductions unchanged —
    /// `eval` must return one predicted-seconds value per matrix row.
    /// The matrix is handed over by value (it is built here and used
    /// exactly once) so an owning consumer needs no defensive clone.
    pub fn sweep_with<F>(&self, o: usize, v: usize, eval: F) -> Sweep
    where
        F: FnOnce(Matrix) -> Vec<f64>,
    {
        let candidates = self.candidates(o, v);
        let seconds = if candidates.is_empty() {
            Vec::new()
        } else {
            let x = Matrix::from_fn(candidates.len(), 4, |i, j| match j {
                0 => o as f64,
                1 => v as f64,
                2 => candidates[i].0 as f64,
                _ => candidates[i].1 as f64,
            });
            let seconds = eval(x);
            assert_eq!(
                seconds.len(),
                candidates.len(),
                "sweep_with eval must return one value per candidate row"
            );
            seconds
        };
        Sweep { candidates, seconds }
    }

    /// Answer a question for problem size `(o, v)`.
    ///
    /// Returns `None` when no candidate fits in memory (the user needs a
    /// bigger machine, which is itself useful guidance).
    pub fn answer(&self, o: usize, v: usize, goal: Goal) -> Option<Recommendation> {
        self.sweep(o, v).best(goal)
    }

    /// The predicted time/cost Pareto frontier for a problem; see
    /// [`Sweep::pareto_frontier`].
    pub fn pareto_frontier(&self, o: usize, v: usize) -> Vec<Recommendation> {
        self.sweep(o, v).pareto_frontier()
    }

    /// Fastest configuration whose predicted cost stays within
    /// `max_node_hours`; see [`Sweep::fastest_within_budget`].
    pub fn fastest_within_budget(
        &self,
        o: usize,
        v: usize,
        max_node_hours: f64,
    ) -> Option<Recommendation> {
        self.sweep(o, v).fastest_within_budget(max_node_hours)
    }

    /// Cheapest configuration whose predicted wall time stays within
    /// `max_seconds`; see [`Sweep::cheapest_within_deadline`].
    pub fn cheapest_within_deadline(
        &self,
        o: usize,
        v: usize,
        max_seconds: f64,
    ) -> Option<Recommendation> {
        self.sweep(o, v).cheapest_within_deadline(max_seconds)
    }

    /// Answer the shortest-time question.
    pub fn answer_stq(&self, o: usize, v: usize) -> Option<Recommendation> {
        self.answer(o, v, Goal::ShortestTime)
    }

    /// Answer the budget question.
    pub fn answer_bq(&self, o: usize, v: usize) -> Option<Recommendation> {
        self.answer(o, v, Goal::Budget)
    }
}

/// One batched model evaluation over every feasible candidate of a
/// problem, from which every advisor question is a cheap reduction.
///
/// Produced by [`Advisor::sweep`]. The candidate list and the predicted
/// seconds are index-aligned; non-finite predictions are retained here and
/// skipped by each reduction, matching the recursive path's behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    candidates: Vec<(usize, usize)>,
    seconds: Vec<f64>,
}

impl Sweep {
    /// The feasible `(nodes, tile)` candidates, in grid order.
    pub fn candidates(&self) -> &[(usize, usize)] {
        &self.candidates
    }

    /// Predicted wall seconds per candidate (index-aligned).
    pub fn seconds(&self) -> &[f64] {
        &self.seconds
    }

    /// Number of feasible candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when no candidate fits in memory.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    fn recommendation(&self, i: usize) -> Recommendation {
        let (nodes, tile) = self.candidates[i];
        Recommendation {
            nodes,
            tile,
            predicted_seconds: self.seconds[i],
            predicted_node_hours: self.seconds[i] * nodes as f64 / 3600.0,
        }
    }

    /// The goal's argmin over the sweep — predicted seconds for STQ,
    /// predicted node-hours for BQ. `None` on an empty sweep or when every
    /// prediction is non-finite.
    pub fn best(&self, goal: Goal) -> Option<Recommendation> {
        let mut best: Option<(usize, f64)> = None;
        for (i, (&(n, _), &s)) in self.candidates.iter().zip(&self.seconds).enumerate() {
            let objective = match goal {
                Goal::ShortestTime => s,
                Goal::Budget => s * n as f64 / 3600.0,
            };
            if objective.is_finite() && best.is_none_or(|(_, b)| objective < b) {
                best = Some((i, objective));
            }
        }
        best.map(|(i, _)| self.recommendation(i))
    }

    /// The predicted time/cost Pareto frontier: every candidate not
    /// dominated in (seconds, node-hours), sorted by predicted seconds
    /// ascending.
    ///
    /// The STQ answer is the frontier's first point and the BQ answer its
    /// last — everything between is the menu of rational compromises a
    /// user with both a deadline and a budget actually chooses from.
    pub fn pareto_frontier(&self) -> Vec<Recommendation> {
        let mut recs: Vec<Recommendation> = (0..self.len())
            .filter(|&i| self.seconds[i].is_finite())
            .map(|i| self.recommendation(i))
            .collect();
        recs.sort_by(|a, b| {
            a.predicted_seconds
                .partial_cmp(&b.predicted_seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Single pass: with seconds ascending, a point is non-dominated
        // iff its node-hours are strictly below everything kept so far.
        let mut frontier: Vec<Recommendation> = Vec::new();
        let mut best_nh = f64::INFINITY;
        for r in recs {
            if r.predicted_node_hours < best_nh - 1e-12 {
                best_nh = r.predicted_node_hours;
                frontier.push(r);
            }
        }
        frontier
    }

    /// Fastest configuration whose predicted cost stays within
    /// `max_node_hours` — "I have this much allocation left; how fast can
    /// I go?". `None` if no feasible candidate fits the budget.
    pub fn fastest_within_budget(&self, max_node_hours: f64) -> Option<Recommendation> {
        self.pareto_frontier().into_iter().find(|r| r.predicted_node_hours <= max_node_hours)
    }

    /// Cheapest configuration whose predicted wall time stays within
    /// `max_seconds` — "results by tomorrow morning, as cheap as possible".
    /// `None` if no feasible candidate meets the deadline.
    pub fn cheapest_within_deadline(&self, max_seconds: f64) -> Option<Recommendation> {
        self.pareto_frontier()
            .into_iter()
            .rev() // frontier is cheapest-last
            .find(|r| r.predicted_seconds <= max_seconds)
    }
}

/// A risk-aware recommendation: the point estimate plus the model's own
/// predictive uncertainty at the chosen configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskAwareRecommendation {
    /// The underlying recommendation.
    pub rec: Recommendation,
    /// Predictive standard deviation of the seconds estimate.
    pub seconds_std: f64,
}

/// Advisor over a model that quantifies its own uncertainty (Gaussian
/// process, random-forest committee, Bayesian ridge).
///
/// Instead of `argmin μ(x)`, the risk-averse answer minimizes the upper
/// confidence bound `μ(x) + κ·σ(x)`: a configuration the model is merely
/// *hopeful* about loses to one it is *sure* about. With `κ = 0` this
/// reduces to the plain [`Advisor`] answer.
pub struct UncertaintyAdvisor<'a> {
    model: &'a dyn UncertaintyRegressor,
    inner: Advisor<'a>,
}

impl<'a> UncertaintyAdvisor<'a> {
    /// Wrap an uncertainty-quantifying seconds-predictor.
    pub fn new(model: &'a dyn UncertaintyRegressor, machine: MachineModel) -> Self {
        Self { model, inner: Advisor::new(model, machine) }
    }

    /// Access the plain advisor (point-estimate answers, Pareto, …).
    pub fn advisor(&self) -> &Advisor<'a> {
        &self.inner
    }

    /// Risk-averse answer: minimize `μ + κσ` of the goal objective.
    ///
    /// # Panics
    /// Panics if `kappa` is negative or non-finite.
    pub fn answer_risk_averse(
        &self,
        o: usize,
        v: usize,
        goal: Goal,
        kappa: f64,
    ) -> Option<RiskAwareRecommendation> {
        assert!(kappa >= 0.0 && kappa.is_finite(), "kappa must be a non-negative finite number");
        let cands = self.inner.candidates(o, v);
        if cands.is_empty() {
            return None;
        }
        let x = Matrix::from_fn(cands.len(), 4, |i, j| match j {
            0 => o as f64,
            1 => v as f64,
            2 => cands[i].0 as f64,
            _ => cands[i].1 as f64,
        });
        let (mean, std) = self.model.predict_with_std(&x);
        let mut best: Option<(usize, f64)> = None;
        for (i, &(n, _)) in cands.iter().enumerate() {
            let scale = match goal {
                Goal::ShortestTime => 1.0,
                Goal::Budget => n as f64 / 3600.0,
            };
            let objective = (mean[i] + kappa * std[i]) * scale;
            if objective.is_finite() && best.is_none_or(|(_, b)| objective < b) {
                best = Some((i, objective));
            }
        }
        best.map(|(i, _)| {
            let (nodes, tile) = cands[i];
            RiskAwareRecommendation {
                rec: Recommendation {
                    nodes,
                    tile,
                    predicted_seconds: mean[i],
                    predicted_node_hours: mean[i] * nodes as f64 / 3600.0,
                },
                seconds_std: std[i],
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chemcost_ml::FitError;
    use chemcost_sim::machine::aurora;
    use chemcost_sim::simulate::{simulate_iteration_clean, Config};

    /// A "model" that returns the noise-free simulator truth — the advisor
    /// on top of it must recover the simulator's own optima.
    struct OracleModel {
        machine: MachineModel,
    }

    impl Regressor for OracleModel {
        fn fit(&mut self, _x: &Matrix, _y: &[f64]) -> Result<(), FitError> {
            Ok(())
        }
        fn predict(&self, x: &Matrix) -> Vec<f64> {
            (0..x.nrows())
                .map(|i| {
                    let r = x.row(i);
                    let p = Problem::new(r[0] as usize, r[1] as usize);
                    let cfg = Config::new(r[2] as usize, r[3] as usize);
                    simulate_iteration_clean(&p, &cfg, &self.machine).seconds
                })
                .collect()
        }
        fn name(&self) -> &'static str {
            "oracle"
        }
    }

    #[test]
    fn oracle_advisor_finds_true_optimum() {
        let machine = aurora();
        let model = OracleModel { machine: machine.clone() };
        let advisor = Advisor::new(&model, machine.clone())
            .with_grids(vec![5, 20, 50, 150, 300, 600], vec![40, 60, 90, 120]);
        let rec = advisor.answer_stq(116, 840).expect("feasible");
        // Exhaustive check against the simulator.
        let mut best = (0usize, 0usize, f64::INFINITY);
        for &n in &[5usize, 20, 50, 150, 300, 600] {
            for &t in &[40usize, 60, 90, 120] {
                let s =
                    simulate_iteration_clean(&Problem::new(116, 840), &Config::new(n, t), &machine)
                        .seconds;
                if s < best.2 {
                    best = (n, t, s);
                }
            }
        }
        assert_eq!((rec.nodes, rec.tile), (best.0, best.1));
        assert!((rec.predicted_seconds - best.2).abs() < 1e-9);
    }

    #[test]
    fn bq_uses_fewer_nodes_than_stq() {
        let machine = aurora();
        let model = OracleModel { machine: machine.clone() };
        let advisor = Advisor::new(&model, machine);
        let stq = advisor.answer_stq(180, 1070).unwrap();
        let bq = advisor.answer_bq(180, 1070).unwrap();
        assert!(
            bq.nodes < stq.nodes,
            "budget answer ({}) should use fewer nodes than shortest-time ({})",
            bq.nodes,
            stq.nodes
        );
        assert!(bq.predicted_node_hours <= stq.predicted_node_hours);
        assert!(stq.predicted_seconds <= bq.predicted_seconds);
    }

    #[test]
    fn candidates_respect_memory() {
        let machine = aurora();
        let model = OracleModel { machine: machine.clone() };
        let advisor = Advisor::new(&model, machine.clone());
        for (n, _) in advisor.candidates(146, 1568) {
            assert!(fits_in_memory(&Problem::new(146, 1568), n, &machine));
        }
    }

    #[test]
    fn infeasible_problem_returns_none() {
        let machine = aurora();
        let model = OracleModel { machine: machine.clone() };
        // Restrict the grid to node counts that cannot hold the tensors.
        let advisor = Advisor::new(&model, machine).with_grids(vec![5], vec![80]);
        assert!(advisor.answer_stq(400, 3000).is_none());
    }

    #[test]
    fn pareto_frontier_is_sorted_and_nondominated() {
        let machine = aurora();
        let model = OracleModel { machine: machine.clone() };
        let advisor = Advisor::new(&model, machine);
        let frontier = advisor.pareto_frontier(134, 951);
        assert!(frontier.len() >= 2, "expect a real trade-off curve");
        for w in frontier.windows(2) {
            assert!(w[0].predicted_seconds <= w[1].predicted_seconds);
            assert!(w[0].predicted_node_hours > w[1].predicted_node_hours);
        }
        // Endpoints agree with the two point answers.
        let stq = advisor.answer_stq(134, 951).unwrap();
        let bq = advisor.answer_bq(134, 951).unwrap();
        let first = frontier.first().unwrap();
        let last = frontier.last().unwrap();
        assert!((first.predicted_seconds - stq.predicted_seconds).abs() < 1e-9);
        assert!((last.predicted_node_hours - bq.predicted_node_hours).abs() < 1e-9);
    }

    #[test]
    fn budget_constrained_answers_respect_constraints() {
        let machine = aurora();
        let model = OracleModel { machine: machine.clone() };
        let advisor = Advisor::new(&model, machine);
        let bq = advisor.answer_bq(116, 840).unwrap();
        let stq = advisor.answer_stq(116, 840).unwrap();
        // A budget between the two extremes must return something between.
        let budget = (bq.predicted_node_hours + stq.predicted_node_hours) / 2.0;
        let r = advisor.fastest_within_budget(116, 840, budget).unwrap();
        assert!(r.predicted_node_hours <= budget + 1e-12);
        assert!(
            r.predicted_seconds <= bq.predicted_seconds + 1e-9,
            "paying more must not be slower"
        );
        // Impossible budget -> None.
        assert!(advisor.fastest_within_budget(116, 840, bq.predicted_node_hours * 0.01).is_none());
    }

    #[test]
    fn deadline_constrained_answers_respect_constraints() {
        let machine = aurora();
        let model = OracleModel { machine: machine.clone() };
        let advisor = Advisor::new(&model, machine);
        let stq = advisor.answer_stq(99, 718).unwrap();
        let bq = advisor.answer_bq(99, 718).unwrap();
        let deadline = (stq.predicted_seconds + bq.predicted_seconds) / 2.0;
        let r = advisor.cheapest_within_deadline(99, 718, deadline).unwrap();
        assert!(r.predicted_seconds <= deadline + 1e-12);
        assert!(
            r.predicted_node_hours <= stq.predicted_node_hours + 1e-9,
            "meeting a looser deadline must not cost more"
        );
        // Impossible deadline -> None.
        assert!(advisor.cheapest_within_deadline(99, 718, stq.predicted_seconds * 0.01).is_none());
    }

    #[test]
    fn risk_averse_reduces_to_plain_at_kappa_zero() {
        use chemcost_core_test_forest::make_rf;
        let machine = aurora();
        let (rf, _) = make_rf(&machine);
        let ua = UncertaintyAdvisor::new(&rf, machine.clone());
        let plain = ua.advisor().answer_stq(116, 840).unwrap();
        let risk0 = ua.answer_risk_averse(116, 840, Goal::ShortestTime, 0.0).unwrap();
        assert_eq!((plain.nodes, plain.tile), (risk0.rec.nodes, risk0.rec.tile));
    }

    #[test]
    fn risk_averse_objective_penalizes_uncertainty() {
        use chemcost_core_test_forest::make_rf;
        let machine = aurora();
        let (rf, _) = make_rf(&machine);
        let ua = UncertaintyAdvisor::new(&rf, machine);
        let cautious = ua.answer_risk_averse(134, 951, Goal::ShortestTime, 3.0).unwrap();
        let neutral = ua.answer_risk_averse(134, 951, Goal::ShortestTime, 0.0).unwrap();
        assert!(cautious.seconds_std.is_finite() && cautious.seconds_std >= 0.0);
        // The cautious pick's UCB must not exceed the neutral pick's UCB.
        let ucb = |r: &RiskAwareRecommendation| r.rec.predicted_seconds + 3.0 * r.seconds_std;
        assert!(ucb(&cautious) <= ucb(&neutral) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn risk_averse_rejects_negative_kappa() {
        use chemcost_core_test_forest::make_rf;
        let machine = aurora();
        let (rf, _) = make_rf(&machine);
        let ua = UncertaintyAdvisor::new(&rf, machine);
        let _ = ua.answer_risk_averse(99, 718, Goal::ShortestTime, -1.0);
    }

    /// Shared fixture: a small RF trained on simulator data.
    mod chemcost_core_test_forest {
        use super::*;
        use chemcost_ml::forest::RandomForest;

        pub fn make_rf(machine: &MachineModel) -> (RandomForest, usize) {
            let samples = chemcost_sim::datagen::generate_dataset_sized(machine, 300, 9);
            let mut x = Matrix::zeros(0, 4);
            let mut y = Vec::new();
            for s in &samples {
                x.push_row(&s.features());
                y.push(s.seconds);
            }
            let mut rf = RandomForest::new(30, 10);
            rf.seed = 5;
            rf.fit(&x, &y).unwrap();
            (rf, samples.len())
        }
    }

    #[test]
    fn sweep_reductions_match_per_question_answers() {
        let machine = aurora();
        let model = OracleModel { machine: machine.clone() };
        let advisor = Advisor::new(&model, machine);
        let sweep = advisor.sweep(134, 951);
        assert!(!sweep.is_empty());
        assert_eq!(sweep.len(), sweep.seconds().len());
        assert_eq!(sweep.best(Goal::ShortestTime), advisor.answer_stq(134, 951));
        assert_eq!(sweep.best(Goal::Budget), advisor.answer_bq(134, 951));
        assert_eq!(sweep.pareto_frontier(), advisor.pareto_frontier(134, 951));
        let budget = sweep.best(Goal::ShortestTime).unwrap().predicted_node_hours;
        assert_eq!(
            sweep.fastest_within_budget(budget),
            advisor.fastest_within_budget(134, 951, budget)
        );
        let deadline = sweep.best(Goal::Budget).unwrap().predicted_seconds;
        assert_eq!(
            sweep.cheapest_within_deadline(deadline),
            advisor.cheapest_within_deadline(134, 951, deadline)
        );
    }

    #[test]
    fn empty_sweep_reduces_to_nothing() {
        let machine = aurora();
        let model = OracleModel { machine: machine.clone() };
        let advisor = Advisor::new(&model, machine).with_grids(vec![5], vec![80]);
        let sweep = advisor.sweep(400, 3000);
        assert!(sweep.is_empty());
        assert!(sweep.best(Goal::ShortestTime).is_none());
        assert!(sweep.pareto_frontier().is_empty());
        assert!(sweep.fastest_within_budget(f64::INFINITY).is_none());
        assert!(sweep.cheapest_within_deadline(f64::INFINITY).is_none());
    }

    #[test]
    fn flat_model_sweep_identical_to_recursive() {
        // The real serving configuration: a trained GB queried through its
        // flat compilation. The flat default is the quantized path — the
        // candidate grid is all small integers (exactly representable in
        // f32), so routing matches the recursive model exactly and sweep
        // predictions agree within QUANT_REL_TOL (leaf-value rounding
        // only), while the recommendations on every question must agree
        // outright whenever the winner is not inside a tolerance-sized
        // tie (checked via each answer's predicted seconds).
        use chemcost_ml::flat::{FlatGbt, QUANT_REL_TOL};
        use chemcost_ml::gradient_boosting::GradientBoosting;
        let machine = aurora();
        let samples = chemcost_sim::datagen::generate_dataset_sized(&machine, 250, 3);
        let mut x = Matrix::zeros(0, 4);
        let mut y = Vec::new();
        for s in &samples {
            x.push_row(&s.features());
            y.push(s.seconds);
        }
        let mut gb = GradientBoosting::new(80, 6, 0.1);
        gb.seed = 17;
        gb.fit(&x, &y).unwrap();
        let flat = FlatGbt::compile(&gb);

        let close = |q: f64, e: f64| (q - e).abs() <= QUANT_REL_TOL * (1.0 + e.abs());
        let recursive = Advisor::new(&gb, machine.clone());
        let fast = Advisor::new(&flat, machine);
        for &(o, v) in &[(116usize, 840usize), (134, 951), (44, 260), (280, 1040)] {
            let a = recursive.sweep(o, v);
            let b = fast.sweep(o, v);
            assert_eq!(a.candidates(), b.candidates());
            assert_eq!(a.seconds().len(), b.seconds().len());
            for (&ea, &qb) in a.seconds().iter().zip(b.seconds()) {
                assert!(close(qb, ea), "flat sweep differs at ({o},{v}): {qb} vs {ea}");
            }
            for (ra, rb) in [
                (a.best(Goal::ShortestTime), b.best(Goal::ShortestTime)),
                (a.best(Goal::Budget), b.best(Goal::Budget)),
            ] {
                let (ra, rb) = (ra.unwrap(), rb.unwrap());
                // The quantized winner may differ from the exact winner
                // only if the two configurations' predictions are within
                // tolerance of each other — a genuine tie at the model's
                // resolution, not a wrong answer.
                assert!(
                    close(rb.predicted_seconds, ra.predicted_seconds),
                    "flat recommendation off at ({o},{v}): {rb:?} vs {ra:?}"
                );
            }
            // Every exact-frontier point must have a tolerance-equal
            // counterpart on the quantized frontier.
            let bf = b.pareto_frontier();
            for ra in a.pareto_frontier() {
                assert!(
                    bf.iter().any(|rb| close(rb.predicted_seconds, ra.predicted_seconds)),
                    "frontier point lost at ({o},{v}): {ra:?}"
                );
            }
        }
    }

    #[test]
    fn recommendation_node_hours_consistent() {
        let machine = aurora();
        let model = OracleModel { machine: machine.clone() };
        let advisor = Advisor::new(&model, machine);
        let rec = advisor.answer_bq(99, 718).unwrap();
        assert!(
            (rec.predicted_node_hours - rec.predicted_seconds * rec.nodes as f64 / 3600.0).abs()
                < 1e-12
        );
    }
}
