//! Aligned text tables and CSV emission for experiment output.

use std::io::Write;
use std::path::Path;

/// A simple column-aligned report table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, each row as long as `headers`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count disagrees with the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let sep: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
        out.push_str(&sep);
        out.push('\n');
        let fmt_row = |cells: &[String]| -> String {
            (0..ncols)
                .map(|c| format!(" {:<width$} ", cells[c], width = widths[c]))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }

    /// Write as CSV (headers + rows; commas in cells are replaced with
    /// semicolons to keep the format trivial).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(w, "{}", self.headers.join(","))?;
        for row in &self.rows {
            let clean: Vec<String> = row.iter().map(|c| c.replace(',', ";")).collect();
            writeln!(w, "{}", clean.join(","))?;
        }
        w.flush()
    }
}

/// Format the paper's `value(predicted)` cell: the plain value when the
/// prediction was correct, `true(pred)` otherwise.
pub fn paren_cell(true_val: &str, pred_val: &str, correct: bool) -> String {
    if correct {
        true_val.to_string()
    } else {
        format!("{true_val}({pred_val})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["longer-name".into(), "2.50".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("longer-name"));
        // All data lines equal length.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let lens: std::collections::HashSet<usize> = lines.iter().map(|l| l.len()).collect();
        assert_eq!(lens.len(), 1, "aligned lines must share a width: {lines:?}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_checks_width() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "2".into()]);
        let dir = std::env::temp_dir().join("chemcost_report_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.contains("1;5"), "embedded comma sanitized");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn paren_cell_formats() {
        assert_eq!(paren_cell("240", "220", true), "240");
        assert_eq!(paren_cell("240", "220", false), "240(220)");
    }
}
