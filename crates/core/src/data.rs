//! Bridging the simulator's sample corpus into ML datasets with the
//! paper's train/test protocol.

use chemcost_ml::dataset::Dataset;
use chemcost_sim::datagen::{self, Sample, FEATURE_NAMES};
use chemcost_sim::machine::MachineModel;

/// Which target column a dataset predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Wall seconds of one CCSD iteration (the paper's regression target).
    Seconds,
    /// Node-hours (`seconds · nodes / 3600`).
    NodeHours,
    /// Estimated energy, kWh (extension beyond the paper).
    EnergyKwh,
}

/// Convert samples to an ML dataset with features `[O, V, nodes, tile]`.
pub fn samples_to_dataset(samples: &[Sample], target: Target) -> Dataset {
    let mut ds = Dataset::empty(FEATURE_NAMES.iter().map(|s| s.to_string()).collect());
    for s in samples {
        let y = match target {
            Target::Seconds => s.seconds,
            Target::NodeHours => s.node_hours,
            Target::EnergyKwh => s.energy_kwh,
        };
        ds.push_sample(&s.features(), y);
    }
    ds
}

/// A machine's generated corpus plus its train/test split — the unit every
/// experiment starts from.
#[derive(Debug, Clone)]
pub struct MachineData {
    /// The machine profile the data was generated for.
    pub machine: MachineModel,
    /// The full sample corpus (Table 1 "Total").
    pub samples: Vec<Sample>,
    /// Indices of the training rows.
    pub train_idx: Vec<usize>,
    /// Indices of the test rows.
    pub test_idx: Vec<usize>,
}

impl MachineData {
    /// Generate the machine's Table 1-sized corpus and apply the paper's
    /// 75/25 split, all deterministic under `seed`.
    pub fn generate(machine: &MachineModel, seed: u64) -> Self {
        Self::generate_sized(machine, datagen::table1_count(machine), seed)
    }

    /// Generate a smaller corpus (for tests and quick examples).
    pub fn generate_sized(machine: &MachineModel, total: usize, seed: u64) -> Self {
        let samples = datagen::generate_dataset_sized(machine, total, seed);
        // The split mirrors Dataset::train_test_split's permutation logic,
        // kept here so we retain index-level access to Sample fields.
        let n = samples.len();
        // Ceiling reproduces the paper's exact split sizes (Table 1:
        // Aurora 1746/583, Frontier 1840/614).
        let n_test = (n as f64 * 0.25).ceil() as usize;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(0x5EED));
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let (test_idx, train_idx) = perm.split_at(n_test);
        Self {
            machine: machine.clone(),
            samples,
            train_idx: train_idx.to_vec(),
            test_idx: test_idx.to_vec(),
        }
    }

    /// Training samples.
    pub fn train_samples(&self) -> Vec<Sample> {
        self.train_idx.iter().map(|&i| self.samples[i]).collect()
    }

    /// Test samples.
    pub fn test_samples(&self) -> Vec<Sample> {
        self.test_idx.iter().map(|&i| self.samples[i]).collect()
    }

    /// Training dataset for a target.
    pub fn train_dataset(&self, target: Target) -> Dataset {
        samples_to_dataset(&self.train_samples(), target)
    }

    /// Test dataset for a target.
    pub fn test_dataset(&self, target: Target) -> Dataset {
        samples_to_dataset(&self.test_samples(), target)
    }

    /// The distinct `(O, V)` problems present, in first-appearance order.
    pub fn problems(&self) -> Vec<(usize, usize)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for s in &self.samples {
            if seen.insert((s.o, s.v)) {
                out.push((s.o, s.v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chemcost_sim::machine::aurora;

    #[test]
    fn dataset_conversion_preserves_pairing() {
        let samples = vec![
            Sample {
                o: 10,
                v: 20,
                nodes: 4,
                tile: 8,
                seconds: 1.5,
                node_hours: 0.001,
                energy_kwh: 0.002,
            },
            Sample {
                o: 30,
                v: 40,
                nodes: 16,
                tile: 32,
                seconds: 2.5,
                node_hours: 0.01,
                energy_kwh: 0.03,
            },
        ];
        let ds = samples_to_dataset(&samples, Target::Seconds);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.x.row(1), &[30.0, 40.0, 16.0, 32.0]);
        assert_eq!(ds.y, vec![1.5, 2.5]);
        let dnh = samples_to_dataset(&samples, Target::NodeHours);
        assert_eq!(dnh.y, vec![0.001, 0.01]);
        let de = samples_to_dataset(&samples, Target::EnergyKwh);
        assert_eq!(de.y, vec![0.002, 0.03]);
        assert_eq!(ds.feature_names, vec!["O", "V", "nodes", "tile"]);
    }

    #[test]
    fn split_sizes_match_table1_ratio() {
        let md = MachineData::generate_sized(&aurora(), 400, 1);
        assert_eq!(md.samples.len(), 400);
        assert_eq!(md.test_idx.len(), 100);
        assert_eq!(md.train_idx.len(), 300);
    }

    #[test]
    fn split_partitions_disjointly() {
        let md = MachineData::generate_sized(&aurora(), 200, 2);
        let mut all: Vec<usize> = md.train_idx.iter().chain(&md.test_idx).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn generation_deterministic() {
        let a = MachineData::generate_sized(&aurora(), 150, 9);
        let b = MachineData::generate_sized(&aurora(), 150, 9);
        assert_eq!(a.train_idx, b.train_idx);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn problems_enumerated() {
        let md = MachineData::generate_sized(&aurora(), 500, 3);
        let probs = md.problems();
        assert!(!probs.is_empty());
        // No duplicates.
        let set: std::collections::HashSet<_> = probs.iter().collect();
        assert_eq!(set.len(), probs.len());
    }
}
