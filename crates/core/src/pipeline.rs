//! One-call experiment flows shared by the examples and the `exp_*`
//! benchmark binaries.

use crate::advisor::Goal;
use crate::data::{MachineData, Target};
use crate::evaluation::{evaluate_model, goal_evaluator, prediction_scores, OptTable};
use crate::report::{paren_cell, Table};
use chemcost_active::{run_active_learning, ActiveConfig, ActiveRun, Strategy};
use chemcost_ml::dataset::Dataset;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::metrics::Scores;
use chemcost_ml::model_selection::{
    BayesSearch, GridSearch, KFold, RandomSearch, Scoring, SearchResult,
};
use chemcost_ml::traits::Regressor;
use chemcost_ml::zoo::ModelKind;
use chemcost_obs::{self as obs, Level};

/// Train the paper's deployed model (GB, 750 estimators, depth 10) on a
/// machine's training split.
pub fn train_paper_gb(md: &MachineData) -> GradientBoosting {
    train_gb(md, GradientBoosting::paper_config(), "paper")
}

/// A lighter GB for tests/examples where the 750×10 model is overkill.
pub fn train_fast_gb(md: &MachineData) -> GradientBoosting {
    train_gb(md, GradientBoosting::new(200, 6, 0.1), "fast")
}

/// The shared train pipeline: data load → fit, each under a timed span
/// carrying its hyper-parameters.
fn train_gb(md: &MachineData, mut gb: GradientBoosting, config: &'static str) -> GradientBoosting {
    let _pipeline = obs::span!(
        Level::Debug,
        "pipeline.train",
        config = config,
        n_estimators = gb.n_estimators,
        max_depth = gb.max_depth,
        learning_rate = gb.learning_rate,
    );
    let train = {
        let mut span = obs::span!(Level::Debug, "pipeline.data_load", config = config);
        let train = md.train_dataset(Target::Seconds);
        span.record("rows", train.len());
        train
    };
    {
        let _fit = obs::span!(Level::Debug, "pipeline.fit", config = config, rows = train.len());
        gb.fit(&train.x, &train.y).expect("training the GB");
    }
    gb
}

/// Run the full STQ evaluation (Table 3/4) for a trained seconds-model.
pub fn stq_table(md: &MachineData, model: &dyn Regressor) -> OptTable {
    let _span = obs::span!(Level::Debug, "pipeline.evaluate", goal = "stq");
    evaluate_model(model, &md.test_samples(), Goal::ShortestTime)
}

/// Run the full BQ evaluation (Table 5/6).
pub fn bq_table(md: &MachineData, model: &dyn Regressor) -> OptTable {
    let _span = obs::span!(Level::Debug, "pipeline.evaluate", goal = "bq");
    evaluate_model(model, &md.test_samples(), Goal::Budget)
}

/// Render an [`OptTable`] in the paper's Tables 3–6 style: plain cells when
/// the model found the true optimum, `true(pred)` cells otherwise.
pub fn render_opt_table(table: &OptTable, machine_name: &str) -> Table {
    let (title, obj_header): (String, &str) = match table.goal {
        Goal::ShortestTime => (format!("{machine_name} shortest time results"), "Runtime (s)"),
        Goal::Budget => (format!("{machine_name} shortest node hours results"), "Node Hours"),
    };
    let headers: Vec<&str> = match table.goal {
        Goal::ShortestTime => vec!["O", "V", "Nodes", "Tile size", obj_header],
        Goal::Budget => vec!["O", "V", "Nodes", "Tile size", "Runtime (s)", obj_header],
    };
    let mut t = Table::new(&title, &headers);
    for r in &table.rows {
        let correct = r.correct();
        let nodes = paren_cell(
            &r.true_nodes.to_string(),
            &r.pred_nodes.to_string(),
            correct || r.true_nodes == r.pred_nodes,
        );
        let tile = paren_cell(
            &r.true_tile.to_string(),
            &r.pred_tile.to_string(),
            correct || r.true_tile == r.pred_tile,
        );
        match table.goal {
            Goal::ShortestTime => {
                let rt = paren_cell(
                    &format!("{:.2}", r.true_seconds),
                    &format!("{:.2}", r.seconds_at_pred),
                    correct,
                );
                t.push_row(vec![r.o.to_string(), r.v.to_string(), nodes, tile, rt]);
            }
            Goal::Budget => {
                let rt = paren_cell(
                    &format!("{:.2}", r.true_seconds),
                    &format!("{:.2}", r.seconds_at_pred),
                    correct,
                );
                let nh = paren_cell(
                    &format!("{:.2}", r.true_objective),
                    &format!("{:.2}", r.objective_at_pred),
                    correct,
                );
                t.push_row(vec![r.o.to_string(), r.v.to_string(), nodes, tile, rt, nh]);
            }
        }
    }
    t
}

/// How a hyper-parameter search was driven (the three arms of Figures 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Exhaustive grid over [`ModelKind::default_grid`].
    Grid,
    /// Random draws from [`ModelKind::search_space`].
    Random,
    /// GP-surrogate Bayesian search over the same space.
    Bayes,
}

impl SearchStrategy {
    /// All three arms.
    pub fn all() -> [SearchStrategy; 3] {
        [SearchStrategy::Grid, SearchStrategy::Random, SearchStrategy::Bayes]
    }

    /// Display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            SearchStrategy::Grid => "GridSearchCV",
            SearchStrategy::Random => "RandomizedSearchCV",
            SearchStrategy::Bayes => "BayesSearchCV",
        }
    }
}

/// Resource budget for the model-comparison experiment.
#[derive(Debug, Clone, Copy)]
pub struct ComparisonBudget {
    /// CV folds inside each search.
    pub cv_folds: usize,
    /// Candidate count for the random arm.
    pub random_iters: usize,
    /// Total evaluations for the Bayesian arm.
    pub bayes_iters: usize,
    /// Cap on training rows used *during search* (full training set is
    /// still used for the final fit). Keeps the O(n³) kernel models sane.
    pub search_rows: usize,
}

impl Default for ComparisonBudget {
    fn default() -> Self {
        Self { cv_folds: 3, random_iters: 12, bayes_iters: 12, search_rows: 2000 }
    }
}

/// One model × search-strategy outcome (a bar in Figures 1–2).
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Model family.
    pub kind: ModelKind,
    /// Search arm.
    pub strategy: SearchStrategy,
    /// Test-set prediction scores of the final (best-params, full-train)
    /// model.
    pub test: Scores,
    /// Hyper-parameter optimization wall seconds.
    pub search_seconds: f64,
    /// The winning hyper-parameters.
    pub best_params: chemcost_ml::model_selection::Params,
}

/// Run one model family through one search strategy and evaluate the
/// winner on the test split.
pub fn compare_one(
    md: &MachineData,
    kind: ModelKind,
    strategy: SearchStrategy,
    budget: &ComparisonBudget,
) -> ComparisonRow {
    let _span = obs::span!(
        Level::Debug,
        "pipeline.compare",
        model = kind.abbrev(),
        strategy = strategy.label(),
        cv_folds = budget.cv_folds,
    );
    let train = md.train_dataset(Target::Seconds);
    // Search on a (deterministic) subsample for tractability.
    let search_data: Dataset = if train.len() > budget.search_rows {
        let idx: Vec<usize> =
            (0..budget.search_rows).map(|i| i * train.len() / budget.search_rows).collect();
        train.select(&idx)
    } else {
        train.clone()
    };
    let cv = KFold::new(budget.cv_folds);
    // The paper's headline metric is MAPE; selecting candidates by CV-MAPE
    // keeps small-runtime configurations from being drowned out by the
    // sextic scale range.
    let scoring = Scoring::Mape;
    let factory = |p: &chemcost_ml::model_selection::Params| kind.build(p);
    let result: SearchResult = match strategy {
        SearchStrategy::Grid => {
            // Parameter-free models (BR) degenerate to a single evaluation.
            GridSearch::new(kind.default_grid(), cv)
                .with_scoring(scoring)
                .search(factory, &search_data)
        }
        SearchStrategy::Random => {
            let space = kind.search_space();
            if space.is_empty() {
                GridSearch::new(vec![], cv).with_scoring(scoring).search(factory, &search_data)
            } else {
                RandomSearch { space, n_iter: budget.random_iters, seed: 17, cv, scoring }
                    .search(factory, &search_data)
            }
        }
        SearchStrategy::Bayes => {
            let space = kind.search_space();
            if space.is_empty() {
                GridSearch::new(vec![], cv).with_scoring(scoring).search(factory, &search_data)
            } else {
                BayesSearch {
                    space,
                    n_iter: budget.bayes_iters,
                    n_initial: (budget.bayes_iters / 3).max(3),
                    seed: 23,
                    cv,
                    scoring,
                }
                .search(factory, &search_data)
            }
        }
    };
    // Final fit on the full training split with the winning parameters.
    let mut model = kind.build(&result.best_params);
    model.fit(&train.x, &train.y).expect("final fit");
    let test = prediction_scores(model.as_ref(), &md.test_samples());
    ComparisonRow {
        kind,
        strategy,
        test,
        search_seconds: result.wall_seconds,
        best_params: result.best_params,
    }
}

/// The full Figures 1–2 sweep: every model family × every search strategy.
pub fn compare_models(md: &MachineData, budget: &ComparisonBudget) -> Vec<ComparisonRow> {
    compare_model_set(md, budget, &ModelKind::all())
}

/// Sweep an explicit set of model families (e.g.
/// [`ModelKind::all_extended`]) across every search strategy.
pub fn compare_model_set(
    md: &MachineData,
    budget: &ComparisonBudget,
    kinds: &[ModelKind],
) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for &kind in kinds {
        for strategy in SearchStrategy::all() {
            rows.push(compare_one(md, kind, strategy, budget));
        }
    }
    rows
}

/// Run the active-learning experiment for one strategy, optionally with an
/// STQ/BQ goal evaluator (Figures 3–6).
pub fn active_learning_run(
    md: &MachineData,
    strategy: Strategy,
    goal: Option<Goal>,
    cfg: &ActiveConfig,
) -> ActiveRun {
    let pool = md.train_dataset(Target::Seconds);
    match goal {
        None => run_active_learning(&pool, strategy, cfg, None),
        Some(g) => {
            let eval = goal_evaluator(md.test_samples(), g);
            run_active_learning(&pool, strategy, cfg, Some(&eval))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chemcost_ml::metrics::r2_score;
    use chemcost_sim::machine::aurora;

    fn small_md() -> MachineData {
        MachineData::generate_sized(&aurora(), 600, 5)
    }

    #[test]
    fn fast_gb_predicts_well_on_test() {
        let md = small_md();
        let gb = train_fast_gb(&md);
        let scores = prediction_scores(&gb, &md.test_samples());
        assert!(scores.r2 > 0.7, "GB should generalize on simulator data: {scores}");
    }

    #[test]
    fn stq_and_bq_tables_cover_problems() {
        let md = small_md();
        let gb = train_fast_gb(&md);
        let stq = stq_table(&md, &gb);
        let bq = bq_table(&md, &gb);
        assert!(!stq.rows.is_empty());
        assert_eq!(stq.rows.len(), bq.rows.len());
        // Rendering shapes.
        let t = render_opt_table(&stq, "aurora");
        assert_eq!(t.headers.len(), 5);
        assert_eq!(t.rows.len(), stq.rows.len());
        let b = render_opt_table(&bq, "aurora");
        assert_eq!(b.headers.len(), 6);
    }

    #[test]
    fn bq_optima_use_fewer_nodes_on_average() {
        let md = MachineData::generate_sized(&aurora(), 800, 6);
        let gb = train_fast_gb(&md);
        let stq = stq_table(&md, &gb);
        let bq = bq_table(&md, &gb);
        let avg = |rows: &[crate::evaluation::OptRow],
                   f: fn(&crate::evaluation::OptRow) -> usize| {
            rows.iter().map(f).sum::<usize>() as f64 / rows.len() as f64
        };
        let stq_nodes = avg(&stq.rows, |r| r.true_nodes);
        let bq_nodes = avg(&bq.rows, |r| r.true_nodes);
        assert!(
            bq_nodes < stq_nodes,
            "budget optima should average fewer nodes: {bq_nodes} vs {stq_nodes}"
        );
    }

    #[test]
    fn compare_one_runs_grid_arm() {
        let md = MachineData::generate_sized(&aurora(), 250, 7);
        let budget =
            ComparisonBudget { cv_folds: 3, random_iters: 4, bayes_iters: 5, search_rows: 150 };
        let row = compare_one(&md, ModelKind::DecisionTree, SearchStrategy::Grid, &budget);
        assert!(row.test.r2 > 0.2, "tuned DT should be respectable: {}", row.test);
        assert!(row.search_seconds > 0.0);
        assert!(!row.best_params.is_empty());
    }

    #[test]
    fn compare_one_handles_parameter_free_model() {
        let md = MachineData::generate_sized(&aurora(), 200, 8);
        let budget =
            ComparisonBudget { cv_folds: 3, random_iters: 3, bayes_iters: 4, search_rows: 120 };
        for strategy in SearchStrategy::all() {
            let row = compare_one(&md, ModelKind::BayesianRidge, strategy, &budget);
            assert!(row.test.r2.is_finite());
        }
    }

    #[test]
    fn active_learning_runs_with_goal() {
        let md = MachineData::generate_sized(&aurora(), 300, 9);
        let cfg = ActiveConfig {
            n_initial: 30,
            query_size: 30,
            n_queries: 3,
            seed: 2,
            gb_shape: (60, 4, 0.15),
        };
        let run = active_learning_run(&md, Strategy::Random, Some(Goal::ShortestTime), &cfg);
        assert_eq!(run.rounds.len(), 3);
        assert!(run.rounds.iter().all(|r| r.goal.is_some()));
    }

    #[test]
    fn paper_gb_shape_is_used() {
        let md = MachineData::generate_sized(&aurora(), 200, 10);
        let gb = train_paper_gb(&md);
        assert_eq!(gb.n_estimators, 750);
        let train = md.train_dataset(Target::Seconds);
        assert!(r2_score(&train.y, &gb.predict(&train.x)) > 0.99);
    }
}
