//! Property-based tests local to the simulator crate: tiling, datasets,
//! molecules, machine profiles.

use chemcost_sim::ccsd::{iteration_task_classes, Problem, Tiling};
use chemcost_sim::datagen::{generate_dataset_sized, nodes_for_problem, tile_candidates};
use chemcost_sim::machine::{aurora, frontier};
use chemcost_sim::molecules::{catalog, BasisSet};
use chemcost_sim::simulate::fits_in_memory;
use proptest::prelude::*;

proptest! {
    #[test]
    fn tiling_partitions_any_extent(extent in 1usize..3000, tile in 1usize..400) {
        let t = Tiling::new(extent, tile);
        prop_assert_eq!(t.covered(), extent);
        prop_assert!(t.n_tiles() >= 1);
        // Every tile extent is within (0, tile].
        for (e, count) in t.shapes() {
            prop_assert!(e >= 1 && e <= tile.min(extent));
            prop_assert!(count >= 1);
        }
    }

    #[test]
    fn task_class_counts_positive(o in 10usize..300, v in 50usize..1500, tile in 10usize..200) {
        let classes = iteration_task_classes(&Problem::new(o, v), tile);
        prop_assert!(!classes.is_empty());
        for c in &classes {
            prop_assert!(c.count >= 1);
            prop_assert!(c.flops > 0.0);
            prop_assert!(c.bytes_in > 0.0);
            prop_assert!(c.min_gemm_dim >= 1.0);
        }
    }

    #[test]
    fn memory_feasibility_monotone_in_nodes(o in 20usize..350, v in 100usize..1600) {
        // If a problem fits on n nodes it fits on n+k nodes.
        let p = Problem::new(o, v);
        let m = aurora();
        let mut was_feasible = false;
        for n in [1usize, 4, 16, 64, 256, 900] {
            let f = fits_in_memory(&p, n, &m);
            prop_assert!(!was_feasible || f, "feasibility must be monotone in nodes");
            was_feasible = f;
        }
    }

    #[test]
    fn dataset_generation_size_and_validity(target in 20usize..200, seed in 0u64..50) {
        let ds = generate_dataset_sized(&frontier(), target, seed);
        prop_assert_eq!(ds.len(), target);
        for s in &ds {
            prop_assert!(s.seconds > 0.0 && s.seconds.is_finite());
            prop_assert!(s.energy_kwh > 0.0);
            prop_assert!((s.node_hours - s.seconds * s.nodes as f64 / 3600.0).abs() < 1e-9);
            prop_assert!(tile_candidates().contains(&s.tile));
        }
    }

    #[test]
    fn nodes_for_problem_sorted_feasible(o in 20usize..350, v in 100usize..1600, k in 2usize..16) {
        let p = Problem::new(o, v);
        let m = aurora();
        let nodes = nodes_for_problem(&p, &m, k);
        prop_assert!(nodes.len() <= k.max(1));
        for w in nodes.windows(2) {
            prop_assert!(w[0] < w[1], "node list must be strictly increasing");
        }
        for &n in &nodes {
            prop_assert!(fits_in_memory(&p, n, &m));
        }
    }
}

#[test]
fn every_catalog_molecule_sizes_in_every_basis() {
    for m in catalog() {
        for b in BasisSet::all() {
            let p = m.problem(b);
            assert!(p.o >= 1 && p.v > p.o / 4, "{} in {}: ({}, {})", m.name, b.name(), p.o, p.v);
        }
    }
}
