//! Dataset generation reproducing the paper's experimental corpus.
//!
//! The paper collected 2329 (Aurora) and 2454 (Frontier) single-iteration
//! CCSD wall times over 22 / 20 problem sizes × node counts × tile sizes
//! (Table 1). This module regenerates datasets of exactly those sizes from
//! the simulator: the same `(O, V)` problem lists as Tables 3–6, a node
//! sweep filtered for memory feasibility, a tile sweep over the ranges the
//! tables exhibit, and a seeded subsample down to the Table 1 counts.
//! Generation runs in parallel across configurations.

use crate::ccsd::Problem;
use crate::machine::MachineModel;
use crate::simulate::{fits_in_memory, simulate_iteration, Config};
use chemcost_linalg::parallel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::io::{BufRead, Write};
use std::path::Path;

/// One labelled experiment: the paper's feature vector and targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Occupied orbitals.
    pub o: usize,
    /// Virtual orbitals.
    pub v: usize,
    /// Node count.
    pub nodes: usize,
    /// Tile size.
    pub tile: usize,
    /// Measured wall seconds of one CCSD iteration.
    pub seconds: f64,
    /// `seconds · nodes / 3600`.
    pub node_hours: f64,
    /// Estimated energy, kWh.
    pub energy_kwh: f64,
}

impl Sample {
    /// The feature vector `[O, V, nodes, tile]` the paper's models use.
    pub fn features(&self) -> [f64; 4] {
        [self.o as f64, self.v as f64, self.nodes as f64, self.tile as f64]
    }
}

/// Feature names in [`Sample::features`] order.
pub const FEATURE_NAMES: [&str; 4] = ["O", "V", "nodes", "tile"];

/// The 22 Aurora problem sizes of Tables 3/5.
pub fn aurora_problems() -> Vec<Problem> {
    [
        (44, 260),
        (81, 835),
        (85, 698),
        (99, 718),
        (99, 1021),
        (116, 575),
        (116, 840),
        (116, 1184),
        (134, 523),
        (134, 951),
        (134, 1200),
        (146, 278),
        (146, 591),
        (146, 1096),
        (146, 1568),
        (180, 720),
        (180, 1070),
        (196, 764),
        (204, 969),
        (235, 1007),
        (280, 1040),
        (345, 791),
    ]
    .into_iter()
    .map(|(o, v)| Problem::new(o, v))
    .collect()
}

/// The 20 Frontier problem sizes of Tables 4/6.
pub fn frontier_problems() -> Vec<Problem> {
    [
        (49, 663),
        (81, 835),
        (85, 698),
        (99, 718),
        (99, 1021),
        (116, 575),
        (116, 840),
        (116, 1184),
        (134, 523),
        (134, 951),
        (134, 1200),
        (146, 591),
        (146, 1096),
        (180, 720),
        (180, 1070),
        (196, 764),
        (204, 969),
        (235, 1007),
        (280, 1040),
        (345, 791),
    ]
    .into_iter()
    .map(|(o, v)| Problem::new(o, v))
    .collect()
}

/// Problem list for a machine profile (`aurora` / `frontier`).
pub fn problems_for(machine: &MachineModel) -> Vec<Problem> {
    if machine.name == "frontier" {
        frontier_problems()
    } else {
        aurora_problems()
    }
}

/// The paper's Table 1 sample count for a machine.
pub fn table1_count(machine: &MachineModel) -> usize {
    if machine.name == "frontier" {
        2454
    } else {
        2329
    }
}

/// Global node-count candidates, spanning the tables' observed range.
pub fn node_candidates() -> Vec<usize> {
    vec![
        5, 10, 15, 20, 25, 30, 35, 45, 50, 65, 70, 80, 90, 110, 120, 150, 185, 200, 220, 240, 260,
        300, 320, 350, 400, 450, 500, 600, 700, 800, 900,
    ]
}

/// Tile-size candidates (the tables show 40–180).
pub fn tile_candidates() -> Vec<usize> {
    (4..=18).map(|k| k * 10).collect()
}

/// Node counts to sweep for one problem: the memory-feasible candidates,
/// geometrically thinned to at most `max_per_problem`.
pub fn nodes_for_problem(
    p: &Problem,
    machine: &MachineModel,
    max_per_problem: usize,
) -> Vec<usize> {
    let feasible: Vec<usize> =
        node_candidates().into_iter().filter(|&n| fits_in_memory(p, n, machine)).collect();
    thin(&feasible, max_per_problem)
}

/// Keep at most `k` values, evenly spaced across the list (first and last
/// always retained).
fn thin(values: &[usize], k: usize) -> Vec<usize> {
    if values.len() <= k || k == 0 {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let idx = i * (values.len() - 1) / (k - 1).max(1);
        out.push(values[idx]);
    }
    out.dedup();
    out
}

/// Longest iteration a user would realistically sweep (the paper's tables
/// top out around 1200 s; its corpus covers "ranges of typical use").
/// Configurations slower than this are excluded from the grid.
pub const MAX_SWEEP_SECONDS: f64 = 1800.0;

/// Every feasible `(problem, config)` in the sweep grid for a machine:
/// memory-feasible and within [`MAX_SWEEP_SECONDS`] (noise-free).
pub fn full_grid(machine: &MachineModel) -> Vec<(Problem, Config)> {
    let tiles = thin(&tile_candidates(), 12);
    let mut candidates = Vec::new();
    for p in problems_for(machine) {
        for n in nodes_for_problem(&p, machine, 14) {
            for &t in &tiles {
                candidates.push((p, Config::new(n, t)));
            }
        }
    }
    // Filter by clean runtime in parallel (the sim is cheap but there are
    // thousands of candidates).
    let keep = parallel::par_map(candidates.len(), |i| {
        let (p, cfg) = candidates[i];
        let r = crate::simulate::simulate_iteration_clean(&p, &cfg, machine);
        r.feasible && r.seconds <= MAX_SWEEP_SECONDS
    });
    candidates.into_iter().zip(keep).filter_map(|(c, k)| k.then_some(c)).collect()
}

/// Generate the machine's dataset at exactly the Table 1 size (or the full
/// grid size if smaller), deterministically under `seed`, in parallel.
pub fn generate_dataset(machine: &MachineModel, seed: u64) -> Vec<Sample> {
    generate_dataset_sized(machine, table1_count(machine), seed)
}

/// Generate `target` samples (clamped to the grid size) for a machine.
pub fn generate_dataset_sized(machine: &MachineModel, target: usize, seed: u64) -> Vec<Sample> {
    let grid = full_grid(machine);
    // Seeded subsample down to the target count, preserving grid order so
    // every problem keeps proportional coverage.
    let mut rng = StdRng::seed_from_u64(seed);
    let keep = target.min(grid.len());
    let mut chosen = chemcost_ml_free_sample(&mut rng, grid.len(), keep);
    chosen.sort_unstable();
    let picked: Vec<(Problem, Config)> = chosen.iter().map(|&i| grid[i]).collect();
    parallel::par_map(picked.len(), |i| {
        let (p, cfg) = picked[i];
        // Per-sample noise seed derived from position and master seed.
        let noise_seed = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(chosen[i] as u64)
            .wrapping_mul(0xD1B54A32D192ED03);
        let r = simulate_iteration(&p, &cfg, machine, noise_seed);
        Sample {
            o: p.o,
            v: p.v,
            nodes: cfg.nodes,
            tile: cfg.tile,
            seconds: r.seconds,
            node_hours: r.node_hours,
            energy_kwh: r.energy_kwh,
        }
    })
}

/// `k` distinct indices from `0..n` via partial Fisher–Yates (local copy to
/// keep this crate independent of `chemcost-ml`).
fn chemcost_ml_free_sample(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    use rand::Rng;
    assert!(k <= n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Write samples as CSV (`o,v,nodes,tile,seconds,node_hours` + header).
pub fn write_csv(path: &Path, samples: &[Sample]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "o,v,nodes,tile,seconds,node_hours,energy_kwh")?;
    for s in samples {
        writeln!(
            w,
            "{},{},{},{},{:.6},{:.8},{:.8}",
            s.o, s.v, s.nodes, s.tile, s.seconds, s.node_hours, s.energy_kwh
        )?;
    }
    w.flush()
}

/// Read samples back from [`write_csv`]'s format.
pub fn read_csv(path: &Path) -> std::io::Result<Vec<Sample>> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: expected 7 fields, got {}", lineno + 1, fields.len()),
            ));
        }
        let parse_err = |what: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: bad {what}", lineno + 1),
            )
        };
        out.push(Sample {
            o: fields[0].parse().map_err(|_| parse_err("o"))?,
            v: fields[1].parse().map_err(|_| parse_err("v"))?,
            nodes: fields[2].parse().map_err(|_| parse_err("nodes"))?,
            tile: fields[3].parse().map_err(|_| parse_err("tile"))?,
            seconds: fields[4].parse().map_err(|_| parse_err("seconds"))?,
            node_hours: fields[5].parse().map_err(|_| parse_err("node_hours"))?,
            energy_kwh: fields[6].parse().map_err(|_| parse_err("energy_kwh"))?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{aurora, frontier};

    #[test]
    fn problem_lists_match_paper_counts() {
        assert_eq!(aurora_problems().len(), 22);
        assert_eq!(frontier_problems().len(), 20);
    }

    #[test]
    fn grid_large_enough_for_table1() {
        for m in [aurora(), frontier()] {
            let grid = full_grid(&m);
            assert!(
                grid.len() >= table1_count(&m),
                "{}: grid {} < target {}",
                m.name,
                grid.len(),
                table1_count(&m)
            );
        }
    }

    #[test]
    fn dataset_has_exact_table1_size() {
        let m = aurora();
        let ds = generate_dataset_sized(&m, 500, 7);
        assert_eq!(ds.len(), 500);
    }

    #[test]
    fn dataset_deterministic() {
        let m = frontier();
        let a = generate_dataset_sized(&m, 200, 3);
        let b = generate_dataset_sized(&m, 200, 3);
        assert_eq!(a, b);
        let c = generate_dataset_sized(&m, 200, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn all_samples_feasible_and_positive() {
        let m = aurora();
        let ds = generate_dataset_sized(&m, 300, 11);
        for s in &ds {
            assert!(s.seconds.is_finite() && s.seconds > 0.0, "{s:?}");
            assert!(s.node_hours > 0.0);
            assert!((s.node_hours - s.seconds * s.nodes as f64 / 3600.0).abs() < 1e-9);
        }
    }

    #[test]
    fn every_problem_represented() {
        let m = aurora();
        let ds = generate_dataset(&m, 1);
        let problems: std::collections::HashSet<(usize, usize)> =
            ds.iter().map(|s| (s.o, s.v)).collect();
        assert_eq!(problems.len(), 22, "all 22 problems present in the Aurora dataset");
    }

    #[test]
    fn nodes_respect_memory_gate() {
        let m = aurora();
        let big = Problem::new(146, 1568);
        for n in nodes_for_problem(&big, &m, 12) {
            assert!(fits_in_memory(&big, n, &m));
        }
        // The big problem must lose some of the smallest node counts.
        let small = Problem::new(44, 260);
        let n_small = nodes_for_problem(&small, &m, 12);
        let n_big = nodes_for_problem(&big, &m, 12);
        assert!(n_big[0] > n_small[0]);
    }

    #[test]
    fn thin_keeps_endpoints() {
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let t = thin(&v, 4);
        assert_eq!(t.first(), Some(&1));
        assert_eq!(t.last(), Some(&10));
        assert!(t.len() <= 4);
    }

    #[test]
    fn csv_round_trip() {
        let m = aurora();
        let ds = generate_dataset_sized(&m, 50, 2);
        let dir = std::env::temp_dir().join("chemcost_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("aurora_sample.csv");
        write_csv(&path, &ds).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(ds.len(), back.len());
        for (a, b) in ds.iter().zip(&back) {
            assert_eq!((a.o, a.v, a.nodes, a.tile), (b.o, b.v, b.nodes, b.tile));
            assert!((a.seconds - b.seconds).abs() < 1e-5);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_csv_rejects_malformed() {
        let dir = std::env::temp_dir().join("chemcost_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "o,v,nodes,tile,seconds,node_hours\n1,2,3\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn features_order_matches_names() {
        let s = Sample {
            o: 1,
            v: 2,
            nodes: 3,
            tile: 4,
            seconds: 5.0,
            node_hours: 6.0,
            energy_kwh: 7.0,
        };
        assert_eq!(s.features(), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(FEATURE_NAMES.len(), 4);
    }
}
