//! Per-task discrete-event execution traces.
//!
//! The production path ([`crate::schedule::lpt_classes`]) collapses
//! identical tasks into classes for speed. This module runs the same
//! schedule task-by-task instead, producing a full execution trace —
//! per-task `(executor, start, end)` records — which serves three
//! purposes:
//!
//! * **cross-validation**: with noise off, the trace makespan lower-bounds
//!   the class-based scheduler and converges to it when tasks vastly
//!   outnumber executors (tested);
//! * **per-task noise**: real GPU tasks jitter individually; the trace can
//!   perturb every task independently, giving a finer-grained noise model
//!   than the iteration-level log-normal;
//! * **introspection**: utilization and Gantt-style data for users who want
//!   to *see* why a configuration is slow (the `simulator_explore` example).

use crate::ccsd::{iteration_task_classes, Problem};
use crate::machine::MachineModel;
use crate::simulate::Config;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One executed task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskRecord {
    /// Executor (global GPU index) that ran the task.
    pub executor: usize,
    /// Start time, seconds from iteration start.
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Index of the originating task class.
    pub class_id: usize,
}

/// A complete execution trace of the task phase of one iteration.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    /// Every task, in scheduling order.
    pub records: Vec<TaskRecord>,
    /// Completion time of the last task (excludes iteration overheads).
    pub makespan: f64,
    /// Busy seconds per executor.
    pub executor_busy: Vec<f64>,
}

impl ExecutionTrace {
    /// Mean executor utilization over the makespan, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 1.0;
        }
        let busy: f64 = self.executor_busy.iter().sum();
        busy / (self.makespan * self.executor_busy.len() as f64)
    }

    /// Number of tasks executed.
    pub fn n_tasks(&self) -> usize {
        self.records.len()
    }

    /// Render the trace as JSONL: one object per task, in scheduling
    /// order, matching the observability layer's machine-readable style
    /// (`chemcost trace` dumps this; see `docs/OBSERVABILITY.md`).
    ///
    /// ```text
    /// {"task":0,"class":3,"executor":5,"start":0.0,"end":1.25,"duration":1.25}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 80);
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "{{\"task\":{i},\"class\":{},\"executor\":{},\"start\":{},\"end\":{},\"duration\":{}}}\n",
                r.class_id,
                r.executor,
                r.start,
                r.end,
                r.end - r.start,
            ));
        }
        out
    }

    /// One-line human summary: task count, executors, makespan,
    /// mean utilization.
    pub fn summary(&self) -> String {
        format!(
            "{} tasks on {} executors: makespan {:.3} s, utilization {:.1}%",
            self.n_tasks(),
            self.executor_busy.len(),
            self.makespan,
            self.utilization() * 100.0
        )
    }
}

/// Error from [`trace_iteration`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The configuration generates more tasks than the cap allows —
    /// per-task tracing is meant for inspection, not bulk dataset
    /// generation.
    TooManyTasks {
        /// Tasks the configuration would generate.
        tasks: usize,
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::TooManyTasks { tasks, cap } => {
                write!(f, "{tasks} tasks exceed the tracing cap of {cap}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Default cap on traced tasks.
pub const DEFAULT_TASK_CAP: usize = 2_000_000;

/// Per-task duration, mirroring the production cost model.
fn task_seconds(class: &crate::ccsd::TaskClass, machine: &MachineModel) -> f64 {
    let compute = class.flops / machine.effective_flops(class.min_gemm_dim);
    let comm = 2.0 * machine.net_latency + class.bytes_in / machine.net_bandwidth_per_gpu;
    let b = machine.comm_overlap;
    machine.task_overhead + compute.max(b * comm) + (1.0 - b) * comm
}

/// Run the task phase of one CCSD iteration task-by-task.
///
/// Tasks are dispatched longest-first to the earliest-available executor
/// (exact LPT list schedule). `per_task_noise` multiplies each task's
/// duration by an independent log-normal factor with the given sigma
/// (pass 0.0 for a deterministic trace).
pub fn trace_iteration(
    p: &Problem,
    cfg: &Config,
    machine: &MachineModel,
    per_task_noise: f64,
    seed: u64,
) -> Result<ExecutionTrace, TraceError> {
    let classes = iteration_task_classes(p, cfg.tile);
    let total_tasks: usize = classes.iter().map(|c| c.count).sum();
    if total_tasks > DEFAULT_TASK_CAP {
        return Err(TraceError::TooManyTasks { tasks: total_tasks, cap: DEFAULT_TASK_CAP });
    }
    let executors = machine.executors(cfg.nodes);
    // Expand (class, duration) pairs and sort longest-first.
    let mut tasks: Vec<(f64, usize)> = Vec::with_capacity(total_tasks);
    for (ci, class) in classes.iter().enumerate() {
        let dur = task_seconds(class, machine);
        for _ in 0..class.count {
            tasks.push((dur, ci));
        }
    }
    tasks.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = per_task_noise.max(0.0);
    // Min-heap of (available_time_bits, executor).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..executors).map(|e| Reverse((0u64, e))).collect();
    let mut avail = vec![0.0f64; executors];
    let mut busy = vec![0.0f64; executors];
    let mut records = Vec::with_capacity(total_tasks);
    for (dur, class_id) in tasks {
        let Reverse((_, e)) = heap.pop().expect("non-empty heap");
        let noisy_dur = if sigma > 0.0 {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            dur * (sigma * z - 0.5 * sigma * sigma).exp()
        } else {
            dur
        };
        let start = avail[e];
        let end = start + noisy_dur;
        avail[e] = end;
        busy[e] += noisy_dur;
        records.push(TaskRecord { executor: e, start, end, class_id });
        heap.push(Reverse((avail[e].to_bits(), e)));
    }
    let makespan = avail.iter().cloned().fold(0.0, f64::max);
    Ok(ExecutionTrace { records, makespan, executor_busy: busy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::aurora;
    use crate::schedule::lpt_classes;

    #[test]
    fn noiseless_trace_bounds_class_scheduler() {
        // The class scheduler spreads each class uniformly before handing
        // out remainders, which cannot beat exact per-task LPT — so the
        // trace is a lower bound on the class makespan, and both respect
        // the work/critical-task lower bounds. When tasks vastly outnumber
        // executors the two converge (second case).
        let machine = aurora();
        for (p, cfg, tight) in [
            (Problem::new(60, 300), Config::new(20, 60), false),
            (Problem::new(80, 400), Config::new(4, 40), true),
        ] {
            let trace = trace_iteration(&p, &cfg, &machine, 0.0, 0).unwrap();
            let classes = iteration_task_classes(&p, cfg.tile);
            let execs = machine.executors(cfg.nodes);
            let stats = lpt_classes(&classes, execs, |c| task_seconds(c, &machine));
            assert_eq!(trace.n_tasks(), stats.n_tasks);
            assert!(
                trace.makespan <= stats.makespan * (1.0 + 1e-9),
                "exact LPT cannot be slower: {} vs {}",
                trace.makespan,
                stats.makespan
            );
            let work: f64 =
                classes.iter().map(|c| c.count as f64 * task_seconds(c, &machine)).sum();
            assert!(trace.makespan + 1e-9 >= work / execs as f64);
            if tight {
                let rel = (stats.makespan - trace.makespan) / trace.makespan;
                assert!(rel < 0.02, "high task:executor ratio should converge: gap {rel:.4}");
            }
        }
    }

    #[test]
    fn no_overlap_per_executor() {
        let machine = aurora();
        let trace = trace_iteration(&Problem::new(40, 200), &Config::new(5, 50), &machine, 0.05, 3)
            .unwrap();
        let executors = machine.executors(5);
        let mut per_exec: Vec<Vec<(f64, f64)>> = vec![Vec::new(); executors];
        for r in &trace.records {
            assert!(r.end >= r.start);
            per_exec[r.executor].push((r.start, r.end));
        }
        for iv in &mut per_exec {
            iv.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in iv.windows(2) {
                assert!(w[1].0 >= w[0].1 - 1e-12, "overlap {:?}", w);
            }
        }
    }

    #[test]
    fn utilization_in_unit_interval_and_high_when_many_tasks() {
        let machine = aurora();
        let trace = trace_iteration(&Problem::new(80, 400), &Config::new(10, 50), &machine, 0.0, 0)
            .unwrap();
        let u = trace.utilization();
        assert!(u > 0.0 && u <= 1.0 + 1e-12);
        assert!(u > 0.8, "many small tasks should pack well: {u}");
    }

    #[test]
    fn per_task_noise_changes_makespan_but_not_count() {
        let machine = aurora();
        let p = Problem::new(50, 260);
        let cfg = Config::new(8, 60);
        let clean = trace_iteration(&p, &cfg, &machine, 0.0, 0).unwrap();
        let noisy = trace_iteration(&p, &cfg, &machine, 0.1, 7).unwrap();
        assert_eq!(clean.n_tasks(), noisy.n_tasks());
        assert_ne!(clean.makespan, noisy.makespan);
        // Noise is mean-one-ish: makespan stays in the same ballpark.
        assert!((noisy.makespan / clean.makespan - 1.0).abs() < 0.3);
    }

    #[test]
    fn trace_deterministic_under_seed() {
        let machine = aurora();
        let p = Problem::new(45, 220);
        let cfg = Config::new(6, 50);
        let a = trace_iteration(&p, &cfg, &machine, 0.08, 11).unwrap();
        let b = trace_iteration(&p, &cfg, &machine, 0.08, 11).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn jsonl_dump_is_one_valid_object_per_task() {
        let machine = aurora();
        let trace =
            trace_iteration(&Problem::new(40, 200), &Config::new(4, 60), &machine, 0.0, 0).unwrap();
        let jsonl = trace.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), trace.n_tasks());
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("{{\"task\":{i},")), "{line}");
            assert!(line.ends_with('}'), "{line}");
            for key in ["\"class\":", "\"executor\":", "\"start\":", "\"end\":", "\"duration\":"] {
                assert!(line.contains(key), "{line} missing {key}");
            }
        }
        let summary = trace.summary();
        assert!(summary.contains(&format!("{} tasks", trace.n_tasks())), "{summary}");
        assert!(summary.contains("utilization"), "{summary}");
    }

    #[test]
    fn rejects_untraceably_large_configs() {
        let machine = aurora();
        // Tiny tiles on a large problem explode the task count.
        let r = trace_iteration(&Problem::new(300, 1500), &Config::new(100, 10), &machine, 0.0, 0);
        assert!(matches!(r, Err(TraceError::TooManyTasks { .. })));
    }
}
