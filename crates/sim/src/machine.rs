//! Machine models for the simulated supercomputers.
//!
//! The constants below are *not* vendor datasheet numbers — they are
//! effective rates calibrated so that simulated single-iteration CCSD
//! times land in the same range the paper reports (roughly 17–900 s over
//! the Table 3–6 problem list) while preserving the architectural
//! contrasts that matter to the ML layer: Aurora-like nodes have more,
//! individually slower GPU tiles and a quieter interconnect; Frontier-like
//! nodes have fewer, faster GCDs and noisier timings (the paper finds
//! Frontier consistently harder to predict).

/// An abstract GPU supercomputer profile.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Display name ("aurora", "frontier").
    pub name: String,
    /// GPU executors per node (Aurora: 6 PVC × 2 tiles = 12; Frontier:
    /// 4 MI250X × 2 GCDs = 8).
    pub gpus_per_node: usize,
    /// Sustained large-GEMM rate per GPU executor, FLOP/s — an *effective*
    /// application-level rate, far below peak.
    pub flops_per_gpu: f64,
    /// Tile-efficiency half-saturation constant: a task with smallest
    /// matricized GEMM dimension `s` runs at `flops_per_gpu · s/(s + s_half)`.
    pub gemm_half_dim: f64,
    /// Fixed runtime cost per task (launch + bookkeeping), seconds.
    pub task_overhead: f64,
    /// One-sided get latency per task, seconds.
    pub net_latency: f64,
    /// Remote-memory bandwidth available to one GPU executor, bytes/s.
    pub net_bandwidth_per_gpu: f64,
    /// Fraction of communication overlapped with compute, `[0, 1]`.
    pub comm_overlap: f64,
    /// Per-iteration fixed overhead (residual norms, DIIS, etc.), seconds.
    pub base_overhead: f64,
    /// Runtime cost growing linearly with node count (centralized
    /// scheduler / progress-engine pressure), seconds per node.
    pub per_node_overhead: f64,
    /// Collective-latency coefficient: `coll_latency · log2(nodes + 1)`.
    pub coll_latency: f64,
    /// Usable memory per node, bytes.
    pub mem_per_node: f64,
    /// Node power draw at idle, watts.
    pub idle_watts_per_node: f64,
    /// Node power draw with all GPUs busy, watts.
    pub busy_watts_per_node: f64,
    /// Log-normal measurement-noise sigma.
    pub noise_sigma: f64,
}

impl MachineModel {
    /// Total GPU executors for a node count.
    pub fn executors(&self, nodes: usize) -> usize {
        self.gpus_per_node * nodes.max(1)
    }

    /// Effective FLOP/s of one executor on a task whose smallest
    /// matricized GEMM dimension is `s` (saturating in `s`).
    pub fn effective_flops(&self, min_gemm_dim: f64) -> f64 {
        self.flops_per_gpu * min_gemm_dim / (min_gemm_dim + self.gemm_half_dim)
    }
}

/// An Aurora-like machine: many Intel-PVC-style tiles per node, moderate
/// per-tile rate, relatively quiet timing (paper MAPE 0.023).
pub fn aurora() -> MachineModel {
    MachineModel {
        name: "aurora".to_string(),
        gpus_per_node: 12,
        flops_per_gpu: 2.5e11,
        gemm_half_dim: 3000.0,
        task_overhead: 4.0e-4,
        net_latency: 2.0e-5,
        net_bandwidth_per_gpu: 9.0e9,
        comm_overlap: 0.8,
        base_overhead: 4.0,
        per_node_overhead: 0.032,
        coll_latency: 0.15,
        mem_per_node: 1.1e12,
        // PVC-class node: ~6×600 W GPUs + hosts at full tilt.
        idle_watts_per_node: 1800.0,
        busy_watts_per_node: 4800.0,
        noise_sigma: 0.03,
    }
}

/// A Frontier-like machine: fewer but faster MI250X GCDs per node, a
/// slightly better effective rate, but noisier timings (paper MAPE 0.073).
pub fn frontier() -> MachineModel {
    MachineModel {
        name: "frontier".to_string(),
        gpus_per_node: 8,
        flops_per_gpu: 4.5e11,
        gemm_half_dim: 2200.0,
        task_overhead: 5.0e-4,
        net_latency: 2.5e-5,
        net_bandwidth_per_gpu: 1.1e10,
        comm_overlap: 0.7,
        base_overhead: 3.0,
        per_node_overhead: 0.045,
        coll_latency: 0.2,
        mem_per_node: 6.5e11,
        // MI250X node: 4×560 W GPUs + host.
        idle_watts_per_node: 1200.0,
        busy_watts_per_node: 3400.0,
        noise_sigma: 0.08,
    }
}

/// Look up a profile by name (case-insensitive).
pub fn by_name(name: &str) -> Option<MachineModel> {
    match name.to_ascii_lowercase().as_str() {
        "aurora" => Some(aurora()),
        "frontier" => Some(frontier()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executors_scale_with_nodes() {
        let m = aurora();
        assert_eq!(m.executors(10), 120);
        assert_eq!(frontier().executors(10), 80);
    }

    #[test]
    fn efficiency_saturates() {
        let m = aurora();
        let small = m.effective_flops(100.0);
        let mid = m.effective_flops(3000.0);
        let large = m.effective_flops(1e6);
        assert!(small < mid && mid < large);
        assert!((mid / m.flops_per_gpu - 0.5).abs() < 1e-12, "half-saturation point");
        assert!(large < m.flops_per_gpu);
        assert!(large / m.flops_per_gpu > 0.99);
    }

    #[test]
    fn by_name_round_trip() {
        assert_eq!(by_name("Aurora").unwrap().name, "aurora");
        assert_eq!(by_name("FRONTIER").unwrap().name, "frontier");
        assert!(by_name("summit").is_none());
    }

    #[test]
    fn frontier_noisier_than_aurora() {
        assert!(frontier().noise_sigma > aurora().noise_sigma);
    }

    #[test]
    fn profiles_have_sane_ranges() {
        for m in [aurora(), frontier()] {
            assert!(m.gpus_per_node >= 1);
            assert!(m.flops_per_gpu > 0.0);
            assert!((0.0..=1.0).contains(&m.comm_overlap));
            assert!(m.mem_per_node > 1e11);
            assert!(m.busy_watts_per_node > m.idle_watts_per_node);
            assert!(m.idle_watts_per_node > 0.0);
            assert!(m.noise_sigma >= 0.0);
        }
    }
}
