//! Parallel makespan computation over task classes.
//!
//! Tasks arrive as [`TaskClass`] groups of identical duration. The LPT
//! scheduler processes classes in descending per-task cost; within a class
//! it first spreads `⌊count / E⌋` tasks uniformly (optimal for identical
//! items) and hands the remainder to the currently least-loaded executors.
//! This is exact for a single class and matches true LPT closely for
//! mixtures, at `O(classes · E log E)` cost instead of `O(tasks log tasks)`
//! — the difference between microseconds and minutes when one CCSD
//! iteration has 10⁵–10⁶ tile tasks and the dataset has thousands of
//! configurations.
//!
//! A naive round-robin placement is kept as the ablation baseline
//! (`bench/sched_ablation`), and an exact per-task LPT for cross-checking
//! in tests.

use crate::ccsd::TaskClass;

/// Result of scheduling a task set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleStats {
    /// Time at which the last executor finishes (seconds).
    pub makespan: f64,
    /// Mean executor load (= perfect-balance lower bound).
    pub mean_load: f64,
    /// `makespan / mean_load` (≥ 1; 1 = perfectly balanced).
    pub imbalance: f64,
    /// Total task count.
    pub n_tasks: usize,
}

fn stats_from_loads(loads: &[f64], n_tasks: usize) -> ScheduleStats {
    let makespan = loads.iter().cloned().fold(0.0, f64::max);
    let mean_load = loads.iter().sum::<f64>() / loads.len() as f64;
    ScheduleStats {
        makespan,
        mean_load,
        imbalance: if mean_load > 0.0 { makespan / mean_load } else { 1.0 },
        n_tasks,
    }
}

/// Schedule task classes onto `executors` workers with the class-level LPT
/// described in the module docs. `cost(class)` maps a class to its
/// per-task duration.
///
/// Executors are symmetric, so the load vector is represented as a sorted
/// multiset of `(load, count)` groups — the group count is bounded by the
/// class count, making the scheduler independent of the executor count
/// (10 800 GPU executors on a 900-node Aurora job cost the same as 8).
///
/// # Panics
/// Panics if `executors == 0`.
pub fn lpt_classes<F>(classes: &[TaskClass], executors: usize, cost: F) -> ScheduleStats
where
    F: Fn(&TaskClass) -> f64,
{
    assert!(executors > 0, "need at least one executor");
    let mut order: Vec<(f64, &TaskClass)> =
        classes.iter().filter(|c| c.count > 0).map(|c| (cost(c), c)).collect();
    order.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    // Load multiset, ascending by load. Uniform additions accumulate in
    // `offset` so they never split groups.
    let mut groups: Vec<(f64, usize)> = vec![(0.0, executors)];
    let mut offset = 0.0f64;
    let mut n_tasks = 0usize;
    for (c, class) in order {
        n_tasks += class.count;
        let per = class.count / executors;
        let rem = class.count % executors;
        offset += per as f64 * c;
        if rem == 0 {
            continue;
        }
        // Bump the `rem` least-loaded executors by `c`.
        let mut remaining = rem;
        let mut rebuilt: Vec<(f64, usize)> = Vec::with_capacity(groups.len() + 1);
        for &(load, count) in &groups {
            if remaining > 0 {
                let take = count.min(remaining);
                remaining -= take;
                rebuilt.push((load + c, take));
                if take < count {
                    rebuilt.push((load, count - take));
                }
            } else {
                rebuilt.push((load, count));
            }
        }
        rebuilt.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        // Merge adjacent equal loads to keep the representation compact.
        groups.clear();
        for (load, count) in rebuilt {
            match groups.last_mut() {
                Some((l, cnt)) if (*l - load).abs() < 1e-15 => *cnt += count,
                _ => groups.push((load, count)),
            }
        }
    }
    let makespan = offset + groups.last().map_or(0.0, |g| g.0);
    let total: f64 = groups.iter().map(|&(l, c)| (offset + l) * c as f64).sum();
    let mean_load = total / executors as f64;
    ScheduleStats {
        makespan,
        mean_load,
        imbalance: if mean_load > 0.0 { makespan / mean_load } else { 1.0 },
        n_tasks,
    }
}

/// Round-robin placement baseline: tasks of each class dealt to executors
/// in index order with no load awareness (what a naive static
/// distribution does). Used by the scheduling ablation.
pub fn round_robin_classes<F>(classes: &[TaskClass], executors: usize, cost: F) -> ScheduleStats
where
    F: Fn(&TaskClass) -> f64,
{
    assert!(executors > 0, "need at least one executor");
    let mut loads = vec![0.0f64; executors];
    let mut cursor = 0usize;
    let mut n_tasks = 0usize;
    for class in classes {
        let c = cost(class);
        n_tasks += class.count;
        let per = class.count / executors;
        let rem = class.count % executors;
        if per > 0 {
            for l in &mut loads {
                *l += per as f64 * c;
            }
        }
        // The remainder lands on the next `rem` executors after the
        // cursor, which is where round-robin skew comes from.
        for k in 0..rem {
            loads[(cursor + k) % executors] += c;
        }
        cursor = (cursor + rem) % executors;
    }
    stats_from_loads(&loads, n_tasks)
}

/// Exact per-task LPT (greedy longest-first onto least-loaded executor).
/// `O(n log n)` in the task count — only for tests and small inputs.
pub fn lpt_tasks(costs: &[f64], executors: usize) -> ScheduleStats {
    assert!(executors > 0, "need at least one executor");
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut sorted: Vec<f64> = costs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    // Min-heap of (load, executor) via Reverse of ordered float bits.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..executors).map(|i| Reverse((0u64, i))).collect();
    let mut loads = vec![0.0f64; executors];
    for c in sorted {
        let Reverse((_, i)) = heap.pop().expect("non-empty heap");
        loads[i] += c;
        heap.push(Reverse((loads[i].to_bits(), i)));
    }
    stats_from_loads(&loads, costs.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(count: usize, flops: f64) -> TaskClass {
        TaskClass { count, flops, bytes_in: 0.0, min_gemm_dim: 1.0 }
    }

    #[test]
    fn single_class_even_division() {
        let stats = lpt_classes(&[class(12, 1.0)], 4, |c| c.flops);
        assert_eq!(stats.makespan, 3.0);
        assert_eq!(stats.imbalance, 1.0);
        assert_eq!(stats.n_tasks, 12);
    }

    #[test]
    fn single_class_remainder_imbalance() {
        // 13 unit tasks on 4 executors → one executor gets 4.
        let stats = lpt_classes(&[class(13, 1.0)], 4, |c| c.flops);
        assert_eq!(stats.makespan, 4.0);
        assert!(stats.imbalance > 1.0);
    }

    #[test]
    fn makespan_bounds_hold() {
        let classes = vec![class(7, 3.0), class(20, 1.0), class(3, 10.0)];
        let e = 5;
        let stats = lpt_classes(&classes, e, |c| c.flops);
        let total: f64 = classes.iter().map(|c| c.count as f64 * c.flops).sum();
        let max_task = 10.0;
        assert!(stats.makespan >= total / e as f64 - 1e-12);
        assert!(stats.makespan >= max_task);
        assert!(stats.makespan <= total, "cannot exceed serial time");
    }

    #[test]
    fn lpt_beats_or_ties_round_robin() {
        let classes = vec![class(5, 7.0), class(11, 2.0), class(3, 13.0), class(17, 1.0)];
        for e in [2, 3, 7, 16] {
            let lpt = lpt_classes(&classes, e, |c| c.flops);
            let rr = round_robin_classes(&classes, e, |c| c.flops);
            assert!(
                lpt.makespan <= rr.makespan + 1e-12,
                "e={e}: lpt {} vs rr {}",
                lpt.makespan,
                rr.makespan
            );
        }
    }

    #[test]
    fn class_lpt_matches_exact_lpt_on_uniform_tasks() {
        let classes = vec![class(29, 2.5)];
        let exact = lpt_tasks(&vec![2.5; 29], 6);
        let approx = lpt_classes(&classes, 6, |c| c.flops);
        assert!((exact.makespan - approx.makespan).abs() < 1e-12);
    }

    #[test]
    fn class_lpt_close_to_exact_on_mixture() {
        let classes = vec![class(10, 5.0), class(40, 1.0), class(4, 9.0)];
        let mut tasks = Vec::new();
        for c in &classes {
            tasks.extend(std::iter::repeat_n(c.flops, c.count));
        }
        for e in [3, 8, 13] {
            let exact = lpt_tasks(&tasks, e);
            let approx = lpt_classes(&classes, e, |c| c.flops);
            // Class-level LPT may lose a little to exact LPT but must stay
            // within one max-task of it.
            assert!(approx.makespan >= exact.makespan - 1e-12);
            assert!(approx.makespan <= exact.makespan + 9.0, "e={e}");
        }
    }

    #[test]
    fn more_executors_never_slower() {
        let classes = vec![class(50, 2.0), class(9, 11.0)];
        let mut prev = f64::INFINITY;
        for e in [1, 2, 4, 8, 16, 32] {
            let s = lpt_classes(&classes, e, |c| c.flops);
            assert!(s.makespan <= prev + 1e-12, "e={e}");
            prev = s.makespan;
        }
    }

    #[test]
    fn one_executor_is_serial() {
        let classes = vec![class(5, 2.0), class(3, 4.0)];
        let s = lpt_classes(&classes, 1, |c| c.flops);
        assert_eq!(s.makespan, 22.0);
        assert_eq!(s.imbalance, 1.0);
    }

    #[test]
    fn empty_classes_zero_makespan() {
        let s = lpt_classes(&[], 4, |c| c.flops);
        assert_eq!(s.makespan, 0.0);
        assert_eq!(s.n_tasks, 0);
    }

    #[test]
    fn more_executors_than_tasks() {
        let s = lpt_classes(&[class(3, 5.0)], 100, |c| c.flops);
        assert_eq!(s.makespan, 5.0, "each task on its own executor");
        assert_eq!(s.n_tasks, 3);
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn zero_executors_panics() {
        let _ = lpt_classes(&[class(1, 1.0)], 0, |c| c.flops);
    }
}
