//! End-to-end simulation of one CCSD iteration on a machine model.

use crate::ccsd::{iteration_task_classes, Problem, TaskClass};
use crate::machine::MachineModel;
use crate::schedule::{lpt_classes, ScheduleStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A runtime configuration: the two knobs the paper's users tune.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Config {
    /// Number of nodes.
    pub nodes: usize,
    /// Tensor tile size.
    pub tile: usize,
}

impl Config {
    /// Construct a configuration.
    ///
    /// # Panics
    /// Panics if either knob is zero.
    pub fn new(nodes: usize, tile: usize) -> Self {
        assert!(nodes > 0 && tile > 0, "nodes and tile must be positive");
        Self { nodes, tile }
    }
}

/// Per-phase time breakdown of a simulated iteration (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Perfect-balance task time (compute+comm, mean executor load).
    pub balanced: f64,
    /// Extra time from load imbalance (makespan − mean load).
    pub imbalance: f64,
    /// Fixed + collective + per-node runtime overheads.
    pub overhead: f64,
}

/// Result of simulating one iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Wall time of the iteration, seconds (`f64::INFINITY` if the
    /// configuration does not fit in memory).
    pub seconds: f64,
    /// `seconds · nodes / 3600` — the paper's budget metric.
    pub node_hours: f64,
    /// Estimated electrical energy of the iteration, kWh: idle draw for
    /// the full wall time plus the busy-idle delta weighted by mean GPU
    /// utilization (extension beyond the paper's node-hour budget).
    pub energy_kwh: f64,
    /// Phase breakdown (noise-free).
    pub breakdown: Breakdown,
    /// Whether the configuration fits in aggregate node memory.
    pub feasible: bool,
    /// Total tile tasks executed.
    pub n_tasks: usize,
}

/// Aggregate memory footprint of the CCSD tensors, bytes.
///
/// The `V⁴` two-electron integral block (stored with 8-fold symmetry
/// packing), several `O²V²` amplitude/residual/intermediate copies, and
/// the `O⁴`/`O³V` intermediates.
pub fn memory_bytes(p: &Problem) -> f64 {
    let o = p.o as f64;
    let v = p.v as f64;
    8.0 * (v.powi(4) / 8.0 + 6.0 * o.powi(2) * v.powi(2) + o.powi(4) + 2.0 * o.powi(3) * v)
}

/// True when the problem's distributed tensors fit on `nodes` nodes.
pub fn fits_in_memory(p: &Problem, nodes: usize, machine: &MachineModel) -> bool {
    memory_bytes(p) / nodes as f64 <= machine.mem_per_node
}

/// Per-task duration under a machine model: launch overhead plus compute
/// partially overlapped with the remote gets.
fn task_seconds(class: &TaskClass, machine: &MachineModel) -> f64 {
    let compute = class.flops / machine.effective_flops(class.min_gemm_dim);
    let comm = 2.0 * machine.net_latency + class.bytes_in / machine.net_bandwidth_per_gpu;
    let b = machine.comm_overlap;
    machine.task_overhead + compute.max(b * comm) + (1.0 - b) * comm
}

/// Noise-free simulation of one CCSD iteration.
pub fn simulate_iteration_clean(p: &Problem, cfg: &Config, machine: &MachineModel) -> SimResult {
    let feasible = fits_in_memory(p, cfg.nodes, machine);
    let classes = iteration_task_classes(p, cfg.tile);
    let executors = machine.executors(cfg.nodes);
    let stats: ScheduleStats = lpt_classes(&classes, executors, |c| task_seconds(c, machine));
    let nodes = cfg.nodes as f64;
    let overhead = machine.base_overhead
        + machine.per_node_overhead * nodes
        + machine.coll_latency * (nodes + 1.0).log2();
    let breakdown = Breakdown {
        balanced: stats.mean_load,
        imbalance: stats.makespan - stats.mean_load,
        overhead,
    };
    let seconds = if feasible { stats.makespan + overhead } else { f64::INFINITY };
    // Mean GPU-busy fraction over the iteration.
    let utilization = if seconds > 0.0 && seconds.is_finite() {
        (stats.mean_load / seconds).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let watts = machine.idle_watts_per_node
        + (machine.busy_watts_per_node - machine.idle_watts_per_node) * utilization;
    SimResult {
        seconds,
        node_hours: seconds * nodes / 3600.0,
        energy_kwh: seconds * nodes * watts / 3.6e6,
        breakdown,
        feasible,
        n_tasks: stats.n_tasks,
    }
}

/// Simulate one CCSD iteration with log-normal measurement noise drawn
/// from `seed` (pass the same seed to reproduce a "measurement").
///
/// The noise is mean-one multiplicative: `exp(σz − σ²/2)`.
pub fn simulate_iteration(
    p: &Problem,
    cfg: &Config,
    machine: &MachineModel,
    seed: u64,
) -> SimResult {
    let mut result = simulate_iteration_clean(p, cfg, machine);
    if result.feasible && machine.noise_sigma > 0.0 {
        let mut rng = StdRng::seed_from_u64(seed);
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let s = machine.noise_sigma;
        let factor = (s * z - 0.5 * s * s).exp();
        result.seconds *= factor;
        result.node_hours *= factor;
        result.energy_kwh *= factor;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{aurora, frontier};

    #[test]
    fn seconds_positive_and_finite() {
        let p = Problem::new(99, 718);
        let r = simulate_iteration_clean(&p, &Config::new(260, 60), &aurora());
        assert!(r.feasible);
        assert!(r.seconds.is_finite() && r.seconds > 0.0);
        assert!(r.n_tasks > 1000, "a real iteration has many tile tasks");
    }

    #[test]
    fn bigger_problem_takes_longer() {
        let m = aurora();
        let cfg = Config::new(100, 60);
        let small = simulate_iteration_clean(&Problem::new(44, 260), &cfg, &m);
        let large = simulate_iteration_clean(&Problem::new(146, 1096), &cfg, &m);
        assert!(large.seconds > small.seconds * 5.0);
    }

    #[test]
    fn node_count_has_an_interior_optimum() {
        // Sweeping nodes for a mid-size problem must show a minimum that is
        // neither the smallest nor the largest node count — the structural
        // fact behind the whole STQ question.
        let m = aurora();
        let p = Problem::new(116, 840);
        let sweep: Vec<(usize, f64)> = [5, 20, 50, 100, 200, 350, 600, 900]
            .iter()
            .map(|&n| (n, simulate_iteration_clean(&p, &Config::new(n, 60), &m).seconds))
            .collect();
        let best = sweep.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
        assert!(best > 5 && best < 900, "optimum at {best} nodes: {sweep:?}");
    }

    #[test]
    fn tile_size_has_an_interior_optimum() {
        let m = aurora();
        let p = Problem::new(134, 951);
        let sweep: Vec<(usize, f64)> = [10, 30, 50, 70, 90, 120, 160, 250]
            .iter()
            .map(|&t| (t, simulate_iteration_clean(&p, &Config::new(300, t), &m).seconds))
            .collect();
        let best = sweep.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().0;
        assert!(best > 10 && best < 250, "optimum at tile {best}: {sweep:?}");
    }

    #[test]
    fn node_hours_favor_fewer_nodes_than_walltime() {
        // The paper's BQ/STQ contrast: the node-hour optimum sits at fewer
        // nodes than the wall-time optimum.
        let m = aurora();
        let p = Problem::new(180, 1070);
        let nodes = [10, 20, 35, 60, 100, 160, 260, 400, 650];
        let results: Vec<SimResult> =
            nodes.iter().map(|&n| simulate_iteration_clean(&p, &Config::new(n, 90), &m)).collect();
        let best_time = nodes[results
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.seconds.partial_cmp(&b.1.seconds).unwrap())
            .unwrap()
            .0];
        let best_nh = nodes[results
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.node_hours.partial_cmp(&b.1.node_hours).unwrap())
            .unwrap()
            .0];
        assert!(
            best_nh < best_time,
            "node-hour optimum ({best_nh}) should use fewer nodes than time optimum ({best_time})"
        );
    }

    #[test]
    fn memory_gate_rejects_huge_problem_on_few_nodes() {
        let m = aurora();
        let p = Problem::new(146, 1568);
        assert!(!fits_in_memory(&p, 2, &m));
        let r = simulate_iteration_clean(&p, &Config::new(2, 80), &m);
        assert!(!r.feasible);
        assert!(r.seconds.is_infinite());
        // Enough nodes make it feasible.
        assert!(fits_in_memory(&p, 100, &m));
    }

    #[test]
    fn noise_is_reproducible_and_mean_one_ish() {
        let p = Problem::new(99, 718);
        let cfg = Config::new(200, 70);
        let m = frontier();
        let clean = simulate_iteration_clean(&p, &cfg, &m).seconds;
        let a = simulate_iteration(&p, &cfg, &m, 42).seconds;
        let b = simulate_iteration(&p, &cfg, &m, 42).seconds;
        assert_eq!(a, b, "same seed, same measurement");
        let c = simulate_iteration(&p, &cfg, &m, 43).seconds;
        assert_ne!(a, c);
        // Average over many seeds should approach the clean value.
        let avg: f64 =
            (0..500).map(|s| simulate_iteration(&p, &cfg, &m, s).seconds).sum::<f64>() / 500.0;
        assert!((avg / clean - 1.0).abs() < 0.05, "noise should be mean-one: {avg} vs {clean}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let p = Problem::new(116, 575);
        let r = simulate_iteration_clean(&p, &Config::new(150, 60), &aurora());
        let sum = r.breakdown.balanced + r.breakdown.imbalance + r.breakdown.overhead;
        assert!((sum - r.seconds).abs() < 1e-9);
        assert!(r.breakdown.imbalance >= 0.0);
    }

    #[test]
    fn node_hours_consistent() {
        let p = Problem::new(85, 698);
        let cfg = Config::new(75, 90);
        let r = simulate_iteration_clean(&p, &cfg, &frontier());
        assert!((r.node_hours - r.seconds * 75.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn energy_tracks_power_envelope() {
        let m = aurora();
        let p = Problem::new(99, 718);
        let r = simulate_iteration_clean(&p, &Config::new(100, 70), &m);
        // Energy must sit between the idle-only and busy-only envelopes.
        let idle_kwh = r.seconds * 100.0 * m.idle_watts_per_node / 3.6e6;
        let busy_kwh = r.seconds * 100.0 * m.busy_watts_per_node / 3.6e6;
        assert!(r.energy_kwh >= idle_kwh - 1e-12 && r.energy_kwh <= busy_kwh + 1e-12);
        // A horribly overscaled run wastes energy per unit of science:
        // energy per node-hour drops toward idle as utilization collapses.
        let waste = simulate_iteration_clean(&p, &Config::new(900, 70), &m);
        let eff = |r: &SimResult| r.energy_kwh / r.node_hours;
        assert!(eff(&waste) < eff(&r), "overscaling should reduce watts/node");
    }

    #[test]
    fn runtime_magnitudes_roughly_match_paper() {
        // Paper Table 3: (44,260) @ 5 nodes/t40 ≈ 17 s; (146,1568) @ 800
        // nodes/t80 ≈ 394 s. We only require the same order of magnitude.
        let m = aurora();
        let small = simulate_iteration_clean(&Problem::new(44, 260), &Config::new(5, 40), &m);
        assert!(small.seconds > 2.0 && small.seconds < 200.0, "small problem {} s", small.seconds);
        let big = simulate_iteration_clean(&Problem::new(146, 1568), &Config::new(800, 80), &m);
        assert!(big.seconds > 40.0 && big.seconds < 4000.0, "big problem {} s", big.seconds);
    }
}
