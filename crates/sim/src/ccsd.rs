//! CCSD contraction terms, index-space tiling and task-class enumeration.
//!
//! One CCSD iteration is dominated by a fixed set of binary tensor
//! contractions over the occupied (`O`) and virtual (`V`) orbital spaces.
//! A TAMM-style runtime tiles every index range with the user-chosen tile
//! size and turns each contraction into a swarm of tile-level GEMM tasks.
//! Because tiles come in at most two extents per dimension (the full tile
//! and one remainder), the swarm collapses into a handful of **task
//! classes** — groups of identical tasks — which is what the scheduler
//! consumes. This keeps a simulation of hundreds of thousands of tasks at
//! microsecond cost without losing the granularity effects (remainder
//! tiles, ceil-division imbalance) that shape the real response surface.

/// An orbital index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// Occupied orbitals.
    O,
    /// Virtual orbitals.
    V,
}

/// A CCSD problem size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Problem {
    /// Number of occupied orbitals.
    pub o: usize,
    /// Number of virtual orbitals.
    pub v: usize,
}

impl Problem {
    /// Construct a problem size.
    ///
    /// # Panics
    /// Panics if either extent is zero.
    pub fn new(o: usize, v: usize) -> Self {
        assert!(o > 0 && v > 0, "orbital counts must be positive");
        Self { o, v }
    }

    /// Extent of a dimension.
    pub fn extent(&self, d: Dim) -> usize {
        match d {
            Dim::O => self.o,
            Dim::V => self.v,
        }
    }

    /// Leading-order FLOP count of one CCSD iteration: `2·O²V⁴` from the
    /// particle–particle ladder (the paper's scaling discussion, §4.1).
    pub fn leading_flops(&self) -> f64 {
        2.0 * (self.o as f64).powi(2) * (self.v as f64).powi(4)
    }
}

/// One binary tensor contraction `C[ext] += A[a] · B[b]`, described by its
/// operand index structures.
#[derive(Debug, Clone)]
pub struct ContractionTerm {
    /// Human-readable name, e.g. `"pp_ladder"`.
    pub name: &'static str,
    /// External (output) dimensions.
    pub external: Vec<Dim>,
    /// Contracted (summed) dimensions.
    pub contracted: Vec<Dim>,
    /// Which of the loop dims (external then contracted, in order) belong
    /// to operand A (bitmask by position).
    pub a_mask: u32,
    /// Same for operand B.
    pub b_mask: u32,
    /// How many times a contraction of this shape occurs in the iteration.
    pub multiplicity: f64,
}

impl ContractionTerm {
    fn dims(&self) -> Vec<Dim> {
        self.external.iter().chain(&self.contracted).copied().collect()
    }

    /// Total FLOPs of this term for a problem: `2 · multiplicity · Π dims`.
    pub fn flops(&self, p: &Problem) -> f64 {
        2.0 * self.multiplicity * self.dims().iter().map(|&d| p.extent(d) as f64).product::<f64>()
    }
}

/// The contraction inventory of one CCSD iteration.
///
/// A representative set: the two sextic ladders, four `O³V³` ring-type
/// contractions, the `O⁴V²` W-intermediate build, and the `OV⁴`/`O³V²`
/// singles-driven terms. Masks: bit `i` set ⇒ loop-dim `i` indexes that
/// operand (external dims first, then contracted).
pub fn ccsd_terms() -> Vec<ContractionTerm> {
    use Dim::{O, V};
    vec![
        // t2[a,b,i,j] += W[a,b,e,f] · t2[e,f,i,j]      — O²V⁴ ladder
        ContractionTerm {
            name: "pp_ladder",
            external: vec![V, V, O, O],
            contracted: vec![V, V],
            a_mask: 0b110011, // a,b,e,f
            b_mask: 0b111100, // i,j,e,f
            multiplicity: 1.0,
        },
        // t2[a,b,i,j] += W[m,n,i,j] · t2[a,b,m,n]      — O⁴V² ladder
        ContractionTerm {
            name: "hh_ladder",
            external: vec![O, O, V, V],
            contracted: vec![O, O],
            a_mask: 0b110011,
            b_mask: 0b111100,
            multiplicity: 1.0,
        },
        // ring/particle–hole contractions, direct + exchange × 2 spins — O³V³
        ContractionTerm {
            name: "ring",
            external: vec![V, O, V, O],
            contracted: vec![O, V],
            a_mask: 0b110011,
            b_mask: 0b111100,
            multiplicity: 4.0,
        },
        // W[m,n,i,j] += <mn|ef> · t2[e,f,i,j]           — O⁴V² intermediate
        ContractionTerm {
            name: "w_mnij",
            external: vec![O, O, O, O],
            contracted: vec![V, V],
            a_mask: 0b110011,
            b_mask: 0b111100,
            multiplicity: 1.0,
        },
        // t2[a,b,i,j] += W[a,b,e,i] · t1[e,j]            — O²V³ singles term
        ContractionTerm {
            name: "abei_t1",
            external: vec![V, V, O, O],
            contracted: vec![V],
            a_mask: 0b10111, // a,b,i,e
            b_mask: 0b11000, // j,e
            multiplicity: 2.0,
        },
        // r1[a,i] += F[m,e] · t2[a,e,i,m]                — O²V² singles residual
        ContractionTerm {
            name: "t1_residual",
            external: vec![V, O],
            contracted: vec![O, V],
            a_mask: 0b1100, // m,e
            b_mask: 0b1111, // a,i,m,e
            multiplicity: 2.0,
        },
    ]
}

/// The tile extents covering a dimension: `n_full` tiles of `tile` plus an
/// optional remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    /// Full-tile extent.
    pub tile: usize,
    /// Number of full tiles.
    pub n_full: usize,
    /// Remainder tile extent (0 = exact division).
    pub remainder: usize,
}

impl Tiling {
    /// Tile a dimension of `extent` with tiles of size `tile`.
    ///
    /// # Panics
    /// Panics if `tile == 0`.
    pub fn new(extent: usize, tile: usize) -> Self {
        assert!(tile > 0, "tile size must be positive");
        let t = tile.min(extent);
        Self { tile: t, n_full: extent / t, remainder: extent % t }
    }

    /// Total number of tiles.
    pub fn n_tiles(&self) -> usize {
        self.n_full + usize::from(self.remainder > 0)
    }

    /// Sum of tile extents — must equal the original extent.
    pub fn covered(&self) -> usize {
        self.n_full * self.tile + self.remainder
    }

    /// The distinct `(extent, count)` tile shapes.
    pub fn shapes(&self) -> Vec<(usize, usize)> {
        let mut v = Vec::with_capacity(2);
        if self.n_full > 0 {
            v.push((self.tile, self.n_full));
        }
        if self.remainder > 0 {
            v.push((self.remainder, 1));
        }
        v
    }
}

/// A group of identical tile-contraction tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskClass {
    /// Number of tasks in this class.
    pub count: usize,
    /// FLOPs per task.
    pub flops: f64,
    /// Remote bytes fetched per task (both input tiles).
    pub bytes_in: f64,
    /// Smallest matricized GEMM dimension (`min(m, n, k)`) — drives the
    /// kernel-efficiency curve.
    pub min_gemm_dim: f64,
}

/// Enumerate the task classes of one contraction term under tiling.
///
/// Walks the cartesian product of per-dimension tile shapes (≤ 2 per
/// dimension ⇒ ≤ 2^rank classes) and computes each class's task count,
/// per-task FLOPs, communication volume and GEMM shape.
pub fn term_task_classes(term: &ContractionTerm, p: &Problem, tile: usize) -> Vec<TaskClass> {
    let dims = term.dims();
    let tilings: Vec<Tiling> = dims.iter().map(|&d| Tiling::new(p.extent(d), tile)).collect();
    let shapes: Vec<Vec<(usize, usize)>> = tilings.iter().map(|t| t.shapes()).collect();
    let rank = dims.len();
    let n_external = term.external.len();
    let mut classes = Vec::new();
    // Odometer over shape choices per dimension.
    let mut choice = vec![0usize; rank];
    loop {
        let mut count = 1usize;
        let mut m = 1.0f64; // external dims of A
        let mut n = 1.0f64; // external dims of B
        let mut k = 1.0f64; // contracted dims
        let mut a_elems = 1.0f64;
        let mut b_elems = 1.0f64;
        let mut flops = 2.0 * term.multiplicity;
        for (d, &c) in choice.iter().enumerate() {
            let (extent, cnt) = shapes[d][c];
            count *= cnt;
            let e = extent as f64;
            flops *= e;
            let in_a = term.a_mask >> d & 1 == 1;
            let in_b = term.b_mask >> d & 1 == 1;
            if in_a {
                a_elems *= e;
            }
            if in_b {
                b_elems *= e;
            }
            if d >= n_external {
                k *= e;
            } else if in_a {
                m *= e;
            } else if in_b {
                n *= e;
            }
        }
        classes.push(TaskClass {
            count,
            flops,
            bytes_in: 8.0 * (a_elems + b_elems),
            min_gemm_dim: m.min(n).min(k),
        });
        // Advance the odometer.
        let mut d = 0;
        loop {
            if d == rank {
                return classes;
            }
            choice[d] += 1;
            if choice[d] < shapes[d].len() {
                break;
            }
            choice[d] = 0;
            d += 1;
        }
    }
}

/// All task classes of a full CCSD iteration.
pub fn iteration_task_classes(p: &Problem, tile: usize) -> Vec<TaskClass> {
    ccsd_terms().iter().flat_map(|t| term_task_classes(t, p, tile)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_extents() {
        let p = Problem::new(10, 100);
        assert_eq!(p.extent(Dim::O), 10);
        assert_eq!(p.extent(Dim::V), 100);
    }

    #[test]
    fn leading_flops_scaling() {
        let p = Problem::new(10, 100);
        assert_eq!(p.leading_flops(), 2.0 * 100.0 * 1e8);
        // Doubling V multiplies by 16.
        let p2 = Problem::new(10, 200);
        assert!((p2.leading_flops() / p.leading_flops() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn tiling_covers_exactly() {
        for (extent, tile) in [(100, 40), (100, 50), (7, 10), (64, 64), (65, 64)] {
            let t = Tiling::new(extent, tile);
            assert_eq!(t.covered(), extent, "extent {extent} tile {tile}");
            let shape_total: usize = t.shapes().iter().map(|(e, c)| e * c).sum();
            assert_eq!(shape_total, extent);
        }
    }

    #[test]
    fn tiling_clamps_large_tiles() {
        let t = Tiling::new(44, 100);
        assert_eq!(t.n_tiles(), 1);
        assert_eq!(t.tile, 44);
        assert_eq!(t.remainder, 0);
    }

    #[test]
    fn tiling_exact_division_no_remainder() {
        let t = Tiling::new(120, 40);
        assert_eq!(t.n_tiles(), 3);
        assert_eq!(t.remainder, 0);
        assert_eq!(t.shapes(), vec![(40, 3)]);
    }

    #[test]
    fn term_flops_match_analytic() {
        let p = Problem::new(20, 100);
        let terms = ccsd_terms();
        let ladder = terms.iter().find(|t| t.name == "pp_ladder").unwrap();
        assert_eq!(ladder.flops(&p), 2.0 * 400.0 * 1e8);
    }

    #[test]
    fn task_classes_flops_sum_to_term_flops() {
        let p = Problem::new(30, 170);
        for term in ccsd_terms() {
            for tile in [32, 50, 64] {
                let classes = term_task_classes(&term, &p, tile);
                let total: f64 = classes.iter().map(|c| c.flops * c.count as f64).sum();
                let expect = term.flops(&p);
                assert!(
                    (total - expect).abs() / expect < 1e-12,
                    "{} tile {tile}: {total} vs {expect}",
                    term.name
                );
            }
        }
    }

    #[test]
    fn task_count_matches_tile_product() {
        let p = Problem::new(40, 120);
        let terms = ccsd_terms();
        let ladder = terms.iter().find(|t| t.name == "pp_ladder").unwrap();
        let tile = 40;
        let classes = term_task_classes(ladder, &p, tile);
        let total: usize = classes.iter().map(|c| c.count).sum();
        // loop dims: V,V,O,O,V,V → tiles 3,3,1,1,3,3 = 81.
        assert_eq!(total, 81);
    }

    #[test]
    fn exact_tiling_yields_single_class() {
        let p = Problem::new(40, 120);
        let terms = ccsd_terms();
        let ladder = terms.iter().find(|t| t.name == "pp_ladder").unwrap();
        let classes = term_task_classes(ladder, &p, 40);
        assert_eq!(classes.len(), 1, "exact division ⇒ one uniform class");
    }

    #[test]
    fn bytes_positive_and_scale_with_tile() {
        let p = Problem::new(50, 300);
        let small: f64 =
            iteration_task_classes(&p, 30).iter().map(|c| c.bytes_in * c.count as f64).sum();
        let large: f64 =
            iteration_task_classes(&p, 100).iter().map(|c| c.bytes_in * c.count as f64).sum();
        assert!(small > 0.0 && large > 0.0);
        // Bigger tiles mean less total traffic (fewer redundant fetches).
        assert!(large < small, "total bytes should drop with tile size: {large} vs {small}");
    }

    #[test]
    fn min_gemm_dim_grows_with_tile() {
        let p = Problem::new(100, 800);
        let terms = ccsd_terms();
        let ladder = terms.iter().find(|t| t.name == "pp_ladder").unwrap();
        let dim_at = |tile| {
            term_task_classes(ladder, &p, tile).iter().map(|c| c.min_gemm_dim).fold(0.0, f64::max)
        };
        assert!(dim_at(80) > dim_at(40));
    }

    #[test]
    fn iteration_dominated_by_ladder() {
        let p = Problem::new(100, 1000);
        let total: f64 = ccsd_terms().iter().map(|t| t.flops(&p)).sum();
        let ladder = ccsd_terms().iter().find(|t| t.name == "pp_ladder").unwrap().flops(&p);
        assert!(ladder / total > 0.5, "ladder should dominate at V >> O");
    }
}
