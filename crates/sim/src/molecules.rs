//! Molecules and basis sets: from chemistry to `(O, V)`.
//!
//! The paper's features are occupied/virtual orbital counts, but its users
//! start from a molecule and a basis set. This module provides that
//! translation for a small catalog of representative systems:
//!
//! * `O` = (electrons − 2·frozen-core orbitals) / 2 for closed-shell
//!   systems with the conventional frozen-core approximation,
//! * `V` = total basis functions − electrons/2 (all non-occupied orbitals
//!   are virtual; basis functions are summed per element from the basis
//!   set's contraction table).
//!
//! Counts use standard Dunning cc-pVnZ spherical-harmonic sizes. The
//! catalog spans the magnitude range of the paper's Table 3–6 problems, so
//! `Molecule::problem(basis)` lands inside the advisor's trained envelope.

use crate::ccsd::Problem;

/// A chemical element this catalog supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Element {
    /// Hydrogen.
    H,
    /// Carbon.
    C,
    /// Nitrogen.
    N,
    /// Oxygen.
    O,
    /// Sulfur.
    S,
}

impl Element {
    /// Nuclear charge / electron count of the neutral atom.
    pub fn electrons(self) -> usize {
        match self {
            Element::H => 1,
            Element::C => 6,
            Element::N => 7,
            Element::O => 8,
            Element::S => 16,
        }
    }

    /// Core orbitals frozen in correlated calculations (1s for first-row,
    /// 1s2s2p for S; none for H).
    pub fn frozen_core_orbitals(self) -> usize {
        match self {
            Element::H => 0,
            Element::C | Element::N | Element::O => 1,
            Element::S => 5,
        }
    }

    /// Spherical-harmonic basis-function count in a Dunning basis.
    pub fn basis_functions(self, basis: BasisSet) -> usize {
        use BasisSet::*;
        match self {
            // H: cc-pVDZ 5, cc-pVTZ 14, cc-pVQZ 30; aug- adds 4/9/16.
            Element::H => match basis {
                CcPvdz => 5,
                CcPvtz => 14,
                CcPvqz => 30,
                AugCcPvdz => 9,
                AugCcPvtz => 23,
            },
            // First row: cc-pVDZ 14, cc-pVTZ 30, cc-pVQZ 55; aug- +9/+16.
            Element::C | Element::N | Element::O => match basis {
                CcPvdz => 14,
                CcPvtz => 30,
                CcPvqz => 55,
                AugCcPvdz => 23,
                AugCcPvtz => 46,
            },
            // Second row (S): cc-pVDZ 18, cc-pVTZ 34, cc-pVQZ 59.
            Element::S => match basis {
                CcPvdz => 18,
                CcPvtz => 34,
                CcPvqz => 59,
                AugCcPvdz => 27,
                AugCcPvtz => 50,
            },
        }
    }
}

/// Dunning correlation-consistent basis sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasisSet {
    /// cc-pVDZ.
    CcPvdz,
    /// cc-pVTZ.
    CcPvtz,
    /// cc-pVQZ.
    CcPvqz,
    /// aug-cc-pVDZ.
    AugCcPvdz,
    /// aug-cc-pVTZ.
    AugCcPvtz,
}

impl BasisSet {
    /// Parse common spellings ("cc-pvtz", "aug-cc-pvdz", …).
    pub fn parse(name: &str) -> Option<BasisSet> {
        match name.to_ascii_lowercase().replace('_', "-").as_str() {
            "cc-pvdz" | "ccpvdz" | "dz" => Some(BasisSet::CcPvdz),
            "cc-pvtz" | "ccpvtz" | "tz" => Some(BasisSet::CcPvtz),
            "cc-pvqz" | "ccpvqz" | "qz" => Some(BasisSet::CcPvqz),
            "aug-cc-pvdz" | "augccpvdz" | "adz" => Some(BasisSet::AugCcPvdz),
            "aug-cc-pvtz" | "augccpvtz" | "atz" => Some(BasisSet::AugCcPvtz),
            _ => None,
        }
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            BasisSet::CcPvdz => "cc-pVDZ",
            BasisSet::CcPvtz => "cc-pVTZ",
            BasisSet::CcPvqz => "cc-pVQZ",
            BasisSet::AugCcPvdz => "aug-cc-pVDZ",
            BasisSet::AugCcPvtz => "aug-cc-pVTZ",
        }
    }

    /// All supported sets.
    pub fn all() -> [BasisSet; 5] {
        [
            BasisSet::CcPvdz,
            BasisSet::CcPvtz,
            BasisSet::CcPvqz,
            BasisSet::AugCcPvdz,
            BasisSet::AugCcPvtz,
        ]
    }
}

/// A molecule as a bag of atoms (geometry does not matter for sizing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Molecule {
    /// Display name ("uracil dimer").
    pub name: String,
    /// `(element, count)` composition.
    pub atoms: Vec<(Element, usize)>,
}

impl Molecule {
    /// Build from a composition list.
    ///
    /// # Panics
    /// Panics on an empty composition.
    pub fn new(name: &str, atoms: Vec<(Element, usize)>) -> Self {
        assert!(!atoms.is_empty(), "molecule needs at least one atom");
        Self { name: name.to_string(), atoms }
    }

    /// Total electron count (neutral molecule).
    pub fn electrons(&self) -> usize {
        self.atoms.iter().map(|&(e, n)| e.electrons() * n).sum()
    }

    /// Doubly occupied orbitals (closed shell).
    ///
    /// # Panics
    /// Panics on an odd electron count — CCSD here is closed-shell only.
    pub fn occupied_orbitals(&self) -> usize {
        let e = self.electrons();
        assert!(e.is_multiple_of(2), "{} has an odd electron count", self.name);
        e / 2
    }

    /// Frozen-core orbital count.
    pub fn frozen_core(&self) -> usize {
        self.atoms.iter().map(|&(e, n)| e.frozen_core_orbitals() * n).sum()
    }

    /// Basis functions in a given basis.
    pub fn basis_functions(&self, basis: BasisSet) -> usize {
        self.atoms.iter().map(|&(e, n)| e.basis_functions(basis) * n).sum()
    }

    /// The correlated `(O, V)` problem this molecule/basis poses:
    /// `O = occupied − frozen core`, `V = basis functions − occupied`.
    ///
    /// # Panics
    /// Panics if the basis is too small to hold the electrons (cannot
    /// happen for the catalog + supported bases).
    pub fn problem(&self, basis: BasisSet) -> Problem {
        let occ = self.occupied_orbitals();
        let o = occ - self.frozen_core();
        let nbf = self.basis_functions(basis);
        assert!(nbf > occ, "{}: basis {} smaller than electron count", self.name, basis.name());
        Problem::new(o, nbf - occ)
    }
}

/// A small catalog spanning the paper's problem-size range.
pub fn catalog() -> Vec<Molecule> {
    use Element::*;
    vec![
        Molecule::new("water hexamer", vec![(O, 6), (H, 12)]),
        Molecule::new("benzene", vec![(C, 6), (H, 6)]),
        Molecule::new("naphthalene", vec![(C, 10), (H, 8)]),
        Molecule::new("adenine", vec![(C, 5), (H, 5), (N, 5)]),
        Molecule::new("uracil dimer", vec![(C, 8), (H, 8), (N, 4), (O, 4)]),
        Molecule::new("guanine-cytosine pair", vec![(C, 9), (H, 10), (N, 8), (O, 2)]),
        Molecule::new("methionine", vec![(C, 5), (H, 11), (N, 1), (O, 2), (S, 1)]),
        Molecule::new("water 20-mer", vec![(O, 20), (H, 40)]),
        Molecule::new("coronene", vec![(C, 24), (H, 12)]),
    ]
}

/// Find a catalog molecule by (case-insensitive, punctuation-tolerant)
/// name.
pub fn by_name(name: &str) -> Option<Molecule> {
    let norm = |s: &str| s.to_ascii_lowercase().replace(['-', '_', ' '], "");
    let wanted = norm(name);
    catalog().into_iter().find(|m| norm(&m.name) == wanted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_electron_bookkeeping() {
        let water = Molecule::new("water", vec![(Element::O, 1), (Element::H, 2)]);
        assert_eq!(water.electrons(), 10);
        assert_eq!(water.occupied_orbitals(), 5);
        assert_eq!(water.frozen_core(), 1);
        // cc-pVDZ: O 14 + 2·H 5 = 24 functions → O=4, V=19.
        let p = water.problem(BasisSet::CcPvdz);
        assert_eq!((p.o, p.v), (4, 19));
    }

    #[test]
    fn benzene_tz_matches_hand_count() {
        let benzene = by_name("benzene").unwrap();
        assert_eq!(benzene.electrons(), 42);
        // cc-pVTZ: 6·30 + 6·14 = 264 functions; occ 21, frozen 6.
        let p = benzene.problem(BasisSet::CcPvtz);
        assert_eq!((p.o, p.v), (15, 264 - 21));
    }

    #[test]
    fn bigger_basis_bigger_v_same_o() {
        let m = by_name("uracil dimer").unwrap();
        let dz = m.problem(BasisSet::CcPvdz);
        let tz = m.problem(BasisSet::CcPvtz);
        let qz = m.problem(BasisSet::CcPvqz);
        assert_eq!(dz.o, tz.o);
        assert_eq!(tz.o, qz.o);
        assert!(dz.v < tz.v && tz.v < qz.v);
    }

    #[test]
    fn augmentation_only_adds_virtuals() {
        let m = by_name("adenine").unwrap();
        let plain = m.problem(BasisSet::CcPvdz);
        let aug = m.problem(BasisSet::AugCcPvdz);
        assert_eq!(plain.o, aug.o);
        assert!(aug.v > plain.v);
    }

    #[test]
    fn catalog_covers_paper_magnitudes() {
        // Across catalog × bases, (O, V) should span roughly the paper's
        // Table 3 range (O 44–345, V 260–1568).
        let mut o_max = 0;
        let mut v_max = 0;
        let mut o_min = usize::MAX;
        for m in catalog() {
            for b in BasisSet::all() {
                let p = m.problem(b);
                o_max = o_max.max(p.o);
                v_max = v_max.max(p.v);
                o_min = o_min.min(p.o);
            }
        }
        assert!(o_min < 44, "catalog should include small problems (min O {o_min})");
        assert!(o_max >= 70, "catalog should include big problems (max O {o_max})");
        assert!(v_max >= 1000, "catalog should reach large V (max V {v_max})");
    }

    #[test]
    fn basis_parse_round_trip() {
        for b in BasisSet::all() {
            assert_eq!(BasisSet::parse(b.name()), Some(b));
        }
        assert_eq!(BasisSet::parse("CC-PVTZ"), Some(BasisSet::CcPvtz));
        assert_eq!(BasisSet::parse("nonsense"), None);
    }

    #[test]
    fn lookup_tolerates_punctuation() {
        assert!(by_name("Uracil Dimer").is_some());
        assert!(by_name("uracil-dimer").is_some());
        assert!(by_name("no-such-molecule").is_none());
    }

    #[test]
    #[should_panic(expected = "odd electron count")]
    fn open_shell_rejected() {
        let radical = Molecule::new("methyl radical", vec![(Element::C, 1), (Element::H, 3)]);
        let _ = radical.occupied_orbitals();
    }
}
