//! CCSD-iteration performance simulator.
//!
//! The paper's datasets are wall times of single CCSD iterations measured
//! on ALCF Aurora and OLCF Frontier. Those machines (and the TAMM/ExaChem
//! production stack) are not reproducible here, so this crate implements
//! the closest synthetic equivalent: an analytic + discrete-scheduling
//! model of a tiled, distributed CCSD iteration:
//!
//! * [`ccsd`] enumerates the tensor-contraction terms of a CCSD doubles
//!   iteration (the sextic `O²V⁴` particle–particle ladder and friends),
//!   tiles each index space, and emits **task classes** — (cost, count)
//!   groups of identical tile-contraction tasks with their FLOP and
//!   communication volumes.
//! * [`machine`] holds machine profiles ([`machine::aurora`],
//!   [`machine::frontier`]): GPUs per node, sustained GEMM rate and its
//!   tile-size saturation curve, network latency/bandwidth, runtime
//!   overheads, memory capacity and node-level noise.
//! * [`schedule`] computes the parallel makespan of the task classes over
//!   `nodes × gpus` executors with an LPT-style list scheduler (plus a
//!   round-robin baseline for the ablation benchmark).
//! * [`simulate`] glues it together: `(O, V, nodes, tile) → seconds`,
//!   with a full time breakdown, memory-feasibility checking and optional
//!   log-normal measurement noise.
//! * [`datagen`] reproduces the paper's datasets: the Table 3/4 problem
//!   list, node/tile sweeps, and deterministic generation of exactly the
//!   Table 1 sample counts (Aurora 2329, Frontier 2454), parallelized
//!   across configurations. CSV round-tripping included.
//!
//! What carries over from the real systems is the *response surface
//! structure* the ML layer has to learn: sextic growth in (O, V),
//! non-monotonicity in node count (compute ÷ nodes vs. communication +
//! imbalance + per-node runtime overhead), non-monotonicity in tile size
//! (GEMM efficiency vs. task granularity), and machine-dependent noise.

pub mod ccsd;
pub mod datagen;
pub mod machine;
pub mod molecules;
pub mod schedule;
pub mod simulate;
pub mod trace;

pub use ccsd::{Problem, TaskClass};
pub use machine::MachineModel;
pub use simulate::{simulate_iteration, Config, SimResult};
