//! Query strategies: which unlabelled configurations to run next.

use chemcost_linalg::{vecops, Matrix};
use chemcost_ml::gaussian_process::GaussianProcess;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::preprocessing::StandardScaler;
use chemcost_ml::rand_util::bootstrap_indices;
use chemcost_ml::traits::{Regressor, UncertaintyRegressor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An active-learning query strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Random sampling — the paper's baseline (RS).
    Random,
    /// Uncertainty sampling with a Gaussian process (US, Algorithm 1).
    Uncertainty,
    /// Query-by-committee over `n_members` bootstrap-trained gradient
    /// boosting models (QC, Algorithm 2; the paper uses 5).
    Committee {
        /// Committee size.
        n_members: usize,
    },
    /// Expected model change (named in §3.4, not evaluated there):
    /// approximates the gradient-norm impact of labelling a point as
    /// committee disagreement × feature leverage (Cai et al. 2013's EMCM
    /// shape).
    ExpectedModelChange {
        /// Committee size for the disagreement estimate.
        n_members: usize,
    },
    /// Pure diversity sampling (the classic greedy GSx baseline): query
    /// the points farthest, in standardized feature space, from anything
    /// already labelled. Model-free selection; included as the geometric
    /// counterpoint to the uncertainty-driven strategies.
    Diversity,
}

impl Strategy {
    /// The paper's abbreviation (plus "EMC"/"DIV" for the extensions).
    pub fn abbrev(&self) -> &'static str {
        match self {
            Strategy::Random => "RS",
            Strategy::Uncertainty => "US",
            Strategy::Committee { .. } => "QC",
            Strategy::ExpectedModelChange { .. } => "EMC",
            Strategy::Diversity => "DIV",
        }
    }

    /// The paper's three evaluated strategies, with its committee size.
    pub fn all() -> [Strategy; 3] {
        [Strategy::Random, Strategy::Uncertainty, Strategy::Committee { n_members: 5 }]
    }

    /// The paper's three plus the two strategies §3.4 names without
    /// evaluating (expected model change, plus a diversity baseline).
    pub fn all_extended() -> [Strategy; 5] {
        [
            Strategy::Random,
            Strategy::Uncertainty,
            Strategy::Committee { n_members: 5 },
            Strategy::ExpectedModelChange { n_members: 5 },
            Strategy::Diversity,
        ]
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// The model an active-learning round trains, plus the scores it needs to
/// rank unlabelled candidates.
pub(crate) struct RoundModel {
    /// Fitted predictor for this round.
    pub model: Box<dyn Regressor>,
}

impl RoundModel {
    /// Fit the strategy's model on the labelled set and return candidate
    /// informativeness scores (higher = query first) for the unlabelled
    /// rows.
    pub fn fit_and_score(
        strategy: Strategy,
        x_labeled: &Matrix,
        y_labeled: &[f64],
        x_unlabeled: &Matrix,
        gb_shape: (usize, usize, f64),
        rng: &mut StdRng,
    ) -> Result<(Self, Vec<f64>), chemcost_ml::FitError> {
        match strategy {
            Strategy::Random => {
                let mut gb = make_gb(gb_shape, rng.gen());
                gb.fit(x_labeled, y_labeled)?;
                // Scores are uniform random: queries are a random draw.
                let scores = (0..x_unlabeled.nrows()).map(|_| rng.gen::<f64>()).collect();
                Ok((Self { model: Box::new(gb) }, scores))
            }
            Strategy::Uncertainty => {
                // The GP supplies the acquisition signal (Algorithm 1).
                // Deviation from the paper: the *deployed* round model is a
                // GB fit on the same labelled set, so the three strategies'
                // learning curves differ only in which points they chose —
                // our grid-tuned GP is a weaker point predictor than
                // sklearn's gradient-optimized one and would otherwise cap
                // the US curve at the GP's own accuracy ceiling.
                let mut gp = GaussianProcess::tuned();
                gp.fit(x_labeled, y_labeled)?;
                let (mean, std) = gp.predict_with_std(x_unlabeled);
                // Relative uncertainty: the paper's corpora span ~70× in
                // runtime, ours ~300×, so raw σ would chase the largest
                // configurations; σ/|μ| matches the MAPE objective.
                let scores = std.iter().zip(&mean).map(|(s, m)| s / m.abs().max(1e-9)).collect();
                let mut gb = make_gb(gb_shape, rng.gen());
                gb.fit(x_labeled, y_labeled)?;
                Ok((Self { model: Box::new(gb) }, scores))
            }
            Strategy::Committee { n_members } => {
                let n_members = n_members.max(2);
                let n = x_labeled.nrows();
                let mut members: Vec<GradientBoosting> = Vec::with_capacity(n_members);
                for _ in 0..n_members {
                    let idx = bootstrap_indices(rng, n);
                    let xb = x_labeled.select_rows(&idx);
                    let yb: Vec<f64> = idx.iter().map(|&i| y_labeled[i]).collect();
                    let mut gb = make_gb(gb_shape, rng.gen());
                    gb.fit(&xb, &yb)?;
                    members.push(gb);
                }
                // Per-candidate committee disagreement. Variance is taken
                // on log-predictions (relative disagreement): with a ~300×
                // runtime range, absolute variance would concentrate every
                // query batch on the largest configurations.
                let m = x_unlabeled.nrows();
                let mut preds = vec![Vec::with_capacity(n_members); m];
                for member in &members {
                    for (i, p) in member.predict(x_unlabeled).into_iter().enumerate() {
                        preds[i].push(p.max(1e-9).ln());
                    }
                }
                let scores: Vec<f64> = preds.iter().map(|p| vecops::variance(p)).collect();
                // The deployed model of the round: retrain one GB on the
                // full labelled set (matches Algorithm 2, which evaluates
                // with the last fitted model — a full-data fit is the
                // fair-est single deployable model).
                let mut gb = make_gb(gb_shape, rng.gen());
                gb.fit(x_labeled, y_labeled)?;
                Ok((Self { model: Box::new(gb) }, scores))
            }
            Strategy::ExpectedModelChange { n_members } => {
                let n_members = n_members.max(2);
                let n = x_labeled.nrows();
                let mut members: Vec<GradientBoosting> = Vec::with_capacity(n_members);
                for _ in 0..n_members {
                    let idx = bootstrap_indices(rng, n);
                    let xb = x_labeled.select_rows(&idx);
                    let yb: Vec<f64> = idx.iter().map(|&i| y_labeled[i]).collect();
                    let mut gb = make_gb(gb_shape, rng.gen());
                    gb.fit(&xb, &yb)?;
                    members.push(gb);
                }
                // Disagreement estimate (log-space, as for QC) …
                let m = x_unlabeled.nrows();
                let mut preds = vec![Vec::with_capacity(n_members); m];
                for member in &members {
                    for (i, p) in member.predict(x_unlabeled).into_iter().enumerate() {
                        preds[i].push(p.max(1e-9).ln());
                    }
                }
                // … weighted by feature leverage ‖φ(x)‖ in standardized
                // space: for (stochastic-)gradient-style updates the model
                // change from labelling x scales with both the expected
                // error and the input magnitude.
                let scaler = StandardScaler::fit(x_labeled);
                let xs = scaler.transform(x_unlabeled);
                let scores: Vec<f64> = preds
                    .iter()
                    .enumerate()
                    .map(|(i, p)| vecops::variance(p).sqrt() * vecops::norm2(xs.row(i)))
                    .collect();
                let mut gb = make_gb(gb_shape, rng.gen());
                gb.fit(x_labeled, y_labeled)?;
                Ok((Self { model: Box::new(gb) }, scores))
            }
            Strategy::Diversity => {
                // Greedy GSx score: distance to the nearest labelled point
                // (standardized features). The deployed model is the usual
                // GB so curves stay comparable.
                let scaler = StandardScaler::fit(x_labeled);
                let xl = scaler.transform(x_labeled);
                let xu = scaler.transform(x_unlabeled);
                let scores: Vec<f64> = (0..xu.nrows())
                    .map(|i| {
                        (0..xl.nrows())
                            .map(|j| vecops::sq_dist(xu.row(i), xl.row(j)))
                            .fold(f64::INFINITY, f64::min)
                    })
                    .collect();
                let mut gb = make_gb(gb_shape, rng.gen());
                gb.fit(x_labeled, y_labeled)?;
                Ok((Self { model: Box::new(gb) }, scores))
            }
        }
    }
}

fn make_gb(
    (n_estimators, max_depth, learning_rate): (usize, usize, f64),
    seed: u64,
) -> GradientBoosting {
    let mut gb = GradientBoosting::new(n_estimators, max_depth, learning_rate);
    gb.seed = seed;
    gb
}

/// One pool candidate ranked by an acquisition strategy: its row index
/// into the caller's candidate matrix plus its informativeness score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedCandidate {
    /// Row of the candidate in the unlabelled pool passed in.
    pub index: usize,
    /// Acquisition score (higher = measure first). For
    /// [`Strategy::Uncertainty`] this is the GP's relative uncertainty
    /// `σ/|μ|` at the candidate.
    pub score: f64,
}

/// Rank an unlabelled candidate pool by uncertainty sampling (US,
/// Algorithm 1) against a labelled observation set, returning the `k`
/// most informative candidates, best first.
///
/// This is the crate's strategy machinery exposed as a one-shot call so
/// other layers — e.g. the serving daemon's drift-triggered "which
/// configurations should we measure next?" endpoint — can reuse it over
/// an arbitrary observation pool without running the full simulated
/// learning loop. Fails like any model fit does (e.g. fewer labelled
/// rows than the GP can work with).
pub fn rank_next_experiments(
    x_labeled: &Matrix,
    y_labeled: &[f64],
    x_pool: &Matrix,
    k: usize,
    seed: u64,
) -> Result<Vec<RankedCandidate>, chemcost_ml::FitError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (_, scores) = RoundModel::fit_and_score(
        Strategy::Uncertainty,
        x_labeled,
        y_labeled,
        x_pool,
        (60, 3, 0.1),
        &mut rng,
    )?;
    Ok(top_k(&scores, k)
        .into_iter()
        .map(|index| RankedCandidate { index, score: scores[index] })
        .collect())
}

/// Indices of the `k` highest-scoring candidates (the paper's
/// `argsort(-score)[..query_size]`).
pub(crate) fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrevs() {
        assert_eq!(Strategy::Random.abbrev(), "RS");
        assert_eq!(Strategy::Uncertainty.abbrev(), "US");
        assert_eq!(Strategy::Committee { n_members: 5 }.abbrev(), "QC");
        assert_eq!(Strategy::all().len(), 3);
    }

    #[test]
    fn top_k_selects_largest() {
        let scores = [0.1, 5.0, 3.0, 4.0, 0.2];
        assert_eq!(top_k(&scores, 2), vec![1, 3]);
        assert_eq!(top_k(&scores, 0), Vec::<usize>::new());
    }

    #[test]
    fn top_k_handles_short_input() {
        assert_eq!(top_k(&[1.0], 5), vec![0]);
    }

    #[test]
    fn uncertainty_scores_prefer_unseen_region() {
        // Label only the left half of a 1-D space; US scores on the right
        // half must dominate.
        let x_lab = Matrix::from_fn(20, 1, |i, _| i as f64 * 0.1);
        let y_lab: Vec<f64> = (0..20).map(|i| (i as f64 * 0.1).sin()).collect();
        let x_unl = Matrix::from_fn(20, 1, |i, _| {
            if i < 10 {
                i as f64 * 0.1 + 0.05 // interleaved with labelled
            } else {
                10.0 + i as f64 // far away
            }
        });
        let mut rng = StdRng::seed_from_u64(0);
        let (_, scores) = RoundModel::fit_and_score(
            Strategy::Uncertainty,
            &x_lab,
            &y_lab,
            &x_unl,
            (50, 3, 0.1),
            &mut rng,
        )
        .unwrap();
        let near_max = scores[..10].iter().cloned().fold(0.0, f64::max);
        let far_min = scores[10..].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(far_min > near_max, "far points must be more uncertain");
    }

    #[test]
    fn committee_scores_nonnegative_and_informative() {
        let x_lab = Matrix::from_fn(40, 2, |i, j| ((i * (j + 1)) % 11) as f64);
        let y_lab: Vec<f64> = (0..40).map(|i| (i % 11) as f64 * 2.0).collect();
        let x_unl = Matrix::from_fn(15, 2, |i, j| ((i * (j + 2)) % 13) as f64);
        let mut rng = StdRng::seed_from_u64(1);
        let (_, scores) = RoundModel::fit_and_score(
            Strategy::Committee { n_members: 4 },
            &x_lab,
            &y_lab,
            &x_unl,
            (40, 3, 0.1),
            &mut rng,
        )
        .unwrap();
        assert_eq!(scores.len(), 15);
        assert!(scores.iter().all(|&s| s >= 0.0));
        assert!(scores.iter().any(|&s| s > 0.0), "bootstrap members should disagree somewhere");
    }

    #[test]
    fn diversity_prefers_far_points() {
        let x_lab = Matrix::from_fn(10, 1, |i, _| i as f64 * 0.1);
        let y_lab: Vec<f64> = (0..10).map(|i| i as f64).collect();
        // Candidate 0 sits inside the labelled cluster, candidate 1 far out.
        let x_unl = Matrix::from_rows(&[&[0.45], &[50.0]]);
        let mut rng = StdRng::seed_from_u64(4);
        let (_, scores) = RoundModel::fit_and_score(
            Strategy::Diversity,
            &x_lab,
            &y_lab,
            &x_unl,
            (30, 2, 0.2),
            &mut rng,
        )
        .unwrap();
        assert!(scores[1] > scores[0] * 100.0, "{scores:?}");
    }

    #[test]
    fn emc_scores_finite_and_nonnegative() {
        let x_lab = Matrix::from_fn(40, 2, |i, j| ((i * (j + 1)) % 13) as f64);
        let y_lab: Vec<f64> = (0..40).map(|i| (i % 13) as f64 * 3.0 + 1.0).collect();
        let x_unl = Matrix::from_fn(12, 2, |i, j| ((i * (j + 3)) % 11) as f64);
        let mut rng = StdRng::seed_from_u64(5);
        let (_, scores) = RoundModel::fit_and_score(
            Strategy::ExpectedModelChange { n_members: 3 },
            &x_lab,
            &y_lab,
            &x_unl,
            (40, 3, 0.1),
            &mut rng,
        )
        .unwrap();
        assert_eq!(scores.len(), 12);
        assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn extended_strategy_list() {
        assert_eq!(Strategy::all_extended().len(), 5);
        assert_eq!(Strategy::ExpectedModelChange { n_members: 5 }.abbrev(), "EMC");
        assert_eq!(Strategy::Diversity.abbrev(), "DIV");
    }

    #[test]
    fn rank_next_experiments_orders_by_uncertainty() {
        let x_lab = Matrix::from_fn(20, 1, |i, _| i as f64 * 0.1);
        let y_lab: Vec<f64> = (0..20).map(|i| (i as f64 * 0.1).sin() + 2.0).collect();
        // Pool: rows 0..5 interleave the labelled region, rows 5..10 are far out.
        let x_pool =
            Matrix::from_fn(
                10,
                1,
                |i, _| {
                    if i < 5 {
                        i as f64 * 0.1 + 0.05
                    } else {
                        20.0 + i as f64
                    }
                },
            );
        let ranked = rank_next_experiments(&x_lab, &y_lab, &x_pool, 3, 7).unwrap();
        assert_eq!(ranked.len(), 3);
        // Best-first ordering with distinct indices.
        assert!(ranked[0].score >= ranked[1].score && ranked[1].score >= ranked[2].score);
        let mut idx: Vec<usize> = ranked.iter().map(|r| r.index).collect();
        idx.dedup();
        assert_eq!(idx.len(), 3);
        // The far, unseen region must dominate the ranking.
        assert!(ranked.iter().all(|r| r.index >= 5), "{ranked:?}");
        // Determinism: same seed, same ranking.
        assert_eq!(rank_next_experiments(&x_lab, &y_lab, &x_pool, 3, 7).unwrap(), ranked);
    }

    #[test]
    fn random_scores_are_not_constant() {
        let x_lab = Matrix::from_fn(30, 1, |i, _| i as f64);
        let y_lab: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let x_unl = Matrix::from_fn(30, 1, |i, _| i as f64 + 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let (_, scores) = RoundModel::fit_and_score(
            Strategy::Random,
            &x_lab,
            &y_lab,
            &x_unl,
            (30, 3, 0.1),
            &mut rng,
        )
        .unwrap();
        let first = scores[0];
        assert!(scores.iter().any(|&s| (s - first).abs() > 1e-12));
    }
}
