//! The active-learning loop (paper Algorithms 1–2).

use crate::strategy::{top_k, RoundModel, Strategy};
use chemcost_ml::dataset::Dataset;
use chemcost_ml::metrics::Scores;
use chemcost_ml::rand_util::sample_without_replacement;
use chemcost_ml::traits::Regressor;
use chemcost_obs::{self as obs, Level};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluates a fitted round model against a learning *goal* (e.g. the
/// STQ/BQ losses computed at the predicted-optimal configuration's true
/// runtime — supplied by `chemcost-core`).
pub type GoalEvaluator<'a> = dyn Fn(&dyn Regressor) -> Scores + 'a;

/// Loop hyper-parameters. Defaults follow the paper: 50 initial points,
/// 50 per query batch, 20 rounds.
#[derive(Debug, Clone, Copy)]
pub struct ActiveConfig {
    /// Initially labelled points.
    pub n_initial: usize,
    /// Points queried per round.
    pub query_size: usize,
    /// Number of query rounds.
    pub n_queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Gradient-boosting shape `(n_estimators, max_depth, learning_rate)`
    /// for the RS/QC models. The paper deploys its tuned 750×10 GB; inside
    /// the loop a lighter model keeps the experiment tractable without
    /// changing the ranking behaviour.
    pub gb_shape: (usize, usize, f64),
}

impl Default for ActiveConfig {
    fn default() -> Self {
        Self { n_initial: 50, query_size: 50, n_queries: 20, seed: 0, gb_shape: (150, 6, 0.1) }
    }
}

/// Metrics recorded after one query round.
#[derive(Debug, Clone, Copy)]
pub struct RoundRecord {
    /// Labelled-set size when the round's model was trained.
    pub n_labeled: usize,
    /// R²/MAE/MAPE of the round's model on the **full training pool**
    /// (the paper's y-axes in Figures 3–4).
    pub pool: Scores,
    /// Goal-level scores (Figures 5–6) when a goal evaluator was given.
    pub goal: Option<Scores>,
}

/// A completed active-learning run.
#[derive(Debug, Clone)]
pub struct ActiveRun {
    /// The strategy used.
    pub strategy: Strategy,
    /// Per-round records, in order.
    pub rounds: Vec<RoundRecord>,
    /// Indices (into the pool) labelled by the end of the run.
    pub labeled_indices: Vec<usize>,
}

impl ActiveRun {
    /// The learning curve as `(n_labeled, mape)` pairs.
    pub fn mape_curve(&self) -> Vec<(usize, f64)> {
        self.rounds.iter().map(|r| (r.n_labeled, r.pool.mape)).collect()
    }

    /// Smallest labelled-set size whose pool MAPE is ≤ `target`
    /// (`None` if never reached).
    pub fn samples_to_mape(&self, target: f64) -> Option<usize> {
        self.rounds.iter().find(|r| r.pool.mape <= target).map(|r| r.n_labeled)
    }
}

/// Run active learning over a labelled pool.
///
/// `pool` plays the oracle: its labels are revealed query-by-query, exactly
/// as the paper re-queries its collected datasets. The `goal` closure, when
/// present, is called on each round's fitted model (STQ/BQ evaluation).
///
/// # Panics
/// Panics if the pool is smaller than `n_initial + 1`.
pub fn run_active_learning(
    pool: &Dataset,
    strategy: Strategy,
    cfg: &ActiveConfig,
    goal: Option<&GoalEvaluator<'_>>,
) -> ActiveRun {
    let n = pool.len();
    assert!(n > cfg.n_initial, "pool too small for n_initial");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut labeled: Vec<usize> = sample_without_replacement(&mut rng, n, cfg.n_initial);
    let mut unlabeled: Vec<usize> = (0..n).filter(|i| !labeled.contains(i)).collect();
    let mut rounds = Vec::with_capacity(cfg.n_queries);

    for round in 0..cfg.n_queries {
        let x_lab = pool.x.select_rows(&labeled);
        let y_lab: Vec<f64> = labeled.iter().map(|&i| pool.y[i]).collect();
        let x_unl = pool.x.select_rows(&unlabeled);

        let Ok((round_model, scores)) =
            RoundModel::fit_and_score(strategy, &x_lab, &y_lab, &x_unl, cfg.gb_shape, &mut rng)
        else {
            obs::event!(
                Level::Warn,
                "active.round_failed",
                round = round,
                strategy = strategy.to_string(),
                n_labeled = labeled.len(),
            );
            break; // numerically dead round; keep what we have
        };

        // Evaluate on the full pool, as the algorithms do on X_train.
        let pred = round_model.model.predict(&pool.x);
        let pool_scores = Scores::compute(&pool.y, &pred);
        let goal_scores = goal.map(|g| g(round_model.model.as_ref()));
        obs::event!(
            Level::Info,
            "active.round",
            round = round,
            strategy = strategy.to_string(),
            n_labeled = labeled.len(),
            pool_size = n,
            mape = pool_scores.mape,
            r2 = pool_scores.r2,
        );
        rounds.push(RoundRecord { n_labeled: labeled.len(), pool: pool_scores, goal: goal_scores });

        if unlabeled.is_empty() {
            break;
        }
        // Query the top-scoring unlabelled points.
        let take = cfg.query_size.min(unlabeled.len());
        let mut chosen = top_k(&scores, take);
        // Remove from unlabeled (descending positions to keep indices valid).
        chosen.sort_unstable_by(|a, b| b.cmp(a));
        for pos in chosen {
            labeled.push(unlabeled.swap_remove(pos));
        }
    }

    ActiveRun { strategy, rounds, labeled_indices: labeled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chemcost_linalg::Matrix;

    /// A smooth 2-D pool the strategies can learn quickly.
    fn make_pool(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 2, |i, j| {
            let t = (i * 7919 + j * 104729) % 1000;
            t as f64 / 100.0
        });
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let r = x.row(i);
                (r[0] * 0.8).sin() * 5.0 + r[1] * 2.0 + 10.0
            })
            .collect();
        Dataset::unnamed(x, y)
    }

    fn quick_cfg(seed: u64) -> ActiveConfig {
        ActiveConfig { n_initial: 20, query_size: 20, n_queries: 5, seed, gb_shape: (60, 3, 0.15) }
    }

    #[test]
    fn labeled_set_grows_per_round() {
        let pool = make_pool(200);
        let run = run_active_learning(&pool, Strategy::Random, &quick_cfg(1), None);
        assert_eq!(run.rounds.len(), 5);
        let sizes: Vec<usize> = run.rounds.iter().map(|r| r.n_labeled).collect();
        assert_eq!(sizes, vec![20, 40, 60, 80, 100]);
        assert_eq!(run.labeled_indices.len(), 120);
        // No duplicates.
        let mut dedup = run.labeled_indices.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 120);
    }

    #[test]
    fn learning_improves_over_rounds() {
        let pool = make_pool(300);
        for strategy in Strategy::all() {
            let run = run_active_learning(&pool, strategy, &quick_cfg(7), None);
            let first = run.rounds.first().unwrap().pool.mape;
            let last = run.rounds.last().unwrap().pool.mape;
            assert!(last < first, "{strategy}: MAPE should fall ({first:.4} -> {last:.4})");
        }
    }

    #[test]
    fn uncertainty_beats_random_on_clustered_pool() {
        // A pool where most points sit in one cluster and a few in a far
        // region with a different regime — RS keeps sampling the big
        // cluster, US hunts the far region it is uncertain about.
        let n = 240;
        let x = Matrix::from_fn(n, 1, |i, _| {
            if i % 12 == 0 {
                50.0 + (i / 12) as f64 // sparse far cluster
            } else {
                (i % 100) as f64 * 0.01 // dense near cluster
            }
        });
        let y: Vec<f64> =
            (0..n).map(|i| if i % 12 == 0 { 100.0 + (i / 12) as f64 * 3.0 } else { 1.0 }).collect();
        let pool = Dataset::unnamed(x, y);
        let cfg = ActiveConfig {
            n_initial: 15,
            query_size: 10,
            n_queries: 4,
            seed: 3,
            gb_shape: (60, 3, 0.15),
        };
        let us = run_active_learning(&pool, Strategy::Uncertainty, &cfg, None);
        let rs = run_active_learning(&pool, Strategy::Random, &cfg, None);
        let us_final = us.rounds.last().unwrap().pool.mape;
        let rs_final = rs.rounds.last().unwrap().pool.mape;
        assert!(
            us_final <= rs_final * 1.5,
            "US ({us_final:.3}) should be competitive with RS ({rs_final:.3})"
        );
    }

    #[test]
    fn goal_evaluator_is_invoked_each_round() {
        let pool = make_pool(150);
        let calls = std::cell::Cell::new(0usize);
        let goal = |m: &dyn Regressor| {
            calls.set(calls.get() + 1);
            let pred = m.predict(&Matrix::from_rows(&[&[1.0, 2.0]]));
            Scores { r2: 1.0, mae: pred[0].abs() * 0.0, mape: 0.0 }
        };
        let run = run_active_learning(&pool, Strategy::Random, &quick_cfg(2), Some(&goal));
        assert_eq!(calls.get(), run.rounds.len());
        assert!(run.rounds.iter().all(|r| r.goal.is_some()));
    }

    #[test]
    fn exhausting_the_pool_stops_cleanly() {
        let pool = make_pool(60);
        let cfg = ActiveConfig {
            n_initial: 10,
            query_size: 30,
            n_queries: 10,
            seed: 4,
            gb_shape: (40, 3, 0.2),
        };
        let run = run_active_learning(&pool, Strategy::Random, &cfg, None);
        // 10 + 30 + 20 = 60 labelled after two queries; a third round
        // trains on everything and stops.
        assert!(run.labeled_indices.len() <= 60);
        assert!(run.rounds.len() <= 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let pool = make_pool(150);
        let a =
            run_active_learning(&pool, Strategy::Committee { n_members: 3 }, &quick_cfg(9), None);
        let b =
            run_active_learning(&pool, Strategy::Committee { n_members: 3 }, &quick_cfg(9), None);
        assert_eq!(a.labeled_indices, b.labeled_indices);
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(ra.pool.mape, rb.pool.mape);
        }
    }

    #[test]
    fn curve_helpers() {
        let pool = make_pool(200);
        let run = run_active_learning(&pool, Strategy::Random, &quick_cfg(5), None);
        let curve = run.mape_curve();
        assert_eq!(curve.len(), run.rounds.len());
        // samples_to_mape with an impossible target returns None.
        assert_eq!(run.samples_to_mape(-1.0), None);
        // With a trivially satisfied target it returns the first round.
        assert_eq!(run.samples_to_mape(f64::INFINITY), Some(curve[0].0));
    }

    #[test]
    #[should_panic(expected = "pool too small")]
    fn rejects_tiny_pool() {
        let pool = make_pool(10);
        let _ = run_active_learning(&pool, Strategy::Random, &quick_cfg(0), None);
    }
}
