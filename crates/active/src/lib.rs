//! Active learning for runtime prediction (paper §3.4, Algorithms 1–2).
//!
//! The scenario: experiments on a target supercomputer are expensive, so
//! the learner starts from a small random set of labelled configurations
//! and repeatedly picks the next batch to "run" (here: look up in a
//! pre-generated labelled pool, exactly like the paper re-queries its
//! collected dataset) so that prediction accuracy grows as fast as
//! possible.
//!
//! Three query strategies:
//!
//! * [`Strategy::Random`] — the paper's baseline (RS),
//! * [`Strategy::Uncertainty`] — Gaussian-process σ-argmax (US, Alg. 1),
//! * [`Strategy::Committee`] — variance across a bootstrap committee of
//!   gradient-boosting models (QC, Alg. 2).
//!
//! After each query round the learner records R²/MAE/MAPE against the full
//! training pool — and, when a *goal evaluator* is supplied (the STQ/BQ
//! closures from `chemcost-core`), the goal-level losses computed at the
//! predicted-optimal configuration's **true** runtime, the evaluation
//! subtlety §3.4 insists on.

pub mod learner;
pub mod strategy;

pub use learner::{run_active_learning, ActiveConfig, ActiveRun, GoalEvaluator, RoundRecord};
pub use strategy::{rank_next_experiments, RankedCandidate, Strategy};
