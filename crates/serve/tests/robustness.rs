//! Property tests for the robustness layer: `X-Deadline-Ms` parsing
//! (through both the direct parser and the full HTTP request reader) and
//! registry reloads against truncated or garbage model files.
//!
//! The invariants under test are the ones `docs/ROBUSTNESS.md` promises:
//! a malformed deadline header is always a structured 400-class error,
//! never a silently guessed budget, and a failed reload never unseats
//! the last-good model.

use chemcost_linalg::Matrix;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_serve::http::{read_request, Request};
use chemcost_serve::parse_deadline_ms;
use chemcost_serve::ModelRegistry;
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::BufReader;

/// A request carrying the given `X-Deadline-Ms` raw value (pre-lowered
/// header key, as `read_request` produces).
fn req_with_deadline(value: Option<&str>) -> Request {
    let mut headers = HashMap::new();
    if let Some(v) = value {
        headers.insert("x-deadline-ms".to_string(), v.to_string());
    }
    Request {
        method: "POST".to_string(),
        path: "/v1/advise".to_string(),
        query: String::new(),
        headers,
        body: Vec::new(),
    }
}

/// Drive the real wire parser: serialize a request with the given header
/// lines and read it back.
fn parse_wire(header_lines: &[String]) -> Request {
    let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
    for line in header_lines {
        raw.push_str(line);
        raw.push_str("\r\n");
    }
    raw.push_str("\r\n");
    let mut reader = BufReader::new(raw.as_bytes());
    read_request(&mut reader).expect("well-formed request").expect("one request")
}

/// Random upper/lower casing of `X-Deadline-Ms`, driven by `bits`.
fn cased_header_name(bits: u32) -> String {
    "x-deadline-ms"
        .chars()
        .enumerate()
        .map(|(i, c)| if bits >> (i % 32) & 1 == 1 { c.to_ascii_uppercase() } else { c })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn positive_budgets_parse_exactly(ms in 1u64..u64::MAX, pad in 0usize..4) {
        // Whitespace padding is trimmed; the value itself round-trips.
        let raw = format!("{}{ms}{}", " ".repeat(pad), " ".repeat(pad));
        let req = req_with_deadline(Some(&raw));
        prop_assert_eq!(parse_deadline_ms(&req), Ok(Some(ms)));
    }

    #[test]
    fn zero_is_rejected_with_guidance(pad in 0usize..4) {
        let raw = format!("{}0", " ".repeat(pad));
        let err = parse_deadline_ms(&req_with_deadline(Some(&raw))).unwrap_err();
        prop_assert!(err.contains("omit the header"), "unhelpful error: {err}");
    }

    #[test]
    fn overflowing_budgets_are_rejected(excess in 0u64..1_000_000) {
        // Every value strictly above u64::MAX fails the numeric parse.
        let too_big = u64::MAX as u128 + 1 + excess as u128;
        let err = parse_deadline_ms(&req_with_deadline(Some(&too_big.to_string())))
            .unwrap_err();
        prop_assert!(err.contains("positive integer"), "wrong error: {err}");
    }

    #[test]
    fn non_numeric_values_are_rejected(bytes in proptest::collection::vec(any::<u8>(), 1..24)) {
        // Printable-ASCII garbage with at least one non-digit character.
        let value: String = bytes.iter().map(|b| (b % 94 + 33) as char).collect();
        prop_assume!(!value.chars().all(|c| c.is_ascii_digit()));
        prop_assume!(!value.contains(','));
        let result = parse_deadline_ms(&req_with_deadline(Some(&value)));
        prop_assert!(result.is_err(), "garbage {value:?} parsed as {result:?}");
    }

    #[test]
    fn duplicate_headers_never_pick_a_winner(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        // Two X-Deadline-Ms lines on the wire fold to "a, b" (RFC 9110)
        // and must be rejected, not resolved by first- or last-wins.
        let req = parse_wire(&[
            format!("X-Deadline-Ms: {a}"),
            format!("X-Deadline-Ms: {b}"),
        ]);
        let err = parse_deadline_ms(&req).unwrap_err();
        prop_assert!(err.contains("conflicting"), "wrong error: {err}");
    }

    #[test]
    fn header_name_case_is_insensitive(ms in 1u64..1_000_000, bits in any::<u32>()) {
        let req = parse_wire(&[format!("{}: {ms}", cased_header_name(bits))]);
        prop_assert_eq!(parse_deadline_ms(&req), Ok(Some(ms)));
    }

    #[test]
    fn absent_header_means_no_deadline(with_other_headers in any::<bool>()) {
        let req = if with_other_headers {
            parse_wire(&["X-Request-Id: abc".to_string(), "Accept: */*".to_string()])
        } else {
            req_with_deadline(None)
        };
        prop_assert_eq!(parse_deadline_ms(&req), Ok(None));
    }
}

/// Tiny deterministic model for the reload properties.
fn tiny_model(seed: u64) -> GradientBoosting {
    let mut gb = GradientBoosting::new(4, 2, 0.5);
    gb.seed = seed;
    let x = Matrix::from_fn(8, 4, |i, j| (i * 4 + j) as f64);
    let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
    gb.fit(&x, &y).unwrap();
    gb
}

/// A registry serving one file-backed model, plus the file's valid bytes.
fn file_backed_registry(dir: &std::path::Path) -> (ModelRegistry, std::path::PathBuf, Vec<u8>) {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("m.ccgb");
    chemcost_ml::persist::save_gb(&path, &tiny_model(7)).unwrap();
    let valid = std::fs::read(&path).unwrap();
    let reg = ModelRegistry::new();
    reg.load_file("m", "aurora", &path).unwrap();
    (reg, path, valid)
}

/// The last-good invariant: whatever a reload attempt did, the model
/// resolves and predicts finite numbers; if the reload failed, the
/// version is still the pre-reload one.
fn assert_last_good_live(
    reg: &ModelRegistry,
    reload: &Result<u64, String>,
) -> Result<(), TestCaseError> {
    let resolved = match reg.resolve(Some("m"), None) {
        Ok(r) => r,
        Err(e) => return Err(TestCaseError::Fail(format!("model vanished after reload: {e}"))),
    };
    if reload.is_err() {
        prop_assert!(resolved.version == 1, "failed reload must not bump the version");
    }
    let probe = Matrix::from_fn(1, 4, |_, j| j as f64);
    prop_assert!(resolved.model.predict(&probe)[0].is_finite());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn truncated_model_files_keep_last_good_live(frac in 0.0f64..1.0) {
        let dir = std::env::temp_dir()
            .join(format!("chemcost-prop-trunc-{}", std::process::id()));
        let (reg, path, valid) = file_backed_registry(&dir);

        // Cut the file anywhere strictly short of its full length: the
        // decoder must report Truncated, and serving must not degrade.
        let cut = ((valid.len() - 1) as f64 * frac) as usize;
        std::fs::write(&path, &valid[..cut]).unwrap();
        let reload = reg.reload("m");
        prop_assert!(reload.is_err(), "truncated file at {cut}/{} bytes reloaded", valid.len());
        assert_last_good_live(&reg, &reload)?;

        // Restoring the valid bytes recovers on the next reload.
        std::fs::write(&path, &valid).unwrap();
        prop_assert_eq!(reg.reload("m"), Ok(2));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_model_files_keep_last_good_live(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let dir = std::env::temp_dir()
            .join(format!("chemcost-prop-garbage-{}", std::process::id()));
        let (reg, path, valid) = file_backed_registry(&dir);

        std::fs::write(&path, &garbage).unwrap();
        let reload = reg.reload("m");
        prop_assert!(reload.is_err(), "garbage bytes reloaded as a model");
        assert_last_good_live(&reg, &reload)?;

        std::fs::write(&path, &valid).unwrap();
        prop_assert_eq!(reg.reload("m"), Ok(2));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flipped_model_files_never_panic_the_registry(
        byte_idx in any::<u64>(),
        bit in 0u8..8,
    ) {
        let dir = std::env::temp_dir()
            .join(format!("chemcost-prop-flip-{}", std::process::id()));
        let (reg, path, valid) = file_backed_registry(&dir);

        // Flip one bit anywhere in the file. The decoder may reject it
        // or (for a value byte) accept it — either way the registry must
        // keep serving and never panic.
        let mut flipped = valid.clone();
        let idx = (byte_idx % flipped.len() as u64) as usize;
        flipped[idx] ^= 1 << bit;
        std::fs::write(&path, &flipped).unwrap();
        let reload = reg.reload("m");
        assert_last_good_live(&reg, &reload)?;

        std::fs::remove_dir_all(&dir).ok();
    }
}
