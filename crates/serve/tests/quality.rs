//! End-to-end soak of the model-quality loop (docs/QUALITY.md).
//!
//! Drives the full advise → measure → observe round trip against the
//! in-process router with the simulator as ground-truth oracle:
//!
//! 1. 300 round trips against a healthy model — the windowed MAPE on
//!    `/metrics` must converge near the simulator's noise floor;
//! 2. the model is poisoned via the PR-4 fault plane (reloads fail, the
//!    stale generation keeps serving) while the "world" shifts 70%
//!    slower — the Page–Hinkley detector must trip, flag the group
//!    degraded, and `next_experiments` must return a non-empty,
//!    deduplicated, in-grid measurement plan;
//! 3. every round trip is correlated end to end by one request id: the
//!    `quality.residual` event fires under the observe request's trace
//!    and carries the originating advise request's trace.
//!
//! Plus a proptest battery over `POST /v1/observe` wire parsing:
//! arbitrary garbage must produce structured 4xx — never a panic, and
//! never a skewed rolling statistic.

use chemcost_linalg::Matrix;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_obs::{self as obs, Level, RingSink, Value};
use chemcost_serve::http::{Request, Response};
use chemcost_serve::json::Json;
use chemcost_serve::metrics::{lint_exposition_with_required, REQUIRED_SERIES};
use chemcost_serve::{FaultKind, FaultPlaneBuilder, ModelRegistry, Router};
use chemcost_sim::datagen::{generate_dataset_sized, node_candidates, tile_candidates};
use chemcost_sim::machine::by_name;
use chemcost_sim::simulate::{simulate_iteration, Config};
use chemcost_sim::Problem;
use std::collections::HashSet;
use std::sync::Arc;

/// A file-backed router (so reloads have something to re-read) over a
/// model trained on simulated aurora data, and the problems it saw.
fn soak_router(tag: &str) -> (Router, std::path::PathBuf, Vec<(usize, usize)>) {
    let machine = by_name("aurora").unwrap();
    let samples = generate_dataset_sized(&machine, 240, 7);
    let x = Matrix::from_fn(samples.len(), 4, |i, j| match j {
        0 => samples[i].o as f64,
        1 => samples[i].v as f64,
        2 => samples[i].nodes as f64,
        _ => samples[i].tile as f64,
    });
    let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let mut gb = GradientBoosting::new(120, 4, 0.1);
    gb.seed = 3;
    gb.fit(&x, &y).unwrap();

    let dir = std::env::temp_dir().join(format!("chemcost-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.ccgb");
    chemcost_ml::persist::save_gb(&path, &gb).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.load_file("gb", "aurora", &path).unwrap();

    // Keep the larger problems: BQ answers for them sit inside the
    // training distribution, so the healthy-phase APE stream reflects
    // honest model error (~10%), not extrapolation pathologies. (The
    // tiny problems' STQ/BQ optima land where this small GB model even
    // predicts negative seconds — real drift-detector fodder, which the
    // healthy phase must not feed.)
    let mut problems: Vec<(usize, usize)> =
        samples.iter().map(|s| (s.o, s.v)).filter(|&(o, _)| o >= 60).collect();
    problems.sort_unstable();
    problems.dedup();
    assert!(problems.len() >= 3, "need several distinct problems, got {problems:?}");
    (Router::new(registry), path, problems)
}

fn request(method: &str, path: &str, body: &str, request_id: &str) -> Request {
    let mut req = Request::new(method, path, body.as_bytes());
    req.headers.insert("x-request-id".to_string(), request_id.to_string());
    req
}

fn header<'r>(resp: &'r Response, name: &str) -> Option<&'r str> {
    resp.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
}

fn body_json(resp: &Response) -> Json {
    Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
}

/// Scrape one float-valued series (with its full label set) off /metrics.
fn gauge(router: &Router, series: &str) -> f64 {
    let resp = router.handle(&Request::new("GET", "/metrics", b""));
    let text = String::from_utf8(resp.body.into_bytes()).unwrap();
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{series} ")))
        .unwrap_or_else(|| panic!("series {series} missing from:\n{text}"))
        .parse()
        .unwrap()
}

/// One advise → oracle → observe round trip. Returns the observe
/// response. `shift` scales the oracle's measured seconds (1.0 = the
/// world the model was trained on).
fn round_trip(
    router: &Router,
    o: usize,
    v: usize,
    goal: &str,
    id: &str,
    seed: u64,
    shift: f64,
) -> Response {
    let machine = by_name("aurora").unwrap();
    let advise = router.handle(&request(
        "POST",
        "/v1/advise",
        &format!(r#"{{"o": {o}, "v": {v}, "goal": "{goal}"}}"#),
        id,
    ));
    assert_eq!(advise.status, 200, "{}", String::from_utf8_lossy(&advise.body));
    let prediction_id = header(&advise, "X-Prediction-Id")
        .expect("every answered advise carries X-Prediction-Id")
        .to_string();
    let rec = body_json(&advise);
    let rec = rec.get("recommendation").expect("stq/bq answer has a recommendation");
    let nodes = rec.get("nodes").and_then(Json::as_usize).unwrap();
    let tile = rec.get("tile").and_then(Json::as_usize).unwrap();

    let measured =
        simulate_iteration(&Problem::new(o, v), &Config::new(nodes, tile), &machine, seed).seconds
            * shift;
    router.handle(&request(
        "POST",
        "/v1/observe",
        &format!(r#"{{"prediction_id": {prediction_id}, "measured_seconds": {measured}}}"#),
        id,
    ))
}

#[test]
fn quality_loop_soak_converges_then_catches_drift() {
    obs::set_level(Some(Level::Debug));
    let ring = Arc::new(RingSink::new(4096));
    let ring_handle = obs::add_sink(ring.clone());

    let (router, path, problems) = soak_router("quality-soak");
    let group = r#"{model="gb",version="1",machine="aurora"}"#;

    // This soak measures the quality loop in isolation: 300 healthy
    // observations would fill the retained pool and let the lifecycle
    // subsystem retrain and auto-promote mid-test, moving the group to
    // version 2 under our feet (docs/LIFECYCLE.md). Freeze pins the
    // serving generation for the duration — exactly the operator
    // control built for "do not touch this model right now".
    let freeze = router.handle(&request(
        "POST",
        "/v1/lifecycle/freeze",
        r#"{"model": "gb", "machine": "aurora"}"#,
        "soak-freeze",
    ));
    assert_eq!(freeze.status, 200, "{}", String::from_utf8_lossy(&freeze.body));

    // The quality series are pre-registered: present (if NaN) before any
    // traffic, and the whole exposition is lint-clean.
    {
        let resp = router.handle(&Request::new("GET", "/metrics", b""));
        let text = String::from_utf8(resp.body.into_bytes()).unwrap();
        lint_exposition_with_required(&text, REQUIRED_SERIES)
            .unwrap_or_else(|p| panic!("pre-traffic lint: {p:?}"));
        assert!(text.contains(&format!("chemcost_model_mape{group} NaN")), "{text}");
    }

    // -- phase 1: 300 healthy round trips ------------------------------
    for i in 0..300u64 {
        let (o, v) = problems[(i as usize) % problems.len().min(4)];
        let resp = round_trip(&router, o, v, "bq", &format!("soak-round-{i}"), 1000 + i, 1.0);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let parsed = body_json(&resp);
        assert_eq!(parsed.get("drift_tripped").and_then(Json::as_bool), Some(false));
        assert_eq!(parsed.get("degraded").and_then(Json::as_bool), Some(false));
    }
    let mape = gauge(&router, &format!("chemcost_model_mape{group}"));
    assert!(
        mape < 0.25,
        "after 300 healthy observations the windowed MAPE must sit near the \
         simulator noise floor, got {mape}"
    );
    assert_eq!(gauge(&router, &format!("chemcost_drift_trips_total{group}")), 0.0);
    assert_eq!(gauge(&router, &format!("chemcost_model_degraded{group}")), 0.0);
    assert_eq!(gauge(&router, "chemcost_quality_observations_total{outcome=\"accepted\"}"), 300.0);

    // Residuals carry the GP's σ by now: calibration is defined.
    assert!(gauge(&router, &format!("chemcost_calibration_ratio{group}")).is_finite());

    // -- trace correlation: one id spans advise → observe → residual ---
    let residuals = ring.events_named("quality.residual");
    assert!(residuals.len() >= 300, "got {} residual events", residuals.len());
    let probe = residuals
        .iter()
        .find(|e| e.trace.as_deref() == Some("soak-round-7"))
        .expect("residual event under the round's trace id");
    match probe.field("advise_trace") {
        Some(Value::Str(t)) => assert_eq!(
            t, "soak-round-7",
            "the residual must point back at the advise request that made the prediction"
        ),
        other => panic!("advise_trace missing or mistyped: {other:?}"),
    }

    // -- phase 2: poison the model, shift the world --------------------
    // The fault plane makes every reload fail (PR 4): the stale
    // generation keeps serving while real runtimes move 70% above its
    // training distribution.
    let plane = Arc::new(FaultPlaneBuilder::default().rate(FaultKind::PoisonReload, 1.0).build());
    router.registry().set_fault_plane(Arc::clone(&plane));
    let reload = router.handle(&request("POST", "/v1/models/gb/reload", "", "soak-reload"));
    assert_eq!(reload.status, 500, "poisoned reload must fail");

    let mut tripped_at = None;
    for i in 0..80u64 {
        let (o, v) = problems[(i as usize) % problems.len().min(4)];
        let resp = round_trip(&router, o, v, "bq", &format!("soak-drift-{i}"), 5000 + i, 1.7);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        if body_json(&resp).get("drift_tripped").and_then(Json::as_bool) == Some(true) {
            tripped_at = Some(i);
            break;
        }
    }
    let tripped_at = tripped_at.expect("a 70% runtime shift must trip Page–Hinkley within 80 obs");
    assert!(tripped_at < 60, "drift took {tripped_at} observations to trip");
    assert!(gauge(&router, &format!("chemcost_drift_trips_total{group}")) >= 1.0);
    assert_eq!(gauge(&router, &format!("chemcost_model_degraded{group}")), 1.0);
    assert!(!ring.events_named("quality.drift").is_empty(), "drift must emit quality.drift");

    // /v1/quality reports the degraded group and the build triple.
    let quality = body_json(&router.handle(&Request::new("GET", "/v1/quality", b"")));
    let build = quality.get("build").expect("build triple");
    assert!(build.get("version").and_then(Json::as_str).is_some());
    assert!(build.get("git_sha").and_then(Json::as_str).is_some());
    assert!(build.get("dirty").and_then(Json::as_str).is_some());
    let groups = quality.get("groups").and_then(Json::as_array).unwrap();
    let gb = groups
        .iter()
        .find(|g| g.get("model").and_then(Json::as_str) == Some("gb"))
        .expect("gb group");
    assert_eq!(gb.get("degraded").and_then(Json::as_bool), Some(true));
    assert!(gb.get("drift_trips").and_then(Json::as_usize).unwrap() >= 1);

    // -- next experiments: a real, in-grid, deduplicated plan ----------
    let plan = body_json(&router.handle(&Request::new("GET", "/v1/quality/next_experiments", b"")));
    assert_eq!(plan.get("strategy").and_then(Json::as_str), Some("US"));
    assert_eq!(plan.get("model").and_then(Json::as_str), Some("gb"));
    let configs = plan.get("configs").and_then(Json::as_array).unwrap();
    assert!(!configs.is_empty(), "a degraded model must get a measurement plan: {plan:?}");
    let nodes_grid = node_candidates();
    let tile_grid = tile_candidates();
    let observed: HashSet<(usize, usize)> = problems.iter().copied().collect();
    let mut seen = HashSet::new();
    for c in configs {
        let tuple = (
            c.get("o").and_then(Json::as_usize).unwrap(),
            c.get("v").and_then(Json::as_usize).unwrap(),
            c.get("nodes").and_then(Json::as_usize).unwrap(),
            c.get("tile").and_then(Json::as_usize).unwrap(),
        );
        assert!(observed.contains(&(tuple.0, tuple.1)), "{tuple:?} problem never observed");
        assert!(nodes_grid.contains(&tuple.2), "{tuple:?} nodes off-grid");
        assert!(tile_grid.contains(&tuple.3), "{tuple:?} tile off-grid");
        assert!(seen.insert(tuple), "duplicate experiment {tuple:?}");
        assert!(c.get("score").and_then(Json::as_f64).unwrap().is_finite());
    }

    // The full exposition is still lint-clean after both phases.
    let resp = router.handle(&Request::new("GET", "/metrics", b""));
    let text = String::from_utf8(resp.body.into_bytes()).unwrap();
    lint_exposition_with_required(&text, REQUIRED_SERIES)
        .unwrap_or_else(|p| panic!("post-soak lint: {p:?}"));

    obs::remove_sink(ring_handle);
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn observe_rejections_are_structured_and_stat_neutral() {
    let (router, path, problems) = soak_router("quality-reject");
    let (o, v) = problems[0];

    // One accepted observation establishes a baseline...
    let ok = round_trip(&router, o, v, "stq", "reject-baseline", 42, 1.0);
    assert_eq!(ok.status, 200);
    // ...whose id is now consumed: a replay is 409.
    let id = body_json(&ok).get("prediction_id").and_then(Json::as_usize).unwrap();
    let replay = router.handle(&request(
        "POST",
        "/v1/observe",
        &format!(r#"{{"prediction_id": {id}, "measured_seconds": 5.0}}"#),
        "reject-replay",
    ));
    assert_eq!(replay.status, 409, "{}", String::from_utf8_lossy(&replay.body));

    // The hand-picked corpus the issue calls out.
    let cases: &[(&str, u16)] = &[
        // unknown id
        (r#"{"prediction_id": 999999, "measured_seconds": 5.0}"#, 404),
        // NaN / negative / zero / overflow-to-infinity measurements
        (r#"{"prediction_id": 1, "measured_seconds": NaN}"#, 400),
        (r#"{"prediction_id": 999999, "measured_seconds": -3.0}"#, 400),
        (r#"{"prediction_id": 999999, "measured_seconds": 0}"#, 400),
        (r#"{"prediction_id": 999999, "measured_seconds": 1e999}"#, 400),
        // malformed ids: fractional, zero, negative, above 2^53
        (r#"{"prediction_id": 1.5, "measured_seconds": 5.0}"#, 400),
        (r#"{"prediction_id": 0, "measured_seconds": 5.0}"#, 400),
        (r#"{"prediction_id": -1, "measured_seconds": 5.0}"#, 400),
        (r#"{"prediction_id": 9007199254740994, "measured_seconds": 5.0}"#, 400),
        // duplicate and unknown keys
        (r#"{"prediction_id": 1, "prediction_id": 2, "measured_seconds": 5.0}"#, 400),
        (r#"{"prediction_id": 1, "measured_seconds": 5.0, "measured_seconds": 6.0}"#, 400),
        (r#"{"prediction_id": 1, "measured_seconds": 5.0, "extra": true}"#, 400),
        // wrong shapes
        (r#"[1, 2]"#, 400),
        (r#"{"measured_seconds": 5.0}"#, 400),
        (r#"{"prediction_id": 1}"#, 400),
        ("{not json", 400),
    ];
    for (body, want) in cases {
        let resp = router.handle(&request("POST", "/v1/observe", body, "reject-case"));
        assert_eq!(resp.status, *want, "body {body:?} → {}", String::from_utf8_lossy(&resp.body));
        assert!(
            body_json(&resp).get("error").and_then(Json::as_str).is_some(),
            "body {body:?}: rejection must carry a structured error"
        );
    }

    // None of the rejections moved the rolling statistics: still exactly
    // the one accepted observation.
    let snap = router.quality().snapshot();
    let gb = snap.iter().find(|g| g.model == "gb" && g.stats.observations > 0).unwrap();
    assert_eq!(gb.stats.observations, 1);
    assert_eq!(router.metrics().quality_accepted(), 1);
    assert_eq!(router.metrics().quality_rejected(), 1 + cases.len() as u64);

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary bytes: /v1/observe never panics, never answers 2xx
        /// (no prediction was ever issued), and never skews the stats.
        #[test]
        fn arbitrary_bytes_never_panic_or_skew(body in proptest::collection::vec(any::<u8>(), 0..256)) {
            let registry = Arc::new(ModelRegistry::new());
            let router = Router::new(registry);
            let resp = router.handle(&Request::new("POST", "/v1/observe", &body));
            prop_assert!(resp.status >= 400 && resp.status < 500, "status {}", resp.status);
            prop_assert_eq!(router.metrics().quality_accepted(), 0);
            prop_assert!(router.quality().snapshot().iter().all(|g| g.stats.observations == 0));
        }

        /// JSON-shaped fuzz: random key names and numeric payloads.
        #[test]
        fn json_shaped_fuzz_never_panics(
            key_bytes in proptest::collection::vec(b'a'..b'{', 1..20),
            id in any::<f64>(),
            measured in any::<f64>(),
        ) {
            let registry = Arc::new(ModelRegistry::new());
            let router = Router::new(registry);
            let key = String::from_utf8(key_bytes).unwrap();
            let body = format!(r#"{{"{key}": {id}, "measured_seconds": {measured}}}"#);
            let resp = router.handle(&Request::new("POST", "/v1/observe", body.as_bytes()));
            prop_assert!(resp.status >= 400 && resp.status < 500, "status {} for {body}", resp.status);
            prop_assert_eq!(router.metrics().quality_accepted(), 0);
        }
    }
}
