//! Health-plane soak tests — the PR's acceptance criteria end to end:
//!
//! * under `saturate` chaos a critical error-ratio SLO walks the full
//!   ok → pending → firing lifecycle, `/v1/health` answers 503 while it
//!   fires, and once the chaos-era traffic slides out of the burn
//!   windows the alert resolves and `/v1/health` flips back to 200 —
//!   with every transition visible in BOTH
//!   `chemcost_alerts_transitions_total` and correlated `health.alert`
//!   obs events from the same run;
//! * the self-scrape snapshot path stays internally consistent under an
//!   8-thread writer stress (no torn counter/histogram pairs) and the
//!   delta ring never exceeds its byte budget;
//! * the paired connection-state gauges return to zero after a
//!   keep-alive soak drains through forced close-on-shutdown.

use chemcost_health::{HealthConfig, Ring, Signal, SloSpec};
use chemcost_linalg::Matrix;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_obs::{self as obs, Level, RingSink, Value};
use chemcost_serve::metrics::{Metrics, Route};
use chemcost_serve::{FaultKind, FaultPlaneBuilder, MetricsSampler, ModelRegistry, Router, Server};
use chemcost_sim::datagen::generate_dataset_sized;
use chemcost_sim::machine::by_name;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_model() -> GradientBoosting {
    let machine = by_name("aurora").unwrap();
    let samples = generate_dataset_sized(&machine, 80, 3);
    let x = Matrix::from_fn(samples.len(), 4, |i, j| match j {
        0 => samples[i].o as f64,
        1 => samples[i].v as f64,
        2 => samples[i].nodes as f64,
        _ => samples[i].tile as f64,
    });
    let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let mut gb = GradientBoosting::new(20, 3, 0.2);
    gb.seed = 9;
    gb.fit(&x, &y).unwrap();
    gb
}

/// One HTTP exchange on a fresh connection; returns (status, body).
/// Transport errors come back as status 0 — under saturate chaos the
/// daemon sheds by answering 503 and closing immediately, so writes and
/// reads on a fresh connection can legitimately hit RST mid-exchange.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let attempt = || -> std::io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes())?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        Ok(response)
    };
    let Ok(response) = attempt() else { return (0, String::new()) };
    let status: u16 = response.split_whitespace().nth(1).unwrap_or("0").parse().unwrap_or(0);
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Retry `POST /v1/shutdown` until the daemon takes it (saturate chaos
/// may shed any individual attempt).
fn shutdown(addr: SocketAddr) {
    for _ in 0..100 {
        let (status, _) = request(addr, "POST", "/v1/shutdown", "");
        if status == 200 {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("shutdown never accepted");
}

#[test]
fn chaos_soak_walks_the_full_alert_lifecycle_with_correlated_signals() {
    obs::set_level(Some(Level::Warn));
    let ring = Arc::new(RingSink::new(4096));
    let _ring_handle = obs::add_sink(ring.clone());

    let registry = Arc::new(ModelRegistry::new());
    registry.insert("gb", "aurora", tiny_model());
    let router = Router::new(registry);
    let probe = router.clone();

    // One tight-window critical SLO so the whole cycle fits in seconds:
    // error ratio (sheds count as errors) over 800 ms / 1.6 s windows,
    // scraped every 50 ms, firing after 2 breaches, clear after 3 oks.
    let slo = SloSpec::new(
        "soak_error_ratio",
        Signal::Ratio { num: vec!["errors.".into()], den: vec!["requests.".into()] },
        0.05,
    )
    .critical()
    .windows(Duration::from_millis(800), Duration::from_millis(1600))
    .hysteresis(2, 3);
    let health = HealthConfig {
        scrape_interval: Duration::from_millis(50),
        slos: vec![slo],
        ..HealthConfig::default()
    };
    // Fixed seed: the shed pattern (and with it the test) is reproducible.
    let plane =
        Arc::new(FaultPlaneBuilder::default().seed(7).rate(FaultKind::Saturate, 0.5).build());
    let server =
        Server::bind("127.0.0.1:0", router, 2).unwrap().with_health(health).with_faults(plane);
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // -- phase A: drive traffic through the chaos until /v1/health
    //    flips to 503 with the firing verdict in the body --
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut fired = false;
    while Instant::now() < deadline {
        for _ in 0..4 {
            let _ = request(addr, "GET", "/healthz", "");
        }
        let (status, body) = request(addr, "GET", "/v1/health", "");
        // A shed also answers 503; only the real report carries the verdict.
        if status == 503 && body.contains("\"status\":\"firing\"") {
            assert!(body.contains("\"critical_firing\":true"), "{body}");
            assert!(body.contains("\"soak_error_ratio\""), "{body}");
            fired = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    assert!(fired, "/v1/health never flipped to 503/firing under saturate chaos");

    // -- phase B: stop all traffic. With nothing arriving, the burn
    //    windows slide past the chaos era, the ratio decays to 0/0 = 0,
    //    and the alert resolves. Probe the hub through the shared router
    //    handle so the probe itself adds no requests. --
    let hub = Arc::clone(probe.health().expect("health hub installed"));
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut recovered = false;
    while Instant::now() < deadline {
        let (code, body) = hub.health_json();
        if code == 200 {
            assert!(
                body.contains("\"status\":\"resolved\"") || body.contains("\"status\":\"ok\""),
                "{body}"
            );
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(recovered, "/v1/health payload never recovered to 200 after chaos traffic stopped");

    // -- the transitions are counted in the pre-registered metric family --
    let metrics = probe.metrics();
    assert!(metrics.alert_transitions("pending") >= 1, "missing ok→pending count");
    assert!(metrics.alert_transitions("firing") >= 1, "missing pending→firing count");
    assert!(metrics.alert_transitions("resolved") >= 1, "missing firing→resolved count");
    assert!(metrics.slo_scrapes() > 0);

    // -- and the same run emitted correlated health.alert obs events --
    let field_str = |e: &obs::Event, key: &str| match e.field(key) {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("health.alert field {key} missing or non-string: {other:?}"),
    };
    let hops: Vec<(String, String)> = ring
        .events_named("health.alert")
        .iter()
        .filter(|e| field_str(e, "slo") == "soak_error_ratio")
        .map(|e| (field_str(e, "from"), field_str(e, "to")))
        .collect();
    for expected in [("ok", "pending"), ("pending", "firing"), ("firing", "resolved")] {
        assert!(
            hops.iter().any(|(f, t)| (f.as_str(), t.as_str()) == expected),
            "missing {expected:?} in health.alert events: {hops:?}"
        );
    }

    shutdown(addr);
    server_thread.join().unwrap().unwrap();
}

#[test]
fn scrapes_stay_consistent_and_ring_bounded_under_writer_stress() {
    let metrics = Arc::new(Metrics::new());
    let sampler = MetricsSampler::new(&metrics);
    let schema = Arc::clone(sampler.schema());
    let budget = 8 * 1024;
    let ring = Ring::new(Arc::clone(&schema), budget, 60_000_000);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..8)
        .map(|w| {
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n: u64 = w;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let route = Route::ALL[(n % Route::ALL.len() as u64) as usize];
                    metrics.record(
                        route,
                        n.is_multiple_of(7),
                        Duration::from_micros((n % 5000) * 37),
                    );
                    if n.is_multiple_of(3) {
                        metrics.record_shed();
                    }
                    if n.is_multiple_of(5) {
                        metrics.record_cache_hit();
                    } else {
                        metrics.record_cache_miss();
                    }
                    n = n.wrapping_add(1);
                }
            })
        })
        .collect();

    let mut prev_counters: Option<Vec<u64>> = None;
    for i in 0..400 {
        let sample = sampler.sample(&metrics, 1_000_000 + i * 1_000);
        // Torn-pair check: `observe` bumps buckets before count, and the
        // snapshot reads count first — so a consistent snapshot always
        // has at least as many bucketed observations as counted ones.
        for (h, hist) in sample.hists.iter().enumerate() {
            assert!(
                hist.bucket_total() >= hist.count,
                "torn histogram {:?} at scrape {i}: buckets {} < count {}",
                schema.histograms[h].name,
                hist.bucket_total(),
                hist.count
            );
        }
        // Counters never step backwards between scrapes.
        if let Some(prev) = &prev_counters {
            for (c, (now, before)) in sample.counters.iter().zip(prev).enumerate() {
                assert!(
                    now >= before,
                    "counter {:?} went backwards at scrape {i}: {now} < {before}",
                    schema.counters[c]
                );
            }
        }
        prev_counters = Some(sample.counters.clone());
        ring.push(&sample);
        let stats = ring.stats();
        assert!(
            stats.bytes <= budget || stats.len <= 1,
            "ring over budget at scrape {i}: {} bytes > {budget}",
            stats.bytes
        );
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    let stats = ring.stats();
    assert!(stats.appended == 400);
    assert!(stats.evicted > 0, "8 KiB budget must have forced evictions ({} bytes)", stats.bytes);
}

#[test]
fn connection_gauges_return_to_zero_after_keepalive_soak_drains() {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("gb", "aurora", tiny_model());
    let router = Router::new(registry);
    let probe = router.clone();
    let server = Server::bind("127.0.0.1:0", router, 2).unwrap().without_health();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());
    let metrics = Arc::clone(probe.metrics());

    // Eight keep-alive connections, each completing a few requests and
    // then staying open so shutdown has to force-close them.
    let mut conns: Vec<TcpStream> = Vec::new();
    for _ in 0..8 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for _ in 0..3 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            // Read until the tiny response's body has arrived; keep-alive
            // leaves the socket open for the next round-trip.
            let mut buf = [0u8; 4096];
            let mut got = String::new();
            while !got.contains("ok") {
                let n = stream.read(&mut buf).unwrap();
                assert!(n > 0, "server closed a keep-alive connection mid-soak");
                got.push_str(&String::from_utf8_lossy(&buf[..n]));
            }
        }
        conns.push(stream);
    }
    assert!(metrics.keepalive_reuses() >= 16, "soak must exercise keep-alive reuse");
    assert!(metrics.connections_open() >= 8, "all soak connections still open");

    // Drain: the daemon force-closes every idle persistent connection.
    shutdown(addr);
    server_thread.join().unwrap().unwrap();
    assert_eq!(metrics.connections_open(), 0, "open-connection gauge must drain to zero");
    assert_eq!(metrics.read_paused(), 0, "read-paused gauge must drain to zero");
    assert_eq!(metrics.write_stalled(), 0, "write-stalled gauge must drain to zero");
    drop(conns);
}
