//! End-to-end test: a real `Server` on an ephemeral port, driven by a
//! plain `TcpStream` client, serving a tiny model trained on simulated
//! data. Asserts the wire answers match the offline `Advisor` within the
//! quantized-inference tolerance (the server runs the quantized flat
//! path; see `chemcost_ml::flat::QUANT_REL_TOL`), that `/metrics`
//! reflects the traffic, and that `POST /v1/shutdown` drains and stops
//! the server.

use chemcost_core::advisor::Advisor;
use chemcost_linalg::Matrix;
use chemcost_ml::flat::QUANT_REL_TOL;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_serve::json::Json;
use chemcost_serve::{ModelRegistry, Router, Server};
use chemcost_sim::datagen::generate_dataset_sized;
use chemcost_sim::machine::by_name;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Train a small-but-real GB model on simulated aurora data.
fn tiny_model() -> GradientBoosting {
    let machine = by_name("aurora").unwrap();
    let samples = generate_dataset_sized(&machine, 100, 11);
    let x = Matrix::from_fn(samples.len(), 4, |i, j| match j {
        0 => samples[i].o as f64,
        1 => samples[i].v as f64,
        2 => samples[i].nodes as f64,
        _ => samples[i].tile as f64,
    });
    let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let mut gb = GradientBoosting::new(25, 3, 0.2);
    gb.seed = 5;
    gb.fit(&x, &y).unwrap();
    gb
}

/// One HTTP exchange on a fresh connection; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {response:?}"));
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn rec_fields(v: &Json) -> (usize, usize, f64, f64) {
    (
        v.get("nodes").and_then(Json::as_usize).unwrap(),
        v.get("tile").and_then(Json::as_usize).unwrap(),
        v.get("predicted_seconds").and_then(Json::as_f64).unwrap(),
        v.get("predicted_node_hours").and_then(Json::as_f64).unwrap(),
    )
}

#[test]
fn server_answers_like_the_offline_advisor_then_drains() {
    let gb = tiny_model();
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("gb-aurora", "aurora", gb);
    registry.set_default("aurora", "gb-aurora").unwrap();
    let router = Router::new(registry);
    // Offline reference: the exact same model through the library API.
    let reference = router.registry().resolve(Some("gb-aurora"), None).unwrap().model;

    let server = Server::bind("127.0.0.1:0", router, 2).expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // -- /healthz --
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(Json::parse(&body).unwrap().get("status").and_then(Json::as_str), Some("ok"));

    // -- /v1/models --
    let (status, body) = request(addr, "GET", "/v1/models", "");
    assert_eq!(status, 200);
    let models = Json::parse(&body).unwrap().get("models").unwrap().as_array().unwrap().to_vec();
    assert_eq!(models.len(), 1);
    assert_eq!(models[0].get("name").and_then(Json::as_str), Some("gb-aurora"));
    assert_eq!(models[0].get("version").and_then(Json::as_usize), Some(1));

    // -- /v1/predict batch matches model.predict --
    let (status, body) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"rows": [{"o": 100, "v": 800, "nodes": 32, "tile": 24},
                     {"o": 50, "v": 400, "nodes": 8, "tile": 16}]}"#,
    );
    assert_eq!(status, 200, "{body}");
    let preds =
        Json::parse(&body).unwrap().get("predictions").unwrap().as_array().unwrap().to_vec();
    assert_eq!(preds.len(), 2);
    let x =
        Matrix::from_fn(2, 4, |i, j| [[100.0, 800.0, 32.0, 24.0], [50.0, 400.0, 8.0, 16.0]][i][j]);
    let expect = reference.predict(&x);
    // The served path runs the quantized flat traversal, so compare
    // against the recursive reference within QUANT_REL_TOL.
    for (pred, (want_s, nodes)) in preds.iter().zip(expect.iter().zip([32.0, 8.0])) {
        let got_s = pred.get("seconds").and_then(Json::as_f64).unwrap();
        let got_nh = pred.get("node_hours").and_then(Json::as_f64).unwrap();
        assert!((got_s - want_s).abs() <= QUANT_REL_TOL * (1.0 + want_s.abs()));
        assert!((got_nh - want_s * nodes / 3600.0).abs() <= QUANT_REL_TOL * (1.0 + want_s.abs()));
    }

    // -- /v1/advise (stq and bq) matches the offline Advisor (seconds
    // within the quantized tolerance, same recommended point) --
    let advisor = Advisor::new(reference.as_ref(), by_name("aurora").unwrap());
    for goal in ["stq", "bq"] {
        let (status, body) = request(
            addr,
            "POST",
            "/v1/advise",
            &format!(r#"{{"o": 120, "v": 900, "goal": "{goal}"}}"#),
        );
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        let offline =
            if goal == "stq" { advisor.answer_stq(120, 900) } else { advisor.answer_bq(120, 900) }
                .expect("offline advisor has an answer");
        let (nodes, tile, secs, nh) = rec_fields(v.get("recommendation").unwrap());
        assert_eq!(nodes, offline.nodes, "{goal} nodes");
        assert_eq!(tile, offline.tile, "{goal} tile");
        let tol = QUANT_REL_TOL * (1.0 + offline.predicted_seconds.abs());
        assert!((secs - offline.predicted_seconds).abs() <= tol, "{goal} seconds");
        assert!((nh - offline.predicted_node_hours).abs() <= tol, "{goal} node-hours");
    }

    // -- malformed JSON gets a 400 with an error message --
    let (status, body) = request(addr, "POST", "/v1/advise", "{this is not json");
    assert_eq!(status, 400);
    assert!(Json::parse(&body).unwrap().get("error").is_some(), "{body}");

    // -- /metrics reflects exactly the traffic sent so far --
    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("chemcost_requests_total{route=\"healthz\"} 1"), "{body}");
    assert!(body.contains("chemcost_requests_total{route=\"predict\"} 1"), "{body}");
    assert!(body.contains("chemcost_requests_total{route=\"advise\"} 3"), "{body}");
    assert!(body.contains("chemcost_request_errors_total{route=\"advise\"} 1"), "{body}");
    // 1 healthz + 1 models + 1 predict + 3 advise = 6 before this scrape.
    assert!(body.contains("chemcost_request_duration_seconds_count 6"), "{body}");

    // -- graceful shutdown: the run() thread exits cleanly --
    let (status, _) = request(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    server_thread.join().expect("server thread").expect("server run");
    // And the port stops answering.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener should be closed after shutdown"
    );
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("gb", "aurora", tiny_model());
    let server = Server::bind("127.0.0.1:0", Router::new(registry), 1).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for _ in 0..3 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut buf = [0u8; 512];
        let mut seen = String::new();
        while !seen.contains(r#"{"status":"ok"}"#) {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "connection closed early");
            seen.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
        assert!(seen.starts_with("HTTP/1.1 200"));
    }
    drop(stream);

    let (status, _) = {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /v1/shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n").unwrap();
        let mut out = String::new();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.read_to_string(&mut out).unwrap();
        (out.split_whitespace().nth(1).unwrap().parse::<u16>().unwrap(), out)
    };
    assert_eq!(status, 200);
    server_thread.join().unwrap().unwrap();
}
