//! End-to-end soak of the in-service model lifecycle (docs/LIFECYCLE.md).
//!
//! Closes the full loop against the in-process router with the simulator
//! as ground-truth oracle: a 70% world shift trips the drift detector,
//! which enqueues a background retrain; the candidate shadow-scores live
//! traffic, wins the guardband, auto-promotes — and the post-promotion
//! rolling MAPE recovers below 0.25 without a restart, while every
//! transition is visible on `GET /v1/lifecycle` and `/metrics`.
//!
//! Plus the promotion-safety battery: concurrent reload-vs-promote never
//! produces a 5xx, rollback restores the displaced generation
//! byte-identically, shadow scoring stays under 5% of the advise
//! pipeline, and a poison (NaN) candidate is auto-rejected before it can
//! accumulate a window.

use chemcost_lifecycle::{LifecycleConfig, LifecycleState};
use chemcost_linalg::Matrix;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::persist::{encode_gb, Lineage};
use chemcost_ml::Regressor;
use chemcost_serve::http::{Request, Response};
use chemcost_serve::json::Json;
use chemcost_serve::metrics::{lint_exposition_with_required, AdviseStage, REQUIRED_SERIES};
use chemcost_serve::{ModelRegistry, Router};
use chemcost_sim::datagen::generate_dataset_sized;
use chemcost_sim::machine::by_name;
use chemcost_sim::simulate::{simulate_iteration, Config};
use chemcost_sim::Problem;
use std::sync::Arc;

/// Lifecycle tuning that lets the retrain → shadow → promote loop close
/// in a few hundred in-process round trips instead of production hours.
fn soak_config() -> LifecycleConfig {
    LifecycleConfig {
        min_shadow: 16,
        max_shadow: 96,
        guardband: 0.04,
        pool_trigger: 32,
        extra_stages: 60,
        max_depth: 4,
        min_retrain_rows: 8,
        queue_cap: 4,
        shadow_window: 96,
    }
}

/// A file-backed router (so reloads have something to re-read) over a
/// model trained on simulated aurora data, plus the training set and the
/// problems it saw.
fn soak_router(
    tag: &str,
    config: LifecycleConfig,
) -> (Router, std::path::PathBuf, Matrix, Vec<f64>, Vec<(usize, usize)>) {
    let machine = by_name("aurora").unwrap();
    let samples = generate_dataset_sized(&machine, 240, 7);
    let x = Matrix::from_fn(samples.len(), 4, |i, j| match j {
        0 => samples[i].o as f64,
        1 => samples[i].v as f64,
        2 => samples[i].nodes as f64,
        _ => samples[i].tile as f64,
    });
    let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let mut gb = GradientBoosting::new(120, 4, 0.1);
    gb.seed = 3;
    gb.fit(&x, &y).unwrap();

    let dir = std::env::temp_dir().join(format!("chemcost-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.ccgb");
    chemcost_ml::persist::save_gb(&path, &gb).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.load_file("gb", "aurora", &path).unwrap();

    // Larger problems keep BQ answers inside the training distribution,
    // so drift signals reflect the world shift, not extrapolation.
    let mut problems: Vec<(usize, usize)> =
        samples.iter().map(|s| (s.o, s.v)).filter(|&(o, _)| o >= 60).collect();
    problems.sort_unstable();
    problems.dedup();
    assert!(problems.len() >= 3, "need several distinct problems, got {problems:?}");
    (Router::with_lifecycle_config(registry, 512, config), path, x, y, problems)
}

fn request(method: &str, path: &str, body: &str, request_id: &str) -> Request {
    let mut req = Request::new(method, path, body.as_bytes());
    req.headers.insert("x-request-id".to_string(), request_id.to_string());
    req
}

fn header<'r>(resp: &'r Response, name: &str) -> Option<&'r str> {
    resp.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
}

fn body_json(resp: &Response) -> Json {
    Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
}

/// Scrape one float-valued series (with its full label set) off /metrics.
fn gauge(router: &Router, series: &str) -> f64 {
    let resp = router.handle(&Request::new("GET", "/metrics", b""));
    let text = String::from_utf8(resp.body.into_bytes()).unwrap();
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{series} ")))
        .unwrap_or_else(|| panic!("series {series} missing from:\n{text}"))
        .parse()
        .unwrap()
}

/// One advise → oracle → observe round trip at world-shift `shift`.
/// Returns the advise model_version and the observe response; panics on
/// any malformed answer (non-200, missing recommendation, missing id).
fn round_trip(
    router: &Router,
    o: usize,
    v: usize,
    id: &str,
    seed: u64,
    shift: f64,
) -> (u64, Response) {
    let machine = by_name("aurora").unwrap();
    let advise = router.handle(&request(
        "POST",
        "/v1/advise",
        &format!(r#"{{"o": {o}, "v": {v}, "goal": "bq"}}"#),
        id,
    ));
    assert_eq!(advise.status, 200, "{}", String::from_utf8_lossy(&advise.body));
    let prediction_id = header(&advise, "X-Prediction-Id")
        .expect("every answered advise carries X-Prediction-Id")
        .to_string();
    let parsed = body_json(&advise);
    let version = parsed.get("model_version").and_then(Json::as_usize).unwrap() as u64;
    let rec = parsed.get("recommendation").expect("bq answer has a recommendation");
    let nodes = rec.get("nodes").and_then(Json::as_usize).unwrap();
    let tile = rec.get("tile").and_then(Json::as_usize).unwrap();
    let predicted = rec.get("predicted_seconds").and_then(Json::as_f64).unwrap();
    assert!(predicted.is_finite() && predicted > 0.0, "malformed prediction {predicted}");

    let measured =
        simulate_iteration(&Problem::new(o, v), &Config::new(nodes, tile), &machine, seed).seconds
            * shift;
    let observe = router.handle(&request(
        "POST",
        "/v1/observe",
        &format!(r#"{{"prediction_id": {prediction_id}, "measured_seconds": {measured}}}"#),
        id,
    ));
    assert_eq!(observe.status, 200, "{}", String::from_utf8_lossy(&observe.body));
    (version, observe)
}

/// Pull the `gb`/`aurora` group out of `GET /v1/lifecycle`.
fn lifecycle_group(router: &Router) -> Json {
    let report = body_json(&router.handle(&Request::new("GET", "/v1/lifecycle", b"")));
    report
        .get("groups")
        .and_then(Json::as_array)
        .and_then(|groups| {
            groups.iter().find(|g| g.get("model").and_then(Json::as_str) == Some("gb")).cloned()
        })
        .expect("gb group on /v1/lifecycle")
}

#[test]
fn lifecycle_soak_drift_retrain_shadow_promote_recover() {
    let (router, path, _x, _y, problems) = soak_router("lifecycle-soak", soak_config());

    // Lifecycle series are pre-registered: the exposition lints clean
    // before any traffic, with the group idle.
    {
        let resp = router.handle(&Request::new("GET", "/metrics", b""));
        let text = String::from_utf8(resp.body.into_bytes()).unwrap();
        lint_exposition_with_required(&text, REQUIRED_SERIES)
            .unwrap_or_else(|p| panic!("pre-traffic lint: {p:?}"));
        assert!(
            text.contains(r#"chemcost_lifecycle_state{model="gb",machine="aurora"} 0"#),
            "{text}"
        );
    }
    let group = lifecycle_group(&router);
    assert_eq!(group.get("state").and_then(Json::as_str), Some("idle"));

    // -- phase 1: a short healthy baseline -----------------------------
    for i in 0..24u64 {
        let (o, v) = problems[(i as usize) % problems.len().min(4)];
        let (version, resp) = round_trip(&router, o, v, &format!("lc-healthy-{i}"), 1000 + i, 1.0);
        assert_eq!(version, 1);
        let parsed = body_json(&resp);
        assert_eq!(parsed.get("drift_tripped").and_then(Json::as_bool), Some(false));
    }

    // -- phase 2: 70% world shift; drive until the loop closes ---------
    // Drift trips → retrain queued → background fit → shadow → (promote
    // or reject, possibly over more than one candidate generation) →
    // post-promotion window recovers. The loop, not the test, decides
    // how many rounds that takes; the budget bounds it.
    let mut serving_version = 1u64;
    let mut rounds_since_promotion = 0u64;
    let mut drift_seen = false;
    let mut recovered = false;
    for i in 0..700u64 {
        let (o, v) = problems[(i as usize) % problems.len().min(4)];
        let (version, resp) = round_trip(&router, o, v, &format!("lc-shift-{i}"), 5000 + i, 1.7);
        if body_json(&resp).get("drift_tripped").and_then(Json::as_bool) == Some(true) {
            drift_seen = true;
        }
        if version != serving_version {
            assert!(version > serving_version, "versions must be monotonic");
            serving_version = version;
            rounds_since_promotion = 0;
        } else {
            rounds_since_promotion += 1;
        }
        let promotions = gauge(&router, r#"chemcost_lifecycle_promotions_total{outcome="auto"}"#);
        if promotions >= 1.0 && rounds_since_promotion >= 20 {
            let mape = gauge(
                &router,
                &format!(
                    r#"chemcost_model_mape{{model="gb",version="{serving_version}",machine="aurora"}}"#
                ),
            );
            if mape.is_finite() && mape < 0.25 {
                recovered = true;
                break;
            }
        }
    }
    assert!(drift_seen, "a 70% shift must trip the drift detector");
    let report = router.handle(&Request::new("GET", "/v1/lifecycle", b""));
    assert!(
        recovered,
        "lifecycle loop failed to recover MAPE < 0.25 within budget; /v1/lifecycle: {}",
        String::from_utf8_lossy(&report.body)
    );
    assert!(serving_version > 1, "auto-promotion must bump the served version");

    // Every transition of the closed loop is on /metrics...
    for (from, to) in
        [("idle", "queued"), ("queued", "training"), ("training", "shadow"), ("shadow", "promoted")]
    {
        assert!(
            gauge(
                &router,
                &format!(r#"chemcost_lifecycle_transitions_total{{from="{from}",to="{to}"}}"#)
            ) >= 1.0,
            "transition {from} -> {to} never counted"
        );
    }
    assert!(gauge(&router, "chemcost_lifecycle_fit_duration_seconds_count") >= 1.0);
    // The loop keeps running after recovery: at most one follow-up job
    // may already sit in the bounded queue when we stop driving.
    assert!(gauge(&router, "chemcost_lifecycle_queue_depth") <= 1.0);

    // ...and /v1/lifecycle reflects the closed loop with lineage. The
    // group may already be working on the *next* candidate (queued /
    // training / shadow) — what matters is that a promotion landed.
    let group = lifecycle_group(&router);
    let state = group.get("state").and_then(Json::as_str).unwrap();
    assert!(
        ["promoted", "queued", "training", "shadow"].contains(&state),
        "unexpected post-recovery state {state:?}"
    );
    assert!(group.get("retrains").and_then(Json::as_usize).unwrap() >= 1);
    let lineage = group.get("lineage").expect("promoted group has lineage");
    assert!(lineage.get("parent_version").and_then(Json::as_usize).unwrap() >= 1);
    assert!(lineage.get("observed_rows").and_then(Json::as_usize).unwrap() >= 8);

    // The exposition still lints clean after the whole loop.
    let resp = router.handle(&Request::new("GET", "/metrics", b""));
    let text = String::from_utf8(resp.body.into_bytes()).unwrap();
    lint_exposition_with_required(&text, REQUIRED_SERIES)
        .unwrap_or_else(|p| panic!("post-soak lint: {p:?}"));

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

/// Train a second-generation model on the same data with another seed —
/// a well-formed shadow candidate for the operator-path tests.
fn candidate_like(x: &Matrix, y: &[f64], seed: u64) -> GradientBoosting {
    let mut gb = GradientBoosting::new(60, 4, 0.1);
    gb.seed = seed;
    gb.fit(x, y).unwrap();
    gb
}

fn test_lineage() -> Lineage {
    Lineage { parent_version: 1, train_rows: 240, observed_rows: 32, fit_duration_ms: 5, seed: 7 }
}

#[test]
fn operator_promote_then_rollback_is_byte_identical() {
    let (router, path, x, y, _) = soak_router("lifecycle-rollback", soak_config());
    let bytes_v1 = {
        let resolved = router.registry().resolve(Some("gb"), None).unwrap();
        encode_gb(&resolved.model)
    };

    router.lifecycle().install_candidate(
        "gb",
        "aurora",
        candidate_like(&x, &y, 11),
        test_lineage(),
    );
    let promote = router.handle(&request("POST", "/v1/lifecycle/promote", "{}", "op-promote"));
    assert_eq!(promote.status, 200, "{}", String::from_utf8_lossy(&promote.body));
    let parsed = body_json(&promote);
    assert_eq!(parsed.get("version").and_then(Json::as_usize), Some(2));
    assert_eq!(parsed.get("outcome").and_then(Json::as_str), Some("operator"));
    let bytes_v2 = {
        let resolved = router.registry().resolve(Some("gb"), None).unwrap();
        assert_eq!(resolved.version, 2);
        encode_gb(&resolved.model)
    };
    assert_ne!(bytes_v1, bytes_v2, "promotion must swap the serving model");
    // The operator promotion shows up on the metrics and the report.
    assert!(gauge(&router, r#"chemcost_lifecycle_promotions_total{outcome="operator"}"#) >= 1.0);
    assert_eq!(lifecycle_group(&router).get("state").and_then(Json::as_str), Some("promoted"));

    // Rollback restores the displaced generation byte-for-byte, under a
    // fresh monotonic version so caches can never confuse generations.
    let rollback = router.handle(&request("POST", "/v1/lifecycle/rollback", "{}", "op-rollback"));
    assert_eq!(rollback.status, 200, "{}", String::from_utf8_lossy(&rollback.body));
    assert_eq!(body_json(&rollback).get("version").and_then(Json::as_usize), Some(3));
    let resolved = router.registry().resolve(Some("gb"), None).unwrap();
    assert_eq!(resolved.version, 3);
    assert_eq!(encode_gb(&resolved.model), bytes_v1, "rollback must be byte-identical");
    assert_eq!(lifecycle_group(&router).get("state").and_then(Json::as_str), Some("rolled-back"));

    // The snapshot is consumed: a second rollback is a structured 409.
    let again = router.handle(&request("POST", "/v1/lifecycle/rollback", "{}", "op-rollback-2"));
    assert_eq!(again.status, 409, "{}", String::from_utf8_lossy(&again.body));

    // The service keeps answering across the whole swap dance.
    let advise = router.handle(&request(
        "POST",
        "/v1/advise",
        r#"{"o": 120, "v": 900, "goal": "bq"}"#,
        "op-post",
    ));
    assert_eq!(advise.status, 200);
    assert_eq!(body_json(&advise).get("model_version").and_then(Json::as_usize), Some(3));

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn concurrent_reload_and_promote_never_break_serving() {
    let (router, path, x, y, _) = soak_router("lifecycle-race", soak_config());
    const LAPS: usize = 6;

    let reloader = {
        let router = router.clone();
        std::thread::spawn(move || {
            for i in 0..LAPS {
                let resp =
                    router.handle(&request("POST", "/v1/models/gb/reload", "", &format!("rl-{i}")));
                assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
            }
        })
    };
    let promoter = {
        let router = router.clone();
        let x = x.clone();
        let y = y.clone();
        std::thread::spawn(move || {
            let mut promoted = 0usize;
            for i in 0..LAPS {
                router.lifecycle().install_candidate(
                    "gb",
                    "aurora",
                    candidate_like(&x, &y, 20 + i as u64),
                    test_lineage(),
                );
                let resp = router.handle(&request(
                    "POST",
                    "/v1/lifecycle/promote",
                    "{}",
                    &format!("pr-{i}"),
                ));
                // Losing a race to the reloader is a structured conflict,
                // never a 5xx.
                assert!(
                    resp.status == 200 || resp.status == 409,
                    "promote answered {}: {}",
                    resp.status,
                    String::from_utf8_lossy(&resp.body)
                );
                if resp.status == 200 {
                    promoted += 1;
                }
            }
            promoted
        })
    };
    let prober = {
        let router = router.clone();
        std::thread::spawn(move || {
            for i in 0..LAPS * 8 {
                let resp = router.handle(&request(
                    "POST",
                    "/v1/predict",
                    r#"{"rows": [{"o": 120, "v": 900, "nodes": 64, "tile": 24}]}"#,
                    &format!("probe-{i}"),
                ));
                assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                let seconds = body_json(&resp)
                    .get("predictions")
                    .and_then(Json::as_array)
                    .and_then(|p| p[0].get("seconds").and_then(Json::as_f64))
                    .unwrap();
                assert!(seconds.is_finite(), "prediction went non-finite mid-swap");
            }
        })
    };
    reloader.join().unwrap();
    let promoted = promoter.join().unwrap();
    prober.join().unwrap();

    // Last writer won: exactly one serving generation, version equal to
    // the full swap count, still answering.
    let resolved = router.registry().resolve(Some("gb"), None).unwrap();
    assert_eq!(resolved.version as usize, 1 + LAPS + promoted);
    let advise = router.handle(&request(
        "POST",
        "/v1/advise",
        r#"{"o": 120, "v": 900, "goal": "stq"}"#,
        "race-post",
    ));
    assert_eq!(advise.status, 200);

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn shadow_scoring_adds_under_five_percent_to_advise() {
    let (router, path, x, y, problems) = soak_router("lifecycle-latency", soak_config());
    router.lifecycle().install_candidate(
        "gb",
        "aurora",
        candidate_like(&x, &y, 13),
        test_lineage(),
    );

    // Distinct questions so every advise runs the full pipeline (cache
    // misses), with the shadow stage scoring each primary answer.
    for (i, &(o, v)) in problems.iter().enumerate().take(24) {
        let resp = router.handle(&request(
            "POST",
            "/v1/advise",
            &format!(r#"{{"o": {o}, "v": {v}, "goal": "bq"}}"#),
            &format!("lat-{i}"),
        ));
        assert_eq!(resp.status, 200);
    }
    let m = router.metrics();
    assert!(m.advise_stage_count(AdviseStage::Shadow) >= problems.len().min(24) as u64);
    let shadow = m.advise_stage_mean_seconds(AdviseStage::Shadow);
    let pipeline = m.advise_stage_mean_seconds(AdviseStage::Cache)
        + m.advise_stage_mean_seconds(AdviseStage::Sweep)
        + m.advise_stage_mean_seconds(AdviseStage::Encode)
        + shadow;
    assert!(shadow.is_finite() && pipeline.is_finite());
    // One flat predict_row against a whole candidate sweep: give the 5%
    // bound 0.5 ms of absolute slack to absorb scheduler jitter on slow
    // CI machines.
    assert!(
        shadow < 0.05 * pipeline + 5e-4,
        "shadow stage mean {shadow}s vs pipeline mean {pipeline}s"
    );

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn poison_candidate_is_rejected_and_never_promoted() {
    let (router, path, _x, _y, _) = soak_router("lifecycle-poison", soak_config());
    let poison = {
        use chemcost_ml::tree::FlatNode;
        let leaf =
            FlatNode { feature: u32::MAX, threshold: 0.0, left: 0, right: 0, value: f64::NAN };
        GradientBoosting::from_export(0.0, 0.1, 4, &[vec![leaf]])
    };
    router.lifecycle().install_candidate("gb", "aurora", poison, test_lineage());
    assert_eq!(router.lifecycle().group_state("gb", "aurora"), Some(LifecycleState::Shadow));

    // The first shadow-scored request catches the NaN: candidate gone,
    // group rejected, the client answer untouched.
    let resp = router.handle(&request(
        "POST",
        "/v1/predict",
        r#"{"rows": [{"o": 120, "v": 900, "nodes": 64, "tile": 24}]}"#,
        "poison-probe",
    ));
    assert_eq!(resp.status, 200);
    let seconds = body_json(&resp)
        .get("predictions")
        .and_then(Json::as_array)
        .and_then(|p| p[0].get("seconds").and_then(Json::as_f64))
        .unwrap();
    assert!(seconds.is_finite());
    assert_eq!(router.lifecycle().group_state("gb", "aurora"), Some(LifecycleState::Rejected));
    assert!(gauge(&router, r#"chemcost_lifecycle_promotions_total{outcome="rejected"}"#) >= 1.0);
    assert_eq!(gauge(&router, r#"chemcost_lifecycle_promotions_total{outcome="auto"}"#), 0.0);
    assert_eq!(gauge(&router, r#"chemcost_lifecycle_promotions_total{outcome="operator"}"#), 0.0);
    let group = lifecycle_group(&router);
    assert_eq!(group.get("state").and_then(Json::as_str), Some("rejected"));
    // The registry never saw the poison.
    assert_eq!(router.registry().resolve(Some("gb"), None).unwrap().version, 1);
    // A promote attempt against the rejected group is a structured 409.
    let promote = router.handle(&request("POST", "/v1/lifecycle/promote", "{}", "poison-promote"));
    assert_eq!(promote.status, 409);

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn freeze_pins_a_group_and_unfreeze_releases_it() {
    let (router, path, _x, _y, _) = soak_router("lifecycle-freeze", soak_config());
    let freeze = router.handle(&request("POST", "/v1/lifecycle/freeze", "{}", "fz-1"));
    assert_eq!(freeze.status, 200, "{}", String::from_utf8_lossy(&freeze.body));
    let parsed = body_json(&freeze);
    assert_eq!(parsed.get("frozen").and_then(Json::as_bool), Some(true));
    assert_eq!(parsed.get("was_frozen").and_then(Json::as_bool), Some(false));
    assert_eq!(lifecycle_group(&router).get("frozen").and_then(Json::as_bool), Some(true));

    let unfreeze =
        router.handle(&request("POST", "/v1/lifecycle/freeze", r#"{"frozen": false}"#, "fz-2"));
    assert_eq!(unfreeze.status, 200);
    assert_eq!(lifecycle_group(&router).get("frozen").and_then(Json::as_bool), Some(false));

    // Bad inputs stay structured: non-boolean flag and unknown models.
    let bad = router.handle(&request("POST", "/v1/lifecycle/freeze", r#"{"frozen": 3}"#, "fz-3"));
    assert_eq!(bad.status, 400);
    let ghost =
        router.handle(&request("POST", "/v1/lifecycle/freeze", r#"{"model": "ghost"}"#, "fz-4"));
    assert_eq!(ghost.status, 404);

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

/// Satellite: `GET /v1/quality/next_experiments` must return a structured
/// empty plan — never an error — when there is nothing to rank.
#[test]
fn next_experiments_is_structured_empty_without_observations() {
    let (router, path, _x, _y, problems) = soak_router("lifecycle-next", soak_config());

    // Zero observations anywhere: 200 with an empty plan and a reason.
    let resp = router.handle(&Request::new("GET", "/v1/quality/next_experiments", b""));
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let plan = body_json(&resp);
    assert_eq!(plan.get("configs").and_then(Json::as_array).map(<[Json]>::len), Some(0));
    assert!(plan.get("reason").and_then(Json::as_str).is_some(), "{plan:?}");

    // Too few observations for the GP to fit: still 200, still reasoned.
    let (o, v) = problems[0];
    round_trip(&router, o, v, "ne-1", 42, 1.0);
    let resp = router.handle(&Request::new("GET", "/v1/quality/next_experiments", b""));
    assert_eq!(resp.status, 200);
    let plan = body_json(&resp);
    assert_eq!(plan.get("configs").and_then(Json::as_array).map(<[Json]>::len), Some(0));
    assert!(plan.get("reason").and_then(Json::as_str).is_some(), "{plan:?}");

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}
