//! End-to-end observability test: a real server on an ephemeral port
//! with the structured-log layer wired to a JSONL file and an in-memory
//! ring. Asserts the PR's acceptance criterion: one `/v1/advise` request
//! at debug level produces correlated records (the same trace id from
//! accept → sweep → respond), the trace id round-trips through
//! `X-Request-Id`, and `/metrics` exposes queue depth, in-flight, shed,
//! per-stage advise latency, and build info — in lint-clean exposition
//! format.

use chemcost_linalg::Matrix;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_obs::{self as obs, JsonlSink, Level, RingSink};
use chemcost_serve::json::Json;
use chemcost_serve::metrics::lint_exposition;
use chemcost_serve::{ModelRegistry, Router, Server};
use chemcost_sim::datagen::generate_dataset_sized;
use chemcost_sim::machine::by_name;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn tiny_model() -> GradientBoosting {
    let machine = by_name("aurora").unwrap();
    let samples = generate_dataset_sized(&machine, 100, 11);
    let x = Matrix::from_fn(samples.len(), 4, |i, j| match j {
        0 => samples[i].o as f64,
        1 => samples[i].v as f64,
        2 => samples[i].nodes as f64,
        _ => samples[i].tile as f64,
    });
    let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let mut gb = GradientBoosting::new(25, 3, 0.2);
    gb.seed = 5;
    gb.fit(&x, &y).unwrap();
    gb
}

/// One HTTP exchange on a fresh connection; returns (status, headers, body).
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{extra_headers}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response.split_whitespace().nth(1).unwrap().parse().unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
}

/// The whole scenario lives in one test function: the obs dispatcher is
/// process-global, so a single test owning level + sinks avoids
/// cross-test interference.
#[test]
fn advise_request_emits_correlated_records_and_saturation_metrics() {
    obs::set_level(Some(Level::Debug));
    let ring = Arc::new(RingSink::new(1024));
    let ring_handle = obs::add_sink(ring.clone());
    let log_path =
        std::env::temp_dir().join(format!("chemcost-obs-e2e-{}.jsonl", std::process::id()));
    let jsonl_handle =
        obs::add_sink(Arc::new(JsonlSink::create(&log_path).expect("create log file")));

    let registry = Arc::new(ModelRegistry::new());
    registry.insert("gb", "aurora", tiny_model());
    let server = Server::bind("127.0.0.1:0", Router::new(registry), 2).unwrap().with_queue_cap(8);
    assert_eq!(server.queue_cap(), 8);
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // -- one advise request with a client-chosen request id --
    let trace_id = "e2e-advise-trace-1";
    let (status, headers, body) = request(
        addr,
        "POST",
        "/v1/advise",
        &format!("X-Request-Id: {trace_id}\r\n"),
        r#"{"o": 120, "v": 900, "goal": "stq"}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        header(&headers, "x-request-id"),
        Some(trace_id),
        "client-sent id must be echoed back"
    );

    // -- the request's records correlate: accept → cache → sweep → respond,
    //    all stamped with the same trace id --
    let in_trace = |name: &str| {
        ring.events_named(name).into_iter().find(|e| e.trace.as_deref() == Some(trace_id))
    };
    let accept = in_trace("http.accept").expect("http.accept record");
    assert_eq!(accept.field("path"), Some(&obs::Value::Str("/v1/advise".into())));
    let cache = in_trace("advise.cache").expect("advise.cache record");
    assert_eq!(cache.field("hit"), Some(&obs::Value::Bool(false)), "cold cache");
    let sweep = in_trace("advise.sweep").expect("advise.sweep span close");
    assert!(sweep.duration_micros.is_some(), "sweep span must carry its duration");
    assert!(sweep.span.is_some());
    let done = in_trace("http.request").expect("http.request access-log record");
    assert_eq!(done.field("route"), Some(&obs::Value::Str("advise".into())));
    assert_eq!(done.field("status"), Some(&obs::Value::U64(200)));
    assert!(done.field("duration_us").is_some());

    // -- the same records landed in the JSONL file, parseable, same trace --
    // The JSONL sink buffers; flush before reading mid-life.
    obs::flush();
    let log = std::fs::read_to_string(&log_path).expect("read log file");
    let mut names_in_trace = Vec::new();
    for line in log.lines() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        assert!(v.get("ts_us").is_some(), "{line}");
        assert!(v.get("level").is_some(), "{line}");
        assert!(v.get("fields").is_some(), "{line}");
        if v.get("trace").and_then(Json::as_str) == Some(trace_id) {
            names_in_trace.push(v.get("name").and_then(Json::as_str).unwrap().to_string());
        }
    }
    for name in ["http.accept", "advise.cache", "advise.sweep", "http.request"] {
        assert!(names_in_trace.iter().any(|n| n == name), "{name} missing from {names_in_trace:?}");
    }

    // -- a request without X-Request-Id gets a generated 16-hex id --
    let (status, headers, _) = request(addr, "GET", "/healthz", "", "");
    assert_eq!(status, 200);
    let generated = header(&headers, "x-request-id").expect("generated id echoed");
    assert_eq!(generated.len(), 16, "monotonic ids render as 16 hex chars: {generated}");
    assert!(generated.chars().all(|c| c.is_ascii_hexdigit()), "{generated}");

    // -- a warm repeat of the same advise is a cache hit, same correlation --
    let warm_id = "e2e-advise-trace-2";
    let (status, _, _) = request(
        addr,
        "POST",
        "/v1/advise",
        &format!("X-Request-Id: {warm_id}\r\n"),
        r#"{"o": 120, "v": 900, "goal": "stq"}"#,
    );
    assert_eq!(status, 200);
    let warm_cache = ring
        .events_named("advise.cache")
        .into_iter()
        .find(|e| e.trace.as_deref() == Some(warm_id))
        .expect("warm advise.cache record");
    assert_eq!(warm_cache.field("hit"), Some(&obs::Value::Bool(true)));

    // -- /metrics: saturation gauges, shed counter, per-stage histogram,
    //    build info; the whole exposition lints clean --
    let (status, _, text) = request(addr, "GET", "/metrics", "", "");
    assert_eq!(status, 200);
    assert!(
        text.contains("\nchemcost_requests_in_flight 1\n"),
        "scrape itself is in flight:\n{text}"
    );
    assert!(text.contains("\nchemcost_pool_queue_depth 0\n"), "{text}");
    assert!(text.contains("\nchemcost_requests_shed_total 0\n"), "{text}");
    assert!(text.contains("chemcost_build_info{version=\""), "{text}");
    // Stage counts: the cache stage ran for both advises, the sweep and
    // encode stages only for the cold one.
    assert!(
        text.contains("chemcost_advise_stage_duration_seconds_count{stage=\"cache\"} 2"),
        "{text}"
    );
    assert!(
        text.contains("chemcost_advise_stage_duration_seconds_count{stage=\"sweep\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("chemcost_advise_stage_duration_seconds_count{stage=\"encode\"} 1"),
        "{text}"
    );
    if let Err(problems) = lint_exposition(&text) {
        panic!("/metrics exposition fails its own linter: {problems:?}\n{text}");
    }

    let (status, _, _) = request(addr, "POST", "/v1/shutdown", "", "");
    assert_eq!(status, 200);
    server_thread.join().unwrap().unwrap();

    obs::remove_sink(ring_handle);
    obs::remove_sink(jsonl_handle);
    std::fs::remove_file(&log_path).ok();
}
