//! Steady-state allocation accounting for the serving hot paths.
//!
//! A counting global allocator (test binary only — the production
//! binary keeps the system allocator) tallies per-thread allocation
//! *counts*. After warm-up, the engineered zero-alloc components must
//! perform exactly zero allocations per operation:
//!
//! - the advise cache's borrowed-key probe on a warm hit,
//! - sharded metrics counters,
//! - HTTP response encoding into a reused connection buffer,
//! - quantized flat inference into a reused output buffer
//!   (thread-local scratch inside `chemcost-ml`).
//!
//! The full warm `/v1/advise` request through `Router::handle` is held
//! to a small fixed budget rather than zero: what remains is the
//! per-request journal id and response header strings, which are part
//! of the API (each round trip gets a fresh prediction id). The bound
//! is a regression tripwire — new per-request allocations on the warm
//! path fail this test. See docs/PERFORMANCE.md for the inventory.
//!
//! Everything runs inside ONE `#[test]` so the per-thread counter only
//! ever observes this test's own work.

use chemcost_linalg::Matrix;
use chemcost_ml::flat::FlatGbt;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_serve::cache::{AdviseCache, AdviseKeyRef};
use chemcost_serve::http::{encode_response_into, Request, Response};
use chemcost_serve::{Metrics, ModelRegistry, Router};
use chemcost_sim::datagen::generate_dataset_sized;
use chemcost_sim::machine::by_name;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    // `const` init: the TLS slot is usable from inside the allocator
    // without lazy initialization (which would itself allocate), and
    // `Cell<u64>` has no destructor, so access never re-enters the
    // runtime during thread teardown.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct Counting;

fn bump() {
    ALLOCS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

/// Allocation count on this thread across `f`.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

/// The warm advise request may allocate at most this many times: the
/// per-request prediction id (and its response header strings) plus the
/// response struct itself. Measured 15 on the current code; headroom
/// covers allocator-count jitter across toolchains, not new work.
const WARM_ADVISE_ALLOC_BUDGET: u64 = 24;

fn trained_flat() -> FlatGbt {
    let machine = by_name("aurora").unwrap();
    let samples = generate_dataset_sized(&machine, 80, 7);
    let x = Matrix::from_fn(samples.len(), 4, |i, j| match j {
        0 => samples[i].o as f64,
        1 => samples[i].v as f64,
        2 => samples[i].nodes as f64,
        _ => samples[i].tile as f64,
    });
    let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let mut gb = GradientBoosting::new(60, 4, 0.1);
    gb.seed = 11;
    gb.fit(&x, &y).unwrap();
    FlatGbt::compile(&gb)
}

fn test_router() -> Router {
    let machine = by_name("aurora").unwrap();
    let samples = generate_dataset_sized(&machine, 80, 7);
    let x = Matrix::from_fn(samples.len(), 4, |i, j| match j {
        0 => samples[i].o as f64,
        1 => samples[i].v as f64,
        2 => samples[i].nodes as f64,
        _ => samples[i].tile as f64,
    });
    let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let mut gb = GradientBoosting::new(60, 4, 0.1);
    gb.seed = 11;
    gb.fit(&x, &y).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("gb", "aurora", gb);
    Router::new(registry)
}

#[test]
fn warm_hot_paths_do_not_allocate() {
    // --- component: advise cache borrowed-key probe ------------------
    let cache = AdviseCache::new(64);
    let key = AdviseKeyRef {
        model: "gb",
        version: 1,
        machine: "aurora",
        o: 116,
        v: 840,
        goal: "stq",
        budget_bits: None,
        deadline_bits: None,
    };
    cache.insert(key.to_owned_key(), "{\"ok\":true}", Some((64, 24, 1.5)));
    assert!(cache.get(&key).is_some(), "warm probe must hit");
    let n = allocations_in(|| {
        for _ in 0..100 {
            let hit = cache.get(&key);
            assert!(hit.is_some());
        }
    });
    assert_eq!(n, 0, "warm cache probe allocated {n} times per 100 hits");

    // --- component: sharded metrics counters -------------------------
    let metrics = Metrics::new();
    metrics.record_cache_hit(); // warm this thread's stripe assignment
    metrics.record_keepalive_reuse();
    let n = allocations_in(|| {
        for _ in 0..100 {
            metrics.record_cache_hit();
            metrics.record_keepalive_reuse();
        }
    });
    assert_eq!(n, 0, "sharded counters allocated {n} times per 200 increments");
    assert_eq!(metrics.cache_hits(), 101);

    // --- component: response encode into a reused buffer -------------
    let response = Response::text(200, "ok");
    let mut wire = Vec::new();
    encode_response_into(&response, true, &mut wire); // size the buffer
    let n = allocations_in(|| {
        for _ in 0..100 {
            wire.clear();
            encode_response_into(&response, true, &mut wire);
        }
    });
    assert_eq!(n, 0, "encode into warm buffer allocated {n} times per 100 encodes");

    // --- component: quantized flat inference, warm buffers -----------
    let flat = trained_flat();
    let x = Matrix::from_fn(32, 4, |i, j| [120.0 + i as f64, 900.0, 64.0, 24.0][j]);
    let mut out = Vec::new();
    flat.predict_batch_into(&x, &mut out); // warm thread-local scratch + out
    let n = allocations_in(|| {
        for _ in 0..10 {
            flat.predict_batch_into(&x, &mut out);
        }
    });
    assert_eq!(n, 0, "warm quantized inference allocated {n} times per 10 batches");

    // --- full warm advise request through the router ------------------
    let router = test_router();
    let body = br#"{"o":116,"v":840,"goal":"stq"}"#;
    // Two warm-ups: fill the cache, then let every lazy structure on the
    // replay path (journal ring, header vectors, obs state) reach
    // steady state.
    for _ in 0..2 {
        let resp = router.handle(&Request::new("POST", "/v1/advise", body));
        assert_eq!(resp.status, 200);
    }
    let request = Request::new("POST", "/v1/advise", body);
    let n = allocations_in(|| {
        let resp = router.handle(&request);
        assert_eq!(resp.status, 200);
    });
    assert!(
        n <= WARM_ADVISE_ALLOC_BUDGET,
        "warm /v1/advise allocated {n} times (budget {WARM_ADVISE_ALLOC_BUDGET}); \
         a new allocation crept onto the cached-hit path"
    );
}
