//! Wire-level HTTP/1.1 tests against the event-driven data plane: raw
//! `TcpStream` clients exercising the real incremental parser through a
//! real `Server` — pipelining, arbitrary packet splits mid-header and
//! mid-body, oversized headers, keep-alive reuse after a 4xx, graceful
//! drain under keep-alive, and the concurrent keep-alive soak the old
//! thread-per-connection core could not survive.

use chemcost_linalg::Matrix;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_serve::{ModelRegistry, Router, Server};
use chemcost_sim::datagen::generate_dataset_sized;
use chemcost_sim::machine::by_name;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

/// Train a small-but-real GB model on simulated aurora data.
fn tiny_model() -> GradientBoosting {
    let machine = by_name("aurora").unwrap();
    let samples = generate_dataset_sized(&machine, 80, 23);
    let x = Matrix::from_fn(samples.len(), 4, |i, j| match j {
        0 => samples[i].o as f64,
        1 => samples[i].v as f64,
        2 => samples[i].nodes as f64,
        _ => samples[i].tile as f64,
    });
    let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let mut gb = GradientBoosting::new(15, 3, 0.2);
    gb.seed = 7;
    gb.fit(&x, &y).unwrap();
    gb
}

fn new_server(workers: usize) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("gb-aurora", "aurora", tiny_model());
    registry.set_default("aurora", "gb-aurora").unwrap();
    Server::bind("127.0.0.1:0", Router::new(registry), workers).expect("bind ephemeral")
}

/// One long-lived server shared by every test that never shuts it down;
/// the thread leaks deliberately (the process exit reaps it).
fn shared_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = new_server(2);
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        addr
    })
}

const PREDICT_BODY: &str = r#"{"rows": [{"o": 100, "v": 800, "nodes": 32, "tile": 24}]}"#;

fn http(method: &str, path: &str, body: &str, close: bool) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: wire\r\nContent-Length: {}{}\r\n\r\n{body}",
        body.len(),
        if close { "\r\nConnection: close" } else { "" },
    )
    .into_bytes()
}

struct Resp {
    status: u16,
    connection: String,
    body: String,
}

/// Read exactly one response off `stream`, carrying pipelined leftovers
/// between calls in `carry`. Panics on malformed framing — every server
/// response carries a Content-Length.
fn read_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> Resp {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "EOF before response head; got {:?}", String::from_utf8_lossy(carry));
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(carry[..head_end].to_vec()).expect("UTF-8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head:?}"));
    let mut connection = String::new();
    let mut content_length = 0usize;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "connection" => connection = value.trim().to_string(),
                "content-length" => content_length = value.trim().parse().expect("length"),
                _ => {}
            }
        }
    }
    while carry.len() < head_end + content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "EOF mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&carry[head_end..head_end + content_length]).into_owned();
    carry.drain(..head_end + content_length);
    Resp { status, connection, body }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.set_nodelay(true).ok();
    stream
}

// -- pipelining ---------------------------------------------------------

#[test]
fn pipelined_requests_are_answered_in_order() {
    let mut stream = connect(shared_addr());
    // Three requests in a single write: the responses must come back in
    // request order even though the handlers run on different workers.
    let mut burst = http("GET", "/healthz", "", false);
    burst.extend(http("POST", "/v1/predict", PREDICT_BODY, false));
    burst.extend(http("GET", "/v1/models", "", false));
    stream.write_all(&burst).unwrap();

    let mut carry = Vec::new();
    let first = read_response(&mut stream, &mut carry);
    let second = read_response(&mut stream, &mut carry);
    let third = read_response(&mut stream, &mut carry);
    assert_eq!(first.status, 200, "{}", first.body);
    assert!(first.body.contains("\"ok\""), "healthz first: {}", first.body);
    assert_eq!(second.status, 200, "{}", second.body);
    assert!(second.body.contains("predictions"), "predict second: {}", second.body);
    assert_eq!(third.status, 200, "{}", third.body);
    assert!(third.body.contains("models"), "models third: {}", third.body);
    for resp in [&first, &second, &third] {
        assert_eq!(resp.connection, "keep-alive");
    }
}

#[test]
fn request_split_mid_header_and_mid_body_still_parses() {
    let mut stream = connect(shared_addr());
    let raw = http("POST", "/v1/predict", PREDICT_BODY, true);
    // Cut inside the request line, inside a header, at the head/body
    // boundary, and inside the JSON body.
    let head_len = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    let cuts = [4, 20, head_len, head_len + PREDICT_BODY.len() / 2, raw.len()];
    let mut start = 0;
    for cut in cuts {
        stream.write_all(&raw[start..cut]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
        start = cut;
    }
    let resp = read_response(&mut stream, &mut Vec::new());
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("predictions"), "{}", resp.body);
}

// -- parser limits and malformed input ----------------------------------

#[test]
fn oversized_header_line_is_rejected_with_431_and_close() {
    let mut stream = connect(shared_addr());
    // A single 9 KiB header line crosses MAX_LINE (8 KiB) mid-stream;
    // the parser must reject it without waiting for the line to end.
    let raw = format!("GET /healthz HTTP/1.1\r\nX-Padding: {}\r\n\r\n", "a".repeat(9 * 1024));
    stream.write_all(raw.as_bytes()).unwrap();
    let resp = read_response(&mut stream, &mut Vec::new());
    assert_eq!(resp.status, 431, "{}", resp.body);
    assert_eq!(resp.connection, "close");
    // And the server hangs up: the next read is a clean EOF.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
}

#[test]
fn keep_alive_survives_a_4xx_response() {
    let mut stream = connect(shared_addr());
    let mut carry = Vec::new();
    // Malformed JSON is the application's problem, not the connection's:
    // the 400 must keep the connection open for the next request.
    stream.write_all(&http("POST", "/v1/advise", "{not json", false)).unwrap();
    let bad = read_response(&mut stream, &mut carry);
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert_eq!(bad.connection, "keep-alive");

    stream.write_all(&http("GET", "/healthz", "", true)).unwrap();
    let ok = read_response(&mut stream, &mut carry);
    assert_eq!(ok.status, 200, "{}", ok.body);
    assert_eq!(ok.connection, "close");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// However the client fragments its writes — any number of splits at
    /// any byte offsets, including mid-header and mid-body — a pipelined
    /// two-request burst parses into exactly two 200s.
    #[test]
    fn any_write_fragmentation_yields_the_same_responses(
        splits in collection::vec(1usize..220, 0..6),
    ) {
        let mut raw = http("POST", "/v1/predict", PREDICT_BODY, false);
        raw.extend(http("GET", "/healthz", "", true));
        let mut cuts: Vec<usize> = splits.iter().map(|s| s % raw.len()).collect();
        cuts.push(raw.len());
        cuts.sort_unstable();
        cuts.dedup();

        let mut stream = connect(shared_addr());
        let mut start = 0;
        for cut in cuts {
            if cut == 0 {
                continue;
            }
            stream.write_all(&raw[start..cut]).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
            start = cut;
        }
        let mut carry = Vec::new();
        let predict = read_response(&mut stream, &mut carry);
        let health = read_response(&mut stream, &mut carry);
        prop_assert_eq!(predict.status, 200);
        prop_assert!(predict.body.contains("predictions"), "{}", predict.body);
        prop_assert_eq!(health.status, 200);
        prop_assert_eq!(health.connection, "close");
    }

    /// Garbage in place of a request line gets a clean 400 and a close,
    /// never a hang or a crash.
    #[test]
    fn garbage_request_lines_get_a_400_and_a_close(seed in 0u64..u64::MAX, len in 1usize..12) {
        // A single whitespace-free token: the parser rejects it for the
        // missing request target, deterministically a 400.
        let noise: String =
            (0..len).map(|i| (b'a' + ((seed >> (i * 5)) % 26) as u8) as char).collect();
        let mut stream = connect(shared_addr());
        stream.write_all(format!("{noise}\r\n\r\n").as_bytes()).unwrap();
        let resp = read_response(&mut stream, &mut Vec::new());
        prop_assert_eq!(resp.status, 400);
        prop_assert_eq!(resp.connection.as_str(), "close");
        let mut rest = Vec::new();
        prop_assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    }
}

// -- graceful drain under keep-alive ------------------------------------

#[test]
fn shutdown_under_keepalive_forces_close_and_stops_accepting() {
    let server = new_server(2);
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // A persistent connection, established and idle when drain begins.
    let mut idle = connect(addr);
    let mut idle_carry = Vec::new();
    idle.write_all(&http("GET", "/healthz", "", false)).unwrap();
    let warm = read_response(&mut idle, &mut idle_carry);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.connection, "keep-alive");

    // The shutdown request itself rides a keep-alive connection — the
    // drain must override the client's wish and answer with a close.
    let mut trigger = connect(addr);
    trigger.write_all(&http("POST", "/v1/shutdown", "", false)).unwrap();
    let bye = read_response(&mut trigger, &mut Vec::new());
    assert_eq!(bye.status, 200, "{}", bye.body);
    assert_eq!(bye.connection, "close", "drain must force Connection: close");
    let mut rest = Vec::new();
    assert_eq!(trigger.read_to_end(&mut rest).unwrap(), 0, "server must hang up after drain");

    // The idle persistent connection is closed too, not left dangling.
    assert_eq!(idle.read(&mut [0u8; 64]).unwrap_or(0), 0, "idle keep-alive conn must be closed");

    // And the listener is gone: new connects are refused (allow a short
    // grace for the kernel backlog to empty).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match TcpStream::connect(addr) {
            Err(_) => break,
            Ok(mut s) => {
                // A backlog leftover: completed by the kernel before the
                // listener closed; the server never accepts it, so any
                // read ends in EOF or a reset. Either way, retry.
                s.set_read_timeout(Some(Duration::from_millis(200))).ok();
                let _ = s.read(&mut [0u8; 16]);
            }
        }
        assert!(Instant::now() < deadline, "listener still accepting after drain");
        std::thread::sleep(Duration::from_millis(50));
    }

    server_thread.join().unwrap().expect("server run() returns Ok after drain");
}

// -- concurrent keep-alive soak -----------------------------------------

/// The acceptance soak: the seed thread-per-connection core pinned one
/// worker for a connection's whole keep-alive lifetime, so at 2 workers
/// it topped out at ~10 concurrent persistent connections (2 active + 8
/// queue slots) before shedding at accept — no queue depth could fix
/// that, because idle connections held their slot. The event loop must
/// hold 100 concurrent keep-alive connections — 10× — at the same
/// worker count, answering every request 200 with zero 503s. The
/// compute queue is sized to absorb the barrier-synchronized burst of
/// 100 simultaneous one-row predicts; connections themselves no longer
/// consume compute slots.
#[test]
fn soak_100_keepalive_connections_on_two_workers_without_sheds() {
    const CONNS: usize = 100;
    const REQUESTS_PER_CONN: usize = 5;

    let server = new_server(2).with_queue_cap(2 * CONNS);
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let barrier = Arc::new(Barrier::new(CONNS));
    let clients: Vec<_> = (0..CONNS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || -> Result<(), String> {
                let mut stream = connect(addr);
                // Hold until every connection is open, so the server
                // really does carry all 100 at once.
                barrier.wait();
                let mut carry = Vec::new();
                for n in 0..REQUESTS_PER_CONN {
                    let last = n + 1 == REQUESTS_PER_CONN;
                    stream
                        .write_all(&http("POST", "/v1/predict", PREDICT_BODY, last))
                        .map_err(|e| format!("conn {i} write {n}: {e}"))?;
                    let resp = read_response(&mut stream, &mut carry);
                    if resp.status != 200 {
                        return Err(format!("conn {i} req {n}: {} {}", resp.status, resp.body));
                    }
                }
                Ok(())
            })
        })
        .collect();
    let failures: Vec<String> =
        clients.into_iter().filter_map(|c| c.join().expect("client thread").err()).collect();
    assert!(failures.is_empty(), "soak failures: {failures:?}");

    // The server's own accounting agrees: no sheds, and every connection
    // was reused REQUESTS_PER_CONN - 1 times.
    let mut stream = connect(addr);
    stream.write_all(&http("GET", "/metrics", "", true)).unwrap();
    let metrics = read_response(&mut stream, &mut Vec::new());
    assert_eq!(metrics.status, 200);
    let series = |name: &str| -> u64 {
        metrics
            .body
            .lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("series {name} missing from /metrics"))
    };
    assert_eq!(series("chemcost_requests_shed_total"), 0, "soak must not shed");
    assert_eq!(
        series("chemcost_keepalive_reuses_total"),
        (CONNS * (REQUESTS_PER_CONN - 1)) as u64,
        "every connection must have been reused"
    );

    let mut trigger = connect(addr);
    trigger.write_all(&http("POST", "/v1/shutdown", "", true)).unwrap();
    let bye = read_response(&mut trigger, &mut Vec::new());
    assert_eq!(bye.status, 200);
    server_thread.join().unwrap().expect("clean shutdown after soak");
}

// -- micro-batching is observable on the wire ----------------------------

/// Concurrent predicts through real sockets land in the batcher: with a
/// generous window, simultaneous requests coalesce into fewer flat-model
/// batch calls than requests.
#[test]
fn concurrent_predicts_are_micro_batched() {
    use chemcost_serve::BatcherConfig;
    const CLIENTS: usize = 8;

    let server = new_server(4)
        .with_batch_config(BatcherConfig { window: Duration::from_millis(5), max_rows: 1024 });
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut stream = connect(addr);
                barrier.wait();
                stream.write_all(&http("POST", "/v1/predict", PREDICT_BODY, true)).unwrap();
                let resp = read_response(&mut stream, &mut Vec::new());
                assert_eq!(resp.status, 200, "{}", resp.body);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    let mut stream = connect(addr);
    stream.write_all(&http("GET", "/metrics", "", true)).unwrap();
    let metrics = read_response(&mut stream, &mut Vec::new());
    let batch_rows: u64 = metrics
        .body
        .lines()
        .find(|l| l.starts_with("chemcost_batch_size_sum "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("chemcost_batch_size_sum in /metrics");
    let batch_calls: u64 = metrics
        .body
        .lines()
        .find(|l| l.starts_with("chemcost_batch_size_count "))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("chemcost_batch_size_count in /metrics");
    // 8 one-row requests arrived together under a 5 ms window: the rows
    // all went through the batcher, in strictly fewer calls than rows.
    assert_eq!(batch_rows, CLIENTS as u64, "every predict row must route through the batcher");
    assert!(
        batch_calls < CLIENTS as u64,
        "expected coalescing: {batch_calls} batch calls for {CLIENTS} rows"
    );

    let mut trigger = connect(addr);
    trigger.write_all(&http("POST", "/v1/shutdown", "", true)).unwrap();
    let _ = read_response(&mut trigger, &mut Vec::new());
    server_thread.join().unwrap().expect("clean shutdown");
}
