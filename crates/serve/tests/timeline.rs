//! Wire-level tests for PR 8's request timelines: stage sums reconcile
//! with end-to-end latency under a concurrent keep-alive load with the
//! micro-batcher active, the flight recorder retains/evicts correctly
//! under sustained traffic, and one trace id correlates the access log,
//! the batcher's `batch.flush` event, and the `request.timeline` event.

use chemcost_linalg::Matrix;
use chemcost_ml::gradient_boosting::GradientBoosting;
use chemcost_ml::Regressor;
use chemcost_obs as obs;
use chemcost_serve::json::Json;
use chemcost_serve::{BatcherConfig, ModelRegistry, Router, Server};
use chemcost_sim::datagen::generate_dataset_sized;
use chemcost_sim::machine::by_name;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const STAGE_KEYS: [&str; 6] =
    ["read_us", "queue_us", "batch_wait_us", "handler_us", "reorder_us", "write_us"];

fn tiny_model() -> GradientBoosting {
    let machine = by_name("aurora").unwrap();
    let samples = generate_dataset_sized(&machine, 80, 23);
    let x = Matrix::from_fn(samples.len(), 4, |i, j| match j {
        0 => samples[i].o as f64,
        1 => samples[i].v as f64,
        2 => samples[i].nodes as f64,
        _ => samples[i].tile as f64,
    });
    let y: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    let mut gb = GradientBoosting::new(15, 3, 0.2);
    gb.seed = 7;
    gb.fit(&x, &y).unwrap();
    gb
}

fn new_server(workers: usize) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("gb-aurora", "aurora", tiny_model());
    registry.set_default("aurora", "gb-aurora").unwrap();
    Server::bind("127.0.0.1:0", Router::new(registry), workers).expect("bind ephemeral")
}

const PREDICT_BODY: &str = r#"{"rows": [{"o": 100, "v": 800, "nodes": 32, "tile": 24}]}"#;

fn http(method: &str, path: &str, trace: Option<&str>, body: &str, close: bool) -> Vec<u8> {
    let trace = trace.map(|t| format!("X-Request-Id: {t}\r\n")).unwrap_or_default();
    format!(
        "{method} {path} HTTP/1.1\r\nHost: tl\r\n{trace}Content-Length: {}{}\r\n\r\n{body}",
        body.len(),
        if close { "\r\nConnection: close" } else { "" },
    )
    .into_bytes()
}

/// Read one Content-Length-framed response, carrying leftovers.
fn read_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String) {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "EOF before head: {:?}", String::from_utf8_lossy(carry));
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(carry[..head_end].to_vec()).expect("UTF-8 head");
    let status: u16 = head.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim().eq_ignore_ascii_case("content-length").then(|| value.trim().parse().ok())?
        })
        .expect("Content-Length");
    while carry.len() < head_end + content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "EOF mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&carry[head_end..head_end + content_length]).into_owned();
    carry.drain(..head_end + content_length);
    (status, body)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.set_nodelay(true).ok();
    stream
}

fn fetch_json(addr: SocketAddr, path: &str) -> Json {
    let mut stream = connect(addr);
    stream.write_all(&http("GET", path, None, "", true)).unwrap();
    let (status, body) = read_response(&mut stream, &mut Vec::new());
    assert_eq!(status, 200, "{body}");
    Json::parse(&body).unwrap_or_else(|e| panic!("bad {path} JSON: {e}\n{body}"))
}

fn shutdown(addr: SocketAddr) {
    let mut stream = connect(addr);
    stream.write_all(&http("POST", "/v1/shutdown", None, "", true)).unwrap();
    let (status, _) = read_response(&mut stream, &mut Vec::new());
    assert_eq!(status, 200);
}

fn stage(entry: &Json, key: &str) -> f64 {
    entry.get("stages").and_then(|s| s.get(key)).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

/// The acceptance soak: concurrent keep-alive predicts with the
/// micro-batcher active. Every `/debug/requests` timeline's stage sum
/// reconciles with its end-to-end total (±5%), batch wait and queue
/// wait are separately attributed, trace-matched server totals stay
/// within the client-measured end-to-end time, and the stage histograms
/// plus event-loop health series show up on `/metrics`.
#[test]
fn stage_sums_reconcile_with_end_to_end_latency() {
    const CLIENTS: usize = 16;
    const ROUNDS: usize = 4;

    let server = new_server(4)
        .with_queue_cap(4 * CLIENTS)
        .with_batch_config(BatcherConfig { window: Duration::from_millis(2), max_rows: 1024 });
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    // Barrier-synced rounds so requests really do coalesce in the
    // batcher; each request carries a unique trace id and measures its
    // own client-side end-to-end latency.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || -> Vec<(String, Duration)> {
                let mut stream = connect(addr);
                let mut carry = Vec::new();
                let mut measured = Vec::new();
                for r in 0..ROUNDS {
                    barrier.wait();
                    let trace = format!("tl-{c}-{r}");
                    let started = Instant::now();
                    stream
                        .write_all(&http("POST", "/v1/predict", Some(&trace), PREDICT_BODY, false))
                        .unwrap();
                    let (status, body) = read_response(&mut stream, &mut carry);
                    assert_eq!(status, 200, "{body}");
                    measured.push((trace, started.elapsed()));
                }
                measured
            })
        })
        .collect();
    let client_e2e: Vec<(String, Duration)> =
        clients.into_iter().flat_map(|c| c.join().expect("client thread")).collect();

    let doc = fetch_json(addr, "/debug/requests");
    let sent = CLIENTS * ROUNDS;
    assert!(
        doc.get("completed").and_then(Json::as_usize).unwrap_or(0) >= sent,
        "flight recorder missed requests: {doc:?}"
    );
    let recent = doc.get("recent").and_then(Json::as_array).expect("recent array");
    assert!(!recent.is_empty());
    let mut batch_attributed = 0usize;
    for entry in recent {
        let total = entry.get("total_us").and_then(Json::as_f64).expect("total_us");
        let sum: f64 = STAGE_KEYS.iter().map(|k| stage(entry, k)).sum();
        assert!(sum.is_finite(), "missing stage keys: {entry:?}");
        // The acceptance bound: per-stage durations reconcile with the
        // end-to-end total within 5% (the µs-truncation floor covers
        // sub-10µs requests).
        let tolerance = (total * 0.05).max(10.0);
        assert!(
            (sum - total).abs() <= tolerance,
            "stage sum {sum} vs total {total} µs out of tolerance: {entry:?}"
        );
        if entry.get("path").and_then(Json::as_str) == Some("/v1/predict") {
            let calls = entry
                .get("batch")
                .and_then(|b| b.get("calls"))
                .and_then(Json::as_usize)
                .unwrap_or(0);
            assert!(calls >= 1, "predict did not route through the batcher: {entry:?}");
            if stage(entry, "batch_wait_us") > 0.0 {
                batch_attributed += 1;
            }
        }
    }
    // Queue wait and batch wait are *separately* attributed: with 16
    // barrier-synced clients on 4 workers, at least one retained
    // timeline must show measurable batch wait.
    assert!(batch_attributed > 0, "no timeline attributes batch wait: {doc:?}");

    // Trace-matched server totals stay within what the client measured
    // (small slack: the server stamps `last byte` on its next loop pass
    // after the socket accepted the bytes).
    let slack = Duration::from_millis(50);
    let mut matched = 0usize;
    for entry in recent {
        let Some(trace) = entry.get("trace").and_then(Json::as_str) else { continue };
        let Some((_, e2e)) = client_e2e.iter().find(|(t, _)| t == trace) else { continue };
        matched += 1;
        let total = Duration::from_micros(
            entry.get("total_us").and_then(Json::as_f64).expect("total_us") as u64,
        );
        assert!(
            total <= *e2e + slack,
            "server total {total:?} exceeds client e2e {e2e:?} for {trace}"
        );
    }
    assert!(matched > 0, "no flight-recorder entry matched a client trace id");

    // The histograms and event-loop health series agree on /metrics.
    let mut stream = connect(addr);
    stream.write_all(&http("GET", "/metrics", None, "", true)).unwrap();
    let (status, metrics) = read_response(&mut stream, &mut Vec::new());
    assert_eq!(status, 200);
    let series = |name: &str| -> f64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("series {name} missing from /metrics"))
    };
    for key in ["read", "queue", "batch_wait", "handler", "reorder", "write"] {
        let count =
            series(&format!("chemcost_request_stage_duration_seconds_count{{stage=\"{key}\"}}"));
        assert!(count >= sent as f64, "stage {key} count {count} < {sent}");
    }
    assert!(series("chemcost_event_loop_iteration_duration_seconds_count") > 0.0);
    assert!(series("chemcost_event_loop_events_per_wake_sum") > 0.0);
    assert!(series("chemcost_connections_read_paused") >= 0.0);
    assert!(series("chemcost_connections_write_stalled") >= 0.0);

    shutdown(addr);
    server_thread.join().unwrap().expect("clean shutdown");
}

/// Flight-recorder retention under load: recent keeps exactly its cap
/// (newest-last), slowest stays bounded and sorted, and the completed
/// counter says how lossy eviction was.
#[test]
fn flight_recorder_retention_and_eviction_under_load() {
    const SENT: usize = 100; // > RECENT_CAP (64) and > SLOWEST_CAP (16)

    let server = new_server(2);
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let mut stream = connect(addr);
    let mut carry = Vec::new();
    for n in 0..SENT {
        let trace = format!("evict-{n}");
        stream.write_all(&http("GET", "/healthz", Some(&trace), "", false)).unwrap();
        let (status, _) = read_response(&mut stream, &mut carry);
        assert_eq!(status, 200);
    }

    let doc = fetch_json(addr, "/debug/requests");
    let recent_cap = doc.get("recent_cap").and_then(Json::as_usize).expect("recent_cap");
    let slowest_cap = doc.get("slowest_cap").and_then(Json::as_usize).expect("slowest_cap");
    assert_eq!(recent_cap, chemcost_serve::timeline::RECENT_CAP);
    assert_eq!(slowest_cap, chemcost_serve::timeline::SLOWEST_CAP);
    assert!(doc.get("completed").and_then(Json::as_usize).unwrap_or(0) >= SENT);

    let recent = doc.get("recent").and_then(Json::as_array).expect("recent array");
    assert_eq!(recent.len(), recent_cap, "recent ring must be exactly at cap");
    // Eviction kept the newest: the earliest requests are gone, the
    // last one sent is the final entry.
    assert_eq!(
        recent.last().and_then(|e| e.get("trace")).and_then(Json::as_str),
        Some(format!("evict-{}", SENT - 1).as_str())
    );
    assert!(
        !recent.iter().any(|e| e.get("trace").and_then(Json::as_str) == Some("evict-0")),
        "oldest entry must have been evicted"
    );

    let slowest = doc.get("slowest").and_then(Json::as_array).expect("slowest array");
    assert!(!slowest.is_empty() && slowest.len() <= slowest_cap);
    let totals: Vec<f64> =
        slowest.iter().map(|e| e.get("total_us").and_then(Json::as_f64).unwrap()).collect();
    assert!(totals.windows(2).all(|w| w[0] >= w[1]), "slowest not sorted descending: {totals:?}");

    shutdown(addr);
    server_thread.join().unwrap().expect("clean shutdown");
}

/// One trace id ties the whole story together in the obs stream: the
/// access log (`http.request`), the batcher's `batch.flush` (via its
/// `traces` field), and the completed `request.timeline`.
#[test]
fn one_trace_id_correlates_access_log_batch_flush_and_timeline() {
    obs::set_level(Some(obs::Level::Debug));
    let ring = Arc::new(obs::RingSink::new(4096));
    let handle = obs::add_sink(ring.clone());

    let server = new_server(2)
        .with_batch_config(BatcherConfig { window: Duration::from_millis(2), max_rows: 1024 });
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let trace_id = "tl-corr-1";
    let mut stream = connect(addr);
    stream.write_all(&http("POST", "/v1/predict", Some(trace_id), PREDICT_BODY, true)).unwrap();
    let (status, body) = read_response(&mut stream, &mut Vec::new());
    assert_eq!(status, 200, "{body}");

    // The timeline event fires on the event-loop thread after the last
    // byte flushes, and batch.flush on the collector thread: poll.
    let deadline = Instant::now() + Duration::from_secs(5);
    let (request_ev, flush_ev, timeline_ev) = loop {
        let request_ev = ring
            .events_named("http.request")
            .into_iter()
            .find(|e| e.trace.as_deref() == Some(trace_id));
        let flush_ev = ring.events_named("batch.flush").into_iter().find(|e| {
            matches!(e.field("traces"), Some(obs::Value::Str(t))
                if t.split(',').any(|t| t == trace_id))
        });
        let timeline_ev = ring
            .events_named("request.timeline")
            .into_iter()
            .find(|e| e.trace.as_deref() == Some(trace_id));
        if let (Some(r), Some(f), Some(t)) = (&request_ev, &flush_ev, &timeline_ev) {
            break (r.clone(), f.clone(), t.clone());
        }
        assert!(
            Instant::now() < deadline,
            "missing correlated events: http.request={request_ev:?} batch.flush={flush_ev:?} \
             request.timeline={timeline_ev:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    obs::remove_sink(handle);

    // The access log now measures from parse completion: its duration
    // covers handler time plus queue/batch wait.
    let (Some(obs::Value::U64(total)), Some(obs::Value::U64(handler))) =
        (request_ev.field("duration_us"), request_ev.field("handler_us"))
    else {
        panic!("http.request missing duration fields: {request_ev:?}");
    };
    assert!(total >= handler, "access-log total {total} < handler {handler}");

    assert!(flush_ev.field("reason").is_some());
    assert!(flush_ev.field("window_overrun_us").is_some());

    // The timeline event carries every stage plus a consistent total.
    let (Some(obs::Value::U64(tl_total)), Some(obs::Value::Str(path))) =
        (timeline_ev.field("total_us"), timeline_ev.field("path"))
    else {
        panic!("request.timeline missing fields: {timeline_ev:?}");
    };
    assert_eq!(path.as_str(), "/v1/predict");
    let stage_sum: u64 = STAGE_KEYS
        .iter()
        .map(|k| match timeline_ev.field(k) {
            Some(obs::Value::U64(us)) => *us,
            other => panic!("stage {k} missing from request.timeline: {other:?}"),
        })
        .sum();
    let tolerance = (*tl_total / 20).max(10);
    assert!(
        stage_sum.abs_diff(*tl_total) <= tolerance,
        "timeline stages sum {stage_sum} vs total {tl_total}"
    );

    shutdown(addr);
    server_thread.join().unwrap().expect("clean shutdown");
}
