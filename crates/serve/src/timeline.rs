//! Per-request timelines and the flight recorder.
//!
//! The event loop stamps every request at its lifecycle edges — first
//! byte read, parse complete (the deadline anchor), worker dequeue,
//! handler done, reorder release (response encoded onto the wire
//! buffer), last byte flushed to the socket — and the batcher reports
//! how long the request's worker sat inside [`crate::batcher::Batcher::
//! predict`] (window wait plus the coalesced model call). Out of those
//! stamps a [`TimelineBuilder`] derives six non-overlapping stages that
//! sum **exactly** to the request's end-to-end wall time:
//!
//! | stage        | span                                                  |
//! |--------------|-------------------------------------------------------|
//! | `read`       | first byte → parse complete                           |
//! | `queue`      | parse complete → worker dequeue                       |
//! | `batch_wait` | time blocked in the micro-batcher (wait + model call) |
//! | `handler`    | worker dequeue → handler done, minus `batch_wait`     |
//! | `reorder`    | handler done → response encoded (pipeline reordering) |
//! | `write`      | response encoded → last byte accepted by the socket   |
//!
//! Completed timelines are exported three ways (see
//! `docs/OBSERVABILITY.md`): the
//! `chemcost_request_stage_duration_seconds{stage=…}` histograms, the
//! [`FlightRecorder`] behind `GET /debug/requests` (slowest-K +
//! most-recent-N, rendered by `chemcost top`), and a `request.timeline`
//! obs event under the request's trace id.
//!
//! Worker-side notes (batch waits, the trace id) travel through a
//! thread-local capture — the handler call tree is deep inside
//! `Router::handle_from` and threading a context parameter through the
//! batcher would leak serving concerns into every predict signature.

use crate::batcher::FlushReason;
use crate::json::Json;
use crate::metrics::RequestStage;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

/// Most-recent complete timelines kept by the flight recorder.
pub const RECENT_CAP: usize = 64;
/// Slowest complete timelines kept by the flight recorder.
pub const SLOWEST_CAP: usize = 16;

/// What the worker thread observed while handling one request:
/// accumulated micro-batcher waits and the request's trace id.
#[derive(Debug, Clone, Default)]
pub struct HandlerNotes {
    /// Total time the worker spent blocked in `Batcher::predict`
    /// (window wait + the coalesced model call), across all calls.
    pub batch_wait: Duration,
    /// `Batcher::predict` calls the request made (an advise sweep and a
    /// predict both make one; a cache hit makes none).
    pub batch_calls: u32,
    /// Coalesced rows of the batched model calls that served this
    /// request (the whole batch, not just this request's share).
    pub batch_rows: u64,
    /// Why the last batch serving this request flushed.
    pub last_reason: Option<FlushReason>,
    /// The trace id `Router::handle_from` resolved for the request.
    pub trace: Option<Arc<str>>,
}

thread_local! {
    /// Active capture for the request this worker thread is handling.
    /// `None` outside a captured request (e.g. the router driven
    /// in-process by tests/benches) — notes are then dropped.
    static CAPTURE: RefCell<Option<HandlerNotes>> = const { RefCell::new(None) };
}

/// Start capturing handler notes on this thread (called by the event
/// loop's worker job just before `Router::handle_from`).
pub(crate) fn begin_capture() {
    CAPTURE.with(|c| *c.borrow_mut() = Some(HandlerNotes::default()));
}

/// Stop capturing and return what was noted since [`begin_capture`].
pub(crate) fn end_capture() -> Option<HandlerNotes> {
    CAPTURE.with(|c| c.borrow_mut().take())
}

/// Record one completed `Batcher::predict` call: how long the caller was
/// blocked, how many rows the coalesced batch carried, and why it
/// flushed. A no-op when no capture is active.
pub(crate) fn note_batch(wait: Duration, rows: usize, reason: FlushReason) {
    CAPTURE.with(|c| {
        if let Some(notes) = c.borrow_mut().as_mut() {
            notes.batch_wait += wait;
            notes.batch_calls += 1;
            notes.batch_rows += rows as u64;
            notes.last_reason = Some(reason);
        }
    });
}

/// Record the request's resolved trace id. A no-op when no capture is
/// active.
pub(crate) fn note_trace(trace: &Arc<str>) {
    CAPTURE.with(|c| {
        if let Some(notes) = c.borrow_mut().as_mut() {
            notes.trace = Some(Arc::clone(trace));
        }
    });
}

/// A request's lifecycle stamps, accumulated as it moves through the
/// data plane. Built by the event loop at parse time, stamped by the
/// worker job, finalized when the last response byte is flushed.
#[derive(Debug)]
pub struct TimelineBuilder {
    /// When the request's first byte landed in the read buffer.
    first_byte: Instant,
    /// Parse completion — the deadline anchor.
    parsed: Instant,
    /// When a worker picked the request off the compute queue.
    dequeued: Option<Instant>,
    /// When `Router::handle_from` returned.
    handler_done: Option<Instant>,
    /// When the response was encoded onto the wire buffer (its turn in
    /// the pipeline reorder came up).
    encoded: Option<Instant>,
    /// Worker-side notes (batch waits, trace id).
    notes: HandlerNotes,
    method: String,
    path: String,
    status: u16,
}

impl TimelineBuilder {
    /// Begin a timeline for a request whose first byte landed at
    /// `first_byte` and whose parse completed at `parsed`.
    pub fn new(first_byte: Instant, parsed: Instant, method: &str, path: &str) -> TimelineBuilder {
        TimelineBuilder {
            first_byte,
            parsed: parsed.max(first_byte),
            dequeued: None,
            handler_done: None,
            encoded: None,
            notes: HandlerNotes::default(),
            method: method.to_string(),
            path: path.to_string(),
            status: 0,
        }
    }

    /// A worker dequeued the request (chaos `slow-io` stalls count as
    /// queue time — they model the worker not getting to the request).
    pub fn stamp_dequeued(&mut self) {
        self.dequeued = Some(Instant::now());
    }

    /// The handler returned.
    pub fn stamp_handler_done(&mut self) {
        self.handler_done = Some(Instant::now());
    }

    /// The response was encoded onto the wire buffer (reorder release).
    pub fn stamp_encoded(&mut self) {
        self.encoded = Some(Instant::now());
    }

    /// Attach the worker's captured notes and the response status.
    pub fn absorb(&mut self, notes: Option<HandlerNotes>, status: u16) {
        if let Some(notes) = notes {
            self.notes = notes;
        }
        self.status = status;
    }

    /// Finalize at `last_byte` (the instant the socket accepted the last
    /// response byte). Missing stamps (never possible on the normal
    /// path) collapse their stage to zero rather than panicking.
    pub fn complete(self, last_byte: Instant) -> CompletedTimeline {
        let dequeued = self.dequeued.unwrap_or(self.parsed).max(self.parsed);
        let handler_done = self.handler_done.unwrap_or(dequeued).max(dequeued);
        let encoded = self.encoded.unwrap_or(handler_done).max(handler_done);
        let last_byte = last_byte.max(encoded);
        let handler_span = handler_done - dequeued;
        // Batch waits happen inside the handler span; clamping keeps the
        // six stages summing exactly to first_byte → last_byte.
        let batch_wait = self.notes.batch_wait.min(handler_span);
        let mut stages = [Duration::ZERO; 6];
        stages[RequestStage::Read.index()] = self.parsed - self.first_byte;
        stages[RequestStage::Queue.index()] = dequeued - self.parsed;
        stages[RequestStage::BatchWait.index()] = batch_wait;
        stages[RequestStage::Handler.index()] = handler_span - batch_wait;
        stages[RequestStage::Reorder.index()] = encoded - handler_done;
        stages[RequestStage::Write.index()] = last_byte - encoded;
        CompletedTimeline {
            trace: self.notes.trace.as_deref().unwrap_or("").to_string(),
            method: self.method,
            path: self.path,
            status: self.status,
            completed_unix_us: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map_or(0, |d| d.as_micros() as u64),
            total: last_byte - self.first_byte,
            stages,
            batch_calls: self.notes.batch_calls,
            batch_rows: self.notes.batch_rows,
            batch_wait: self.notes.batch_wait,
            batch_reason: self.notes.last_reason.map(FlushReason::label),
        }
    }
}

/// One finished request's stage-resolved timeline, as kept by the
/// flight recorder and served from `GET /debug/requests`.
#[derive(Debug, Clone)]
pub struct CompletedTimeline {
    /// The request's trace id (empty when the handler never ran, e.g. a
    /// request finalized without worker notes).
    pub trace: String,
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Unix microseconds when the last byte was flushed.
    pub completed_unix_us: u64,
    /// First byte read → last byte flushed.
    pub total: Duration,
    /// Per-stage durations, indexed by [`RequestStage::index`]. Sums
    /// exactly to `total` by construction.
    pub stages: [Duration; 6],
    /// `Batcher::predict` calls the request made.
    pub batch_calls: u32,
    /// Coalesced rows of the batches that served it.
    pub batch_rows: u64,
    /// Total time blocked in the batcher (unclamped).
    pub batch_wait: Duration,
    /// Why the last batch serving it flushed.
    pub batch_reason: Option<&'static str>,
}

impl CompletedTimeline {
    /// The per-stage durations paired with their stages.
    pub fn stage_durations(&self) -> impl Iterator<Item = (RequestStage, Duration)> + '_ {
        RequestStage::ALL.into_iter().map(|s| (s, self.stages[s.index()]))
    }

    /// The JSON object served from `GET /debug/requests`.
    pub fn to_json(&self) -> Json {
        let us = |d: Duration| Json::Num(d.as_micros() as f64);
        let mut stage_fields: Vec<(String, Json)> = Vec::with_capacity(6);
        for stage in RequestStage::ALL {
            stage_fields.push((format!("{}_us", stage.label()), us(self.stages[stage.index()])));
        }
        Json::obj([
            ("trace", self.trace.clone().into()),
            ("method", self.method.clone().into()),
            ("path", self.path.clone().into()),
            ("status", Json::Num(self.status as f64)),
            ("ts_us", Json::Num(self.completed_unix_us as f64)),
            ("total_us", us(self.total)),
            ("stages", Json::Obj(stage_fields)),
            (
                "batch",
                Json::obj([
                    ("calls", Json::Num(self.batch_calls as f64)),
                    ("rows", Json::Num(self.batch_rows as f64)),
                    ("wait_us", us(self.batch_wait)),
                    ("last_reason", self.batch_reason.map_or(Json::Null, |r| r.into())),
                ]),
            ),
        ])
    }

    /// Emit the timeline as a `request.timeline` obs event at Debug
    /// level, under the request's trace id.
    pub fn emit_event(&self) {
        use chemcost_obs::{Field, Level};
        if !chemcost_obs::enabled(Level::Debug) {
            return;
        }
        let _scope = (!self.trace.is_empty())
            .then(|| chemcost_obs::TraceScope::enter(Arc::from(self.trace.as_str())));
        let mut tl = chemcost_obs::Timeline::new();
        for stage in RequestStage::ALL {
            tl = tl.stage(stage.field_key(), self.stages[stage.index()].as_micros() as u64);
        }
        tl.emit(
            Level::Debug,
            "request.timeline",
            vec![
                Field::new("method", self.method.as_str()),
                Field::new("path", self.path.as_str()),
                Field::new("status", self.status),
                Field::new("batch_calls", self.batch_calls as u64),
                Field::new("batch_rows", self.batch_rows),
            ],
        );
    }
}

/// Flight-recorder state under one lock: bounded rings of the most
/// recent and the slowest complete timelines.
struct Inner {
    recent: VecDeque<Arc<CompletedTimeline>>,
    /// Sorted by `total` descending; truncated to the cap.
    slowest: Vec<Arc<CompletedTimeline>>,
    /// Every timeline ever recorded (eviction makes rings lossy; this
    /// counter says how lossy).
    completed: u64,
}

/// Bounded in-memory ring of complete request timelines: the
/// most-recent-N plus the slowest-K, for `GET /debug/requests` and
/// `chemcost top`. Recording is one short mutex hold off the hot path
/// (the event-loop thread, once per request, after the last byte).
pub struct FlightRecorder {
    inner: parking_lot::Mutex<Inner>,
    recent_cap: usize,
    slowest_cap: usize,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_caps(RECENT_CAP, SLOWEST_CAP)
    }
}

impl FlightRecorder {
    /// A recorder with the default caps.
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// A recorder keeping at most `recent_cap` recent and `slowest_cap`
    /// slowest timelines (each clamped to at least 1).
    pub fn with_caps(recent_cap: usize, slowest_cap: usize) -> FlightRecorder {
        FlightRecorder {
            inner: parking_lot::Mutex::new(Inner {
                recent: VecDeque::new(),
                slowest: Vec::new(),
                completed: 0,
            }),
            recent_cap: recent_cap.max(1),
            slowest_cap: slowest_cap.max(1),
        }
    }

    /// Record one completed timeline, evicting the oldest recent entry
    /// and the fastest slowest entry when the rings are full.
    pub fn record(&self, timeline: CompletedTimeline) {
        let timeline = Arc::new(timeline);
        let mut inner = self.inner.lock();
        inner.completed += 1;
        if inner.recent.len() == self.recent_cap {
            inner.recent.pop_front();
        }
        inner.recent.push_back(Arc::clone(&timeline));
        let full = inner.slowest.len() == self.slowest_cap;
        if !full || inner.slowest.last().is_some_and(|last| timeline.total > last.total) {
            let at = inner.slowest.partition_point(|t| t.total >= timeline.total);
            inner.slowest.insert(at, timeline);
            inner.slowest.truncate(self.slowest_cap);
        }
    }

    /// Timelines ever recorded (including evicted ones).
    pub fn completed(&self) -> u64 {
        self.inner.lock().completed
    }

    /// Snapshot: (most recent, oldest → newest) and (slowest, slowest
    /// first).
    pub fn snapshot(&self) -> (Vec<Arc<CompletedTimeline>>, Vec<Arc<CompletedTimeline>>) {
        let inner = self.inner.lock();
        (inner.recent.iter().cloned().collect(), inner.slowest.clone())
    }

    /// The full `GET /debug/requests` document.
    pub fn to_json(&self) -> Json {
        self.to_json_filtered(0, None)
    }

    /// The `GET /debug/requests` document with the incremental-polling
    /// filters: only timelines completed strictly after `since_us`
    /// and, when `route` is given, whose path contains it (so `advise`
    /// matches `/v1/advise`). `chemcost top --watch` polls with the
    /// newest `ts_us` it has seen, downloading only the new tail.
    pub fn to_json_filtered(&self, since_us: u64, route: Option<&str>) -> Json {
        let (recent, slowest) = self.snapshot();
        let keep = |t: &&Arc<CompletedTimeline>| {
            t.completed_unix_us > since_us && route.is_none_or(|r| t.path.contains(r))
        };
        Json::obj([
            ("completed", Json::Num(self.completed() as f64)),
            ("recent_cap", Json::Num(self.recent_cap as f64)),
            ("slowest_cap", Json::Num(self.slowest_cap as f64)),
            ("since_us", Json::Num(since_us as f64)),
            ("recent", Json::Arr(recent.iter().filter(keep).map(|t| t.to_json()).collect())),
            ("slowest", Json::Arr(slowest.iter().filter(keep).map(|t| t.to_json()).collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline_taking(total_ms: u64, path: &str) -> CompletedTimeline {
        let t0 = Instant::now() - Duration::from_millis(total_ms);
        let mut tl = TimelineBuilder::new(t0, t0, "GET", path);
        tl.stamp_dequeued();
        tl.stamp_handler_done();
        tl.stamp_encoded();
        let mut done = tl.complete(t0 + Duration::from_millis(total_ms));
        // Pin the synthetic total so ordering assertions are exact.
        done.total = Duration::from_millis(total_ms);
        done
    }

    #[test]
    fn stages_sum_exactly_to_total() {
        let t0 = Instant::now();
        let mut tl =
            TimelineBuilder::new(t0, t0 + Duration::from_micros(50), "POST", "/v1/predict");
        tl.dequeued = Some(t0 + Duration::from_micros(250));
        tl.handler_done = Some(t0 + Duration::from_micros(1250));
        tl.encoded = Some(t0 + Duration::from_micros(1300));
        tl.absorb(
            Some(HandlerNotes {
                batch_wait: Duration::from_micros(600),
                batch_calls: 1,
                batch_rows: 8,
                last_reason: Some(FlushReason::Drain),
                trace: Some(Arc::from("t-1")),
            }),
            200,
        );
        let done = tl.complete(t0 + Duration::from_micros(1400));
        let sum: Duration = done.stages.iter().sum();
        assert_eq!(sum, done.total);
        assert_eq!(done.total, Duration::from_micros(1400));
        assert_eq!(done.stages[RequestStage::Read.index()], Duration::from_micros(50));
        assert_eq!(done.stages[RequestStage::Queue.index()], Duration::from_micros(200));
        assert_eq!(done.stages[RequestStage::BatchWait.index()], Duration::from_micros(600));
        assert_eq!(done.stages[RequestStage::Handler.index()], Duration::from_micros(400));
        assert_eq!(done.stages[RequestStage::Reorder.index()], Duration::from_micros(50));
        assert_eq!(done.stages[RequestStage::Write.index()], Duration::from_micros(100));
        assert_eq!(done.trace, "t-1");
        assert_eq!(done.status, 200);
        assert_eq!(done.batch_reason, Some("drain"));
    }

    #[test]
    fn batch_wait_is_clamped_to_the_handler_span() {
        let t0 = Instant::now();
        let mut tl = TimelineBuilder::new(t0, t0, "POST", "/v1/predict");
        tl.dequeued = Some(t0 + Duration::from_micros(10));
        tl.handler_done = Some(t0 + Duration::from_micros(110));
        tl.absorb(
            Some(HandlerNotes {
                batch_wait: Duration::from_secs(5), // nonsense: longer than the handler ran
                ..HandlerNotes::default()
            }),
            200,
        );
        let done = tl.complete(t0 + Duration::from_micros(120));
        assert_eq!(done.stages[RequestStage::BatchWait.index()], Duration::from_micros(100));
        assert_eq!(done.stages[RequestStage::Handler.index()], Duration::ZERO);
        let sum: Duration = done.stages.iter().sum();
        assert_eq!(sum, done.total);
    }

    #[test]
    fn missing_stamps_collapse_to_zero_stages() {
        let t0 = Instant::now();
        let tl = TimelineBuilder::new(t0, t0 + Duration::from_micros(5), "GET", "/healthz");
        let done = tl.complete(t0 + Duration::from_micros(25));
        let sum: Duration = done.stages.iter().sum();
        assert_eq!(sum, done.total);
        assert_eq!(done.stages[RequestStage::Queue.index()], Duration::ZERO);
        assert_eq!(done.stages[RequestStage::Handler.index()], Duration::ZERO);
        assert_eq!(done.stages[RequestStage::Write.index()], Duration::from_micros(20));
    }

    #[test]
    fn capture_accumulates_batch_notes_only_while_active() {
        note_batch(Duration::from_micros(99), 4, FlushReason::Window); // no capture: dropped
        begin_capture();
        note_batch(Duration::from_micros(10), 3, FlushReason::Drain);
        note_batch(Duration::from_micros(20), 5, FlushReason::Window);
        note_trace(&Arc::from("cap-1"));
        let notes = end_capture().expect("capture was active");
        assert_eq!(notes.batch_wait, Duration::from_micros(30));
        assert_eq!(notes.batch_calls, 2);
        assert_eq!(notes.batch_rows, 8);
        assert_eq!(notes.last_reason, Some(FlushReason::Window));
        assert_eq!(notes.trace.as_deref(), Some("cap-1"));
        assert!(end_capture().is_none(), "capture is one-shot");
    }

    #[test]
    fn flight_recorder_keeps_recent_and_slowest_under_eviction() {
        let rec = FlightRecorder::with_caps(4, 2);
        // Totals 1..=10 ms in arrival order, so the slowest are 10 and 9.
        for ms in 1..=10u64 {
            rec.record(timeline_taking(ms, &format!("/r/{ms}")));
        }
        assert_eq!(rec.completed(), 10);
        let (recent, slowest) = rec.snapshot();
        assert_eq!(recent.len(), 4);
        let recent_paths: Vec<&str> = recent.iter().map(|t| t.path.as_str()).collect();
        assert_eq!(recent_paths, ["/r/7", "/r/8", "/r/9", "/r/10"]);
        assert_eq!(slowest.len(), 2);
        assert_eq!(slowest[0].total, Duration::from_millis(10));
        assert_eq!(slowest[1].total, Duration::from_millis(9));
        // A fast newcomer joins recent but not slowest.
        rec.record(timeline_taking(2, "/r/late"));
        let (recent, slowest) = rec.snapshot();
        assert_eq!(recent.last().unwrap().path, "/r/late");
        assert!(slowest.iter().all(|t| t.path != "/r/late"));
    }

    #[test]
    fn debug_requests_json_has_the_documented_shape() {
        let rec = FlightRecorder::with_caps(8, 4);
        rec.record(timeline_taking(3, "/v1/predict"));
        let doc = rec.to_json();
        assert_eq!(doc.get("completed").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("recent_cap").and_then(Json::as_f64), Some(8.0));
        let recent = doc.get("recent").and_then(Json::as_array).expect("recent array");
        assert_eq!(recent.len(), 1);
        let entry = &recent[0];
        for key in ["trace", "method", "path", "status", "ts_us", "total_us", "stages", "batch"] {
            assert!(entry.get(key).is_some(), "missing {key}");
        }
        let stages = entry.get("stages").expect("stages object");
        for stage in RequestStage::ALL {
            assert!(
                stages.get(&format!("{}_us", stage.label())).and_then(Json::as_f64).is_some(),
                "missing stage {}",
                stage.label()
            );
        }
        // The document round-trips through the parser (what the CI smoke
        // job asserts over the wire).
        let encoded = doc.encode();
        Json::parse(&encoded).expect("debug/requests JSON parses");
    }

    #[test]
    fn filters_slice_by_timestamp_and_route() {
        let rec = FlightRecorder::with_caps(8, 4);
        rec.record(timeline_taking(3, "/v1/predict"));
        rec.record(timeline_taking(5, "/v1/advise"));
        rec.record(timeline_taking(7, "/v1/advise"));
        let all = rec.to_json_filtered(0, None);
        assert_eq!(all.get("recent").and_then(Json::as_array).unwrap().len(), 3);
        // Route substring filter.
        let advise = rec.to_json_filtered(0, Some("advise"));
        let recent = advise.get("recent").and_then(Json::as_array).unwrap();
        assert_eq!(recent.len(), 2);
        assert!(recent
            .iter()
            .all(|t| { t.get("path").and_then(Json::as_str).unwrap().contains("advise") }));
        // since_us strictly-after: polling back the newest seen ts_us
        // returns nothing new; ts-1 returns only the newest entries.
        let newest = all.get("recent").and_then(Json::as_array).unwrap()[2]
            .get("ts_us")
            .and_then(Json::as_f64)
            .unwrap() as u64;
        let empty = rec.to_json_filtered(newest, None);
        assert!(empty.get("recent").and_then(Json::as_array).unwrap().is_empty());
        let tail = rec.to_json_filtered(newest - 1, None);
        assert!(!tail.get("recent").and_then(Json::as_array).unwrap().is_empty());
        // Both caps and the echo of the filter survive.
        assert_eq!(tail.get("since_us").and_then(Json::as_f64), Some((newest - 1) as f64));
        // The filtered document stays parseable.
        Json::parse(&advise.encode()).expect("filtered JSON parses");
    }
}
