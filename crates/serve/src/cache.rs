//! Keyed LRU cache for `/v1/advise` answers.
//!
//! An advise answer is a pure function of `(model name, model version,
//! machine, O, V, goal, budget, deadline)` — the model is immutable
//! between reloads and the sweep is deterministic — so repeated traffic
//! for the same question (the common case for job-script generators
//! hammering a handful of production molecules) can skip the whole
//! candidate sweep and replay the rendered response body.
//!
//! Staleness is handled twice over: the **model version is part of the
//! key**, so a reloaded model can never *silently* serve a stale answer,
//! and on reload [`AdviseCache::demote_model`] marks the dead versions'
//! entries stale instead of dropping them. Stale entries are invisible to
//! the normal [`AdviseCache::get`] path (the current version is in the
//! probe key), are evicted first when capacity is needed, and exist only
//! to back the **serve-stale-on-overload** escape hatch: when the worker
//! pool is shedding, [`AdviseCache::get_stale`] lets the advise handler
//! answer from a previous model version — clearly labelled — rather than
//! burn a sweep. [`AdviseCache::invalidate_model`] still drops a model's
//! entries outright for callers that want the old eager behaviour.
//!
//! Eviction is least-recently-used via an access stamp per entry (stale
//! entries first); the eviction scan is `O(capacity)` but runs only on
//! insertion into a full cache, which the hit path never touches.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache key: everything an advise answer depends on.
///
/// `budget` and `deadline` are keyed on their IEEE-754 bit patterns so the
/// key can be `Eq + Hash`; distinct bit patterns that compare `==` as
/// floats (`0.0` vs `-0.0`) simply occupy two entries, which is harmless.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AdviseKey {
    /// Registry model name.
    pub model: String,
    /// Registry model version (bumped on every reload).
    pub version: u64,
    /// Machine the sweep runs against.
    pub machine: String,
    /// Occupied orbitals.
    pub o: usize,
    /// Virtual orbitals.
    pub v: usize,
    /// Question asked ("stq" | "bq" | "pareto").
    pub goal: String,
    /// `f64::to_bits` of the node-hour budget, when given.
    pub budget_bits: Option<u64>,
    /// `f64::to_bits` of the deadline in seconds, when given.
    pub deadline_bits: Option<u64>,
}

/// The primary recommendation `(nodes, tile, predicted_seconds)` carried
/// alongside a cached body, so cache replays can be journaled for
/// quality tracking without re-parsing the rendered JSON. `None` for
/// answers with no actionable recommendation (e.g. nothing feasible).
pub type CachedRec = (usize, usize, f64);

struct Entry {
    body: String,
    /// See [`CachedRec`].
    rec: Option<CachedRec>,
    last_used: u64,
    /// Demoted by a model reload: only reachable via [`AdviseCache::get_stale`].
    stale: bool,
}

#[derive(Default)]
struct State {
    map: HashMap<AdviseKey, Entry>,
    tick: u64,
}

/// Thread-safe LRU cache of rendered advise response bodies.
pub struct AdviseCache {
    capacity: usize,
    state: Mutex<State>,
}

impl AdviseCache {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> AdviseCache {
        AdviseCache { capacity: capacity.max(1), state: Mutex::new(State::default()) }
    }

    /// Look up a rendered response (body plus its journaled
    /// recommendation summary), refreshing its recency on hit.
    pub fn get(&self, key: &AdviseKey) -> Option<(String, Option<CachedRec>)> {
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        state.map.get_mut(key).map(|e| {
            e.last_used = tick;
            (e.body.clone(), e.rec)
        })
    }

    /// Insert a rendered response and its recommendation summary,
    /// evicting the least-recently-used entry if the cache is full.
    pub fn insert(&self, key: AdviseKey, body: String, rec: Option<CachedRec>) {
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        if state.map.len() >= self.capacity && !state.map.contains_key(&key) {
            // Stale (demoted) entries go first; fresh entries by recency.
            if let Some(lru) = state
                .map
                .iter()
                .min_by_key(|(_, e)| (!e.stale, e.last_used))
                .map(|(k, _)| k.clone())
            {
                state.map.remove(&lru);
            }
        }
        state.map.insert(key, Entry { body, rec, last_used: tick, stale: false });
    }

    /// Drop every entry belonging to `model` (all versions). Returns how
    /// many entries were removed.
    pub fn invalidate_model(&self, model: &str) -> usize {
        let mut state = self.state.lock();
        let before = state.map.len();
        state.map.retain(|k, _| k.model != model);
        before - state.map.len()
    }

    /// Mark every entry of `model` whose version is not `current_version`
    /// as stale. Called on model reload: the dead versions stay around —
    /// first in line for eviction — as last-resort answers for
    /// [`AdviseCache::get_stale`]. Returns how many entries were demoted.
    pub fn demote_model(&self, model: &str, current_version: u64) -> usize {
        let mut state = self.state.lock();
        let mut demoted = 0;
        for (k, e) in state.map.iter_mut() {
            if k.model == model && k.version != current_version && !e.stale {
                e.stale = true;
                demoted += 1;
            }
        }
        demoted
    }

    /// Overload escape hatch: find an answer for `key` from **any** model
    /// version (the freshest available), stale or not. Returns the body,
    /// the version it was computed against so the caller can label the
    /// response, and the recommendation summary for quality journaling.
    /// Does not refresh recency — a stale answer should not out-survive
    /// fresh ones.
    pub fn get_stale(&self, key: &AdviseKey) -> Option<(String, u64, Option<CachedRec>)> {
        let state = self.state.lock();
        state
            .map
            .iter()
            .filter(|(k, _)| {
                k.model == key.model
                    && k.machine == key.machine
                    && k.o == key.o
                    && k.v == key.v
                    && k.goal == key.goal
                    && k.budget_bits == key.budget_bits
                    && k.deadline_bits == key.deadline_bits
            })
            .max_by_key(|(k, _)| k.version)
            .map(|(k, e)| (e.body.clone(), k.version, e.rec))
    }

    /// How many entries are currently demoted (stale).
    pub fn stale_len(&self) -> usize {
        self.state.lock().map.values().filter(|e| e.stale).count()
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(model: &str, version: u64, o: usize) -> AdviseKey {
        AdviseKey {
            model: model.to_string(),
            version,
            machine: "aurora".to_string(),
            o,
            v: 900,
            goal: "stq".to_string(),
            budget_bits: None,
            deadline_bits: None,
        }
    }

    #[test]
    fn get_miss_then_hit() {
        let cache = AdviseCache::new(8);
        assert_eq!(cache.get(&key("m", 1, 100)), None);
        cache.insert(key("m", 1, 100), "body".to_string(), None);
        assert_eq!(cache.get(&key("m", 1, 100)).map(|(b, _)| b), Some("body".to_string()));
        // A different version is a different key.
        assert_eq!(cache.get(&key("m", 2, 100)), None);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = AdviseCache::new(2);
        cache.insert(key("m", 1, 1), "a".into(), None);
        cache.insert(key("m", 1, 2), "b".into(), None);
        // Touch entry 1 so entry 2 becomes the LRU.
        assert!(cache.get(&key("m", 1, 1)).is_some());
        cache.insert(key("m", 1, 3), "c".into(), None);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("m", 1, 1)).is_some());
        assert!(cache.get(&key("m", 1, 2)).is_none(), "LRU entry should be evicted");
        assert!(cache.get(&key("m", 1, 3)).is_some());
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let cache = AdviseCache::new(2);
        cache.insert(key("m", 1, 1), "a".into(), None);
        cache.insert(key("m", 1, 2), "b".into(), None);
        cache.insert(key("m", 1, 1), "a2".into(), None);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key("m", 1, 1)).map(|(b, _)| b), Some("a2".to_string()));
        assert!(cache.get(&key("m", 1, 2)).is_some());
    }

    #[test]
    fn invalidate_model_drops_only_that_model() {
        let cache = AdviseCache::new(16);
        cache.insert(key("a", 1, 1), "x".into(), None);
        cache.insert(key("a", 2, 1), "y".into(), None);
        cache.insert(key("b", 1, 1), "z".into(), None);
        assert_eq!(cache.invalidate_model("a"), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key("b", 1, 1)).is_some());
        assert_eq!(cache.invalidate_model("a"), 0);
    }

    #[test]
    fn demote_marks_old_versions_and_get_stale_finds_them() {
        let cache = AdviseCache::new(16);
        cache.insert(key("m", 1, 100), "v1-answer".into(), None);
        cache.insert(key("m", 2, 100), "v2-answer".into(), None);
        cache.insert(key("other", 1, 100), "other".into(), None);
        // Reload bumped m to version 3: both old versions demote.
        assert_eq!(cache.demote_model("m", 3), 2);
        assert_eq!(cache.stale_len(), 2);
        // Demoting again is idempotent.
        assert_eq!(cache.demote_model("m", 3), 0);
        // Exact-version get still works (the entries are not dropped)...
        assert_eq!(cache.get(&key("m", 1, 100)).map(|(b, _)| b), Some("v1-answer".to_string()));
        // ...and get_stale picks the freshest version for the question.
        let (body, version, rec) = cache.get_stale(&key("m", 3, 100)).unwrap();
        assert_eq!(body, "v2-answer");
        assert_eq!(version, 2);
        assert_eq!(rec, None);
        // A question never cached has no stale fallback.
        assert!(cache.get_stale(&key("m", 3, 999)).is_none());
        // Other models are untouched.
        assert_eq!(cache.get(&key("other", 1, 100)).map(|(b, _)| b), Some("other".to_string()));
    }

    #[test]
    fn eviction_prefers_stale_entries() {
        let cache = AdviseCache::new(2);
        cache.insert(key("m", 1, 1), "old".into(), None);
        cache.insert(key("m", 2, 1), "new".into(), None);
        cache.demote_model("m", 2);
        // The stale v1 entry was used most recently — it must still be
        // the one evicted when capacity is needed.
        assert!(cache.get(&key("m", 1, 1)).is_some());
        cache.insert(key("m", 2, 2), "another".into(), None);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("m", 1, 1)).is_none(), "stale entry evicted first");
        assert!(cache.get(&key("m", 2, 1)).is_some());
        assert!(cache.get(&key("m", 2, 2)).is_some());
    }

    #[test]
    fn budget_and_deadline_partition_the_key_space() {
        let cache = AdviseCache::new(8);
        let mut with_budget = key("m", 1, 100);
        with_budget.budget_bits = Some(3.0f64.to_bits());
        cache.insert(key("m", 1, 100), "plain".into(), None);
        cache.insert(with_budget.clone(), "budgeted".into(), None);
        assert_eq!(cache.get(&key("m", 1, 100)).map(|(b, _)| b), Some("plain".to_string()));
        assert_eq!(cache.get(&with_budget).map(|(b, _)| b), Some("budgeted".to_string()));
    }

    #[test]
    fn recommendation_summary_rides_along_hits_and_stale_replays() {
        let cache = AdviseCache::new(8);
        cache.insert(key("m", 1, 100), "answer".into(), Some((400, 90, 123.5)));
        let (_, rec) = cache.get(&key("m", 1, 100)).unwrap();
        assert_eq!(rec, Some((400, 90, 123.5)));
        cache.demote_model("m", 2);
        let (_, version, stale_rec) = cache.get_stale(&key("m", 2, 100)).unwrap();
        assert_eq!(version, 1);
        assert_eq!(stale_rec, Some((400, 90, 123.5)));
    }
}
