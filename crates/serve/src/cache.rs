//! Keyed, **sharded** LRU cache for `/v1/advise` answers.
//!
//! An advise answer is a pure function of `(model name, model version,
//! machine, O, V, goal, budget, deadline)` — the model is immutable
//! between reloads and the sweep is deterministic — so repeated traffic
//! for the same question (the common case for job-script generators
//! hammering a handful of production molecules) can skip the whole
//! candidate sweep and replay the rendered response body.
//!
//! # Sharding and the zero-alloc hit path
//!
//! The map is split into [`DEFAULT_SHARDS`] independently locked shards
//! selected by a hash of the **question** fields (everything except the
//! model version), so concurrent advise traffic for different questions
//! never contends on one mutex, and every version of the *same* question
//! lands in the same shard — which keeps [`AdviseCache::get_stale`]'s
//! freshest-version scan shard-local. Keys hash with an inline FNV-1a
//! (no per-lookup hasher state to build), lookups accept a borrowed
//! [`AdviseKeyRef`] probe so the hit path constructs no `String`s, and
//! cached bodies are `Arc<str>` so a hit is a reference-count bump, not a
//! body copy. The steady-state hit path performs **zero allocations**.
//!
//! # Staleness
//!
//! Staleness is handled twice over: the **model version is part of the
//! key**, so a reloaded model can never *silently* serve a stale answer,
//! and on reload [`AdviseCache::demote_model`] marks the dead versions'
//! entries stale instead of dropping them. Stale entries are invisible to
//! the normal [`AdviseCache::get`] path (the current version is in the
//! probe key), are evicted first when capacity is needed, and exist only
//! to back the **serve-stale-on-overload** escape hatch: when the worker
//! pool is shedding, [`AdviseCache::get_stale`] lets the advise handler
//! answer from a previous model version — clearly labelled — rather than
//! burn a sweep. [`AdviseCache::invalidate_model`] still drops a model's
//! entries outright for callers that want the old eager behaviour.
//!
//! Eviction is least-recently-used **per shard** via an access stamp per
//! entry (stale entries first); the eviction scan is `O(shard capacity)`
//! but runs only on insertion into a full shard, which the hit path never
//! touches. The capacity passed to [`AdviseCache::new`] is split evenly
//! across shards (rounded up), so the worst case a shard-local LRU evicts
//! slightly later than a global LRU would — a deliberate trade for an
//! uncontended hit path.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shard count for [`AdviseCache::new`]. Power of two so shard selection
/// is a mask; 8 shards × the default 512-entry capacity gives 64 entries
/// per shard.
pub const DEFAULT_SHARDS: usize = 8;

/// Cache key: everything an advise answer depends on.
///
/// `budget` and `deadline` are keyed on their IEEE-754 bit patterns so the
/// key can be `Eq + Hash`; distinct bit patterns that compare `==` as
/// floats (`0.0` vs `-0.0`) simply occupy two entries, which is harmless.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AdviseKey {
    /// Registry model name.
    pub model: String,
    /// Registry model version (bumped on every reload).
    pub version: u64,
    /// Machine the sweep runs against.
    pub machine: String,
    /// Occupied orbitals.
    pub o: usize,
    /// Virtual orbitals.
    pub v: usize,
    /// Question asked ("stq" | "bq" | "pareto").
    pub goal: String,
    /// `f64::to_bits` of the node-hour budget, when given.
    pub budget_bits: Option<u64>,
    /// `f64::to_bits` of the deadline in seconds, when given.
    pub deadline_bits: Option<u64>,
}

impl AdviseKey {
    fn as_probe(&self) -> AdviseKeyRef<'_> {
        AdviseKeyRef {
            model: &self.model,
            version: self.version,
            machine: &self.machine,
            o: self.o,
            v: self.v,
            goal: &self.goal,
            budget_bits: self.budget_bits,
            deadline_bits: self.deadline_bits,
        }
    }
}

/// Borrowed probe for cache lookups: the same fields as [`AdviseKey`] but
/// with `&str` strings, so the advise hit path can query the cache without
/// allocating owned keys. Only a **miss** (which then pays for a full
/// sweep anyway) needs to materialise an owned [`AdviseKey`] for insert.
#[derive(Debug, Clone, Copy)]
pub struct AdviseKeyRef<'a> {
    /// Registry model name.
    pub model: &'a str,
    /// Registry model version (bumped on every reload).
    pub version: u64,
    /// Machine the sweep runs against.
    pub machine: &'a str,
    /// Occupied orbitals.
    pub o: usize,
    /// Virtual orbitals.
    pub v: usize,
    /// Question asked ("stq" | "bq" | "pareto").
    pub goal: &'a str,
    /// `f64::to_bits` of the node-hour budget, when given.
    pub budget_bits: Option<u64>,
    /// `f64::to_bits` of the deadline in seconds, when given.
    pub deadline_bits: Option<u64>,
}

impl AdviseKeyRef<'_> {
    /// Materialise an owned key (miss path only).
    pub fn to_owned_key(&self) -> AdviseKey {
        AdviseKey {
            model: self.model.to_string(),
            version: self.version,
            machine: self.machine.to_string(),
            o: self.o,
            v: self.v,
            goal: self.goal.to_string(),
            budget_bits: self.budget_bits,
            deadline_bits: self.deadline_bits,
        }
    }

    /// Hash of the question fields (everything except `version`) — picks
    /// the shard — and of the full key including `version` — the map key
    /// within the shard.
    fn hashes(&self) -> (u64, u64) {
        let mut h = Fnv::new();
        h.str_field(self.model);
        h.str_field(self.machine);
        h.u64(self.o as u64);
        h.u64(self.v as u64);
        h.str_field(self.goal);
        h.opt_u64(self.budget_bits);
        h.opt_u64(self.deadline_bits);
        let question = h.finish();
        h.u64(self.version);
        (question, h.finish())
    }

    /// True when `k` is exactly this key (all fields, version included).
    fn matches(&self, k: &AdviseKey) -> bool {
        self.version == k.version && self.matches_question(k)
    }

    /// True when `k` asks the same question, any model version.
    fn matches_question(&self, k: &AdviseKey) -> bool {
        self.o == k.o
            && self.v == k.v
            && self.budget_bits == k.budget_bits
            && self.deadline_bits == k.deadline_bits
            && self.goal == k.goal
            && self.model == k.model
            && self.machine == k.machine
    }
}

/// Inline FNV-1a: no hasher state to construct per lookup (unlike the
/// std `RandomState`/SipHash pair) and deterministic across both owned
/// and borrowed key forms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bytes(&[1]);
                self.u64(x);
            }
            None => self.bytes(&[0]),
        }
    }

    /// Length-prefixed so adjacent string fields cannot alias.
    fn str_field(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The primary recommendation `(nodes, tile, predicted_seconds)` carried
/// alongside a cached body, so cache replays can be journaled for
/// quality tracking without re-parsing the rendered JSON. `None` for
/// answers with no actionable recommendation (e.g. nothing feasible).
pub type CachedRec = (usize, usize, f64);

struct Entry {
    key: AdviseKey,
    body: Arc<str>,
    /// See [`CachedRec`].
    rec: Option<CachedRec>,
    last_used: u64,
    /// Demoted by a model reload: only reachable via [`AdviseCache::get_stale`].
    stale: bool,
}

/// One shard: a hash-keyed map of collision buckets plus its LRU clock.
/// Buckets are `Vec`s because the map key is the precomputed FNV hash —
/// two distinct keys hashing alike simply share a bucket and are told
/// apart by full-field comparison.
#[derive(Default)]
struct Shard {
    map: HashMap<u64, Vec<Entry>>,
    len: usize,
    tick: u64,
}

impl Shard {
    fn evict_lru(&mut self) {
        let victim = self
            .map
            .iter()
            .flat_map(|(&h, bucket)| {
                bucket.iter().enumerate().map(move |(i, e)| (h, i, !e.stale, e.last_used))
            })
            .min_by_key(|&(_, _, fresh, used)| (fresh, used));
        if let Some((h, i, _, _)) = victim {
            let bucket = self.map.get_mut(&h).expect("victim bucket exists");
            bucket.swap_remove(i);
            if bucket.is_empty() {
                self.map.remove(&h);
            }
            self.len -= 1;
        }
    }
}

/// Thread-safe, sharded LRU cache of rendered advise response bodies.
pub struct AdviseCache {
    /// Entries per shard; eviction is shard-local.
    shard_capacity: usize,
    /// `shards.len()` is a power of two; selection is `hash & mask`.
    mask: usize,
    shards: Vec<Mutex<Shard>>,
}

impl AdviseCache {
    /// A cache holding at most ~`capacity` entries (minimum 1 per shard),
    /// split across [`DEFAULT_SHARDS`] shards.
    pub fn new(capacity: usize) -> AdviseCache {
        AdviseCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (rounded up to a power of
    /// two). `shards = 1` recovers the old single-map global-LRU
    /// behaviour; tests use it to pin eviction order deterministically.
    pub fn with_shards(capacity: usize, shards: usize) -> AdviseCache {
        let n = shards.max(1).next_power_of_two();
        AdviseCache {
            shard_capacity: capacity.div_ceil(n).max(1),
            mask: n - 1,
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    fn shard_for(&self, question_hash: u64) -> &Mutex<Shard> {
        &self.shards[(question_hash as usize) & self.mask]
    }

    /// Look up a rendered response (body plus its journaled
    /// recommendation summary), refreshing its recency on hit.
    ///
    /// Allocation-free: the probe is borrowed and the body is shared.
    pub fn get(&self, key: &AdviseKeyRef<'_>) -> Option<(Arc<str>, Option<CachedRec>)> {
        let (qh, fh) = key.hashes();
        let mut shard = self.shard_for(qh).lock();
        shard.tick += 1;
        let tick = shard.tick;
        let bucket = shard.map.get_mut(&fh)?;
        bucket.iter_mut().find(|e| key.matches(&e.key)).map(|e| {
            e.last_used = tick;
            (Arc::clone(&e.body), e.rec)
        })
    }

    /// Owned-key convenience wrapper around [`AdviseCache::get`].
    pub fn get_owned(&self, key: &AdviseKey) -> Option<(Arc<str>, Option<CachedRec>)> {
        self.get(&key.as_probe())
    }

    /// Insert a rendered response and its recommendation summary,
    /// evicting the shard's least-recently-used entry if the shard is
    /// full.
    pub fn insert(&self, key: AdviseKey, body: impl Into<Arc<str>>, rec: Option<CachedRec>) {
        let (qh, fh) = key.as_probe().hashes();
        let body = body.into();
        let mut shard = self.shard_for(qh).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(bucket) = shard.map.get_mut(&fh) {
            if let Some(e) = bucket.iter_mut().find(|e| e.key == key) {
                e.body = body;
                e.rec = rec;
                e.last_used = tick;
                e.stale = false;
                return;
            }
        }
        if shard.len >= self.shard_capacity {
            // Stale (demoted) entries go first; fresh entries by recency.
            shard.evict_lru();
        }
        shard.map.entry(fh).or_default().push(Entry {
            key,
            body,
            rec,
            last_used: tick,
            stale: false,
        });
        shard.len += 1;
    }

    /// Drop every entry belonging to `model` (all versions). Returns how
    /// many entries were removed.
    pub fn invalidate_model(&self, model: &str) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let before = shard.len;
            shard.map.retain(|_, bucket| {
                bucket.retain(|e| e.key.model != model);
                !bucket.is_empty()
            });
            shard.len = shard.map.values().map(Vec::len).sum();
            removed += before - shard.len;
        }
        removed
    }

    /// Mark every entry of `model` whose version is not `current_version`
    /// as stale. Called on model reload: the dead versions stay around —
    /// first in line for eviction — as last-resort answers for
    /// [`AdviseCache::get_stale`]. Returns how many entries were demoted.
    pub fn demote_model(&self, model: &str, current_version: u64) -> usize {
        let mut demoted = 0;
        for shard in &self.shards {
            let mut shard = shard.lock();
            for bucket in shard.map.values_mut() {
                for e in bucket.iter_mut() {
                    if e.key.model == model && e.key.version != current_version && !e.stale {
                        e.stale = true;
                        demoted += 1;
                    }
                }
            }
        }
        demoted
    }

    /// Overload escape hatch: find an answer for `key` from **any** model
    /// version (the freshest available), stale or not. Returns the body,
    /// the version it was computed against so the caller can label the
    /// response, and the recommendation summary for quality journaling.
    /// Does not refresh recency — a stale answer should not out-survive
    /// fresh ones. Shard selection ignores the version, so every version
    /// of a question lives in one shard and this scan stays shard-local.
    pub fn get_stale(&self, key: &AdviseKeyRef<'_>) -> Option<(Arc<str>, u64, Option<CachedRec>)> {
        let (qh, _) = key.hashes();
        let shard = self.shard_for(qh).lock();
        shard
            .map
            .values()
            .flatten()
            .filter(|e| key.matches_question(&e.key))
            .max_by_key(|e| e.key.version)
            .map(|e| (Arc::clone(&e.body), e.key.version, e.rec))
    }

    /// How many entries are currently demoted (stale).
    pub fn stale_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map.values().flatten().filter(|e| e.stale).count())
            .sum()
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(model: &str, version: u64, o: usize) -> AdviseKey {
        AdviseKey {
            model: model.to_string(),
            version,
            machine: "aurora".to_string(),
            o,
            v: 900,
            goal: "stq".to_string(),
            budget_bits: None,
            deadline_bits: None,
        }
    }

    fn body_of(hit: Option<(Arc<str>, Option<CachedRec>)>) -> Option<String> {
        hit.map(|(b, _)| b.to_string())
    }

    #[test]
    fn get_miss_then_hit() {
        let cache = AdviseCache::new(8);
        assert_eq!(cache.get_owned(&key("m", 1, 100)), None);
        cache.insert(key("m", 1, 100), "body", None);
        assert_eq!(body_of(cache.get_owned(&key("m", 1, 100))), Some("body".to_string()));
        // A different version is a different key.
        assert_eq!(cache.get_owned(&key("m", 2, 100)), None);
    }

    #[test]
    fn borrowed_probe_matches_owned_key() {
        let cache = AdviseCache::new(8);
        let mut owned = key("m", 3, 42);
        owned.budget_bits = Some(7.5f64.to_bits());
        cache.insert(owned.clone(), "answer", Some((400, 90, 12.0)));
        let probe = AdviseKeyRef {
            model: "m",
            version: 3,
            machine: "aurora",
            o: 42,
            v: 900,
            goal: "stq",
            budget_bits: Some(7.5f64.to_bits()),
            deadline_bits: None,
        };
        let (body, rec) = cache.get(&probe).expect("borrowed probe must hit");
        assert_eq!(&*body, "answer");
        assert_eq!(rec, Some((400, 90, 12.0)));
        assert_eq!(probe.to_owned_key(), owned);
        // A probe differing in any field misses.
        assert!(cache.get(&AdviseKeyRef { o: 43, ..probe }).is_none());
        assert!(cache.get(&AdviseKeyRef { goal: "bq", ..probe }).is_none());
        assert!(cache.get(&AdviseKeyRef { budget_bits: None, ..probe }).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        // One shard so eviction order is the old deterministic global LRU.
        let cache = AdviseCache::with_shards(2, 1);
        cache.insert(key("m", 1, 1), "a", None);
        cache.insert(key("m", 1, 2), "b", None);
        // Touch entry 1 so entry 2 becomes the LRU.
        assert!(cache.get_owned(&key("m", 1, 1)).is_some());
        cache.insert(key("m", 1, 3), "c", None);
        assert_eq!(cache.len(), 2);
        assert!(cache.get_owned(&key("m", 1, 1)).is_some());
        assert!(cache.get_owned(&key("m", 1, 2)).is_none(), "LRU entry should be evicted");
        assert!(cache.get_owned(&key("m", 1, 3)).is_some());
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let cache = AdviseCache::with_shards(2, 1);
        cache.insert(key("m", 1, 1), "a", None);
        cache.insert(key("m", 1, 2), "b", None);
        cache.insert(key("m", 1, 1), "a2", None);
        assert_eq!(cache.len(), 2);
        assert_eq!(body_of(cache.get_owned(&key("m", 1, 1))), Some("a2".to_string()));
        assert!(cache.get_owned(&key("m", 1, 2)).is_some());
    }

    #[test]
    fn sharded_cache_keeps_all_entries_up_to_capacity() {
        // Keys spread across shards; nothing evicts below total capacity
        // and every entry stays reachable through both probe forms.
        let cache = AdviseCache::new(64);
        for o in 0..48 {
            cache.insert(key("m", 1, o), format!("body-{o}"), None);
        }
        assert_eq!(cache.len(), 48);
        for o in 0..48 {
            assert_eq!(body_of(cache.get_owned(&key("m", 1, o))), Some(format!("body-{o}")));
        }
    }

    #[test]
    fn invalidate_model_drops_only_that_model() {
        let cache = AdviseCache::new(16);
        cache.insert(key("a", 1, 1), "x", None);
        cache.insert(key("a", 2, 1), "y", None);
        cache.insert(key("b", 1, 1), "z", None);
        assert_eq!(cache.invalidate_model("a"), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get_owned(&key("b", 1, 1)).is_some());
        assert_eq!(cache.invalidate_model("a"), 0);
    }

    #[test]
    fn demote_marks_old_versions_and_get_stale_finds_them() {
        let cache = AdviseCache::new(16);
        cache.insert(key("m", 1, 100), "v1-answer", None);
        cache.insert(key("m", 2, 100), "v2-answer", None);
        cache.insert(key("other", 1, 100), "other", None);
        // Reload bumped m to version 3: both old versions demote.
        assert_eq!(cache.demote_model("m", 3), 2);
        assert_eq!(cache.stale_len(), 2);
        // Demoting again is idempotent.
        assert_eq!(cache.demote_model("m", 3), 0);
        // Exact-version get still works (the entries are not dropped)...
        assert_eq!(body_of(cache.get_owned(&key("m", 1, 100))), Some("v1-answer".to_string()));
        // ...and get_stale picks the freshest version for the question.
        let (body, version, rec) = cache.get_stale(&key("m", 3, 100).as_probe()).unwrap();
        assert_eq!(&*body, "v2-answer");
        assert_eq!(version, 2);
        assert_eq!(rec, None);
        // A question never cached has no stale fallback.
        assert!(cache.get_stale(&key("m", 3, 999).as_probe()).is_none());
        // Other models are untouched.
        assert_eq!(body_of(cache.get_owned(&key("other", 1, 100))), Some("other".to_string()));
    }

    #[test]
    fn eviction_prefers_stale_entries() {
        let cache = AdviseCache::with_shards(2, 1);
        cache.insert(key("m", 1, 1), "old", None);
        cache.insert(key("m", 2, 1), "new", None);
        cache.demote_model("m", 2);
        // The stale v1 entry was used most recently — it must still be
        // the one evicted when capacity is needed.
        assert!(cache.get_owned(&key("m", 1, 1)).is_some());
        cache.insert(key("m", 2, 2), "another", None);
        assert_eq!(cache.len(), 2);
        assert!(cache.get_owned(&key("m", 1, 1)).is_none(), "stale entry evicted first");
        assert!(cache.get_owned(&key("m", 2, 1)).is_some());
        assert!(cache.get_owned(&key("m", 2, 2)).is_some());
    }

    #[test]
    fn budget_and_deadline_partition_the_key_space() {
        let cache = AdviseCache::new(8);
        let mut with_budget = key("m", 1, 100);
        with_budget.budget_bits = Some(3.0f64.to_bits());
        cache.insert(key("m", 1, 100), "plain", None);
        cache.insert(with_budget.clone(), "budgeted", None);
        assert_eq!(body_of(cache.get_owned(&key("m", 1, 100))), Some("plain".to_string()));
        assert_eq!(body_of(cache.get_owned(&with_budget)), Some("budgeted".to_string()));
    }

    #[test]
    fn recommendation_summary_rides_along_hits_and_stale_replays() {
        let cache = AdviseCache::new(8);
        cache.insert(key("m", 1, 100), "answer", Some((400, 90, 123.5)));
        let (_, rec) = cache.get_owned(&key("m", 1, 100)).unwrap();
        assert_eq!(rec, Some((400, 90, 123.5)));
        cache.demote_model("m", 2);
        let (_, version, stale_rec) = cache.get_stale(&key("m", 2, 100).as_probe()).unwrap();
        assert_eq!(version, 1);
        assert_eq!(stale_rec, Some((400, 90, 123.5)));
    }
}
