//! Request metrics with Prometheus text exposition.
//!
//! Everything is lock-free atomics: fixed route labels, per-route request
//! and error counters, and a shared latency histogram with
//! log-spaced buckets. `render` produces the standard
//! `text/plain; version=0.0.4` exposition format.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Route label a request is accounted under. Fixed set — unknown paths
/// all collapse into `Other` so label cardinality stays bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET /v1/models`
    Models,
    /// `POST /v1/models/{name}/reload`
    Reload,
    /// `POST /v1/predict`
    Predict,
    /// `POST /v1/advise`
    Advise,
    /// `POST /v1/shutdown`
    Shutdown,
    /// Anything else (404s, bad methods, …).
    Other,
}

impl Route {
    const ALL: [Route; 8] = [
        Route::Healthz,
        Route::Metrics,
        Route::Models,
        Route::Reload,
        Route::Predict,
        Route::Advise,
        Route::Shutdown,
        Route::Other,
    ];

    fn index(self) -> usize {
        match self {
            Route::Healthz => 0,
            Route::Metrics => 1,
            Route::Models => 2,
            Route::Reload => 3,
            Route::Predict => 4,
            Route::Advise => 5,
            Route::Shutdown => 6,
            Route::Other => 7,
        }
    }

    /// The Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Models => "models",
            Route::Reload => "reload",
            Route::Predict => "predict",
            Route::Advise => "advise",
            Route::Shutdown => "shutdown",
            Route::Other => "other",
        }
    }
}

/// Histogram bucket upper bounds, in seconds.
const BUCKETS: [f64; 10] = [1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0];

#[derive(Default)]
struct RouteStats {
    requests: AtomicU64,
    errors: AtomicU64,
}

/// Shared, thread-safe service metrics.
#[derive(Default)]
pub struct Metrics {
    routes: [RouteStats; 8],
    /// Cumulative counts per latency bucket (+ one overflow bucket).
    latency_buckets: [AtomicU64; 11],
    /// Total observed latency, in microseconds (integer so it can live in
    /// an atomic; micro resolution keeps rounding error negligible).
    latency_sum_micros: AtomicU64,
    latency_count: AtomicU64,
    /// `/v1/advise` answers served from the recommendation cache.
    cache_hits: AtomicU64,
    /// `/v1/advise` answers that had to run the sweep.
    cache_misses: AtomicU64,
    /// Current number of cached advise answers (gauge).
    cache_entries: AtomicU64,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one request: its route, whether the response was an error
    /// (HTTP status >= 400), and how long handling took.
    pub fn record(&self, route: Route, is_error: bool, elapsed: Duration) {
        let stats = &self.routes[route.index()];
        stats.requests.fetch_add(1, Ordering::Relaxed);
        if is_error {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        let secs = elapsed.as_secs_f64();
        let bucket = BUCKETS.iter().position(|&b| secs <= b).unwrap_or(BUCKETS.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_micros.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests recorded for a route.
    pub fn requests(&self, route: Route) -> u64 {
        self.routes[route.index()].requests.load(Ordering::Relaxed)
    }

    /// Total error responses recorded for a route.
    pub fn errors(&self, route: Route) -> u64 {
        self.routes[route.index()].errors.load(Ordering::Relaxed)
    }

    /// Record an advise-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an advise-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Update the advise-cache size gauge.
    pub fn set_cache_entries(&self, n: usize) {
        self.cache_entries.store(n as u64, Ordering::Relaxed);
    }

    /// Advise-cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Advise-cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Render the Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("# HELP chemcost_requests_total Requests handled, by route.\n");
        out.push_str("# TYPE chemcost_requests_total counter\n");
        for route in Route::ALL {
            let n = self.requests(route);
            out.push_str(&format!("chemcost_requests_total{{route=\"{}\"}} {n}\n", route.label()));
        }
        out.push_str(
            "# HELP chemcost_request_errors_total Error responses (status >= 400), by route.\n",
        );
        out.push_str("# TYPE chemcost_request_errors_total counter\n");
        for route in Route::ALL {
            let n = self.errors(route);
            out.push_str(&format!(
                "chemcost_request_errors_total{{route=\"{}\"}} {n}\n",
                route.label()
            ));
        }
        out.push_str("# HELP chemcost_request_duration_seconds Request handling latency.\n");
        out.push_str("# TYPE chemcost_request_duration_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, le) in BUCKETS.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "chemcost_request_duration_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency_buckets[BUCKETS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "chemcost_request_duration_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        let sum = self.latency_sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        out.push_str(&format!("chemcost_request_duration_seconds_sum {sum}\n"));
        out.push_str(&format!(
            "chemcost_request_duration_seconds_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP chemcost_advise_cache_hits_total Advise answers served from cache.\n");
        out.push_str("# TYPE chemcost_advise_cache_hits_total counter\n");
        out.push_str(&format!("chemcost_advise_cache_hits_total {}\n", self.cache_hits()));
        out.push_str(
            "# HELP chemcost_advise_cache_misses_total Advise answers that ran the sweep.\n",
        );
        out.push_str("# TYPE chemcost_advise_cache_misses_total counter\n");
        out.push_str(&format!("chemcost_advise_cache_misses_total {}\n", self.cache_misses()));
        out.push_str("# HELP chemcost_advise_cache_entries Cached advise answers.\n");
        out.push_str("# TYPE chemcost_advise_cache_entries gauge\n");
        out.push_str(&format!(
            "chemcost_advise_cache_entries {}\n",
            self.cache_entries.load(Ordering::Relaxed)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_requests_and_errors_per_route() {
        let m = Metrics::new();
        m.record(Route::Predict, false, Duration::from_millis(2));
        m.record(Route::Predict, true, Duration::from_millis(2));
        m.record(Route::Advise, false, Duration::from_millis(1));
        assert_eq!(m.requests(Route::Predict), 2);
        assert_eq!(m.errors(Route::Predict), 1);
        assert_eq!(m.requests(Route::Advise), 1);
        assert_eq!(m.errors(Route::Advise), 0);
        assert_eq!(m.requests(Route::Healthz), 0);
    }

    #[test]
    fn render_contains_all_series() {
        let m = Metrics::new();
        m.record(Route::Healthz, false, Duration::from_micros(50));
        let text = m.render();
        assert!(text.contains("chemcost_requests_total{route=\"healthz\"} 1"));
        assert!(text.contains("chemcost_requests_total{route=\"predict\"} 0"));
        assert!(text.contains("chemcost_request_errors_total{route=\"healthz\"} 0"));
        assert!(text.contains("chemcost_request_duration_seconds_count 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));
    }

    #[test]
    fn cache_counters_render() {
        let m = Metrics::new();
        m.record_cache_miss();
        m.record_cache_hit();
        m.record_cache_hit();
        m.set_cache_entries(1);
        assert_eq!(m.cache_hits(), 2);
        assert_eq!(m.cache_misses(), 1);
        let text = m.render();
        assert!(text.contains("chemcost_advise_cache_hits_total 2"));
        assert!(text.contains("chemcost_advise_cache_misses_total 1"));
        assert!(text.contains("chemcost_advise_cache_entries 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record(Route::Other, false, Duration::from_micros(50)); // <= 1e-4
        m.record(Route::Other, false, Duration::from_millis(20)); // <= 5e-2
        m.record(Route::Other, false, Duration::from_secs(10)); // overflow
        let text = m.render();
        assert!(text.contains("le=\"0.0001\"} 1"));
        assert!(text.contains("le=\"0.05\"} 2"));
        assert!(text.contains("le=\"5\"} 2"));
        assert!(text.contains("le=\"+Inf\"} 3"));
    }
}
