//! Request metrics with Prometheus text exposition.
//!
//! Everything is lock-free atomics: fixed route labels, per-route request
//! and error counters, a shared latency histogram with log-spaced
//! buckets, saturation gauges (queue depth, in-flight), shed-load and
//! advise-cache counters, a per-stage latency histogram for the
//! `/v1/advise` pipeline (`cache` → `sweep` → `encode`), and the
//! robustness series: deadline overruns per stage, model staleness,
//! reload failures, stale cache serves, and injected faults. `render`
//! produces the standard `text/plain; version=0.0.4` exposition format;
//! [`lint_exposition`] validates that format and doubles as the CI smoke
//! and chaos jobs' correctness check.
//!
//! # Hot-path layout
//!
//! The per-request counters (route requests/errors, advise-cache
//! hits/misses, keep-alive reuses) are [`ShardedCounter`]s: each is a
//! small array of cache-line-padded atomics and every thread increments
//! its own stripe, so concurrent request threads never bounce one
//! counter's cache line between cores. Reads sum the stripes — counters
//! are read on scrape, written per request, so the trade goes the right
//! way. Histogram bucket lines render through preformatted name slabs
//! (`name_bucket{…le="x"} ` prefixes built once per process), keeping
//! the scrape path to integer formatting instead of per-line `format!`
//! allocations.
//!
//! Every series is **pre-registered**: the label sets are fixed arrays,
//! so each family appears in the very first scrape at zero rather than
//! materializing on first increment (dashboards and the `increase()`
//! family of PromQL functions need the zero point). The chaos job
//! asserts this through [`REQUIRED_SERIES`] +
//! [`lint_exposition_with_required`].

use crate::batcher::FlushReason;
use crate::fault::FaultKind;
use chemcost_lifecycle::{LifecycleObserver, LifecycleState, PromotionOutcome, TRANSITIONS};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Route label a request is accounted under. Fixed set — unknown paths
/// all collapse into `Other` so label cardinality stays bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET /v1/models`
    Models,
    /// `POST /v1/models/{name}/reload`
    Reload,
    /// `POST /v1/predict`
    Predict,
    /// `POST /v1/advise`
    Advise,
    /// `POST /v1/observe` — ground-truth runtime reports.
    Observe,
    /// `GET /v1/quality` and `GET /v1/quality/next_experiments`.
    Quality,
    /// `GET /v1/lifecycle` and `POST /v1/lifecycle/*` operator overrides.
    Lifecycle,
    /// `POST /v1/shutdown`
    Shutdown,
    /// `GET /debug/requests` — the flight recorder.
    Debug,
    /// `GET /v1/health` — the SLO-driven readiness verdict.
    Health,
    /// Anything else (404s, bad methods, shed connections, …).
    Other,
}

impl Route {
    /// Every route, in exposition order.
    pub const ALL: [Route; 13] = [
        Route::Healthz,
        Route::Metrics,
        Route::Models,
        Route::Reload,
        Route::Predict,
        Route::Advise,
        Route::Observe,
        Route::Quality,
        Route::Lifecycle,
        Route::Shutdown,
        Route::Debug,
        Route::Health,
        Route::Other,
    ];

    fn index(self) -> usize {
        match self {
            Route::Healthz => 0,
            Route::Metrics => 1,
            Route::Models => 2,
            Route::Reload => 3,
            Route::Predict => 4,
            Route::Advise => 5,
            Route::Observe => 6,
            Route::Quality => 7,
            Route::Lifecycle => 8,
            Route::Shutdown => 9,
            Route::Debug => 10,
            Route::Health => 11,
            Route::Other => 12,
        }
    }

    /// The Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Models => "models",
            Route::Reload => "reload",
            Route::Predict => "predict",
            Route::Advise => "advise",
            Route::Observe => "observe",
            Route::Quality => "quality",
            Route::Lifecycle => "lifecycle",
            Route::Shutdown => "shutdown",
            Route::Debug => "debug",
            Route::Health => "health",
            Route::Other => "other",
        }
    }
}

/// One stage of the `/v1/advise` pipeline, timed separately so a slow
/// answer can be attributed to the model sweep, the cache, or JSON
/// encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdviseStage {
    /// Key construction + cache probe (and hit replay).
    Cache,
    /// The candidate sweep through the flat model.
    Sweep,
    /// Reductions + JSON rendering + cache insert.
    Encode,
    /// Shadow-candidate scoring of the primary recommendation.
    Shadow,
}

impl AdviseStage {
    /// Every stage, in label order.
    pub const ALL: [AdviseStage; 4] =
        [AdviseStage::Cache, AdviseStage::Sweep, AdviseStage::Encode, AdviseStage::Shadow];

    fn index(self) -> usize {
        match self {
            AdviseStage::Cache => 0,
            AdviseStage::Sweep => 1,
            AdviseStage::Encode => 2,
            AdviseStage::Shadow => 3,
        }
    }

    /// The Prometheus `stage` label value.
    pub fn label(self) -> &'static str {
        match self {
            AdviseStage::Cache => "cache",
            AdviseStage::Sweep => "sweep",
            AdviseStage::Encode => "encode",
            AdviseStage::Shadow => "shadow",
        }
    }
}

/// One deadline checkpoint in the request path; the label on
/// `chemcost_deadline_exceeded_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineStage {
    /// The budget was already gone when a worker dequeued the request.
    Queue,
    /// Expired at the advise cache probe.
    Cache,
    /// Expired before the candidate sweep could start.
    Sweep,
}

impl DeadlineStage {
    /// Every stage, in label order.
    pub const ALL: [DeadlineStage; 3] =
        [DeadlineStage::Queue, DeadlineStage::Cache, DeadlineStage::Sweep];

    fn index(self) -> usize {
        match self {
            DeadlineStage::Queue => 0,
            DeadlineStage::Cache => 1,
            DeadlineStage::Sweep => 2,
        }
    }

    /// The Prometheus `stage` label value.
    pub fn label(self) -> &'static str {
        match self {
            DeadlineStage::Queue => "queue",
            DeadlineStage::Cache => "cache",
            DeadlineStage::Sweep => "sweep",
        }
    }
}

/// One stage of a request's end-to-end timeline through the event-driven
/// data plane; the `stage` label on
/// `chemcost_request_stage_duration_seconds`. The six stages partition
/// the first-byte → last-byte wall time (see `crate::timeline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStage {
    /// First byte read → parse complete (the deadline anchor).
    Read,
    /// Parse complete → a worker dequeued the request.
    Queue,
    /// Time the worker spent blocked in the micro-batcher (window wait
    /// plus the coalesced model call).
    BatchWait,
    /// Worker dequeue → handler done, minus the batch wait.
    Handler,
    /// Handler done → response encoded onto the wire buffer (waiting for
    /// its turn in the pipeline reorder).
    Reorder,
    /// Response encoded → last byte accepted by the socket.
    Write,
}

impl RequestStage {
    /// Every stage, in timeline order.
    pub const ALL: [RequestStage; 6] = [
        RequestStage::Read,
        RequestStage::Queue,
        RequestStage::BatchWait,
        RequestStage::Handler,
        RequestStage::Reorder,
        RequestStage::Write,
    ];

    /// Position in [`RequestStage::ALL`] (metric array index).
    pub fn index(self) -> usize {
        match self {
            RequestStage::Read => 0,
            RequestStage::Queue => 1,
            RequestStage::BatchWait => 2,
            RequestStage::Handler => 3,
            RequestStage::Reorder => 4,
            RequestStage::Write => 5,
        }
    }

    /// The Prometheus `stage` label value.
    pub fn label(self) -> &'static str {
        match self {
            RequestStage::Read => "read",
            RequestStage::Queue => "queue",
            RequestStage::BatchWait => "batch_wait",
            RequestStage::Handler => "handler",
            RequestStage::Reorder => "reorder",
            RequestStage::Write => "write",
        }
    }

    /// The field key in `request.timeline` obs events and in the
    /// `/debug/requests` `stages` object (label + `_us`, values are
    /// microseconds).
    pub fn field_key(self) -> &'static str {
        match self {
            RequestStage::Read => "read_us",
            RequestStage::Queue => "queue_us",
            RequestStage::BatchWait => "batch_wait_us",
            RequestStage::Handler => "handler_us",
            RequestStage::Reorder => "reorder_us",
            RequestStage::Write => "write_us",
        }
    }
}

/// Histogram bucket upper bounds, in seconds.
const BUCKETS: [f64; 10] = [1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0];

/// Every metric family the service exposes, by family name. The smoke
/// and chaos CI jobs pass this to [`lint_exposition_with_required`] so
/// a series silently dropped from [`Metrics::render`] (or one that only
/// materializes after its first increment) fails the scrape check.
pub const REQUIRED_SERIES: &[&str] = &[
    "chemcost_build_info",
    "chemcost_requests_total",
    "chemcost_request_errors_total",
    "chemcost_requests_in_flight",
    "chemcost_pool_queue_depth",
    "chemcost_requests_shed_total",
    "chemcost_request_duration_seconds",
    "chemcost_advise_stage_duration_seconds",
    "chemcost_advise_cache_hits_total",
    "chemcost_advise_cache_misses_total",
    "chemcost_advise_cache_entries",
    "chemcost_deadline_exceeded_total",
    "chemcost_model_staleness_seconds",
    "chemcost_model_reload_failures_total",
    "chemcost_advise_stale_served_total",
    "chemcost_faults_injected_total",
    "chemcost_quality_observations_total",
    "chemcost_model_mape",
    "chemcost_model_bias_seconds",
    "chemcost_residual_seconds",
    "chemcost_calibration_ratio",
    "chemcost_model_degraded",
    "chemcost_drift_trips_total",
    "chemcost_quality_pool_size",
    "chemcost_quality_pool_evictions_total",
    "chemcost_lifecycle_state",
    "chemcost_lifecycle_transitions_total",
    "chemcost_lifecycle_queue_depth",
    "chemcost_lifecycle_fit_duration_seconds",
    "chemcost_lifecycle_promotions_total",
    "chemcost_connections_open",
    "chemcost_batch_size",
    "chemcost_batch_flush_total",
    "chemcost_keepalive_reuses_total",
    "chemcost_request_stage_duration_seconds",
    "chemcost_event_loop_iteration_duration_seconds",
    "chemcost_event_loop_events_per_wake",
    "chemcost_connections_read_paused",
    "chemcost_connections_write_stalled",
    "chemcost_alerts_transitions_total",
    "chemcost_alerts_firing",
    "chemcost_alerts_pending",
    "chemcost_slo_evaluations_total",
    "chemcost_slo_breaching",
    "chemcost_slo_scrapes_total",
];

/// Version baked into `chemcost_build_info`.
const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");
/// Git SHA baked into `chemcost_build_info` (set `CHEMCOST_GIT_SHA` at
/// build time; CI does).
const BUILD_GIT_SHA: &str = match option_env!("CHEMCOST_GIT_SHA") {
    Some(sha) => sha,
    None => "unknown",
};
/// Working-tree dirtiness baked into `chemcost_build_info` (set
/// `CHEMCOST_GIT_DIRTY` to `"true"`/`"false"` at build time; CI does).
/// `unknown` means the build script didn't say — e.g. a plain local
/// `cargo build`.
const BUILD_DIRTY: &str = match option_env!("CHEMCOST_GIT_DIRTY") {
    Some(dirty) => dirty,
    None => "unknown",
};

/// The `(version, git_sha, dirty)` triple stamped on
/// `chemcost_build_info`, reused verbatim by `GET /v1/quality` and
/// `chemcost --version` so every surface reports the same build.
pub fn build_info() -> (&'static str, &'static str, &'static str) {
    (BUILD_VERSION, BUILD_GIT_SHA, BUILD_DIRTY)
}

/// Stripes per [`ShardedCounter`]. Power of two so the per-thread pick
/// is a mask.
const COUNTER_SHARDS: usize = 8;

/// One cache line's worth of counter, so neighbouring stripes never
/// false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Per-thread stripe index, handed out round-robin on first use so a
/// steady pool of request threads spreads evenly over the stripes.
fn counter_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed) & (COUNTER_SHARDS - 1);
        s.set(v);
        v
    })
}

/// A monotonically increasing counter striped across cache-line-padded
/// shards: increments touch only the calling thread's stripe, reads sum
/// all stripes. Written per request, read per scrape.
#[derive(Default)]
struct ShardedCounter {
    stripes: [PaddedU64; COUNTER_SHARDS],
}

impl ShardedCounter {
    #[inline]
    fn inc(&self) {
        self.stripes[counter_stripe()].0.fetch_add(1, Ordering::Relaxed);
    }

    fn load(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

#[derive(Default)]
struct RouteStats {
    requests: ShardedCounter,
    errors: ShardedCounter,
}

/// Preformatted line prefixes for one histogram's fixed series names —
/// everything up to the sample value, built once per process so a scrape
/// only formats the integers.
struct RenderSlab {
    /// `name_bucket{extra,le="…"} ` for each bucket, `+Inf` last.
    bucket_prefixes: Vec<String>,
    /// `name_sum ` / `name_sum{labels} `.
    sum_prefix: String,
    /// `name_count ` / `name_count{labels} `.
    count_prefix: String,
}

impl RenderSlab {
    fn build<B: std::fmt::Display>(name: &str, extra: &str, bounds: &[B]) -> RenderSlab {
        let mut bucket_prefixes: Vec<String> =
            bounds.iter().map(|le| format!("{name}_bucket{{{extra}le=\"{le}\"}} ")).collect();
        bucket_prefixes.push(format!("{name}_bucket{{{extra}le=\"+Inf\"}} "));
        let (sum_prefix, count_prefix) = if extra.is_empty() {
            (format!("{name}_sum "), format!("{name}_count "))
        } else {
            let labels = extra.trim_end_matches(',');
            (format!("{name}_sum{{{labels}}} "), format!("{name}_count{{{labels}}} "))
        };
        RenderSlab { bucket_prefixes, sum_prefix, count_prefix }
    }
}

/// Cumulative bucket counts (+ overflow) with sum and count — one
/// Prometheus histogram series set.
#[derive(Default)]
struct Histogram {
    buckets: [AtomicU64; 11],
    sum_micros: AtomicU64,
    count: AtomicU64,
    /// Built on first render; each histogram instance renders under one
    /// fixed `(name, extra)` pair.
    slab: OnceLock<RenderSlab>,
}

impl Histogram {
    fn observe(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let bucket = BUCKETS.iter().position(|&b| secs <= b).unwrap_or(BUCKETS.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Render `name{extra_labels,le="…"} …` bucket lines plus sum and
    /// count. `extra` is either empty or `label="value",` (trailing
    /// comma included).
    fn render(&self, out: &mut String, name: &str, extra: &str) {
        let slab = self.slab.get_or_init(|| RenderSlab::build(name, extra, &BUCKETS));
        let mut cumulative = 0u64;
        for (bucket, prefix) in self.buckets.iter().zip(&slab.bucket_prefixes) {
            cumulative += bucket.load(Ordering::Relaxed);
            out.push_str(prefix);
            let _ = writeln!(out, "{cumulative}");
        }
        let sum = self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        out.push_str(&slab.sum_prefix);
        let _ = writeln!(out, "{sum}");
        out.push_str(&slab.count_prefix);
        let _ = writeln!(out, "{}", self.count.load(Ordering::Relaxed));
    }
}

/// Bucket upper bounds for `chemcost_batch_size` — coalesced rows per
/// flat-model call. Powers of two up to the default `--batch-max`.
const SIZE_BUCKETS: [u64; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// A histogram over discrete sizes (row counts), same Prometheus shape
/// as [`Histogram`] but with integer bucket bounds and a plain sum.
#[derive(Default)]
struct SizeHistogram {
    buckets: [AtomicU64; 11],
    sum: AtomicU64,
    count: AtomicU64,
    /// Built on first render; see [`Histogram::slab`].
    slab: OnceLock<RenderSlab>,
}

impl SizeHistogram {
    fn observe(&self, n: usize) {
        let n = n as u64;
        let bucket = SIZE_BUCKETS.iter().position(|&b| n <= b).unwrap_or(SIZE_BUCKETS.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn render(&self, out: &mut String, name: &str) {
        let slab = self.slab.get_or_init(|| RenderSlab::build(name, "", &SIZE_BUCKETS));
        let mut cumulative = 0u64;
        for (bucket, prefix) in self.buckets.iter().zip(&slab.bucket_prefixes) {
            cumulative += bucket.load(Ordering::Relaxed);
            out.push_str(prefix);
            let _ = writeln!(out, "{cumulative}");
        }
        out.push_str(&slab.sum_prefix);
        let _ = writeln!(out, "{}", self.sum.load(Ordering::Relaxed));
        out.push_str(&slab.count_prefix);
        let _ = writeln!(out, "{}", self.count.load(Ordering::Relaxed));
    }
}

/// Rolling model-quality numbers for one `(model, version, machine)`
/// serving group, as computed by the quality hub from observed runtimes
/// and pushed here for exposition. All window statistics are `NaN`
/// until the first ground-truth observation arrives — the gauges render
/// `NaN` rather than a misleading zero.
#[derive(Debug, Clone, Copy)]
pub struct QualityStats {
    /// Ground-truth observations ever accepted for this group.
    pub observations: u64,
    /// Residuals currently inside the sliding window.
    pub window: u64,
    /// Windowed mean absolute percentage error.
    pub mape: f64,
    /// Windowed signed bias in seconds (`mean(predicted − measured)`).
    pub bias_seconds: f64,
    /// Windowed absolute-residual median, in seconds.
    pub residual_p50: f64,
    /// Windowed absolute-residual 90th percentile, in seconds.
    pub residual_p90: f64,
    /// Windowed absolute-residual 99th percentile, in seconds.
    pub residual_p99: f64,
    /// Fraction of σ-carrying residuals inside the predicted ±σ band.
    pub calibration_ratio: f64,
    /// Times the Page–Hinkley drift detector tripped for this group.
    pub drift_trips: u64,
    /// Is the group currently flagged degraded (drift tripped and no
    /// successful reload since)?
    pub degraded: bool,
    /// Observations currently retained in the group's training pool.
    pub pool_size: u64,
    /// Observations silently evicted from the full training pool.
    pub pool_evictions: u64,
}

impl Default for QualityStats {
    fn default() -> QualityStats {
        QualityStats {
            observations: 0,
            window: 0,
            mape: f64::NAN,
            bias_seconds: f64::NAN,
            residual_p50: f64::NAN,
            residual_p90: f64::NAN,
            residual_p99: f64::NAN,
            calibration_ratio: f64::NAN,
            drift_trips: 0,
            degraded: false,
            pool_size: 0,
            pool_evictions: 0,
        }
    }
}

/// One registered quality group: its identifying labels plus the most
/// recently pushed stats.
#[derive(Debug, Clone)]
pub struct QualityEntry {
    /// Model name label.
    pub model: String,
    /// Model version label.
    pub version: u64,
    /// Machine label.
    pub machine: String,
    /// Latest stats snapshot.
    pub stats: QualityStats,
}

/// One lifecycle group's current state, for the per-group state gauge.
/// Keyed by (model, machine) — unlike quality groups, the lifecycle of a
/// model spans its versions.
#[derive(Debug, Clone)]
pub struct LifecycleEntry {
    /// Model name label.
    pub model: String,
    /// Machine label.
    pub machine: String,
    /// Current state (the gauge exports [`LifecycleState::code`]).
    pub state: LifecycleState,
}

/// Shared, thread-safe service metrics.
pub struct Metrics {
    routes: [RouteStats; 13],
    /// Whole-request handling latency.
    latency: Histogram,
    /// Per-stage request-timeline latency, indexed by [`RequestStage`].
    request_stages: [Histogram; 6],
    /// Event-loop iteration duration (one epoll wake's processing).
    loop_iteration: Histogram,
    /// Readiness events delivered per epoll wake.
    loop_events_per_wake: SizeHistogram,
    /// Connections whose reads are paused by backpressure (gauge).
    read_paused: AtomicI64,
    /// Connections with unsent response bytes after a flush (gauge).
    write_stalled: AtomicI64,
    /// Per-stage `/v1/advise` latency, indexed by [`AdviseStage`].
    advise_stages: [Histogram; 4],
    /// `/v1/advise` answers served from the recommendation cache.
    cache_hits: ShardedCounter,
    /// `/v1/advise` answers that had to run the sweep.
    cache_misses: ShardedCounter,
    /// Current number of cached advise answers (gauge).
    cache_entries: AtomicU64,
    /// Requests currently being handled (gauge).
    in_flight: AtomicI64,
    /// Connections queued in the worker pool, not yet picked up (gauge).
    pool_queue_depth: AtomicI64,
    /// Connections shed with 503 because the pool queue was full.
    shed: AtomicU64,
    /// Requests answered 504, per [`DeadlineStage`].
    deadline_exceeded: [AtomicU64; 3],
    /// Failed model reloads (the last-good model kept serving).
    reload_failures: AtomicU64,
    /// Advise answers served from an older model version under overload.
    stale_served: AtomicU64,
    /// Injected faults, per [`FaultKind`].
    faults_injected: [AtomicU64; 5],
    /// `/v1/observe` reports accepted into the quality stats.
    quality_accepted: AtomicU64,
    /// `/v1/observe` reports rejected (4xx) without touching the stats.
    quality_rejected: AtomicU64,
    /// Per-`(model, version, machine)` quality gauges, upserted by the
    /// quality hub. A `Vec` behind a lock, not atomics: the label set is
    /// dynamic (it follows the model registry) but tiny and updated only
    /// on observe/reload, never on the request hot path.
    quality: parking_lot::RwLock<Vec<QualityEntry>>,
    /// Per-`(model, machine)` lifecycle state gauge, upserted by the
    /// lifecycle hub through the [`LifecycleObserver`] bridge.
    lifecycle: parking_lot::RwLock<Vec<LifecycleEntry>>,
    /// Valid lifecycle transitions taken, indexed by position in
    /// [`chemcost_lifecycle::TRANSITIONS`].
    lifecycle_transitions: [AtomicU64; 13],
    /// Retrain jobs waiting in the trainer queue (gauge).
    lifecycle_queue_depth: AtomicI64,
    /// Candidate fit wall time (success or failure).
    lifecycle_fit_duration: Histogram,
    /// Promotion decisions, indexed by [`PromotionOutcome::ALL`] position.
    lifecycle_promotions: [AtomicU64; 4],
    /// Open client connections in the event loop (gauge).
    connections_open: AtomicI64,
    /// Requests served on a reused (non-first) keep-alive exchange.
    keepalive_reuses: ShardedCounter,
    /// Batcher flushes, indexed by [`FlushReason`].
    batch_flushes: [AtomicU64; 4],
    /// Coalesced rows per flat-model batch call.
    batch_size: SizeHistogram,
    /// Monotonic clock anchor for the two timestamps below.
    start: Instant,
    /// Micros-since-`start` + 1 of the moment the serving model went
    /// stale (first failed reload after a success); 0 = fresh.
    stale_since: AtomicU64,
    /// Micros-since-`start` + 1 of the most recent shed; 0 = never.
    last_shed: AtomicU64,
    /// Alert transitions by destination state, indexed ok/pending/
    /// firing/resolved (health plane).
    alert_transitions: [AtomicU64; 4],
    /// SLOs whose alert is currently firing (gauge).
    alerts_firing: AtomicI64,
    /// SLOs whose alert is currently pending (gauge).
    alerts_pending: AtomicI64,
    /// SLO evaluations run by the health sampler.
    slo_evaluations: AtomicU64,
    /// SLOs breaching on their latest evaluation (gauge).
    slo_breaching: AtomicI64,
    /// Self-scrape samples taken by the health sampler.
    slo_scrapes: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            routes: Default::default(),
            latency: Histogram::default(),
            request_stages: Default::default(),
            loop_iteration: Histogram::default(),
            loop_events_per_wake: SizeHistogram::default(),
            read_paused: AtomicI64::new(0),
            write_stalled: AtomicI64::new(0),
            advise_stages: Default::default(),
            cache_hits: ShardedCounter::default(),
            cache_misses: ShardedCounter::default(),
            cache_entries: AtomicU64::new(0),
            in_flight: AtomicI64::new(0),
            pool_queue_depth: AtomicI64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: Default::default(),
            reload_failures: AtomicU64::new(0),
            stale_served: AtomicU64::new(0),
            faults_injected: Default::default(),
            quality_accepted: AtomicU64::new(0),
            quality_rejected: AtomicU64::new(0),
            quality: parking_lot::RwLock::new(Vec::new()),
            lifecycle: parking_lot::RwLock::new(Vec::new()),
            lifecycle_transitions: Default::default(),
            lifecycle_queue_depth: AtomicI64::new(0),
            lifecycle_fit_duration: Histogram::default(),
            lifecycle_promotions: Default::default(),
            connections_open: AtomicI64::new(0),
            keepalive_reuses: ShardedCounter::default(),
            batch_flushes: Default::default(),
            batch_size: SizeHistogram::default(),
            start: Instant::now(),
            stale_since: AtomicU64::new(0),
            last_shed: AtomicU64::new(0),
            alert_transitions: Default::default(),
            alerts_firing: AtomicI64::new(0),
            alerts_pending: AtomicI64::new(0),
            slo_evaluations: AtomicU64::new(0),
            slo_breaching: AtomicI64::new(0),
            slo_scrapes: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Micros elapsed since this `Metrics` was created, offset by +1 so
    /// 0 can mean "unset" in the timestamp atomics.
    fn now_stamp(&self) -> u64 {
        self.start.elapsed().as_micros() as u64 + 1
    }

    /// Record one request: its route, whether the response was an error
    /// (HTTP status >= 400), and how long handling took.
    pub fn record(&self, route: Route, is_error: bool, elapsed: Duration) {
        let stats = &self.routes[route.index()];
        stats.requests.inc();
        if is_error {
            stats.errors.inc();
        }
        self.latency.observe(elapsed);
    }

    /// Account one connection shed with 503 before it reached the
    /// router: a request *and* an error under the `other` route, plus
    /// the dedicated shed counter. Shed connections never produce a
    /// latency observation — they were refused, not handled.
    pub fn record_shed(&self) {
        let stats = &self.routes[Route::Other.index()];
        stats.requests.inc();
        stats.errors.inc();
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.last_shed.store(self.now_stamp(), Ordering::Relaxed);
    }

    /// Connections shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Did a shed happen within the last `window`? This is the overload
    /// signal that unlocks serve-stale-on-overload in the advise path.
    pub fn shed_within(&self, window: Duration) -> bool {
        match self.last_shed.load(Ordering::Relaxed) {
            0 => false,
            // Strictly less-than: a zero window never matches, even if
            // the shed landed on this very microsecond.
            stamp => self.now_stamp().saturating_sub(stamp) < window.as_micros() as u64,
        }
    }

    /// Record one 504: the request's budget ran out at `stage`.
    pub fn record_deadline_exceeded(&self, stage: DeadlineStage) {
        self.deadline_exceeded[stage.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Deadline overruns recorded at one stage.
    pub fn deadline_exceeded(&self, stage: DeadlineStage) -> u64 {
        self.deadline_exceeded[stage.index()].load(Ordering::Relaxed)
    }

    /// Record one fault injection (mirrored here by the bound
    /// [`crate::fault::FaultPlane`]).
    pub fn record_fault(&self, kind: FaultKind) {
        self.faults_injected[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Injections recorded for one fault kind.
    pub fn faults_injected(&self, kind: FaultKind) -> u64 {
        self.faults_injected[kind.index()].load(Ordering::Relaxed)
    }

    /// Record a failed model reload and start the staleness clock (if
    /// it is not already running).
    pub fn record_reload_failure(&self) {
        self.reload_failures.fetch_add(1, Ordering::Relaxed);
        let _ = self.stale_since.compare_exchange(
            0,
            self.now_stamp(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Failed reloads so far.
    pub fn reload_failures(&self) -> u64 {
        self.reload_failures.load(Ordering::Relaxed)
    }

    /// A reload succeeded: the serving model is fresh again.
    pub fn mark_model_fresh(&self) {
        self.stale_since.store(0, Ordering::Relaxed);
    }

    /// Seconds the serving model has been known-stale (a reload has
    /// failed and no reload has succeeded since); 0 when fresh.
    pub fn model_staleness_seconds(&self) -> f64 {
        match self.stale_since.load(Ordering::Relaxed) {
            0 => 0.0,
            stamp => self.now_stamp().saturating_sub(stamp) as f64 / 1e6,
        }
    }

    /// Record the outcome of one `/v1/observe` report: accepted into
    /// the rolling stats, or rejected with a structured 4xx.
    pub fn record_quality_observation(&self, accepted: bool) {
        if accepted {
            self.quality_accepted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.quality_rejected.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `/v1/observe` reports accepted so far.
    pub fn quality_accepted(&self) -> u64 {
        self.quality_accepted.load(Ordering::Relaxed)
    }

    /// `/v1/observe` reports rejected so far.
    pub fn quality_rejected(&self) -> u64 {
        self.quality_rejected.load(Ordering::Relaxed)
    }

    /// Upsert the quality gauges for one `(model, version, machine)`
    /// group. Registering a group with [`QualityStats::default`] at
    /// startup (the router does this for every registry entry) is what
    /// makes the quality series appear on the very first scrape.
    pub fn set_model_quality(&self, model: &str, version: u64, machine: &str, stats: QualityStats) {
        let mut groups = self.quality.write();
        match groups
            .iter_mut()
            .find(|e| e.model == model && e.version == version && e.machine == machine)
        {
            Some(entry) => entry.stats = stats,
            None => groups.push(QualityEntry {
                model: model.to_string(),
                version,
                machine: machine.to_string(),
                stats,
            }),
        }
    }

    /// Snapshot of every registered quality group.
    pub fn quality_entries(&self) -> Vec<QualityEntry> {
        self.quality.read().clone()
    }

    /// Upsert the lifecycle state gauge for one `(model, machine)` group.
    /// Registering every group as `Idle` at startup is what makes
    /// `chemcost_lifecycle_state` appear on the very first scrape.
    pub fn set_lifecycle_state(&self, model: &str, machine: &str, state: LifecycleState) {
        let mut groups = self.lifecycle.write();
        match groups.iter_mut().find(|e| e.model == model && e.machine == machine) {
            Some(entry) => entry.state = state,
            None => groups.push(LifecycleEntry {
                model: model.to_string(),
                machine: machine.to_string(),
                state,
            }),
        }
    }

    /// Snapshot of every registered lifecycle group.
    pub fn lifecycle_entries(&self) -> Vec<LifecycleEntry> {
        self.lifecycle.read().clone()
    }

    /// Count one valid lifecycle transition. Pairs outside the enumerated
    /// [`TRANSITIONS`] table are ignored (the hub never emits them).
    pub fn record_lifecycle_transition(&self, from: LifecycleState, to: LifecycleState) {
        if let Some(i) = TRANSITIONS.iter().position(|&(f, t)| f == from && t == to) {
            self.lifecycle_transitions[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Transitions counted for one `(from, to)` pair.
    pub fn lifecycle_transitions(&self, from: LifecycleState, to: LifecycleState) -> u64 {
        TRANSITIONS
            .iter()
            .position(|&(f, t)| f == from && t == to)
            .map_or(0, |i| self.lifecycle_transitions[i].load(Ordering::Relaxed))
    }

    /// Update the trainer-queue depth gauge.
    pub fn set_lifecycle_queue_depth(&self, depth: usize) {
        self.lifecycle_queue_depth.store(depth as i64, Ordering::Relaxed);
    }

    /// Retrain jobs waiting in the trainer queue right now.
    pub fn lifecycle_queue_depth(&self) -> u64 {
        self.lifecycle_queue_depth.load(Ordering::Relaxed).max(0) as u64
    }

    /// Record one candidate fit's wall time (success or failure).
    pub fn record_lifecycle_fit_duration(&self, elapsed: Duration) {
        self.lifecycle_fit_duration.observe(elapsed);
    }

    /// Candidate fits recorded so far.
    pub fn lifecycle_fits(&self) -> u64 {
        self.lifecycle_fit_duration.count.load(Ordering::Relaxed)
    }

    /// Count one promotion decision.
    pub fn record_lifecycle_promotion(&self, outcome: PromotionOutcome) {
        let i = PromotionOutcome::ALL.iter().position(|&o| o == outcome).expect("outcome in ALL");
        self.lifecycle_promotions[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Promotion decisions counted for one outcome.
    pub fn lifecycle_promotions(&self, outcome: PromotionOutcome) -> u64 {
        let i = PromotionOutcome::ALL.iter().position(|&o| o == outcome).expect("outcome in ALL");
        self.lifecycle_promotions[i].load(Ordering::Relaxed)
    }

    /// Record an advise answer served from an older model version.
    pub fn record_stale_served(&self) {
        self.stale_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Stale advise answers served so far.
    pub fn stale_served(&self) -> u64 {
        self.stale_served.load(Ordering::Relaxed)
    }

    /// Record one `/v1/advise` stage duration.
    pub fn record_advise_stage(&self, stage: AdviseStage, elapsed: Duration) {
        self.advise_stages[stage.index()].observe(elapsed);
    }

    /// Observations recorded for one advise stage.
    pub fn advise_stage_count(&self, stage: AdviseStage) -> u64 {
        self.advise_stages[stage.index()].count.load(Ordering::Relaxed)
    }

    /// Mean recorded duration for one advise stage, in seconds (NaN when
    /// the stage has no observations). Used by the promotion-safety tests
    /// to bound the shadow stage's overhead against the full pipeline.
    pub fn advise_stage_mean_seconds(&self, stage: AdviseStage) -> f64 {
        let h = &self.advise_stages[stage.index()];
        let n = h.count.load(Ordering::Relaxed);
        if n == 0 {
            return f64::NAN;
        }
        h.sum_micros.load(Ordering::Relaxed) as f64 / 1e6 / n as f64
    }

    /// A request entered the router.
    pub fn inc_in_flight(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// A request left the router.
    pub fn dec_in_flight(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently in flight (clamped at 0 — concurrent inc/dec
    /// can transiently observe a negative value).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed).max(0) as u64
    }

    /// A connection was queued for the worker pool.
    pub fn pool_enqueued(&self) {
        self.pool_queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A queued connection was picked up by a worker (or bounced back
    /// on a full queue).
    pub fn pool_dequeued(&self) {
        self.pool_queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections waiting in the pool queue right now (clamped at 0).
    pub fn pool_queue_depth(&self) -> u64 {
        self.pool_queue_depth.load(Ordering::Relaxed).max(0) as u64
    }

    /// Total requests recorded for a route.
    pub fn requests(&self, route: Route) -> u64 {
        self.routes[route.index()].requests.load()
    }

    /// Total error responses recorded for a route.
    pub fn errors(&self, route: Route) -> u64 {
        self.routes[route.index()].errors.load()
    }

    /// A client connection was accepted by the event loop.
    pub fn inc_connections_open(&self) {
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    /// A client connection was closed (either side).
    pub fn dec_connections_open(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Client connections open right now (clamped at 0).
    pub fn connections_open(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed).max(0) as u64
    }

    /// Record a request served on a reused keep-alive exchange (any
    /// request after the first on one connection).
    pub fn record_keepalive_reuse(&self) {
        self.keepalive_reuses.inc();
    }

    /// Keep-alive reuses so far.
    pub fn keepalive_reuses(&self) -> u64 {
        self.keepalive_reuses.load()
    }

    /// Record one batcher flush: why it closed and how many rows the
    /// resulting flat-model call carried.
    pub fn record_batch_flush(&self, reason: FlushReason, rows: usize) {
        self.batch_flushes[reason.index()].fetch_add(1, Ordering::Relaxed);
        self.batch_size.observe(rows);
    }

    /// Flushes recorded for one reason.
    pub fn batch_flushes(&self, reason: FlushReason) -> u64 {
        self.batch_flushes[reason.index()].load(Ordering::Relaxed)
    }

    /// Batched flat-model calls recorded so far (all reasons).
    pub fn batch_calls(&self) -> u64 {
        self.batch_size.count.load(Ordering::Relaxed)
    }

    /// Total rows scored through the batcher so far.
    pub fn batch_rows(&self) -> u64 {
        self.batch_size.sum.load(Ordering::Relaxed)
    }

    /// Record one stage of a completed request timeline.
    pub fn record_request_stage(&self, stage: RequestStage, elapsed: Duration) {
        self.request_stages[stage.index()].observe(elapsed);
    }

    /// Observations recorded for one request-timeline stage.
    pub fn request_stage_count(&self, stage: RequestStage) -> u64 {
        self.request_stages[stage.index()].count.load(Ordering::Relaxed)
    }

    /// Seconds recorded for one request-timeline stage, summed.
    pub fn request_stage_sum_seconds(&self, stage: RequestStage) -> f64 {
        self.request_stages[stage.index()].sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Record one event-loop pass: how long processing one epoll wake
    /// took and how many readiness events it delivered.
    pub fn record_loop_iteration(&self, elapsed: Duration, events: usize) {
        self.loop_iteration.observe(elapsed);
        self.loop_events_per_wake.observe(events);
    }

    /// Event-loop iterations recorded so far.
    pub fn loop_iterations(&self) -> u64 {
        self.loop_iteration.count.load(Ordering::Relaxed)
    }

    /// A connection's reads were paused by backpressure (pipeline cap or
    /// write high-water mark).
    pub fn inc_read_paused(&self) {
        self.read_paused.fetch_add(1, Ordering::Relaxed);
    }

    /// A read-paused connection resumed (or closed).
    pub fn dec_read_paused(&self) {
        self.read_paused.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently read-paused (clamped at 0).
    pub fn read_paused(&self) -> u64 {
        self.read_paused.load(Ordering::Relaxed).max(0) as u64
    }

    /// A connection was left with unsent response bytes after a flush
    /// (the socket would block — a slow or stalled consumer).
    pub fn inc_write_stalled(&self) {
        self.write_stalled.fetch_add(1, Ordering::Relaxed);
    }

    /// A write-stalled connection drained (or closed).
    pub fn dec_write_stalled(&self) {
        self.write_stalled.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently write-stalled (clamped at 0).
    pub fn write_stalled(&self) -> u64 {
        self.write_stalled.load(Ordering::Relaxed).max(0) as u64
    }

    /// Record an advise-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.inc();
    }

    /// Record an advise-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.inc();
    }

    /// Update the advise-cache size gauge.
    pub fn set_cache_entries(&self, n: usize) {
        self.cache_entries.store(n as u64, Ordering::Relaxed);
    }

    /// Advise-cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load()
    }

    /// Advise-cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load()
    }

    /// Cached advise answers right now.
    pub fn cache_entries(&self) -> u64 {
        self.cache_entries.load(Ordering::Relaxed)
    }

    /// Snapshot one histogram as `(buckets, sum_micros, count)`. The
    /// count is read *first*: `observe` bumps bucket → sum → count, so
    /// reading in the opposite order guarantees
    /// `sum(buckets) >= count` — a snapshot can under-report the very
    /// newest observation but never tear a bucket/count pair.
    fn snapshot_histogram(h: &Histogram) -> ([u64; 11], u64, u64) {
        let count = h.count.load(Ordering::Acquire);
        let sum_micros = h.sum_micros.load(Ordering::Acquire);
        let mut buckets = [0u64; 11];
        for (b, a) in buckets.iter_mut().zip(&h.buckets) {
            *b = a.load(Ordering::Acquire);
        }
        (buckets, sum_micros, count)
    }

    /// Histogram bucket upper bounds shared by every latency histogram
    /// (seconds; the 11th bucket is `+Inf`).
    pub fn histogram_bounds() -> &'static [f64] {
        &BUCKETS
    }

    /// Torn-pair-free snapshot of the whole-request latency histogram.
    pub fn latency_snapshot(&self) -> ([u64; 11], u64, u64) {
        Metrics::snapshot_histogram(&self.latency)
    }

    /// Torn-pair-free snapshot of one advise-stage histogram.
    pub fn advise_stage_snapshot(&self, stage: AdviseStage) -> ([u64; 11], u64, u64) {
        Metrics::snapshot_histogram(&self.advise_stages[stage.index()])
    }

    /// Torn-pair-free snapshot of one request-timeline stage histogram.
    pub fn request_stage_snapshot(&self, stage: RequestStage) -> ([u64; 11], u64, u64) {
        Metrics::snapshot_histogram(&self.request_stages[stage.index()])
    }

    /// Count one alert transition by destination-state label
    /// ("ok"/"pending"/"firing"/"resolved"); anything else is ignored
    /// so the label set stays pre-registered.
    pub fn record_alert_transition(&self, to: &str) {
        let i = match to {
            "ok" => 0,
            "pending" => 1,
            "firing" => 2,
            "resolved" => 3,
            _ => return,
        };
        self.alert_transitions[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Alert transitions counted into one destination state.
    pub fn alert_transitions(&self, to: &str) -> u64 {
        match to {
            "ok" => self.alert_transitions[0].load(Ordering::Relaxed),
            "pending" => self.alert_transitions[1].load(Ordering::Relaxed),
            "firing" => self.alert_transitions[2].load(Ordering::Relaxed),
            "resolved" => self.alert_transitions[3].load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Update the firing/pending alert gauges after an evaluation pass.
    pub fn set_alert_gauges(&self, firing: usize, pending: usize) {
        self.alerts_firing.store(firing as i64, Ordering::Relaxed);
        self.alerts_pending.store(pending as i64, Ordering::Relaxed);
    }

    /// SLO alerts currently firing.
    pub fn alerts_firing(&self) -> u64 {
        self.alerts_firing.load(Ordering::Relaxed).max(0) as u64
    }

    /// SLO alerts currently pending.
    pub fn alerts_pending(&self) -> u64 {
        self.alerts_pending.load(Ordering::Relaxed).max(0) as u64
    }

    /// Account one health-sampler pass: `evaluations` SLO evaluations
    /// ran, `breaching` of them found both burn windows over threshold.
    pub fn record_slo_scrape(&self, evaluations: u64, breaching: usize) {
        self.slo_scrapes.fetch_add(1, Ordering::Relaxed);
        self.slo_evaluations.fetch_add(evaluations, Ordering::Relaxed);
        self.slo_breaching.store(breaching as i64, Ordering::Relaxed);
    }

    /// Self-scrape samples taken so far.
    pub fn slo_scrapes(&self) -> u64 {
        self.slo_scrapes.load(Ordering::Relaxed)
    }

    /// SLO evaluations run so far.
    pub fn slo_evaluations(&self) -> u64 {
        self.slo_evaluations.load(Ordering::Relaxed)
    }

    /// SLOs breaching on the latest evaluation.
    pub fn slo_breaching(&self) -> u64 {
        self.slo_breaching.load(Ordering::Relaxed).max(0) as u64
    }

    /// Render the Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP chemcost_build_info Build metadata; constant 1.\n");
        out.push_str("# TYPE chemcost_build_info gauge\n");
        out.push_str(&format!(
            "chemcost_build_info{{version=\"{BUILD_VERSION}\",git_sha=\"{BUILD_GIT_SHA}\",dirty=\"{BUILD_DIRTY}\"}} 1\n"
        ));
        out.push_str("# HELP chemcost_requests_total Requests handled, by route.\n");
        out.push_str("# TYPE chemcost_requests_total counter\n");
        for route in Route::ALL {
            let n = self.requests(route);
            out.push_str(&format!("chemcost_requests_total{{route=\"{}\"}} {n}\n", route.label()));
        }
        out.push_str(
            "# HELP chemcost_request_errors_total Error responses (status >= 400), by route.\n",
        );
        out.push_str("# TYPE chemcost_request_errors_total counter\n");
        for route in Route::ALL {
            let n = self.errors(route);
            out.push_str(&format!(
                "chemcost_request_errors_total{{route=\"{}\"}} {n}\n",
                route.label()
            ));
        }
        out.push_str("# HELP chemcost_requests_in_flight Requests currently being handled.\n");
        out.push_str("# TYPE chemcost_requests_in_flight gauge\n");
        out.push_str(&format!("chemcost_requests_in_flight {}\n", self.in_flight()));
        out.push_str("# HELP chemcost_pool_queue_depth Connections queued for the worker pool.\n");
        out.push_str("# TYPE chemcost_pool_queue_depth gauge\n");
        out.push_str(&format!("chemcost_pool_queue_depth {}\n", self.pool_queue_depth()));
        out.push_str(
            "# HELP chemcost_requests_shed_total Connections answered 503 because the pool queue was full.\n",
        );
        out.push_str("# TYPE chemcost_requests_shed_total counter\n");
        out.push_str(&format!("chemcost_requests_shed_total {}\n", self.shed_total()));
        out.push_str("# HELP chemcost_request_duration_seconds Request handling latency.\n");
        out.push_str("# TYPE chemcost_request_duration_seconds histogram\n");
        self.latency.render(&mut out, "chemcost_request_duration_seconds", "");
        out.push_str(
            "# HELP chemcost_advise_stage_duration_seconds Advise pipeline latency, by stage (cache probe, model sweep, JSON encode).\n",
        );
        out.push_str("# TYPE chemcost_advise_stage_duration_seconds histogram\n");
        for stage in AdviseStage::ALL {
            self.advise_stages[stage.index()].render(
                &mut out,
                "chemcost_advise_stage_duration_seconds",
                &format!("stage=\"{}\",", stage.label()),
            );
        }
        out.push_str("# HELP chemcost_advise_cache_hits_total Advise answers served from cache.\n");
        out.push_str("# TYPE chemcost_advise_cache_hits_total counter\n");
        out.push_str(&format!("chemcost_advise_cache_hits_total {}\n", self.cache_hits()));
        out.push_str(
            "# HELP chemcost_advise_cache_misses_total Advise answers that ran the sweep.\n",
        );
        out.push_str("# TYPE chemcost_advise_cache_misses_total counter\n");
        out.push_str(&format!("chemcost_advise_cache_misses_total {}\n", self.cache_misses()));
        out.push_str("# HELP chemcost_advise_cache_entries Cached advise answers.\n");
        out.push_str("# TYPE chemcost_advise_cache_entries gauge\n");
        out.push_str(&format!(
            "chemcost_advise_cache_entries {}\n",
            self.cache_entries.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP chemcost_deadline_exceeded_total Requests answered 504, by the stage where the budget ran out.\n",
        );
        out.push_str("# TYPE chemcost_deadline_exceeded_total counter\n");
        for stage in DeadlineStage::ALL {
            out.push_str(&format!(
                "chemcost_deadline_exceeded_total{{stage=\"{}\"}} {}\n",
                stage.label(),
                self.deadline_exceeded(stage)
            ));
        }
        out.push_str(
            "# HELP chemcost_model_staleness_seconds Seconds since the serving model went stale (a reload failed); 0 when fresh.\n",
        );
        out.push_str("# TYPE chemcost_model_staleness_seconds gauge\n");
        out.push_str(&format!(
            "chemcost_model_staleness_seconds {}\n",
            self.model_staleness_seconds()
        ));
        out.push_str(
            "# HELP chemcost_model_reload_failures_total Failed model reloads (the last-good model kept serving).\n",
        );
        out.push_str("# TYPE chemcost_model_reload_failures_total counter\n");
        out.push_str(&format!("chemcost_model_reload_failures_total {}\n", self.reload_failures()));
        out.push_str(
            "# HELP chemcost_advise_stale_served_total Advise answers replayed from an older model version under overload.\n",
        );
        out.push_str("# TYPE chemcost_advise_stale_served_total counter\n");
        out.push_str(&format!("chemcost_advise_stale_served_total {}\n", self.stale_served()));
        out.push_str(
            "# HELP chemcost_faults_injected_total Faults injected by the chaos plane, by kind.\n",
        );
        out.push_str("# TYPE chemcost_faults_injected_total counter\n");
        for kind in FaultKind::ALL {
            out.push_str(&format!(
                "chemcost_faults_injected_total{{kind=\"{}\"}} {}\n",
                kind.label(),
                self.faults_injected(kind)
            ));
        }
        out.push_str(
            "# HELP chemcost_quality_observations_total Ground-truth runtime reports on /v1/observe, by outcome (accepted into the rolling stats, or rejected 4xx).\n",
        );
        out.push_str("# TYPE chemcost_quality_observations_total counter\n");
        out.push_str(&format!(
            "chemcost_quality_observations_total{{outcome=\"accepted\"}} {}\n",
            self.quality_accepted()
        ));
        out.push_str(&format!(
            "chemcost_quality_observations_total{{outcome=\"rejected\"}} {}\n",
            self.quality_rejected()
        ));
        let groups = self.quality.read().clone();
        let labels = |e: &QualityEntry| {
            format!("model=\"{}\",version=\"{}\",machine=\"{}\"", e.model, e.version, e.machine)
        };
        out.push_str(
            "# HELP chemcost_model_mape Windowed mean absolute percentage error of served predictions against observed runtimes; NaN until the first observation.\n",
        );
        out.push_str("# TYPE chemcost_model_mape gauge\n");
        for e in &groups {
            out.push_str(&format!("chemcost_model_mape{{{}}} {}\n", labels(e), e.stats.mape));
        }
        out.push_str(
            "# HELP chemcost_model_bias_seconds Windowed signed bias mean(predicted - measured) in seconds; positive means the model over-promises runtime.\n",
        );
        out.push_str("# TYPE chemcost_model_bias_seconds gauge\n");
        for e in &groups {
            out.push_str(&format!(
                "chemcost_model_bias_seconds{{{}}} {}\n",
                labels(e),
                e.stats.bias_seconds
            ));
        }
        out.push_str(
            "# HELP chemcost_residual_seconds Windowed absolute prediction residual quantiles, in seconds.\n",
        );
        out.push_str("# TYPE chemcost_residual_seconds gauge\n");
        for e in &groups {
            for (q, v) in [
                ("0.5", e.stats.residual_p50),
                ("0.9", e.stats.residual_p90),
                ("0.99", e.stats.residual_p99),
            ] {
                out.push_str(&format!(
                    "chemcost_residual_seconds{{{},quantile=\"{q}\"}} {v}\n",
                    labels(e)
                ));
            }
        }
        out.push_str(
            "# HELP chemcost_calibration_ratio Fraction of sigma-carrying residuals inside the predicted +/-sigma band (well-calibrated Gaussian: ~0.68).\n",
        );
        out.push_str("# TYPE chemcost_calibration_ratio gauge\n");
        for e in &groups {
            out.push_str(&format!(
                "chemcost_calibration_ratio{{{}}} {}\n",
                labels(e),
                e.stats.calibration_ratio
            ));
        }
        out.push_str(
            "# HELP chemcost_model_degraded 1 when the drift detector has tripped for the group and the model has not been refreshed since, else 0.\n",
        );
        out.push_str("# TYPE chemcost_model_degraded gauge\n");
        for e in &groups {
            out.push_str(&format!(
                "chemcost_model_degraded{{{}}} {}\n",
                labels(e),
                u64::from(e.stats.degraded)
            ));
        }
        out.push_str(
            "# HELP chemcost_drift_trips_total Page-Hinkley drift-detector trips over the residual stream, per serving group.\n",
        );
        out.push_str("# TYPE chemcost_drift_trips_total counter\n");
        for e in &groups {
            out.push_str(&format!(
                "chemcost_drift_trips_total{{{}}} {}\n",
                labels(e),
                e.stats.drift_trips
            ));
        }
        out.push_str(
            "# HELP chemcost_quality_pool_size Observations currently retained in the group's training pool.\n",
        );
        out.push_str("# TYPE chemcost_quality_pool_size gauge\n");
        for e in &groups {
            out.push_str(&format!(
                "chemcost_quality_pool_size{{{}}} {}\n",
                labels(e),
                e.stats.pool_size
            ));
        }
        out.push_str(
            "# HELP chemcost_quality_pool_evictions_total Observations silently evicted from the full training pool, per serving group.\n",
        );
        out.push_str("# TYPE chemcost_quality_pool_evictions_total counter\n");
        for e in &groups {
            out.push_str(&format!(
                "chemcost_quality_pool_evictions_total{{{}}} {}\n",
                labels(e),
                e.stats.pool_evictions
            ));
        }
        let lifecycle = self.lifecycle.read().clone();
        out.push_str(
            "# HELP chemcost_lifecycle_state Retrain/shadow/promote state per (model, machine) group: 0=idle 1=queued 2=training 3=shadow 4=promoted 5=rejected 6=rolled-back.\n",
        );
        out.push_str("# TYPE chemcost_lifecycle_state gauge\n");
        for e in &lifecycle {
            out.push_str(&format!(
                "chemcost_lifecycle_state{{model=\"{}\",machine=\"{}\"}} {}\n",
                e.model,
                e.machine,
                e.state.code()
            ));
        }
        out.push_str(
            "# HELP chemcost_lifecycle_transitions_total Lifecycle state-machine transitions taken, by (from, to) pair.\n",
        );
        out.push_str("# TYPE chemcost_lifecycle_transitions_total counter\n");
        for (i, (from, to)) in TRANSITIONS.iter().enumerate() {
            out.push_str(&format!(
                "chemcost_lifecycle_transitions_total{{from=\"{}\",to=\"{}\"}} {}\n",
                from.label(),
                to.label(),
                self.lifecycle_transitions[i].load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP chemcost_lifecycle_queue_depth Retrain jobs waiting in the background trainer's bounded queue.\n",
        );
        out.push_str("# TYPE chemcost_lifecycle_queue_depth gauge\n");
        out.push_str(&format!("chemcost_lifecycle_queue_depth {}\n", self.lifecycle_queue_depth()));
        out.push_str(
            "# HELP chemcost_lifecycle_fit_duration_seconds Wall time of one background candidate fit (success or failure).\n",
        );
        out.push_str("# TYPE chemcost_lifecycle_fit_duration_seconds histogram\n");
        self.lifecycle_fit_duration.render(&mut out, "chemcost_lifecycle_fit_duration_seconds", "");
        out.push_str(
            "# HELP chemcost_lifecycle_promotions_total Promotion decisions, by outcome (auto, operator, rejected, rolled-back).\n",
        );
        out.push_str("# TYPE chemcost_lifecycle_promotions_total counter\n");
        for outcome in PromotionOutcome::ALL {
            out.push_str(&format!(
                "chemcost_lifecycle_promotions_total{{outcome=\"{}\"}} {}\n",
                outcome.label(),
                self.lifecycle_promotions(outcome)
            ));
        }
        out.push_str(
            "# HELP chemcost_connections_open Client connections currently open in the event loop.\n",
        );
        out.push_str("# TYPE chemcost_connections_open gauge\n");
        out.push_str(&format!("chemcost_connections_open {}\n", self.connections_open()));
        out.push_str(
            "# HELP chemcost_batch_size Coalesced rows per flat-model batch call made by the micro-batcher.\n",
        );
        out.push_str("# TYPE chemcost_batch_size histogram\n");
        self.batch_size.render(&mut out, "chemcost_batch_size");
        out.push_str(
            "# HELP chemcost_batch_flush_total Micro-batcher flushes, by trigger (full budget, window expiry, drain, shutdown).\n",
        );
        out.push_str("# TYPE chemcost_batch_flush_total counter\n");
        for reason in FlushReason::ALL {
            out.push_str(&format!(
                "chemcost_batch_flush_total{{reason=\"{}\"}} {}\n",
                reason.label(),
                self.batch_flushes(reason)
            ));
        }
        out.push_str(
            "# HELP chemcost_keepalive_reuses_total Requests served on a reused keep-alive exchange (any request after a connection's first).\n",
        );
        out.push_str("# TYPE chemcost_keepalive_reuses_total counter\n");
        out.push_str(&format!("chemcost_keepalive_reuses_total {}\n", self.keepalive_reuses()));
        out.push_str(
            "# HELP chemcost_request_stage_duration_seconds Per-stage request-timeline latency through the event loop (read, queue, batch_wait, handler, reorder, write); the stages of one request sum to its first-byte to last-byte wall time.\n",
        );
        out.push_str("# TYPE chemcost_request_stage_duration_seconds histogram\n");
        for stage in RequestStage::ALL {
            self.request_stages[stage.index()].render(
                &mut out,
                "chemcost_request_stage_duration_seconds",
                &format!("stage=\"{}\",", stage.label()),
            );
        }
        out.push_str(
            "# HELP chemcost_event_loop_iteration_duration_seconds Processing time of one event-loop pass (one epoll wake).\n",
        );
        out.push_str("# TYPE chemcost_event_loop_iteration_duration_seconds histogram\n");
        self.loop_iteration.render(&mut out, "chemcost_event_loop_iteration_duration_seconds", "");
        out.push_str(
            "# HELP chemcost_event_loop_events_per_wake Readiness events delivered per epoll wake.\n",
        );
        out.push_str("# TYPE chemcost_event_loop_events_per_wake histogram\n");
        self.loop_events_per_wake.render(&mut out, "chemcost_event_loop_events_per_wake");
        out.push_str(
            "# HELP chemcost_connections_read_paused Connections whose reads are paused by backpressure (pipeline cap or write high-water mark).\n",
        );
        out.push_str("# TYPE chemcost_connections_read_paused gauge\n");
        out.push_str(&format!("chemcost_connections_read_paused {}\n", self.read_paused()));
        out.push_str(
            "# HELP chemcost_connections_write_stalled Connections holding unsent response bytes after a flush (slow consumers).\n",
        );
        out.push_str("# TYPE chemcost_connections_write_stalled gauge\n");
        out.push_str(&format!("chemcost_connections_write_stalled {}\n", self.write_stalled()));
        out.push_str(
            "# HELP chemcost_alerts_transitions_total SLO alert state transitions, by destination state.\n",
        );
        out.push_str("# TYPE chemcost_alerts_transitions_total counter\n");
        for to in ["ok", "pending", "firing", "resolved"] {
            out.push_str(&format!(
                "chemcost_alerts_transitions_total{{to=\"{to}\"}} {}\n",
                self.alert_transitions(to)
            ));
        }
        out.push_str("# HELP chemcost_alerts_firing SLO alerts currently firing.\n");
        out.push_str("# TYPE chemcost_alerts_firing gauge\n");
        out.push_str(&format!("chemcost_alerts_firing {}\n", self.alerts_firing()));
        out.push_str("# HELP chemcost_alerts_pending SLO alerts currently pending.\n");
        out.push_str("# TYPE chemcost_alerts_pending gauge\n");
        out.push_str(&format!("chemcost_alerts_pending {}\n", self.alerts_pending()));
        out.push_str(
            "# HELP chemcost_slo_evaluations_total SLO evaluations run by the health sampler.\n",
        );
        out.push_str("# TYPE chemcost_slo_evaluations_total counter\n");
        out.push_str(&format!("chemcost_slo_evaluations_total {}\n", self.slo_evaluations()));
        out.push_str(
            "# HELP chemcost_slo_breaching SLOs breaching both burn windows on the latest evaluation.\n",
        );
        out.push_str("# TYPE chemcost_slo_breaching gauge\n");
        out.push_str(&format!("chemcost_slo_breaching {}\n", self.slo_breaching()));
        out.push_str(
            "# HELP chemcost_slo_scrapes_total Self-scrape samples taken by the health sampler.\n",
        );
        out.push_str("# TYPE chemcost_slo_scrapes_total counter\n");
        out.push_str(&format!("chemcost_slo_scrapes_total {}\n", self.slo_scrapes()));
        out
    }
}

/// Bridge handing [`LifecycleObserver`] callbacks from the lifecycle hub's
/// trainer thread to the shared [`Metrics`] registry.
pub struct LifecycleMetricsBridge(pub Arc<Metrics>);

impl LifecycleObserver for LifecycleMetricsBridge {
    fn on_state(&self, model: &str, machine: &str, state: LifecycleState) {
        self.0.set_lifecycle_state(model, machine, state);
    }

    fn on_transition(&self, from: LifecycleState, to: LifecycleState) {
        self.0.record_lifecycle_transition(from, to);
    }

    fn on_queue_depth(&self, depth: usize) {
        self.0.set_lifecycle_queue_depth(depth);
    }

    fn on_fit_duration(&self, seconds: f64) {
        self.0.record_lifecycle_fit_duration(Duration::from_secs_f64(seconds.max(0.0)));
    }

    fn on_promotion(&self, outcome: PromotionOutcome) {
        self.0.record_lifecycle_promotion(outcome);
    }
}

/// Validate a Prometheus text exposition: syntax of every sample line,
/// `# HELP`/`# TYPE` metadata for every metric family, and histogram
/// invariants (cumulative non-decreasing buckets ending in `+Inf` whose
/// total matches `_count`). Returns every problem found, so a single
/// run of the CI smoke job reports all defects at once.
pub fn lint_exposition(text: &str) -> Result<(), Vec<String>> {
    let mut problems = Vec::new();
    let mut helped = std::collections::HashSet::new();
    let mut typed: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    // (family, labels-without-le) -> cumulative bucket values in order,
    // and the matching _count value when seen.
    let mut hist_buckets: std::collections::HashMap<(String, String), Vec<(String, f64)>> =
        std::collections::HashMap::new();
    let mut hist_counts: std::collections::HashMap<(String, String), f64> =
        std::collections::HashMap::new();

    fn valid_name(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    /// Split `key="value",…` into pairs; returns `None` on bad syntax.
    fn parse_labels(s: &str) -> Option<Vec<(String, String)>> {
        let mut pairs = Vec::new();
        let mut rest = s;
        while !rest.is_empty() {
            let eq = rest.find('=')?;
            let key = rest[..eq].trim().to_string();
            rest = rest[eq + 1..].strip_prefix('"')?;
            // Find the closing quote, honoring backslash escapes.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in rest.char_indices() {
                match c {
                    '\\' if !escaped => escaped = true,
                    '"' if !escaped => {
                        end = Some(i);
                        break;
                    }
                    _ => escaped = false,
                }
            }
            let end = end?;
            pairs.push((key, rest[..end].to_string()));
            rest = &rest[end + 1..];
            rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
        }
        Some(pairs)
    }

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix("# HELP ") {
            match meta.split_once(' ') {
                Some((name, _)) if valid_name(name) => {
                    helped.insert(name.to_string());
                }
                _ => problems.push(format!("line {n}: malformed HELP: {line:?}")),
            }
            continue;
        }
        if let Some(meta) = line.strip_prefix("# TYPE ") {
            match meta.split_once(' ') {
                Some((name, kind)) if valid_name(name) => {
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        problems.push(format!("line {n}: unknown TYPE {kind:?} for {name}"));
                    }
                    if typed.insert(name.to_string(), kind.to_string()).is_some() {
                        problems.push(format!("line {n}: duplicate TYPE for {name}"));
                    }
                }
                _ => problems.push(format!("line {n}: malformed TYPE: {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // arbitrary comment
        }

        // Sample line: name[{labels}] value
        let (name_labels, value) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => {
                problems.push(format!("line {n}: no value: {line:?}"));
                continue;
            }
        };
        let value: f64 = match value.parse() {
            Ok(v) => v,
            Err(_) => {
                problems.push(format!("line {n}: unparsable value {value:?}"));
                continue;
            }
        };
        let (name, labels) = match name_labels.split_once('{') {
            None => (name_labels, Vec::new()),
            Some((name, rest)) => match rest.strip_suffix('}').and_then(parse_labels) {
                Some(pairs) => (name, pairs),
                None => {
                    problems.push(format!("line {n}: malformed labels: {line:?}"));
                    continue;
                }
            },
        };
        if !valid_name(name) {
            problems.push(format!("line {n}: invalid metric name {name:?}"));
            continue;
        }
        for (key, _) in &labels {
            if !valid_name(key) {
                problems.push(format!("line {n}: invalid label name {key:?}"));
            }
        }

        // Resolve the metric family (histogram series use suffixes).
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                (typed.get(base).map(String::as_str) == Some("histogram")).then_some(base)
            })
            .unwrap_or(name)
            .to_string();
        match typed.get(&family).map(String::as_str) {
            None => problems.push(format!("line {n}: sample {name} has no # TYPE")),
            Some("counter") => {
                if value < 0.0 {
                    problems.push(format!("line {n}: counter {name} is negative ({value})"));
                }
                if !name.ends_with("_total") {
                    problems.push(format!("line {n}: counter {name} should end in _total"));
                }
            }
            Some("histogram") => {
                let other: Vec<String> = labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                let series = (family.clone(), other.join(","));
                if name.ends_with("_bucket") {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.clone())
                        .unwrap_or_else(|| {
                            problems.push(format!("line {n}: bucket without le label"));
                            String::new()
                        });
                    hist_buckets.entry(series).or_default().push((le, value));
                } else if name.ends_with("_count") {
                    hist_counts.insert(series, value);
                }
            }
            Some(_) => {}
        }
        if !helped.contains(&family) {
            problems.push(format!("line {n}: sample {name} has no # HELP"));
            helped.insert(family); // report once per family
        }
    }

    for ((family, labels), buckets) in &hist_buckets {
        let label_note = if labels.is_empty() { String::new() } else { format!(" ({labels})") };
        if buckets.last().map(|(le, _)| le.as_str()) != Some("+Inf") {
            problems.push(format!("histogram {family}{label_note}: missing trailing +Inf bucket"));
        }
        if buckets.windows(2).any(|w| w[1].1 < w[0].1) {
            problems.push(format!("histogram {family}{label_note}: buckets not cumulative"));
        }
        if let (Some((_, inf)), Some(count)) =
            (buckets.last(), hist_counts.get(&(family.clone(), labels.clone())))
        {
            if (inf - count).abs() > 0.0 {
                problems.push(format!(
                    "histogram {family}{label_note}: +Inf bucket {inf} != _count {count}"
                ));
            }
        }
    }

    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

/// [`lint_exposition`] plus a presence check: every family in
/// `required` must have at least one **sample line** (histograms count
/// through their `_bucket`/`_sum`/`_count` series) — `# HELP`/`# TYPE`
/// metadata alone does not count. This is how the smoke and chaos CI
/// jobs catch a series that would only materialize after its first
/// increment: scrape a fresh server and require the full
/// [`REQUIRED_SERIES`] catalog.
pub fn lint_exposition_with_required(text: &str, required: &[&str]) -> Result<(), Vec<String>> {
    let mut problems = lint_exposition(text).err().unwrap_or_default();
    for family in required {
        let present = text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).any(|l| {
            let name = l.split(['{', ' ']).next().unwrap_or("");
            name == *family
                || ["_bucket", "_sum", "_count"]
                    .iter()
                    .any(|suffix| name.strip_suffix(suffix) == Some(family))
        });
        if !present {
            problems.push(format!(
                "required series {family} has no sample line (unregistered before first increment?)"
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_requests_and_errors_per_route() {
        let m = Metrics::new();
        m.record(Route::Predict, false, Duration::from_millis(2));
        m.record(Route::Predict, true, Duration::from_millis(2));
        m.record(Route::Advise, false, Duration::from_millis(1));
        assert_eq!(m.requests(Route::Predict), 2);
        assert_eq!(m.errors(Route::Predict), 1);
        assert_eq!(m.requests(Route::Advise), 1);
        assert_eq!(m.errors(Route::Advise), 0);
        assert_eq!(m.requests(Route::Healthz), 0);
    }

    #[test]
    fn render_contains_all_series() {
        let m = Metrics::new();
        m.record(Route::Healthz, false, Duration::from_micros(50));
        let text = m.render();
        assert!(text.contains("chemcost_requests_total{route=\"healthz\"} 1"));
        assert!(text.contains("chemcost_requests_total{route=\"predict\"} 0"));
        assert!(text.contains("chemcost_request_errors_total{route=\"healthz\"} 0"));
        assert!(text.contains("chemcost_request_duration_seconds_count 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));
        assert!(text.contains("chemcost_requests_in_flight 0"));
        assert!(text.contains("chemcost_pool_queue_depth 0"));
        assert!(text.contains("chemcost_requests_shed_total 0"));
        assert!(text.contains("chemcost_advise_stage_duration_seconds_bucket{stage=\"sweep\","));
    }

    #[test]
    fn cache_counters_render() {
        let m = Metrics::new();
        m.record_cache_miss();
        m.record_cache_hit();
        m.record_cache_hit();
        m.set_cache_entries(1);
        assert_eq!(m.cache_hits(), 2);
        assert_eq!(m.cache_misses(), 1);
        let text = m.render();
        assert!(text.contains("chemcost_advise_cache_hits_total 2"));
        assert!(text.contains("chemcost_advise_cache_misses_total 1"));
        assert!(text.contains("chemcost_advise_cache_entries 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record(Route::Other, false, Duration::from_micros(50)); // <= 1e-4
        m.record(Route::Other, false, Duration::from_millis(20)); // <= 5e-2
        m.record(Route::Other, false, Duration::from_secs(10)); // overflow
        let text = m.render();
        assert!(text.contains("le=\"0.0001\"} 1"));
        assert!(text.contains("le=\"0.05\"} 2"));
        assert!(text.contains("le=\"5\"} 2"));
        assert!(text.contains("le=\"+Inf\"} 3"));
    }

    #[test]
    fn shed_accounts_route_error_and_counter() {
        let m = Metrics::new();
        m.record_shed();
        m.record_shed();
        assert_eq!(m.shed_total(), 2);
        assert_eq!(m.requests(Route::Other), 2);
        assert_eq!(m.errors(Route::Other), 2);
        let text = m.render();
        assert!(text.contains("chemcost_requests_shed_total 2"));
        // Shed connections are refused, not timed.
        assert!(text.contains("chemcost_request_duration_seconds_count 0"));
    }

    #[test]
    fn gauges_track_in_flight_and_queue_depth() {
        let m = Metrics::new();
        m.inc_in_flight();
        m.inc_in_flight();
        m.dec_in_flight();
        assert_eq!(m.in_flight(), 1);
        m.pool_enqueued();
        m.pool_enqueued();
        m.pool_dequeued();
        assert_eq!(m.pool_queue_depth(), 1);
        // Transient underflow clamps to zero in the exposition.
        m.dec_in_flight();
        m.dec_in_flight();
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn advise_stage_histograms_render_per_stage() {
        let m = Metrics::new();
        m.record_advise_stage(AdviseStage::Cache, Duration::from_micros(30));
        m.record_advise_stage(AdviseStage::Sweep, Duration::from_millis(6));
        m.record_advise_stage(AdviseStage::Sweep, Duration::from_millis(8));
        m.record_advise_stage(AdviseStage::Encode, Duration::from_micros(200));
        m.record_advise_stage(AdviseStage::Shadow, Duration::from_micros(100));
        assert_eq!(m.advise_stage_count(AdviseStage::Sweep), 2);
        assert!((m.advise_stage_mean_seconds(AdviseStage::Shadow) - 1e-4).abs() < 1e-9);
        assert!(m.advise_stage_mean_seconds(AdviseStage::Sweep) > 0.005);
        let text = m.render();
        assert!(
            text.contains("chemcost_advise_stage_duration_seconds_count{stage=\"cache\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("chemcost_advise_stage_duration_seconds_count{stage=\"sweep\"} 2"),
            "{text}"
        );
        assert!(
            text.contains(
                "chemcost_advise_stage_duration_seconds_bucket{stage=\"sweep\",le=\"+Inf\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains("chemcost_advise_stage_duration_seconds_count{stage=\"shadow\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn build_info_renders_version_sha_and_dirty() {
        let text = Metrics::new().render();
        assert!(
            text.contains(&format!("chemcost_build_info{{version=\"{BUILD_VERSION}\",git_sha=")),
            "{text}"
        );
        assert!(text.contains(&format!(",dirty=\"{BUILD_DIRTY}\"}} 1\n")), "{text}");
        // The CLI and /v1/quality surface the identical triple.
        let (version, sha, dirty) = build_info();
        assert_eq!(version, BUILD_VERSION);
        assert_eq!(sha, BUILD_GIT_SHA);
        assert_eq!(dirty, BUILD_DIRTY);
    }

    #[test]
    fn exposition_passes_its_own_linter() {
        let m = Metrics::new();
        m.record(Route::Advise, false, Duration::from_millis(3));
        m.record_advise_stage(AdviseStage::Sweep, Duration::from_millis(2));
        m.record_shed();
        m.record_cache_miss();
        lint_exposition(&m.render()).expect("fresh exposition must lint clean");
    }

    #[test]
    fn linter_rejects_malformed_expositions() {
        // Sample without TYPE.
        let errs = lint_exposition("mystery_metric 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("no # TYPE")), "{errs:?}");
        // Counter not ending in _total.
        let errs = lint_exposition("# HELP x c\n# TYPE x counter\nx 3\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("_total")), "{errs:?}");
        // Unparsable value.
        let errs = lint_exposition("# HELP y g\n# TYPE y gauge\ny banana\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("unparsable value")), "{errs:?}");
        // Histogram without +Inf.
        let errs = lint_exposition(
            "# HELP h hist\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\nh_sum 1\n",
        )
        .unwrap_err();
        assert!(errs.iter().any(|e| e.contains("+Inf")), "{errs:?}");
        // Non-cumulative histogram.
        let errs = lint_exposition(
            "# HELP h hist\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 1\n",
        )
        .unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not cumulative")), "{errs:?}");
        // +Inf bucket disagreeing with _count.
        let errs = lint_exposition(
            "# HELP h hist\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\nh_sum 1\n",
        )
        .unwrap_err();
        assert!(errs.iter().any(|e| e.contains("!= _count")), "{errs:?}");
        // Malformed labels.
        let errs = lint_exposition("# HELP z g\n# TYPE z gauge\nz{oops} 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("malformed labels")), "{errs:?}");
    }

    /// Satellite (PR 4 bugfix): every family in [`REQUIRED_SERIES`] must
    /// have sample lines on a *fresh* registry — before any request,
    /// fault, or deadline event has incremented it. A scrape of a
    /// just-started server must already show the whole catalog at zero.
    #[test]
    fn all_required_series_render_before_first_increment() {
        let m = Metrics::new();
        // The router registers one quality group and one lifecycle group
        // per registry entry at startup; a just-started server always has
        // at least one of each.
        m.set_model_quality("gb", 1, "aurora", QualityStats::default());
        m.set_lifecycle_state("gb", "aurora", LifecycleState::Idle);
        let text = m.render();
        lint_exposition_with_required(&text, REQUIRED_SERIES)
            .expect("fresh exposition must pre-register every required series");
        // Spot-check the PR 4 families explicitly at zero.
        assert!(text.contains("chemcost_deadline_exceeded_total{stage=\"queue\"} 0"), "{text}");
        assert!(text.contains("chemcost_deadline_exceeded_total{stage=\"cache\"} 0"), "{text}");
        assert!(text.contains("chemcost_deadline_exceeded_total{stage=\"sweep\"} 0"), "{text}");
        assert!(text.contains("chemcost_model_staleness_seconds 0"), "{text}");
        assert!(text.contains("chemcost_model_reload_failures_total 0"), "{text}");
        assert!(text.contains("chemcost_advise_stale_served_total 0"), "{text}");
        assert!(
            text.contains("chemcost_faults_injected_total{kind=\"poison-reload\"} 0"),
            "{text}"
        );
        // The PR 5 quality families: counters at zero, windowed gauges
        // at NaN (no data yet — never a misleading zero).
        assert!(text.contains("chemcost_quality_observations_total{outcome=\"accepted\"} 0"));
        assert!(text.contains("chemcost_quality_observations_total{outcome=\"rejected\"} 0"));
        let quality_labels = "model=\"gb\",version=\"1\",machine=\"aurora\"";
        assert!(text.contains(&format!("chemcost_model_mape{{{quality_labels}}} NaN")), "{text}");
        assert!(
            text.contains(&format!(
                "chemcost_residual_seconds{{{quality_labels},quantile=\"0.99\"}} NaN"
            )),
            "{text}"
        );
        assert!(text.contains(&format!("chemcost_model_degraded{{{quality_labels}}} 0")));
        assert!(text.contains(&format!("chemcost_drift_trips_total{{{quality_labels}}} 0")));
        // The PR 6 lifecycle families, all at their zero points.
        assert!(text.contains(&format!("chemcost_quality_pool_size{{{quality_labels}}} 0")));
        assert!(
            text.contains(&format!("chemcost_quality_pool_evictions_total{{{quality_labels}}} 0"))
        );
        assert!(
            text.contains("chemcost_lifecycle_state{model=\"gb\",machine=\"aurora\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("chemcost_lifecycle_transitions_total{from=\"idle\",to=\"queued\"} 0"),
            "{text}"
        );
        assert!(
            text.contains(
                "chemcost_lifecycle_transitions_total{from=\"shadow\",to=\"promoted\"} 0"
            ),
            "{text}"
        );
        assert!(text.contains("chemcost_lifecycle_queue_depth 0"), "{text}");
        assert!(text.contains("chemcost_lifecycle_fit_duration_seconds_count 0"), "{text}");
        for outcome in ["auto", "operator", "rejected", "rolled-back"] {
            assert!(
                text.contains(&format!(
                    "chemcost_lifecycle_promotions_total{{outcome=\"{outcome}\"}} 0"
                )),
                "{outcome} missing: {text}"
            );
        }
        // The health-plane families, pre-registered at zero.
        for state in ["ok", "pending", "firing", "resolved"] {
            assert!(
                text.contains(&format!("chemcost_alerts_transitions_total{{to=\"{state}\"}} 0")),
                "{state} missing: {text}"
            );
        }
        assert!(text.contains("chemcost_alerts_firing 0"), "{text}");
        assert!(text.contains("chemcost_alerts_pending 0"), "{text}");
        assert!(text.contains("chemcost_slo_evaluations_total 0"), "{text}");
        assert!(text.contains("chemcost_slo_breaching 0"), "{text}");
        assert!(text.contains("chemcost_slo_scrapes_total 0"), "{text}");
    }

    #[test]
    fn alert_recorders_update_their_families() {
        let m = Metrics::new();
        m.record_alert_transition("pending");
        m.record_alert_transition("firing");
        m.record_alert_transition("firing");
        m.record_alert_transition("no-such-state"); // ignored, never panics
        m.set_alert_gauges(1, 2);
        m.record_slo_scrape(6, 1);
        m.record_slo_scrape(6, 0);
        assert_eq!(m.alert_transitions("firing"), 2);
        assert_eq!(m.alert_transitions("pending"), 1);
        assert_eq!(m.alert_transitions("resolved"), 0);
        assert_eq!(m.alerts_firing(), 1);
        assert_eq!(m.alerts_pending(), 2);
        assert_eq!(m.slo_scrapes(), 2);
        assert_eq!(m.slo_evaluations(), 12);
        assert_eq!(m.slo_breaching(), 0, "gauge tracks the latest scrape");
        let text = m.render();
        assert!(text.contains("chemcost_alerts_transitions_total{to=\"firing\"} 2"), "{text}");
        assert!(text.contains("chemcost_alerts_firing 1"), "{text}");
        assert!(text.contains("chemcost_slo_scrapes_total 2"), "{text}");
    }

    #[test]
    fn histogram_snapshot_is_internally_consistent() {
        let m = Metrics::new();
        for i in 0..50 {
            m.record(Route::Advise, false, Duration::from_micros(i * 997));
        }
        let (buckets, sum, count) = {
            let snap = m.latency_snapshot();
            (snap.0, snap.1, snap.2)
        };
        assert_eq!(count, 50);
        assert!(sum > 0);
        assert_eq!(buckets.iter().sum::<u64>(), 50, "every observation lands in one bucket");
        assert_eq!(buckets.len(), Metrics::histogram_bounds().len() + 1, "+Inf bucket");
    }

    /// Negative: without a registered quality group the per-model
    /// families have metadata but no sample lines, and the required
    /// linter must say so — this is exactly the regression the router's
    /// startup pre-registration guards against.
    #[test]
    fn required_linter_flags_unregistered_quality_groups() {
        let errs =
            lint_exposition_with_required(&Metrics::new().render(), REQUIRED_SERIES).unwrap_err();
        for family in
            ["chemcost_model_mape", "chemcost_residual_seconds", "chemcost_drift_trips_total"]
        {
            assert!(
                errs.iter().any(|e| e.contains(family) && e.contains("no sample line")),
                "{family} should be flagged: {errs:?}"
            );
        }
    }

    #[test]
    fn quality_gauges_render_and_upsert_by_group() {
        let m = Metrics::new();
        m.set_model_quality("gb", 1, "aurora", QualityStats::default());
        let stats = QualityStats {
            observations: 12,
            window: 12,
            mape: 0.08,
            bias_seconds: -1.5,
            residual_p50: 2.0,
            residual_p90: 6.0,
            residual_p99: 9.0,
            calibration_ratio: 0.7,
            drift_trips: 1,
            degraded: true,
            pool_size: 12,
            pool_evictions: 4,
        };
        // Same triple: upsert, not a second series.
        m.set_model_quality("gb", 1, "aurora", stats);
        // New version after a reload: its own labelled series.
        m.set_model_quality("gb", 2, "aurora", QualityStats::default());
        assert_eq!(m.quality_entries().len(), 2);
        m.record_quality_observation(true);
        m.record_quality_observation(false);
        m.record_quality_observation(true);
        assert_eq!(m.quality_accepted(), 2);
        assert_eq!(m.quality_rejected(), 1);
        m.set_lifecycle_state("gb", "aurora", LifecycleState::Idle);
        let text = m.render();
        let v1 = "model=\"gb\",version=\"1\",machine=\"aurora\"";
        assert!(text.contains(&format!("chemcost_model_mape{{{v1}}} 0.08")), "{text}");
        assert!(text.contains(&format!("chemcost_model_bias_seconds{{{v1}}} -1.5")), "{text}");
        assert!(
            text.contains(&format!("chemcost_residual_seconds{{{v1},quantile=\"0.9\"}} 6")),
            "{text}"
        );
        assert!(text.contains(&format!("chemcost_calibration_ratio{{{v1}}} 0.7")), "{text}");
        assert!(text.contains(&format!("chemcost_model_degraded{{{v1}}} 1")), "{text}");
        assert!(text.contains(&format!("chemcost_drift_trips_total{{{v1}}} 1")), "{text}");
        assert!(
            text.contains("chemcost_model_mape{model=\"gb\",version=\"2\",machine=\"aurora\"} NaN"),
            "{text}"
        );
        assert!(text.contains("chemcost_quality_observations_total{outcome=\"accepted\"} 2"));
        lint_exposition_with_required(&text, REQUIRED_SERIES).expect("lint clean");
    }

    /// Negative: the required-series linter must flag a family whose
    /// sample lines are absent, even if its `# HELP`/`# TYPE` metadata
    /// is present (the unregistered-until-first-increment failure mode).
    #[test]
    fn required_linter_flags_missing_sample_lines() {
        let full = Metrics::new().render();
        let stripped: String = full
            .lines()
            .filter(|l| !l.starts_with("chemcost_deadline_exceeded_total"))
            .map(|l| format!("{l}\n"))
            .collect();
        let errs = lint_exposition_with_required(&stripped, REQUIRED_SERIES).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("chemcost_deadline_exceeded_total")
                    && e.contains("no sample line")),
            "{errs:?}"
        );
        // Histogram families are satisfied through their suffixed series.
        lint_exposition_with_required(&full, &["chemcost_request_duration_seconds"])
            .expect("histogram counted via _bucket/_sum/_count");
        // A family that never existed is reported too.
        let errs =
            lint_exposition_with_required(&full, &["chemcost_nonexistent_total"]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("chemcost_nonexistent_total")), "{errs:?}");
    }

    #[test]
    fn lifecycle_series_render_and_upsert_by_group() {
        let m = Metrics::new();
        m.set_lifecycle_state("gb", "aurora", LifecycleState::Idle);
        // Same (model, machine): upsert, not a second series.
        m.set_lifecycle_state("gb", "aurora", LifecycleState::Shadow);
        m.set_lifecycle_state("gb2", "frontier", LifecycleState::Idle);
        assert_eq!(m.lifecycle_entries().len(), 2);
        m.record_lifecycle_transition(LifecycleState::Idle, LifecycleState::Queued);
        m.record_lifecycle_transition(LifecycleState::Queued, LifecycleState::Training);
        m.record_lifecycle_transition(LifecycleState::Queued, LifecycleState::Training);
        // Invalid pairs are ignored, never counted under a wrong label.
        m.record_lifecycle_transition(LifecycleState::Idle, LifecycleState::Promoted);
        assert_eq!(m.lifecycle_transitions(LifecycleState::Queued, LifecycleState::Training), 2);
        assert_eq!(m.lifecycle_transitions(LifecycleState::Idle, LifecycleState::Promoted), 0);
        m.set_lifecycle_queue_depth(3);
        assert_eq!(m.lifecycle_queue_depth(), 3);
        m.record_lifecycle_fit_duration(Duration::from_millis(40));
        assert_eq!(m.lifecycle_fits(), 1);
        m.record_lifecycle_promotion(PromotionOutcome::Auto);
        m.record_lifecycle_promotion(PromotionOutcome::Rejected);
        m.record_lifecycle_promotion(PromotionOutcome::Rejected);
        assert_eq!(m.lifecycle_promotions(PromotionOutcome::Auto), 1);
        assert_eq!(m.lifecycle_promotions(PromotionOutcome::Rejected), 2);
        assert_eq!(m.lifecycle_promotions(PromotionOutcome::RolledBack), 0);
        let text = m.render();
        assert!(
            text.contains("chemcost_lifecycle_state{model=\"gb\",machine=\"aurora\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("chemcost_lifecycle_state{model=\"gb2\",machine=\"frontier\"} 0"),
            "{text}"
        );
        assert!(
            text.contains(
                "chemcost_lifecycle_transitions_total{from=\"queued\",to=\"training\"} 2"
            ),
            "{text}"
        );
        assert!(text.contains("chemcost_lifecycle_queue_depth 3"), "{text}");
        assert!(text.contains("chemcost_lifecycle_fit_duration_seconds_count 1"), "{text}");
        assert!(
            text.contains("chemcost_lifecycle_promotions_total{outcome=\"rejected\"} 2"),
            "{text}"
        );
        lint_exposition(&text).expect("lifecycle exposition must lint clean");
    }

    /// The observer bridge forwards every hub callback into the registry.
    #[test]
    fn lifecycle_bridge_forwards_observer_callbacks() {
        let m = Arc::new(Metrics::new());
        let bridge = LifecycleMetricsBridge(Arc::clone(&m));
        bridge.on_state("gb", "aurora", LifecycleState::Training);
        bridge.on_transition(LifecycleState::Queued, LifecycleState::Training);
        bridge.on_queue_depth(2);
        bridge.on_fit_duration(0.25);
        bridge.on_promotion(PromotionOutcome::Operator);
        assert_eq!(m.lifecycle_entries()[0].state, LifecycleState::Training);
        assert_eq!(m.lifecycle_transitions(LifecycleState::Queued, LifecycleState::Training), 1);
        assert_eq!(m.lifecycle_queue_depth(), 2);
        assert_eq!(m.lifecycle_fits(), 1);
        assert_eq!(m.lifecycle_promotions(PromotionOutcome::Operator), 1);
    }

    /// Negative (satellite): stripping any lifecycle family's sample lines
    /// must trip the required-series linter, exactly like the quality
    /// families — pre-registration is load-bearing for all of them.
    #[test]
    fn required_linter_flags_missing_lifecycle_series() {
        let m = Metrics::new();
        m.set_model_quality("gb", 1, "aurora", QualityStats::default());
        m.set_lifecycle_state("gb", "aurora", LifecycleState::Idle);
        let full = m.render();
        lint_exposition_with_required(&full, REQUIRED_SERIES).expect("full exposition is complete");
        for family in [
            "chemcost_lifecycle_state",
            "chemcost_lifecycle_transitions_total",
            "chemcost_lifecycle_queue_depth",
            "chemcost_lifecycle_fit_duration_seconds",
            "chemcost_lifecycle_promotions_total",
            "chemcost_quality_pool_size",
            "chemcost_quality_pool_evictions_total",
        ] {
            let stripped: String = full
                .lines()
                .filter(|l| {
                    l.starts_with('#')
                        || !l.split(['{', ' ']).next().unwrap_or("").starts_with(family)
                })
                .map(|l| format!("{l}\n"))
                .collect();
            let errs = lint_exposition_with_required(&stripped, REQUIRED_SERIES).unwrap_err();
            assert!(
                errs.iter().any(|e| e.contains(family) && e.contains("no sample line")),
                "{family} should be flagged: {errs:?}"
            );
        }
        // A lifecycle group that never registers is caught the same way.
        let errs =
            lint_exposition_with_required(&Metrics::new().render(), REQUIRED_SERIES).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("chemcost_lifecycle_state") && e.contains("no sample line")),
            "{errs:?}"
        );
    }

    #[test]
    fn deadline_and_fault_counters_track_per_label() {
        let m = Metrics::new();
        m.record_deadline_exceeded(DeadlineStage::Queue);
        m.record_deadline_exceeded(DeadlineStage::Sweep);
        m.record_deadline_exceeded(DeadlineStage::Sweep);
        assert_eq!(m.deadline_exceeded(DeadlineStage::Queue), 1);
        assert_eq!(m.deadline_exceeded(DeadlineStage::Cache), 0);
        assert_eq!(m.deadline_exceeded(DeadlineStage::Sweep), 2);
        m.record_fault(FaultKind::SlowIo);
        m.record_fault(FaultKind::PoisonReload);
        m.record_fault(FaultKind::PoisonReload);
        assert_eq!(m.faults_injected(FaultKind::SlowIo), 1);
        assert_eq!(m.faults_injected(FaultKind::PoisonReload), 2);
        m.set_model_quality("gb", 1, "aurora", QualityStats::default());
        m.set_lifecycle_state("gb", "aurora", LifecycleState::Idle);
        let text = m.render();
        assert!(text.contains("chemcost_deadline_exceeded_total{stage=\"sweep\"} 2"), "{text}");
        assert!(text.contains("chemcost_faults_injected_total{kind=\"slow-io\"} 1"), "{text}");
        lint_exposition_with_required(&text, REQUIRED_SERIES).expect("lint clean");
    }

    #[test]
    fn staleness_gauge_follows_reload_outcomes() {
        let m = Metrics::new();
        // Fresh registry: never failed, staleness pinned to zero.
        assert_eq!(m.model_staleness_seconds(), 0.0);
        m.record_reload_failure();
        assert_eq!(m.reload_failures(), 1);
        std::thread::sleep(Duration::from_millis(5));
        let stale = m.model_staleness_seconds();
        assert!(stale > 0.0, "staleness should accrue after a failed reload, got {stale}");
        // A later failure does not reset the clock to a smaller value.
        m.record_reload_failure();
        assert!(m.model_staleness_seconds() >= stale);
        // A successful reload clears it.
        m.mark_model_fresh();
        assert_eq!(m.model_staleness_seconds(), 0.0);
    }

    #[test]
    fn shed_within_reports_recent_overload_only() {
        let m = Metrics::new();
        assert!(!m.shed_within(Duration::from_secs(60)), "no shed yet");
        m.record_shed();
        assert!(m.shed_within(Duration::from_secs(60)));
        assert!(!m.shed_within(Duration::ZERO), "zero window excludes the past");
    }

    #[test]
    fn stale_served_counter_renders() {
        let m = Metrics::new();
        m.record_stale_served();
        assert_eq!(m.stale_served(), 1);
        assert!(m.render().contains("chemcost_advise_stale_served_total 1"));
    }

    /// Satellite: the serving-data-plane families render with labels and
    /// correct accounting.
    #[test]
    fn serving_series_render_and_count() {
        let m = Metrics::new();
        m.inc_connections_open();
        m.inc_connections_open();
        m.dec_connections_open();
        assert_eq!(m.connections_open(), 1);
        m.record_keepalive_reuse();
        m.record_keepalive_reuse();
        m.record_keepalive_reuse();
        assert_eq!(m.keepalive_reuses(), 3);
        m.record_batch_flush(FlushReason::Drain, 2);
        m.record_batch_flush(FlushReason::Window, 7);
        m.record_batch_flush(FlushReason::Window, 600);
        assert_eq!(m.batch_flushes(FlushReason::Drain), 1);
        assert_eq!(m.batch_flushes(FlushReason::Window), 2);
        assert_eq!(m.batch_flushes(FlushReason::Full), 0);
        assert_eq!(m.batch_calls(), 3);
        assert_eq!(m.batch_rows(), 609);
        let text = m.render();
        assert!(text.contains("chemcost_connections_open 1"), "{text}");
        assert!(text.contains("chemcost_keepalive_reuses_total 3"), "{text}");
        assert!(text.contains("chemcost_batch_flush_total{reason=\"drain\"} 1"), "{text}");
        assert!(text.contains("chemcost_batch_flush_total{reason=\"window\"} 2"), "{text}");
        assert!(text.contains("chemcost_batch_flush_total{reason=\"shutdown\"} 0"), "{text}");
        assert!(text.contains("chemcost_batch_size_bucket{le=\"2\"} 1"), "{text}");
        assert!(text.contains("chemcost_batch_size_bucket{le=\"8\"} 2"), "{text}");
        assert!(text.contains("chemcost_batch_size_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("chemcost_batch_size_sum 609"), "{text}");
        assert!(text.contains("chemcost_batch_size_count 3"), "{text}");
        lint_exposition(&text).expect("serving exposition must lint clean");
    }

    /// Negative (satellite): stripping any serving-data-plane family's
    /// sample lines must trip the required-series linter — the event
    /// loop and batcher series are pre-registered like every other.
    #[test]
    fn required_linter_flags_missing_serving_series() {
        let m = Metrics::new();
        m.set_model_quality("gb", 1, "aurora", QualityStats::default());
        m.set_lifecycle_state("gb", "aurora", LifecycleState::Idle);
        let full = m.render();
        lint_exposition_with_required(&full, REQUIRED_SERIES).expect("full exposition is complete");
        for family in [
            "chemcost_connections_open",
            "chemcost_batch_size",
            "chemcost_batch_flush_total",
            "chemcost_keepalive_reuses_total",
        ] {
            let stripped: String = full
                .lines()
                .filter(|l| {
                    l.starts_with('#')
                        || !l.split(['{', ' ']).next().unwrap_or("").starts_with(family)
                })
                .map(|l| format!("{l}\n"))
                .collect();
            let errs = lint_exposition_with_required(&stripped, REQUIRED_SERIES).unwrap_err();
            assert!(
                errs.iter().any(|e| e.contains(family) && e.contains("no sample line")),
                "{family} should be flagged: {errs:?}"
            );
        }
    }

    /// Tentpole (PR 8): the request-timeline stage histograms and the
    /// event-loop health series render with labels, count correctly, and
    /// lint clean.
    #[test]
    fn timeline_series_render_and_count() {
        let m = Metrics::new();
        m.record_request_stage(RequestStage::Read, Duration::from_micros(40));
        m.record_request_stage(RequestStage::Queue, Duration::from_micros(90));
        m.record_request_stage(RequestStage::BatchWait, Duration::from_micros(210));
        m.record_request_stage(RequestStage::Handler, Duration::from_micros(800));
        m.record_request_stage(RequestStage::Handler, Duration::from_micros(700));
        m.record_request_stage(RequestStage::Reorder, Duration::from_micros(5));
        m.record_request_stage(RequestStage::Write, Duration::from_micros(60));
        assert_eq!(m.request_stage_count(RequestStage::Handler), 2);
        assert_eq!(m.request_stage_count(RequestStage::Write), 1);
        assert!((m.request_stage_sum_seconds(RequestStage::BatchWait) - 210e-6).abs() < 1e-12);
        m.record_loop_iteration(Duration::from_micros(120), 3);
        m.record_loop_iteration(Duration::from_micros(80), 0);
        assert_eq!(m.loop_iterations(), 2);
        m.inc_read_paused();
        m.inc_write_stalled();
        m.inc_write_stalled();
        m.dec_write_stalled();
        assert_eq!(m.read_paused(), 1);
        assert_eq!(m.write_stalled(), 1);
        let text = m.render();
        assert!(
            text.contains("chemcost_request_stage_duration_seconds_count{stage=\"handler\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("chemcost_request_stage_duration_seconds_count{stage=\"batch_wait\"} 1"),
            "{text}"
        );
        assert!(
            text.contains(
                "chemcost_request_stage_duration_seconds_bucket{stage=\"read\",le=\"+Inf\"} 1"
            ),
            "{text}"
        );
        assert!(text.contains("chemcost_event_loop_iteration_duration_seconds_count 2"), "{text}");
        assert!(text.contains("chemcost_event_loop_events_per_wake_count 2"), "{text}");
        assert!(text.contains("chemcost_event_loop_events_per_wake_sum 3"), "{text}");
        assert!(text.contains("chemcost_connections_read_paused 1"), "{text}");
        assert!(text.contains("chemcost_connections_write_stalled 1"), "{text}");
        lint_exposition(&text).expect("timeline exposition must lint clean");
        // Every stage label renders even before its first observation.
        let fresh = Metrics::new().render();
        for stage in RequestStage::ALL {
            assert!(
                fresh.contains(&format!(
                    "chemcost_request_stage_duration_seconds_count{{stage=\"{}\"}} 0",
                    stage.label()
                )),
                "stage {} not pre-registered: {fresh}",
                stage.label()
            );
        }
        // The /debug/requests route is accounted like any other.
        m.record(Route::Debug, false, Duration::from_micros(30));
        assert!(m.render().contains("chemcost_requests_total{route=\"debug\"} 1"));
    }

    /// Negative (satellite): stripping any PR 8 timeline/event-loop
    /// family's sample lines must trip the required-series linter.
    #[test]
    fn required_linter_flags_missing_timeline_series() {
        let m = Metrics::new();
        m.set_model_quality("gb", 1, "aurora", QualityStats::default());
        m.set_lifecycle_state("gb", "aurora", LifecycleState::Idle);
        let full = m.render();
        lint_exposition_with_required(&full, REQUIRED_SERIES).expect("full exposition is complete");
        for family in [
            "chemcost_request_stage_duration_seconds",
            "chemcost_event_loop_iteration_duration_seconds",
            "chemcost_event_loop_events_per_wake",
            "chemcost_connections_read_paused",
            "chemcost_connections_write_stalled",
        ] {
            let stripped: String = full
                .lines()
                .filter(|l| {
                    l.starts_with('#')
                        || !l.split(['{', ' ']).next().unwrap_or("").starts_with(family)
                })
                .map(|l| format!("{l}\n"))
                .collect();
            let errs = lint_exposition_with_required(&stripped, REQUIRED_SERIES).unwrap_err();
            assert!(
                errs.iter().any(|e| e.contains(family) && e.contains("no sample line")),
                "{family} should be flagged: {errs:?}"
            );
        }
    }

    /// Satellite: N writer threads hammer every counter family while the
    /// main thread renders mid-flight; every intermediate exposition must
    /// stay well-formed, and the final counts must add up.
    #[test]
    fn concurrent_writers_keep_render_well_formed() {
        use std::sync::Arc;
        let m = Arc::new(Metrics::new());
        let writers = 8;
        let per_thread = 500;
        let handles: Vec<_> = (0..writers)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let route = Route::ALL[(t + i) % Route::ALL.len()];
                        m.inc_in_flight();
                        m.pool_enqueued();
                        m.record(route, i % 3 == 0, Duration::from_micros((i * 37) as u64));
                        let stage = AdviseStage::ALL[i % 3];
                        m.record_advise_stage(stage, Duration::from_micros((i * 11) as u64));
                        if i % 5 == 0 {
                            m.record_shed();
                        }
                        m.record_cache_miss();
                        m.pool_dequeued();
                        m.dec_in_flight();
                    }
                })
            })
            .collect();
        // Render (and lint) while the writers are running.
        for _ in 0..50 {
            let text = m.render();
            if let Err(problems) = lint_exposition(&text) {
                panic!("mid-flight exposition malformed: {problems:?}\n{text}");
            }
            std::thread::yield_now();
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = Route::ALL.iter().map(|&r| m.requests(r)).sum();
        let expected = (writers * per_thread) as u64;
        // record() calls + record_shed() calls (every 5th iteration).
        assert_eq!(total, expected + expected / 5);
        assert_eq!(m.cache_misses(), expected);
        assert_eq!(m.shed_total(), expected / 5);
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.pool_queue_depth(), 0);
        let stage_total: u64 = AdviseStage::ALL.iter().map(|&s| m.advise_stage_count(s)).sum();
        assert_eq!(stage_total, expected);
        lint_exposition(&m.render()).expect("final exposition must lint clean");
    }
}
