//! Deterministic fault-injection plane for chaos testing the service.
//!
//! A [`FaultPlane`] makes seeded, reproducible per-request decisions
//! about whether to inject one of five faults:
//!
//! * **slow-io** — sleep before reading a request, simulating a stalled
//!   disk or a slow-loris client;
//! * **drop-conn** — close the socket after writing only part of the
//!   response, simulating a mid-flight network failure;
//! * **truncate-body** — end the request stream early, simulating a
//!   client that died while uploading;
//! * **saturate** — treat the worker-pool queue as full, forcing the
//!   `503` shed path;
//! * **poison-reload** — make a model reload fail as if the file on
//!   disk were corrupt, exercising the last-good stale-while-revalidate
//!   path.
//!
//! Decisions come from a counter-based hash (SplitMix64 over
//! `(seed, kind, nth-call)`): the *n*-th roll for a given fault kind is
//! a pure function of the seed, so a failing chaos run replays exactly
//! by re-running with the same `CHEMCOST_CHAOS_SEED`. Each kind has its
//! own counter, so interleaving between kinds never perturbs another
//! kind's decision stream.
//!
//! The plane is **opt-in only**: the server holds an
//! `Option<Arc<FaultPlane>>` that is `None` unless `chemcost serve
//! --chaos <profile>` (or the builder API in tests) installed one, so
//! the default request path pays a single null check and all injection
//! logic stays in this module, out of the hot loop.

use crate::metrics::Metrics;
use parking_lot::RwLock;
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable that seeds the fault plane's decision stream.
pub const CHAOS_SEED_ENV: &str = "CHEMCOST_CHAOS_SEED";

/// Default decision seed when [`CHAOS_SEED_ENV`] is unset.
pub const DEFAULT_CHAOS_SEED: u64 = 42;

/// The injectable fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep before reading the request.
    SlowIo,
    /// Drop the connection mid-response.
    DropConn,
    /// Truncate the request stream early.
    TruncateBody,
    /// Pretend the pool queue is full (shed with 503).
    Saturate,
    /// Fail a model reload as if the file were corrupt.
    PoisonReload,
}

impl FaultKind {
    /// Every kind, in metrics label order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::SlowIo,
        FaultKind::DropConn,
        FaultKind::TruncateBody,
        FaultKind::Saturate,
        FaultKind::PoisonReload,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            FaultKind::SlowIo => 0,
            FaultKind::DropConn => 1,
            FaultKind::TruncateBody => 2,
            FaultKind::Saturate => 3,
            FaultKind::PoisonReload => 4,
        }
    }

    /// The Prometheus `kind` label value.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::SlowIo => "slow-io",
            FaultKind::DropConn => "drop-conn",
            FaultKind::TruncateBody => "truncate-body",
            FaultKind::Saturate => "saturate",
            FaultKind::PoisonReload => "poison-reload",
        }
    }
}

/// A named chaos profile selectable with `chemcost serve --chaos`.
///
/// Each profile enables one fault kind at a rate tuned so a short soak
/// sees plenty of injections without starving legitimate traffic
/// (`all` enables every kind at a milder rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosProfile {
    /// 25% of requests read slowly (+25 ms).
    SlowIo,
    /// 15% of responses are cut off mid-write.
    DropConn,
    /// 15% of request streams end early.
    TruncateBody,
    /// 25% of accepts are shed as if the queue were full.
    Saturate,
    /// 50% of reloads fail as if the model file were corrupt.
    PoisonReload,
    /// Every fault kind at a mild rate.
    All,
}

impl ChaosProfile {
    /// Parse a `--chaos` value.
    pub fn parse(s: &str) -> Option<ChaosProfile> {
        match s {
            "slow-io" => Some(ChaosProfile::SlowIo),
            "drop-conn" => Some(ChaosProfile::DropConn),
            "truncate-body" => Some(ChaosProfile::TruncateBody),
            "saturate" => Some(ChaosProfile::Saturate),
            "poison-reload" => Some(ChaosProfile::PoisonReload),
            "all" => Some(ChaosProfile::All),
            _ => None,
        }
    }

    /// The `--chaos` spelling of this profile.
    pub fn name(self) -> &'static str {
        match self {
            ChaosProfile::SlowIo => "slow-io",
            ChaosProfile::DropConn => "drop-conn",
            ChaosProfile::TruncateBody => "truncate-body",
            ChaosProfile::Saturate => "saturate",
            ChaosProfile::PoisonReload => "poison-reload",
            ChaosProfile::All => "all",
        }
    }

    /// The accepted `--chaos` values, for error messages.
    pub const NAMES: &'static str = "slow-io|drop-conn|truncate-body|saturate|poison-reload|all";
}

/// Builder for a [`FaultPlane`] — the test-side API; production code
/// goes through [`FaultPlane::from_profile`].
#[derive(Debug, Clone)]
pub struct FaultPlaneBuilder {
    seed: u64,
    rates: [f64; 5],
    slow_io_delay: Duration,
    truncate_after: usize,
}

impl Default for FaultPlaneBuilder {
    fn default() -> Self {
        FaultPlaneBuilder {
            seed: seed_from_env(),
            rates: [0.0; 5],
            slow_io_delay: Duration::from_millis(25),
            truncate_after: 40,
        }
    }
}

impl FaultPlaneBuilder {
    /// Override the decision seed (defaults to [`CHAOS_SEED_ENV`] or
    /// [`DEFAULT_CHAOS_SEED`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inject `kind` on this fraction of rolls (clamped to `[0, 1]`).
    pub fn rate(mut self, kind: FaultKind, rate: f64) -> Self {
        self.rates[kind.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// How long a slow-io injection sleeps.
    pub fn slow_io_delay(mut self, delay: Duration) -> Self {
        self.slow_io_delay = delay;
        self
    }

    /// How many request bytes a truncate-body injection lets through.
    pub fn truncate_after(mut self, bytes: usize) -> Self {
        self.truncate_after = bytes;
        self
    }

    /// Finish building.
    pub fn build(self) -> FaultPlane {
        FaultPlane {
            seed: self.seed,
            thresholds: self.rates.map(rate_to_threshold),
            slow_io_delay: self.slow_io_delay,
            truncate_after: self.truncate_after,
            counters: Default::default(),
            injected: Default::default(),
            metrics: RwLock::new(None),
        }
    }
}

/// Read the decision seed from the environment.
fn seed_from_env() -> u64 {
    std::env::var(CHAOS_SEED_ENV).ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_CHAOS_SEED)
}

/// Map a probability to a u64 comparison threshold.
fn rate_to_threshold(rate: f64) -> u64 {
    if rate >= 1.0 {
        u64::MAX
    } else if rate <= 0.0 {
        0
    } else {
        (rate * u64::MAX as f64) as u64
    }
}

/// SplitMix64: the decision hash. Statistically uniform, trivially
/// reproducible, and stateless given `(seed, kind, n)`.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic fault-injection plane. See the module docs.
pub struct FaultPlane {
    seed: u64,
    /// Per-kind injection thresholds (`hash < threshold` ⇒ inject).
    thresholds: [u64; 5],
    slow_io_delay: Duration,
    truncate_after: usize,
    /// Per-kind roll counters: the n-th roll of a kind is a pure
    /// function of `(seed, kind, n)`.
    counters: [AtomicU64; 5],
    /// Per-kind injection tallies (also mirrored into [`Metrics`] when
    /// bound).
    injected: [AtomicU64; 5],
    metrics: RwLock<Option<Arc<Metrics>>>,
}

impl FaultPlane {
    /// Start building a custom plane (tests).
    pub fn builder() -> FaultPlaneBuilder {
        FaultPlaneBuilder::default()
    }

    /// The plane for a named `--chaos` profile, seeded from the
    /// environment ([`CHAOS_SEED_ENV`]).
    pub fn from_profile(profile: ChaosProfile) -> FaultPlane {
        let b = FaultPlane::builder();
        match profile {
            ChaosProfile::SlowIo => b.rate(FaultKind::SlowIo, 0.25),
            ChaosProfile::DropConn => b.rate(FaultKind::DropConn, 0.15),
            ChaosProfile::TruncateBody => b.rate(FaultKind::TruncateBody, 0.15),
            ChaosProfile::Saturate => b.rate(FaultKind::Saturate, 0.25),
            ChaosProfile::PoisonReload => b.rate(FaultKind::PoisonReload, 0.5),
            ChaosProfile::All => FaultKind::ALL
                .iter()
                .fold(b, |b, &kind| b.rate(kind, 0.08))
                .rate(FaultKind::PoisonReload, 0.5),
        }
        .build()
    }

    /// Mirror injections into `metrics`
    /// (`chemcost_faults_injected_total{kind=…}`).
    pub fn bind_metrics(&self, metrics: Arc<Metrics>) {
        *self.metrics.write() = Some(metrics);
    }

    /// The decision seed in use.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Roll the dice for `kind`: deterministic given the seed and how
    /// many times this kind has been rolled before. On injection the
    /// tally (and bound metrics counter) is bumped and a `fault.inject`
    /// record is emitted.
    pub fn roll(&self, kind: FaultKind) -> bool {
        let threshold = self.thresholds[kind.index()];
        if threshold == 0 {
            return false;
        }
        let n = self.counters[kind.index()].fetch_add(1, Ordering::Relaxed);
        let h = splitmix(self.seed ^ splitmix(kind.index() as u64 + 1).wrapping_add(n));
        let inject = h < threshold;
        if inject {
            self.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
            if let Some(metrics) = &*self.metrics.read() {
                metrics.record_fault(kind);
            }
            chemcost_obs::event!(
                chemcost_obs::Level::Warn,
                "fault.inject",
                kind = kind.label(),
                nth_roll = n,
            );
        }
        inject
    }

    /// How many times `kind` has been injected.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()].load(Ordering::Relaxed)
    }

    /// Total injections across every kind.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The sleep a slow-io injection applies.
    pub fn slow_io_delay(&self) -> Duration {
        self.slow_io_delay
    }

    /// The request-byte budget a truncate-body injection enforces.
    pub fn truncate_after(&self) -> usize {
        self.truncate_after
    }
}

impl std::fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlane")
            .field("seed", &self.seed)
            .field("injected_total", &self.injected_total())
            .finish_non_exhaustive()
    }
}

/// A reader that yields at most `budget` bytes before reporting EOF —
/// how a truncate-body injection makes the server see a client that
/// died mid-upload.
pub struct TruncatingReader<R> {
    inner: R,
    remaining: usize,
}

impl<R: Read> TruncatingReader<R> {
    /// Wrap `inner`, allowing `budget` bytes through.
    pub fn new(inner: R, budget: usize) -> TruncatingReader<R> {
        TruncatingReader { inner, remaining: budget }
    }
}

impl<R: Read> Read for TruncatingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let cap = buf.len().min(self.remaining);
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision_stream(plane: &FaultPlane, kind: FaultKind, n: usize) -> Vec<bool> {
        (0..n).map(|_| plane.roll(kind)).collect()
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = FaultPlane::builder().seed(7).rate(FaultKind::DropConn, 0.3).build();
        let b = FaultPlane::builder().seed(7).rate(FaultKind::DropConn, 0.3).build();
        assert_eq!(
            decision_stream(&a, FaultKind::DropConn, 200),
            decision_stream(&b, FaultKind::DropConn, 200)
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlane::builder().seed(1).rate(FaultKind::SlowIo, 0.5).build();
        let b = FaultPlane::builder().seed(2).rate(FaultKind::SlowIo, 0.5).build();
        assert_ne!(
            decision_stream(&a, FaultKind::SlowIo, 200),
            decision_stream(&b, FaultKind::SlowIo, 200)
        );
    }

    #[test]
    fn kinds_have_independent_streams() {
        // Rolling another kind in between must not perturb this kind's
        // decision sequence.
        let a = FaultPlane::builder()
            .seed(3)
            .rate(FaultKind::SlowIo, 0.4)
            .rate(FaultKind::Saturate, 0.4)
            .build();
        let b = FaultPlane::builder().seed(3).rate(FaultKind::SlowIo, 0.4).build();
        let mut interleaved = Vec::new();
        for _ in 0..100 {
            interleaved.push(a.roll(FaultKind::SlowIo));
            a.roll(FaultKind::Saturate);
        }
        assert_eq!(interleaved, decision_stream(&b, FaultKind::SlowIo, 100));
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plane = FaultPlane::builder().seed(9).rate(FaultKind::Saturate, 0.25).build();
        let hits =
            decision_stream(&plane, FaultKind::Saturate, 4000).iter().filter(|&&b| b).count();
        assert!((700..1300).contains(&hits), "25% of 4000 ≈ 1000, got {hits}");
        assert_eq!(plane.injected(FaultKind::Saturate) as usize, hits);
        assert_eq!(plane.injected_total() as usize, hits);
    }

    #[test]
    fn zero_rate_never_fires_and_one_always_does() {
        let plane = FaultPlane::builder().seed(5).rate(FaultKind::DropConn, 1.0).build();
        assert!(decision_stream(&plane, FaultKind::DropConn, 50).iter().all(|&b| b));
        assert!(!decision_stream(&plane, FaultKind::SlowIo, 50).iter().any(|&b| b));
    }

    #[test]
    fn profiles_parse_round_trip() {
        for name in ["slow-io", "drop-conn", "truncate-body", "saturate", "poison-reload", "all"] {
            let p = ChaosProfile::parse(name).unwrap_or_else(|| panic!("parse {name}"));
            assert_eq!(p.name(), name);
        }
        assert!(ChaosProfile::parse("tornado").is_none());
    }

    #[test]
    fn injections_mirror_into_metrics() {
        let plane = FaultPlane::builder().seed(1).rate(FaultKind::PoisonReload, 1.0).build();
        let metrics = Arc::new(Metrics::new());
        plane.bind_metrics(Arc::clone(&metrics));
        assert!(plane.roll(FaultKind::PoisonReload));
        assert!(metrics
            .render()
            .contains("chemcost_faults_injected_total{kind=\"poison-reload\"} 1"));
    }

    #[test]
    fn truncating_reader_stops_at_budget() {
        let data = b"0123456789";
        let mut r = TruncatingReader::new(&data[..], 4);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"0123");
    }
}
