//! A small retrying HTTP client for the chemcost service.
//!
//! Used by the `chemcost call` subcommand, the smoke test, and the
//! chaos soak. The retry loop is deliberately conservative:
//!
//! * only **idempotent** calls retry — `GET` anything, and
//!   `POST /v1/advise`, whose answer is a pure function of its body;
//!   other `POST`s get exactly one attempt;
//! * transport failures (refused/torn connections, timeouts, unparsable
//!   responses) and `503` sheds are the retryable outcomes — any other
//!   HTTP status, error or not, is a *delivered* answer and is returned;
//! * backoff is capped exponential with deterministic jitter
//!   (SplitMix64 over the policy seed and attempt number), so a chaos
//!   run replays identically under the same seeds.

use crate::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How retries are paced. `max_attempts` counts the first try.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(400),
            seed: 1,
        }
    }
}

/// Why a call failed for good.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach the server (and retries, if allowed, ran out).
    Io(std::io::Error),
    /// The server's bytes were not a parsable HTTP response.
    Malformed(String),
    /// Every allowed attempt failed; `last` describes the final failure.
    Exhausted {
        /// Attempts made (== the policy's `max_attempts`).
        attempts: u32,
        /// Human-readable description of the last failure.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed response: {m}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last failure: {last}")
            }
        }
    }
}

/// One delivered HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// How many attempts the call took (1 = no retries).
    pub attempts: u32,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON, if it is JSON.
    pub fn json(&self) -> Option<Json> {
        Json::parse(std::str::from_utf8(&self.body).ok()?).ok()
    }

    /// Is the body well-formed JSON carrying either a successful answer
    /// or a structured `error` field? This is the chaos soak's
    /// invariant: every delivered response must satisfy it.
    pub fn is_well_formed(&self) -> bool {
        match self.json() {
            Some(v) => self.status < 400 || v.get("error").is_some(),
            None => false,
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Retrying client bound to one server address.
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    timeout: Duration,
    deadline_ms: Option<u64>,
    /// Global jitter counter so consecutive backoffs de-correlate.
    jitter_n: AtomicU64,
}

impl Client {
    /// A client for `addr` (e.g. `"127.0.0.1:8080"`) with the default
    /// retry policy and a 10 s per-attempt socket timeout.
    pub fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            policy: RetryPolicy::default(),
            timeout: Duration::from_secs(10),
            deadline_ms: None,
            jitter_n: AtomicU64::new(0),
        }
    }

    /// Override the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Client {
        self.policy = policy;
        self
    }

    /// Override the per-attempt socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Attach `X-Deadline-Ms` to every request (`None` removes it).
    pub fn with_deadline_ms(mut self, ms: Option<u64>) -> Client {
        self.deadline_ms = ms;
        self
    }

    /// `GET path` — idempotent, retried per the policy.
    pub fn get(&self, path: &str) -> Result<ClientResponse, ClientError> {
        self.call("GET", path, b"")
    }

    /// `POST /v1/advise` — idempotent by construction (the answer is a
    /// pure function of the body), so it retries like a GET.
    pub fn advise(&self, body: &str) -> Result<ClientResponse, ClientError> {
        self.call("POST", "/v1/advise", body.as_bytes())
    }

    /// `POST path` — assumed non-idempotent: exactly one attempt.
    pub fn post(&self, path: &str, body: &[u8]) -> Result<ClientResponse, ClientError> {
        self.call("POST", path, body)
    }

    /// Dispatch one call, retrying only when `method`/`path` make it
    /// idempotent: every `GET`, plus `POST /v1/advise`.
    pub fn call(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let idempotent = method.eq_ignore_ascii_case("GET") || path == "/v1/advise";
        let attempts = if idempotent { self.policy.max_attempts.max(1) } else { 1 };
        let mut last_failure = String::new();
        for attempt in 1..=attempts {
            if attempt > 1 {
                std::thread::sleep(self.backoff(attempt));
            }
            match self.one_attempt(method, path, body) {
                Ok(resp) if resp.status == 503 && attempt < attempts => {
                    // A shed is explicitly retryable: the server asked us
                    // to come back, and backoff gives it room to drain.
                    last_failure = "503 server overloaded".to_string();
                }
                Ok(mut resp) => {
                    resp.attempts = attempt;
                    return Ok(resp);
                }
                Err(e) if attempt < attempts => last_failure = e.to_string(),
                Err(e) => {
                    return Err(if attempts > 1 {
                        ClientError::Exhausted { attempts, last: e.to_string() }
                    } else {
                        e
                    })
                }
            }
        }
        Err(ClientError::Exhausted { attempts, last: last_failure })
    }

    /// Capped exponential backoff with deterministic jitter in
    /// `[0.5, 1.5)` of the nominal delay.
    fn backoff(&self, attempt: u32) -> Duration {
        let nominal = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << (attempt.saturating_sub(2)).min(16))
            .min(self.policy.max_backoff);
        let n = self.jitter_n.fetch_add(1, Ordering::Relaxed);
        let h = splitmix(self.policy.seed.wrapping_add(splitmix(n)));
        let factor = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64; // [0.5, 1.5)
        nominal.mul_f64(factor)
    }

    fn one_attempt(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let stream = TcpStream::connect(&self.addr).map_err(ClientError::Io)?;
        stream.set_read_timeout(Some(self.timeout)).map_err(ClientError::Io)?;
        stream.set_write_timeout(Some(self.timeout)).map_err(ClientError::Io)?;
        let _ = stream.set_nodelay(true);

        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\nContent-Length: {}\r\n",
            self.addr,
            body.len(),
        );
        if let Some(ms) = self.deadline_ms {
            head.push_str(&format!("X-Deadline-Ms: {ms}\r\n"));
        }
        head.push_str("\r\n");

        let mut writer = stream.try_clone().map_err(ClientError::Io)?;
        writer.write_all(head.as_bytes()).map_err(ClientError::Io)?;
        writer.write_all(body).map_err(ClientError::Io)?;
        writer.flush().map_err(ClientError::Io)?;

        read_client_response(&mut BufReader::new(stream))
    }
}

/// Parse one HTTP/1.1 response off `reader`. Strict enough that a torn
/// (chaos-dropped) response surfaces as an error, never as a truncated
/// body that happens to parse.
fn read_client_response<R: BufRead>(reader: &mut R) -> Result<ClientResponse, ClientError> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(ClientError::Io)?;
    if status_line.is_empty() {
        return Err(ClientError::Malformed("connection closed before status line".into()));
    }
    let status: u16 = status_line
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| status_line.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| ClientError::Malformed(format!("bad status line {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(ClientError::Io)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = Some(value.trim().parse().map_err(|_| {
                    ClientError::Malformed(format!("bad Content-Length {value:?}"))
                })?);
            }
        }
    }

    let body = match content_length {
        Some(len) => {
            let mut body = vec![0u8; len];
            let mut filled = 0;
            while filled < len {
                match reader.read(&mut body[filled..]) {
                    Ok(0) => {
                        return Err(ClientError::Malformed(format!(
                            "body truncated at {filled}/{len} bytes"
                        )))
                    }
                    Ok(n) => filled += n,
                    Err(e) => return Err(ClientError::Io(e)),
                }
            }
            body
        }
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body).map_err(ClientError::Io)?;
            body
        }
    };

    Ok(ClientResponse { status, body, attempts: 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<ClientResponse, ClientError> {
        read_client_response(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_complete_response() {
        let r = parse("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 11\r\n\r\n{\"ok\":true}")
            .unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.text(), "{\"ok\":true}");
        assert!(r.is_well_formed());
    }

    #[test]
    fn structured_errors_are_well_formed_and_bare_ones_are_not() {
        let structured =
            parse("HTTP/1.1 504 Gateway Timeout\r\nContent-Length: 35\r\n\r\n{\"error\":\"x\",\"stage\":\"sweep\",\"a\":1}")
                .unwrap();
        assert!(structured.is_well_formed());
        let bare =
            parse("HTTP/1.1 500 Internal Server Error\r\nContent-Length: 4\r\n\r\noops").unwrap();
        assert!(!bare.is_well_formed());
    }

    #[test]
    fn torn_responses_are_errors_not_short_bodies() {
        let e = parse("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort").unwrap_err();
        assert!(matches!(e, ClientError::Malformed(_)), "{e}");
        let e = parse("HTTP/1.1 ").unwrap_err();
        assert!(matches!(e, ClientError::Malformed(_)), "{e}");
        let e = parse("").unwrap_err();
        assert!(matches!(e, ClientError::Malformed(_)), "{e}");
    }

    #[test]
    fn backoff_is_capped_and_jittered_deterministically() {
        let mk = || {
            Client::new("127.0.0.1:1").with_policy(RetryPolicy {
                max_attempts: 8,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(80),
                seed: 7,
            })
        };
        let a = mk();
        let b = mk();
        let seq_a: Vec<Duration> = (2..8).map(|i| a.backoff(i)).collect();
        let seq_b: Vec<Duration> = (2..8).map(|i| b.backoff(i)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same jitter stream");
        for (i, d) in seq_a.iter().enumerate() {
            // Nominal doubles 10ms → 80ms cap; jitter stays in [0.5, 1.5).
            assert!(*d <= Duration::from_millis(120), "attempt {i}: {d:?}");
            assert!(*d >= Duration::from_millis(5), "attempt {i}: {d:?}");
        }
    }

    #[test]
    fn refused_connection_exhausts_retries_for_idempotent_calls() {
        // Port 1 is essentially never listening.
        let client = Client::new("127.0.0.1:1").with_policy(RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            seed: 1,
        });
        let err = client.get("/healthz").unwrap_err();
        assert!(matches!(err, ClientError::Exhausted { attempts: 2, .. }), "{err}");
        // Non-idempotent POSTs fail on the first error, no retry wrapper.
        let err = client.post("/v1/models/gb/reload", b"").unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "{err}");
    }
}
